// The hardware-ablation methodology (paper §4.1): run experiment
// (prefetchers off) and control (prefetchers on) machine populations on
// the detailed simulator, profile per function with the sampling
// profiler, diff the populations, and derive the software-prefetch
// target registry.
#include <algorithm>
#include <cstdio>

#include "profiling/profile.h"
#include "profiling/sampling_profiler.h"
#include "sim/machine/socket.h"
#include "softpf/prefetch_site_registry.h"
#include "workloads/function_catalog.h"

using namespace limoncello;

namespace {

ProfileAggregate ProfilePopulation(const FunctionCatalog& catalog,
                                   bool prefetchers_on, int machines) {
  SocketConfig config;
  config.num_cores = 4;
  config.memory.peak_gbps = 32.0;  // moderate fleet-average load point

  ProfileAggregate aggregate(catalog.size());
  SamplingProfiler::Options po;
  po.machine_sample_probability = 1.0;
  po.event_sample_fraction = 0.25;
  SamplingProfiler profiler(po, Rng(99));
  for (int m = 0; m < machines; ++m) {
    Socket socket(config, catalog.size(), Rng(500 + m));
    socket.SetAllPrefetchersEnabled(prefetchers_on);
    for (int core = 0; core < config.num_cores; ++core) {
      socket.SetWorkload(core,
                         catalog.MakeFleetMix(Rng(500 + m).Fork(core)));
    }
    for (int epoch = 0; epoch < 30; ++epoch) socket.Step(100 * kNsPerUs);
    profiler.CollectFrom(socket.function_profile(), &aggregate);
  }
  return aggregate;
}

}  // namespace

int main() {
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();

  std::printf("profiling control population (prefetchers ON)...\n");
  const ProfileAggregate control = ProfilePopulation(catalog, true, 6);
  std::printf("profiling experiment population (prefetchers OFF)...\n");
  const ProfileAggregate experiment = ProfilePopulation(catalog, false, 6);

  auto deltas = CompareAblation(control, experiment, catalog);
  std::sort(deltas.begin(), deltas.end(),
            [](const FunctionDelta& a, const FunctionDelta& b) {
              return a.cycles_change_pct > b.cycles_change_pct;
            });

  std::printf("\n%-18s %-18s %10s %10s\n", "function", "category",
              "d_cycles%", "d_mpki%");
  for (const FunctionDelta& d : deltas) {
    std::printf("%-18s %-18s %+10.1f %+10.1f\n", d.name.c_str(),
                FunctionCategoryName(d.category), d.cycles_change_pct,
                d.mpki_change_pct);
  }

  // Select software-prefetch targets and build the deployment registry.
  const auto targets = SelectPrefetchTargets(deltas,
                                             /*min_regression_pct=*/5.0,
                                             /*min_cycle_share=*/0.002);
  PrefetchSiteRegistry registry;
  for (const FunctionDelta& target : targets) {
    registry.Register(target.name, SoftPrefetchConfig::DeployedDefault());
  }
  std::printf("\nselected %zu software-prefetch targets:\n",
              targets.size());
  for (const FunctionDelta& target : targets) {
    std::printf("  %-18s (%s, %+.1f%% cycles when PF disabled)\n",
                target.name.c_str(),
                FunctionCategoryName(target.category),
                target.cycles_change_pct);
  }
  std::printf(
      "\nexpected: the targets are data-center-tax functions "
      "(compression, data\ntransmission, hashing, data movement) - paper "
      "§4.1.\n");
  return 0;
}
