// Soft Limoncello tuning workflow (paper §4.2-4.3): sweep software
// prefetch distances and degrees over the native prefetching memcpy with
// a realistic call-size distribution, and pick the best configuration
// for deployment.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "softpf/soft_prefetch_config.h"
#include "tax/prefetching_memcpy.h"
#include "util/rng.h"
#include "workloads/generators.h"

using namespace limoncello;

namespace {

// Times one pass of `calls` memcpys with sizes from the fleet
// distribution; returns ns per copied byte.
double OnePassNsPerByte(const SoftPrefetchConfig& config,
                        const std::vector<std::uint64_t>& sizes,
                        std::vector<char>& src, std::vector<char>& dst) {
  using Clock = std::chrono::steady_clock;
  std::uint64_t bytes = 0;
  std::size_t cursor = 0;
  const auto start = Clock::now();
  for (std::uint64_t size : sizes) {
    if (cursor + size >= src.size()) cursor = 0;
    PrefetchingMemcpy(dst.data() + cursor, src.data() + cursor,
                      static_cast<std::size_t>(size), config);
    cursor += size + 64;
    bytes += size;
  }
  const auto end = Clock::now();
  return std::chrono::duration<double, std::nano>(end - start).count() /
         static_cast<double>(bytes);
}

// Paired measurement: interleaves baseline and candidate passes so slow
// drift (frequency scaling, cache state, noisy neighbours) cancels out.
// Returns the median candidate/baseline time ratio.
double MeasureRelative(const SoftPrefetchConfig& config,
                       const std::vector<std::uint64_t>& sizes,
                       std::vector<char>& src, std::vector<char>& dst) {
  const SoftPrefetchConfig baseline = SoftPrefetchConfig::Disabled();
  std::vector<double> ratios;
  for (int rep = 0; rep < 5; ++rep) {
    const double base = OnePassNsPerByte(baseline, sizes, src, dst);
    const double cand = OnePassNsPerByte(config, sizes, src, dst);
    ratios.push_back(cand / base);
  }
  std::sort(ratios.begin(), ratios.end());
  return ratios[ratios.size() / 2];
}

}  // namespace

int main() {
  // 1. Sample a call-size workload (Fig. 14 shape: small body, big tail).
  MemcpySizeDistribution dist;
  Rng rng(7);
  std::vector<std::uint64_t> sizes;
  for (int i = 0; i < 20000; ++i) sizes.push_back(dist.Sample(rng));

  std::vector<char> src(128 * 1024 * 1024, 'a');
  std::vector<char> dst(128 * 1024 * 1024);

  std::printf(
      "measuring paired baseline/candidate passes (median of 5)...\n\n");

  // 2. Phase 1 - distance sweep at fixed degree (paper Fig. 15a).
  std::printf("distance sweep (degree=256B, min_size=2KiB):\n");
  SoftPrefetchConfig best;
  double best_ratio = 1.0;
  for (const SweepPoint& point :
       DistanceSweep({64, 128, 256, 512, 1024}, 256)) {
    SoftPrefetchConfig config = point.config;
    config.min_size_bytes = 2048;  // only prefetch large calls (§4.3)
    const double ratio = MeasureRelative(config, sizes, src, dst);
    std::printf("  %-14s time ratio %.4f (%+.2f%% speedup)\n",
                point.label.c_str(), ratio, 100.0 * (1.0 / ratio - 1.0));
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best = config;
    }
  }
  if (best_ratio >= 1.0) best = SoftPrefetchConfig::DeployedDefault();

  // 3. Phase 2 - degree sweep at the winning distance (paper Fig. 15b).
  std::printf("\ndegree sweep (distance=%u):\n", best.distance_bytes);
  for (const SweepPoint& point :
       DegreeSweep(best.distance_bytes, {64, 128, 256, 512, 1024})) {
    SoftPrefetchConfig config = point.config;
    config.min_size_bytes = 2048;
    const double ratio = MeasureRelative(config, sizes, src, dst);
    std::printf("  %-14s time ratio %.4f (%+.2f%% speedup)\n",
                point.label.c_str(), ratio, 100.0 * (1.0 / ratio - 1.0));
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best = config;
    }
  }

  // 4. The chosen configuration, ready for the prefetch-site registry.
  std::printf(
      "\nselected config: distance=%uB degree=%uB min_size=%lluB "
      "(%+.2f%% vs baseline)\n",
      best.distance_bytes, best.degree_bytes,
      static_cast<unsigned long long>(best.min_size_bytes),
      100.0 * (1.0 / best_ratio - 1.0));
  if (best_ratio >= 1.0) {
    std::printf(
        "note: no sweep point beat the baseline on this host (hardware "
        "prefetchers\nare active and memory is unloaded) - the paper "
        "iterates with load tests\nbefore deploying (§4.2).\n");
  }
  return 0;
}
