// Fleet rollout (paper §6): run a loaded fleet before and after deploying
// Full Limoncello with identical seeds, and report the headline metrics:
// application throughput, memory latency percentiles, socket bandwidth,
// and saturated-socket fraction.
#include <cstdio>
#include <functional>
#include <vector>

#include "fleet/fleet_simulator.h"
#include "util/thread_pool.h"

using namespace limoncello;

int main() {
  FleetOptions options;
  options.num_machines = 100;
  options.ticks = 600;
  options.fill = 0.72;
  options.seed = 2024;
  options.diurnal_period_ns = 600LL * kNsPerSec;

  ControllerConfig controller;
  controller.upper_threshold = 0.80;  // the deployed 60/80 config
  controller.lower_threshold = 0.60;
  controller.sustain_duration_ns = 5 * kNsPerSec;

  // The two arms share no mutable state (identical seeds, independent
  // simulators), so they run concurrently; each arm's tick loop is itself
  // parallel (options.num_threads, LIMONCELLO_THREADS).
  std::printf(
      "running baseline and Limoncello (hard + soft) arms concurrently"
      "...\n\n");
  FleetMetrics before;
  FleetMetrics after;
  ParallelInvoke({[&] {
                    before = RunFleetArm(PlatformConfig::Platform1(),
                                         DeploymentMode::kBaseline,
                                         controller, options);
                  },
                  [&] {
                    after = RunFleetArm(PlatformConfig::Platform1(),
                                        DeploymentMode::kFullLimoncello,
                                        controller, options);
                  }});

  auto pct = [](double b, double a) { return 100.0 * (a / b - 1.0); };
  std::printf("%-34s %12s %12s %9s\n", "metric", "before", "after",
              "change");
  std::printf("%-34s %12.0f %12.0f %+8.2f%%\n", "application throughput (qps)",
              before.served_qps_sum / options.ticks,
              after.served_qps_sum / options.ticks,
              pct(before.served_qps_sum, after.served_qps_sum));
  std::printf("%-34s %12.1f %12.1f %+8.2f%%\n", "median memory latency (ns)",
              before.latency_ns.Percentile(50),
              after.latency_ns.Percentile(50),
              pct(before.latency_ns.Percentile(50),
                  after.latency_ns.Percentile(50)));
  std::printf("%-34s %12.1f %12.1f %+8.2f%%\n", "p99 memory latency (ns)",
              before.latency_ns.Percentile(99),
              after.latency_ns.Percentile(99),
              pct(before.latency_ns.Percentile(99),
                  after.latency_ns.Percentile(99)));
  std::printf("%-34s %12.1f %12.1f %+8.2f%%\n", "avg socket bandwidth (GB/s)",
              before.bandwidth_gbps.Mean(), after.bandwidth_gbps.Mean(),
              pct(before.bandwidth_gbps.Mean(),
                  after.bandwidth_gbps.Mean()));
  std::printf("%-34s %11.1f%% %11.1f%%\n", "saturated socket ticks",
              100.0 * before.SaturatedFraction(),
              100.0 * after.SaturatedFraction());
  std::printf("%-34s %12llu %12llu\n", "controller toggles",
              0ULL,
              static_cast<unsigned long long>(after.controller_toggles));
  std::printf(
      "\npaper: +10%% throughput at peak utilization, -13%% median / -10%% "
      "P99 memory\nlatency, -15%% average socket bandwidth, saturated "
      "sockets down ~8%%.\n");
  return 0;
}
