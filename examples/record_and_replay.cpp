// Trace record/replay: capture a workload's access stream to a file,
// reload it, and show that the simulator reproduces the original run
// bit-for-bit — the workflow for sharing reproducible experiments or
// feeding the simulator with externally collected traces.
#include <cstdio>

#include "sim/machine/socket.h"
#include "workloads/function_catalog.h"
#include "workloads/trace_io.h"

using namespace limoncello;

namespace {

SocketConfig DemoSocket() {
  SocketConfig config;
  config.num_cores = 1;
  config.memory.jitter_fraction = 0.0;
  return config;
}

struct RunStats {
  std::uint64_t instructions;
  std::uint64_t llc_misses;
  std::uint64_t dram_bytes;
};

RunStats Simulate(std::unique_ptr<AccessGenerator> workload,
                  std::size_t num_functions) {
  Socket socket(DemoSocket(), num_functions, Rng(7));
  socket.SetWorkload(0, std::move(workload));
  for (int epoch = 0; epoch < 20; ++epoch) socket.Step(100 * kNsPerUs);
  return {socket.counters().instructions,
          socket.counters().llc_demand_misses,
          socket.counters().DramTotalBytes()};
}

}  // namespace

int main() {
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  const std::string path = "/tmp/limoncello_demo.trace";

  // 1. Record 500k accesses of the fleet mix to a trace file.
  std::printf("recording fleet-mix trace...\n");
  TraceWriter writer;
  {
    auto generator = catalog.MakeFleetMix(Rng(42));
    writer.RecordAll(generator.get(), 500000);
  }
  if (!writer.WriteFile(path)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu records (%zu bytes) to %s\n", writer.size(),
              writer.buffer().size(), path.c_str());

  // 2. Reload it.
  TraceReader reader;
  if (!reader.ReadFile(path)) {
    std::fprintf(stderr, "parse error: %s\n", reader.error().c_str());
    return 1;
  }
  std::printf("reloaded %zu records\n", reader.refs().size());

  // 3. Simulate the live generator and the replayed trace side by side.
  const RunStats live = Simulate(catalog.MakeFleetMix(Rng(42)),
                                 catalog.size());
  const RunStats replay = Simulate(
      std::make_unique<TraceReplayGenerator>(reader.refs(), /*loop=*/true),
      catalog.size());

  std::printf("\n%-14s %16s %16s\n", "metric", "live", "replayed");
  std::printf("%-14s %16llu %16llu\n", "instructions",
              static_cast<unsigned long long>(live.instructions),
              static_cast<unsigned long long>(replay.instructions));
  std::printf("%-14s %16llu %16llu\n", "llc_misses",
              static_cast<unsigned long long>(live.llc_misses),
              static_cast<unsigned long long>(replay.llc_misses));
  std::printf("%-14s %16llu %16llu\n", "dram_bytes",
              static_cast<unsigned long long>(live.dram_bytes),
              static_cast<unsigned long long>(replay.dram_bytes));

  const bool identical = live.instructions == replay.instructions &&
                         live.llc_misses == replay.llc_misses &&
                         live.dram_bytes == replay.dram_bytes;
  std::printf("\nruns %s\n",
              identical ? "IDENTICAL: the trace fully reproduces the run"
                        : "DIFFER (trace shorter than the simulated span?)");
  std::remove(path.c_str());
  return identical ? 0 : 1;
}
