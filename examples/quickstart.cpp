// Quickstart: run the full Limoncello control loop on one simulated
// socket.
//
//   telemetry (1 Hz bandwidth) -> hysteresis controller -> MSR writes ->
//   prefetch engines toggle -> latency and traffic respond.
//
// The socket starts under heavy memory load (prefetchers get disabled),
// then goes quiet (prefetchers come back).
#include <cstdio>
#include <memory>

#include "core/daemon.h"
#include "telemetry/telemetry.h"
#include "workloads/generators.h"

using namespace limoncello;

int main() {
  // 1. A simulated 4-core socket with a 6 GB/s memory system.
  SocketConfig socket_config;
  socket_config.num_cores = 4;
  socket_config.memory.peak_gbps = 6.0;
  Socket socket(socket_config, /*num_functions=*/4, Rng(1));

  // 2. The Limoncello stack: telemetry, controller, MSR actuator.
  //    (One controller tick per 100 us socket epoch; the controller only
  //    cares about tick counts, not absolute time.)
  ControllerConfig controller_config;
  controller_config.upper_threshold = 0.80;
  controller_config.lower_threshold = 0.60;
  controller_config.tick_period_ns = 100 * kNsPerUs;
  controller_config.sustain_duration_ns = 5 * 100 * kNsPerUs;

  PrefetchControl control(&socket.msr_device(),
                          PlatformMsrLayout::kIntelStyle, 0,
                          socket_config.num_cores);
  MsrPrefetchActuator actuator(&control, socket_config.num_cores);
  SocketUtilizationSource telemetry(&socket);
  LimoncelloDaemon daemon(controller_config, &telemetry, &actuator);

  // 3. Heavy phase: every core hammers memory with random accesses.
  for (int core = 0; core < socket_config.num_cores; ++core) {
    RandomAccessGenerator::Options o;
    o.working_set_bytes = 256 * kMiB;
    o.gap_instructions_mean = 2.0;
    o.function = 0;
    socket.SetWorkload(core, std::make_unique<RandomAccessGenerator>(
                                 o, Rng(10 + core)));
  }

  std::printf("phase 1: heavy load\n");
  for (int tick = 0; tick < 40; ++tick) {
    socket.Step(100 * kNsPerUs);
    const auto record = daemon.RunTick(socket.now());
    if (record.action != ControllerAction::kNone || tick % 10 == 0) {
      std::printf(
          "  t=%2d  util=%5.1f%%  latency=%6.1f ns  prefetchers=%s%s\n",
          tick, 100.0 * record.utilization,
          socket.memory().CurrentLatencyNs(),
          socket.AllPrefetchersEnabled() ? "on " : "off",
          record.action == ControllerAction::kDisablePrefetchers
              ? "   <-- DISABLED (sustained high bandwidth)"
              : "");
    }
  }

  // 4. Quiet phase: the load disappears.
  std::printf("phase 2: idle\n");
  for (int core = 0; core < socket_config.num_cores; ++core) {
    socket.SetWorkload(core, nullptr);
  }
  for (int tick = 40; tick < 80; ++tick) {
    socket.Step(100 * kNsPerUs);
    const auto record = daemon.RunTick(socket.now());
    if (record.action != ControllerAction::kNone || tick % 10 == 0) {
      std::printf(
          "  t=%2d  util=%5.1f%%  latency=%6.1f ns  prefetchers=%s%s\n",
          tick, 100.0 * record.utilization,
          socket.memory().CurrentLatencyNs(),
          socket.AllPrefetchersEnabled() ? "on " : "off",
          record.action == ControllerAction::kEnablePrefetchers
              ? "   <-- RE-ENABLED (sustained low bandwidth)"
              : "");
    }
  }

  const auto& stats = daemon.stats();
  std::printf(
      "\ndone: %llu ticks, %llu disable(s), %llu enable(s), "
      "prefetchers now %s\n",
      static_cast<unsigned long long>(stats.ticks),
      static_cast<unsigned long long>(stats.disables),
      static_cast<unsigned long long>(stats.enables),
      socket.AllPrefetchersEnabled() ? "on" : "off");
  return 0;
}
