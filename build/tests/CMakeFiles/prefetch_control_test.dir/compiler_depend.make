# Empty compiler generated dependencies file for prefetch_control_test.
# This may be replaced when dependencies are built.
