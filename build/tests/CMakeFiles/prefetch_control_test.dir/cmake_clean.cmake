file(REMOVE_RECURSE
  "CMakeFiles/prefetch_control_test.dir/msr/prefetch_control_test.cc.o"
  "CMakeFiles/prefetch_control_test.dir/msr/prefetch_control_test.cc.o.d"
  "prefetch_control_test"
  "prefetch_control_test.pdb"
  "prefetch_control_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_control_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
