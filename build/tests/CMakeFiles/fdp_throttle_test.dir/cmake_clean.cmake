file(REMOVE_RECURSE
  "CMakeFiles/fdp_throttle_test.dir/sim/fdp_throttle_test.cc.o"
  "CMakeFiles/fdp_throttle_test.dir/sim/fdp_throttle_test.cc.o.d"
  "fdp_throttle_test"
  "fdp_throttle_test.pdb"
  "fdp_throttle_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdp_throttle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
