# Empty dependencies file for fdp_throttle_test.
# This may be replaced when dependencies are built.
