# Empty compiler generated dependencies file for perf_csv_source_test.
# This may be replaced when dependencies are built.
