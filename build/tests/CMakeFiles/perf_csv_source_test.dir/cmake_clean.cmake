file(REMOVE_RECURSE
  "CMakeFiles/perf_csv_source_test.dir/core/perf_csv_source_test.cc.o"
  "CMakeFiles/perf_csv_source_test.dir/core/perf_csv_source_test.cc.o.d"
  "perf_csv_source_test"
  "perf_csv_source_test.pdb"
  "perf_csv_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_csv_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
