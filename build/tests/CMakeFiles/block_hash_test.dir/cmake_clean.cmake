file(REMOVE_RECURSE
  "CMakeFiles/block_hash_test.dir/tax/block_hash_test.cc.o"
  "CMakeFiles/block_hash_test.dir/tax/block_hash_test.cc.o.d"
  "block_hash_test"
  "block_hash_test.pdb"
  "block_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
