# Empty compiler generated dependencies file for block_hash_test.
# This may be replaced when dependencies are built.
