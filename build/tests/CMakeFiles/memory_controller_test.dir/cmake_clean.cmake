file(REMOVE_RECURSE
  "CMakeFiles/memory_controller_test.dir/sim/memory_controller_test.cc.o"
  "CMakeFiles/memory_controller_test.dir/sim/memory_controller_test.cc.o.d"
  "memory_controller_test"
  "memory_controller_test.pdb"
  "memory_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
