file(REMOVE_RECURSE
  "CMakeFiles/function_catalog_test.dir/workloads/function_catalog_test.cc.o"
  "CMakeFiles/function_catalog_test.dir/workloads/function_catalog_test.cc.o.d"
  "function_catalog_test"
  "function_catalog_test.pdb"
  "function_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
