# Empty dependencies file for function_catalog_test.
# This may be replaced when dependencies are built.
