file(REMOVE_RECURSE
  "CMakeFiles/tiered_policy_test.dir/core/tiered_policy_test.cc.o"
  "CMakeFiles/tiered_policy_test.dir/core/tiered_policy_test.cc.o.d"
  "tiered_policy_test"
  "tiered_policy_test.pdb"
  "tiered_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiered_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
