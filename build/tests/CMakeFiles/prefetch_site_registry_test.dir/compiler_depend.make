# Empty compiler generated dependencies file for prefetch_site_registry_test.
# This may be replaced when dependencies are built.
