file(REMOVE_RECURSE
  "CMakeFiles/prefetch_site_registry_test.dir/softpf/prefetch_site_registry_test.cc.o"
  "CMakeFiles/prefetch_site_registry_test.dir/softpf/prefetch_site_registry_test.cc.o.d"
  "prefetch_site_registry_test"
  "prefetch_site_registry_test.pdb"
  "prefetch_site_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_site_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
