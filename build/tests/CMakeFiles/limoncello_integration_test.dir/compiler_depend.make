# Empty compiler generated dependencies file for limoncello_integration_test.
# This may be replaced when dependencies are built.
