file(REMOVE_RECURSE
  "CMakeFiles/limoncello_integration_test.dir/integration/limoncello_integration_test.cc.o"
  "CMakeFiles/limoncello_integration_test.dir/integration/limoncello_integration_test.cc.o.d"
  "limoncello_integration_test"
  "limoncello_integration_test.pdb"
  "limoncello_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
