# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for soft_prefetch_config_test.
