# Empty dependencies file for soft_prefetch_config_test.
# This may be replaced when dependencies are built.
