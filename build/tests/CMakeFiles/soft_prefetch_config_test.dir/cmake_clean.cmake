file(REMOVE_RECURSE
  "CMakeFiles/soft_prefetch_config_test.dir/softpf/soft_prefetch_config_test.cc.o"
  "CMakeFiles/soft_prefetch_config_test.dir/softpf/soft_prefetch_config_test.cc.o.d"
  "soft_prefetch_config_test"
  "soft_prefetch_config_test.pdb"
  "soft_prefetch_config_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/soft_prefetch_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
