# Empty dependencies file for best_offset_test.
# This may be replaced when dependencies are built.
