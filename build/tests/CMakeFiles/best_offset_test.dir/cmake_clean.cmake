file(REMOVE_RECURSE
  "CMakeFiles/best_offset_test.dir/sim/best_offset_test.cc.o"
  "CMakeFiles/best_offset_test.dir/sim/best_offset_test.cc.o.d"
  "best_offset_test"
  "best_offset_test.pdb"
  "best_offset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/best_offset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
