# Empty compiler generated dependencies file for sampling_profiler_test.
# This may be replaced when dependencies are built.
