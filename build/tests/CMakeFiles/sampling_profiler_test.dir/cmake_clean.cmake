file(REMOVE_RECURSE
  "CMakeFiles/sampling_profiler_test.dir/profiling/sampling_profiler_test.cc.o"
  "CMakeFiles/sampling_profiler_test.dir/profiling/sampling_profiler_test.cc.o.d"
  "sampling_profiler_test"
  "sampling_profiler_test.pdb"
  "sampling_profiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_profiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
