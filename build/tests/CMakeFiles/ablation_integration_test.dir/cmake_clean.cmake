file(REMOVE_RECURSE
  "CMakeFiles/ablation_integration_test.dir/integration/ablation_integration_test.cc.o"
  "CMakeFiles/ablation_integration_test.dir/integration/ablation_integration_test.cc.o.d"
  "ablation_integration_test"
  "ablation_integration_test.pdb"
  "ablation_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
