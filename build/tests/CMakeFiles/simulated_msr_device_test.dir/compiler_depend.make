# Empty compiler generated dependencies file for simulated_msr_device_test.
# This may be replaced when dependencies are built.
