file(REMOVE_RECURSE
  "CMakeFiles/simulated_msr_device_test.dir/msr/simulated_msr_device_test.cc.o"
  "CMakeFiles/simulated_msr_device_test.dir/msr/simulated_msr_device_test.cc.o.d"
  "simulated_msr_device_test"
  "simulated_msr_device_test.pdb"
  "simulated_msr_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulated_msr_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
