
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/cache_test.cc" "tests/CMakeFiles/cache_test.dir/sim/cache_test.cc.o" "gcc" "tests/CMakeFiles/cache_test.dir/sim/cache_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fleet/CMakeFiles/limoncello_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/profiling/CMakeFiles/limoncello_profiling.dir/DependInfo.cmake"
  "/root/repo/build/src/tax/CMakeFiles/limoncello_tax.dir/DependInfo.cmake"
  "/root/repo/build/src/softpf/CMakeFiles/limoncello_softpf.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/limoncello_core.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/limoncello_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/limoncello_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/limoncello_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/limoncello_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/limoncello_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
