# Empty dependencies file for machine_model_test.
# This may be replaced when dependencies are built.
