# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for machine_model_test.
