file(REMOVE_RECURSE
  "CMakeFiles/wire_serializer_test.dir/tax/wire_serializer_test.cc.o"
  "CMakeFiles/wire_serializer_test.dir/tax/wire_serializer_test.cc.o.d"
  "wire_serializer_test"
  "wire_serializer_test.pdb"
  "wire_serializer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_serializer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
