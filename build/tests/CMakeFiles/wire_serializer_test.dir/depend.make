# Empty dependencies file for wire_serializer_test.
# This may be replaced when dependencies are built.
