# Empty dependencies file for prefetching_memcpy_test.
# This may be replaced when dependencies are built.
