file(REMOVE_RECURSE
  "CMakeFiles/prefetching_memcpy_test.dir/tax/prefetching_memcpy_test.cc.o"
  "CMakeFiles/prefetching_memcpy_test.dir/tax/prefetching_memcpy_test.cc.o.d"
  "prefetching_memcpy_test"
  "prefetching_memcpy_test.pdb"
  "prefetching_memcpy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetching_memcpy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
