file(REMOVE_RECURSE
  "CMakeFiles/socket_invariants_test.dir/sim/socket_invariants_test.cc.o"
  "CMakeFiles/socket_invariants_test.dir/sim/socket_invariants_test.cc.o.d"
  "socket_invariants_test"
  "socket_invariants_test.pdb"
  "socket_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
