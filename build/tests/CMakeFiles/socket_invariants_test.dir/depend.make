# Empty dependencies file for socket_invariants_test.
# This may be replaced when dependencies are built.
