file(REMOVE_RECURSE
  "CMakeFiles/latency_curve_test.dir/sim/latency_curve_test.cc.o"
  "CMakeFiles/latency_curve_test.dir/sim/latency_curve_test.cc.o.d"
  "latency_curve_test"
  "latency_curve_test.pdb"
  "latency_curve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_curve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
