# Empty dependencies file for hysteresis_controller_test.
# This may be replaced when dependencies are built.
