file(REMOVE_RECURSE
  "CMakeFiles/hysteresis_controller_test.dir/core/hysteresis_controller_test.cc.o"
  "CMakeFiles/hysteresis_controller_test.dir/core/hysteresis_controller_test.cc.o.d"
  "hysteresis_controller_test"
  "hysteresis_controller_test.pdb"
  "hysteresis_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hysteresis_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
