# Empty dependencies file for block_compressor_test.
# This may be replaced when dependencies are built.
