file(REMOVE_RECURSE
  "CMakeFiles/block_compressor_test.dir/tax/block_compressor_test.cc.o"
  "CMakeFiles/block_compressor_test.dir/tax/block_compressor_test.cc.o.d"
  "block_compressor_test"
  "block_compressor_test.pdb"
  "block_compressor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_compressor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
