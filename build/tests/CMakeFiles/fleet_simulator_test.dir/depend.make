# Empty dependencies file for fleet_simulator_test.
# This may be replaced when dependencies are built.
