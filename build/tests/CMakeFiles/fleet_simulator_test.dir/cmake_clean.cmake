file(REMOVE_RECURSE
  "CMakeFiles/fleet_simulator_test.dir/fleet/fleet_simulator_test.cc.o"
  "CMakeFiles/fleet_simulator_test.dir/fleet/fleet_simulator_test.cc.o.d"
  "fleet_simulator_test"
  "fleet_simulator_test.pdb"
  "fleet_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
