file(REMOVE_RECURSE
  "CMakeFiles/file_utilization_source_test.dir/core/file_utilization_source_test.cc.o"
  "CMakeFiles/file_utilization_source_test.dir/core/file_utilization_source_test.cc.o.d"
  "file_utilization_source_test"
  "file_utilization_source_test.pdb"
  "file_utilization_source_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_utilization_source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
