file(REMOVE_RECURSE
  "CMakeFiles/prefetcher_test.dir/sim/prefetcher_test.cc.o"
  "CMakeFiles/prefetcher_test.dir/sim/prefetcher_test.cc.o.d"
  "prefetcher_test"
  "prefetcher_test.pdb"
  "prefetcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
