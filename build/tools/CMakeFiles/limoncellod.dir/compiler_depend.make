# Empty compiler generated dependencies file for limoncellod.
# This may be replaced when dependencies are built.
