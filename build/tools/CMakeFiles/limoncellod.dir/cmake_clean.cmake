file(REMOVE_RECURSE
  "CMakeFiles/limoncellod.dir/limoncellod.cc.o"
  "CMakeFiles/limoncellod.dir/limoncellod.cc.o.d"
  "limoncellod"
  "limoncellod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncellod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
