# Empty dependencies file for fig18_bw_reduction.
# This may be replaced when dependencies are built.
