file(REMOVE_RECURSE
  "CMakeFiles/fig18_bw_reduction.dir/fig18_bw_reduction.cc.o"
  "CMakeFiles/fig18_bw_reduction.dir/fig18_bw_reduction.cc.o.d"
  "fig18_bw_reduction"
  "fig18_bw_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_bw_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
