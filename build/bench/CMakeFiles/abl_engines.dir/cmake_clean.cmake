file(REMOVE_RECURSE
  "CMakeFiles/abl_engines.dir/abl_engines.cc.o"
  "CMakeFiles/abl_engines.dir/abl_engines.cc.o.d"
  "abl_engines"
  "abl_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
