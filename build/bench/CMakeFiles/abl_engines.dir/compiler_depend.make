# Empty compiler generated dependencies file for abl_engines.
# This may be replaced when dependencies are built.
