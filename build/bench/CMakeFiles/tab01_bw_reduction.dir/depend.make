# Empty dependencies file for tab01_bw_reduction.
# This may be replaced when dependencies are built.
