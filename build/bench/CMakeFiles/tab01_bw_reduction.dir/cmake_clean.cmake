file(REMOVE_RECURSE
  "CMakeFiles/tab01_bw_reduction.dir/tab01_bw_reduction.cc.o"
  "CMakeFiles/tab01_bw_reduction.dir/tab01_bw_reduction.cc.o.d"
  "tab01_bw_reduction"
  "tab01_bw_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_bw_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
