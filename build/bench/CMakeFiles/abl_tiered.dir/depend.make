# Empty dependencies file for abl_tiered.
# This may be replaced when dependencies are built.
