file(REMOVE_RECURSE
  "CMakeFiles/abl_tiered.dir/abl_tiered.cc.o"
  "CMakeFiles/abl_tiered.dir/abl_tiered.cc.o.d"
  "abl_tiered"
  "abl_tiered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tiered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
