# Empty compiler generated dependencies file for fig02_hw_trends.
# This may be replaced when dependencies are built.
