file(REMOVE_RECURSE
  "CMakeFiles/fig02_hw_trends.dir/fig02_hw_trends.cc.o"
  "CMakeFiles/fig02_hw_trends.dir/fig02_hw_trends.cc.o.d"
  "fig02_hw_trends"
  "fig02_hw_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_hw_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
