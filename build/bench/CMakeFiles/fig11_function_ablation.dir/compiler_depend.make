# Empty compiler generated dependencies file for fig11_function_ablation.
# This may be replaced when dependencies are built.
