file(REMOVE_RECURSE
  "CMakeFiles/fig04_bw_vs_cpu.dir/fig04_bw_vs_cpu.cc.o"
  "CMakeFiles/fig04_bw_vs_cpu.dir/fig04_bw_vs_cpu.cc.o.d"
  "fig04_bw_vs_cpu"
  "fig04_bw_vs_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_bw_vs_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
