# Empty compiler generated dependencies file for fig04_bw_vs_cpu.
# This may be replaced when dependencies are built.
