# Empty dependencies file for fig14_memcpy_sizes.
# This may be replaced when dependencies are built.
