file(REMOVE_RECURSE
  "CMakeFiles/fig15a_distance_sweep.dir/fig15a_distance_sweep.cc.o"
  "CMakeFiles/fig15a_distance_sweep.dir/fig15a_distance_sweep.cc.o.d"
  "fig15a_distance_sweep"
  "fig15a_distance_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15a_distance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
