# Empty dependencies file for fig15a_distance_sweep.
# This may be replaced when dependencies are built.
