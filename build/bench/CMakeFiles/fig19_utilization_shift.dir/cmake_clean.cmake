file(REMOVE_RECURSE
  "CMakeFiles/fig19_utilization_shift.dir/fig19_utilization_shift.cc.o"
  "CMakeFiles/fig19_utilization_shift.dir/fig19_utilization_shift.cc.o.d"
  "fig19_utilization_shift"
  "fig19_utilization_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_utilization_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
