# Empty compiler generated dependencies file for fig19_utilization_shift.
# This may be replaced when dependencies are built.
