# Empty dependencies file for abl_hysteresis.
# This may be replaced when dependencies are built.
