file(REMOVE_RECURSE
  "CMakeFiles/abl_hysteresis.dir/abl_hysteresis.cc.o"
  "CMakeFiles/abl_hysteresis.dir/abl_hysteresis.cc.o.d"
  "abl_hysteresis"
  "abl_hysteresis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hysteresis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
