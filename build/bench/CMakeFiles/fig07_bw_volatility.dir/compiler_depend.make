# Empty compiler generated dependencies file for fig07_bw_volatility.
# This may be replaced when dependencies are built.
