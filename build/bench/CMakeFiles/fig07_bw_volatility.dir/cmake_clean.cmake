file(REMOVE_RECURSE
  "CMakeFiles/fig07_bw_volatility.dir/fig07_bw_volatility.cc.o"
  "CMakeFiles/fig07_bw_volatility.dir/fig07_bw_volatility.cc.o.d"
  "fig07_bw_volatility"
  "fig07_bw_volatility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_bw_volatility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
