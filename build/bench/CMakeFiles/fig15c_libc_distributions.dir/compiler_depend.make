# Empty compiler generated dependencies file for fig15c_libc_distributions.
# This may be replaced when dependencies are built.
