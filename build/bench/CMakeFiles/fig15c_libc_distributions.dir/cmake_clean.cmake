file(REMOVE_RECURSE
  "CMakeFiles/fig15c_libc_distributions.dir/fig15c_libc_distributions.cc.o"
  "CMakeFiles/fig15c_libc_distributions.dir/fig15c_libc_distributions.cc.o.d"
  "fig15c_libc_distributions"
  "fig15c_libc_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15c_libc_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
