# Empty dependencies file for fig05_spec_bw.
# This may be replaced when dependencies are built.
