file(REMOVE_RECURSE
  "CMakeFiles/fig05_spec_bw.dir/fig05_spec_bw.cc.o"
  "CMakeFiles/fig05_spec_bw.dir/fig05_spec_bw.cc.o.d"
  "fig05_spec_bw"
  "fig05_spec_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_spec_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
