file(REMOVE_RECURSE
  "CMakeFiles/fig12_category_ablation.dir/fig12_category_ablation.cc.o"
  "CMakeFiles/fig12_category_ablation.dir/fig12_category_ablation.cc.o.d"
  "fig12_category_ablation"
  "fig12_category_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_category_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
