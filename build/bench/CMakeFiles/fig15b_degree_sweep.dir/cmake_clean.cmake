file(REMOVE_RECURSE
  "CMakeFiles/fig15b_degree_sweep.dir/fig15b_degree_sweep.cc.o"
  "CMakeFiles/fig15b_degree_sweep.dir/fig15b_degree_sweep.cc.o.d"
  "fig15b_degree_sweep"
  "fig15b_degree_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15b_degree_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
