# Empty dependencies file for fig15b_degree_sweep.
# This may be replaced when dependencies are built.
