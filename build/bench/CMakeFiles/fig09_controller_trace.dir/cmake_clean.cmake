file(REMOVE_RECURSE
  "CMakeFiles/fig09_controller_trace.dir/fig09_controller_trace.cc.o"
  "CMakeFiles/fig09_controller_trace.dir/fig09_controller_trace.cc.o.d"
  "fig09_controller_trace"
  "fig09_controller_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_controller_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
