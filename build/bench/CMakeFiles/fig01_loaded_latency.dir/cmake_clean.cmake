file(REMOVE_RECURSE
  "CMakeFiles/fig01_loaded_latency.dir/fig01_loaded_latency.cc.o"
  "CMakeFiles/fig01_loaded_latency.dir/fig01_loaded_latency.cc.o.d"
  "fig01_loaded_latency"
  "fig01_loaded_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_loaded_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
