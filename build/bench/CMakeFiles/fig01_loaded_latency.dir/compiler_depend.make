# Empty compiler generated dependencies file for fig01_loaded_latency.
# This may be replaced when dependencies are built.
