file(REMOVE_RECURSE
  "CMakeFiles/microbench_tax.dir/microbench_tax.cc.o"
  "CMakeFiles/microbench_tax.dir/microbench_tax.cc.o.d"
  "microbench_tax"
  "microbench_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
