
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/microbench_tax.cc" "bench/CMakeFiles/microbench_tax.dir/microbench_tax.cc.o" "gcc" "bench/CMakeFiles/microbench_tax.dir/microbench_tax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tax/CMakeFiles/limoncello_tax.dir/DependInfo.cmake"
  "/root/repo/build/src/softpf/CMakeFiles/limoncello_softpf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
