# Empty compiler generated dependencies file for microbench_tax.
# This may be replaced when dependencies are built.
