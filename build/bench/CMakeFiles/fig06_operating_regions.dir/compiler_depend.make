# Empty compiler generated dependencies file for fig06_operating_regions.
# This may be replaced when dependencies are built.
