file(REMOVE_RECURSE
  "CMakeFiles/fig06_operating_regions.dir/fig06_operating_regions.cc.o"
  "CMakeFiles/fig06_operating_regions.dir/fig06_operating_regions.cc.o.d"
  "fig06_operating_regions"
  "fig06_operating_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_operating_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
