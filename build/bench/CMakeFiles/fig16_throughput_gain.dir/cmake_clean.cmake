file(REMOVE_RECURSE
  "CMakeFiles/fig16_throughput_gain.dir/fig16_throughput_gain.cc.o"
  "CMakeFiles/fig16_throughput_gain.dir/fig16_throughput_gain.cc.o.d"
  "fig16_throughput_gain"
  "fig16_throughput_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_throughput_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
