# Empty compiler generated dependencies file for fig16_throughput_gain.
# This may be replaced when dependencies are built.
