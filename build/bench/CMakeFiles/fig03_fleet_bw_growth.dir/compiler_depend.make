# Empty compiler generated dependencies file for fig03_fleet_bw_growth.
# This may be replaced when dependencies are built.
