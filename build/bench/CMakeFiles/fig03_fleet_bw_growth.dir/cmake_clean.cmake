file(REMOVE_RECURSE
  "CMakeFiles/fig03_fleet_bw_growth.dir/fig03_fleet_bw_growth.cc.o"
  "CMakeFiles/fig03_fleet_bw_growth.dir/fig03_fleet_bw_growth.cc.o.d"
  "fig03_fleet_bw_growth"
  "fig03_fleet_bw_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_fleet_bw_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
