# Empty dependencies file for baseline_fdp.
# This may be replaced when dependencies are built.
