file(REMOVE_RECURSE
  "CMakeFiles/baseline_fdp.dir/baseline_fdp.cc.o"
  "CMakeFiles/baseline_fdp.dir/baseline_fdp.cc.o.d"
  "baseline_fdp"
  "baseline_fdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_fdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
