# Empty compiler generated dependencies file for fig17_latency_reduction.
# This may be replaced when dependencies are built.
