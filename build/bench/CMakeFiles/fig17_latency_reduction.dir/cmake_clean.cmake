file(REMOVE_RECURSE
  "CMakeFiles/fig17_latency_reduction.dir/fig17_latency_reduction.cc.o"
  "CMakeFiles/fig17_latency_reduction.dir/fig17_latency_reduction.cc.o.d"
  "fig17_latency_reduction"
  "fig17_latency_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_latency_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
