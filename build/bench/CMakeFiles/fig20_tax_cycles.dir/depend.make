# Empty dependencies file for fig20_tax_cycles.
# This may be replaced when dependencies are built.
