file(REMOVE_RECURSE
  "CMakeFiles/fig20_tax_cycles.dir/fig20_tax_cycles.cc.o"
  "CMakeFiles/fig20_tax_cycles.dir/fig20_tax_cycles.cc.o.d"
  "fig20_tax_cycles"
  "fig20_tax_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_tax_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
