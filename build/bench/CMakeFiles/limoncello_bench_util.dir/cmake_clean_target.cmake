file(REMOVE_RECURSE
  "liblimoncello_bench_util.a"
)
