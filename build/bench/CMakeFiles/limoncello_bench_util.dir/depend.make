# Empty dependencies file for limoncello_bench_util.
# This may be replaced when dependencies are built.
