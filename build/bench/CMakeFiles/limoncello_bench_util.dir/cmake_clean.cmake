file(REMOVE_RECURSE
  "CMakeFiles/limoncello_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/limoncello_bench_util.dir/bench_util.cc.o.d"
  "liblimoncello_bench_util.a"
  "liblimoncello_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
