# Empty compiler generated dependencies file for record_and_replay.
# This may be replaced when dependencies are built.
