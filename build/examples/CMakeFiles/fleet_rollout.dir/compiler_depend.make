# Empty compiler generated dependencies file for fleet_rollout.
# This may be replaced when dependencies are built.
