file(REMOVE_RECURSE
  "CMakeFiles/tune_memcpy_prefetch.dir/tune_memcpy_prefetch.cpp.o"
  "CMakeFiles/tune_memcpy_prefetch.dir/tune_memcpy_prefetch.cpp.o.d"
  "tune_memcpy_prefetch"
  "tune_memcpy_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_memcpy_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
