# Empty dependencies file for tune_memcpy_prefetch.
# This may be replaced when dependencies are built.
