# Empty compiler generated dependencies file for limoncello_stats.
# This may be replaced when dependencies are built.
