file(REMOVE_RECURSE
  "liblimoncello_stats.a"
)
