file(REMOVE_RECURSE
  "CMakeFiles/limoncello_stats.dir/histogram.cc.o"
  "CMakeFiles/limoncello_stats.dir/histogram.cc.o.d"
  "CMakeFiles/limoncello_stats.dir/time_series.cc.o"
  "CMakeFiles/limoncello_stats.dir/time_series.cc.o.d"
  "liblimoncello_stats.a"
  "liblimoncello_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
