file(REMOVE_RECURSE
  "CMakeFiles/limoncello_profiling.dir/profile.cc.o"
  "CMakeFiles/limoncello_profiling.dir/profile.cc.o.d"
  "CMakeFiles/limoncello_profiling.dir/sampling_profiler.cc.o"
  "CMakeFiles/limoncello_profiling.dir/sampling_profiler.cc.o.d"
  "liblimoncello_profiling.a"
  "liblimoncello_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
