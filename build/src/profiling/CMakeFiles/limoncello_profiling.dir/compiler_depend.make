# Empty compiler generated dependencies file for limoncello_profiling.
# This may be replaced when dependencies are built.
