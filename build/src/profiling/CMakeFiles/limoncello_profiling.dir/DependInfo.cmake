
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profiling/profile.cc" "src/profiling/CMakeFiles/limoncello_profiling.dir/profile.cc.o" "gcc" "src/profiling/CMakeFiles/limoncello_profiling.dir/profile.cc.o.d"
  "/root/repo/src/profiling/sampling_profiler.cc" "src/profiling/CMakeFiles/limoncello_profiling.dir/sampling_profiler.cc.o" "gcc" "src/profiling/CMakeFiles/limoncello_profiling.dir/sampling_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/limoncello_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/limoncello_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/limoncello_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
