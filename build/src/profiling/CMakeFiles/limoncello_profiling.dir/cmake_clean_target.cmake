file(REMOVE_RECURSE
  "liblimoncello_profiling.a"
)
