file(REMOVE_RECURSE
  "CMakeFiles/limoncello_telemetry.dir/telemetry.cc.o"
  "CMakeFiles/limoncello_telemetry.dir/telemetry.cc.o.d"
  "liblimoncello_telemetry.a"
  "liblimoncello_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
