# Empty dependencies file for limoncello_telemetry.
# This may be replaced when dependencies are built.
