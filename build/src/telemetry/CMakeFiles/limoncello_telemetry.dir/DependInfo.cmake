
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/telemetry.cc" "src/telemetry/CMakeFiles/limoncello_telemetry.dir/telemetry.cc.o" "gcc" "src/telemetry/CMakeFiles/limoncello_telemetry.dir/telemetry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/limoncello_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/limoncello_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/limoncello_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
