file(REMOVE_RECURSE
  "liblimoncello_telemetry.a"
)
