# Empty compiler generated dependencies file for limoncello_core.
# This may be replaced when dependencies are built.
