file(REMOVE_RECURSE
  "CMakeFiles/limoncello_core.dir/actuator.cc.o"
  "CMakeFiles/limoncello_core.dir/actuator.cc.o.d"
  "CMakeFiles/limoncello_core.dir/daemon.cc.o"
  "CMakeFiles/limoncello_core.dir/daemon.cc.o.d"
  "CMakeFiles/limoncello_core.dir/file_utilization_source.cc.o"
  "CMakeFiles/limoncello_core.dir/file_utilization_source.cc.o.d"
  "CMakeFiles/limoncello_core.dir/hysteresis_controller.cc.o"
  "CMakeFiles/limoncello_core.dir/hysteresis_controller.cc.o.d"
  "CMakeFiles/limoncello_core.dir/perf_csv_source.cc.o"
  "CMakeFiles/limoncello_core.dir/perf_csv_source.cc.o.d"
  "CMakeFiles/limoncello_core.dir/tiered_policy.cc.o"
  "CMakeFiles/limoncello_core.dir/tiered_policy.cc.o.d"
  "liblimoncello_core.a"
  "liblimoncello_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
