
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/actuator.cc" "src/core/CMakeFiles/limoncello_core.dir/actuator.cc.o" "gcc" "src/core/CMakeFiles/limoncello_core.dir/actuator.cc.o.d"
  "/root/repo/src/core/daemon.cc" "src/core/CMakeFiles/limoncello_core.dir/daemon.cc.o" "gcc" "src/core/CMakeFiles/limoncello_core.dir/daemon.cc.o.d"
  "/root/repo/src/core/file_utilization_source.cc" "src/core/CMakeFiles/limoncello_core.dir/file_utilization_source.cc.o" "gcc" "src/core/CMakeFiles/limoncello_core.dir/file_utilization_source.cc.o.d"
  "/root/repo/src/core/hysteresis_controller.cc" "src/core/CMakeFiles/limoncello_core.dir/hysteresis_controller.cc.o" "gcc" "src/core/CMakeFiles/limoncello_core.dir/hysteresis_controller.cc.o.d"
  "/root/repo/src/core/perf_csv_source.cc" "src/core/CMakeFiles/limoncello_core.dir/perf_csv_source.cc.o" "gcc" "src/core/CMakeFiles/limoncello_core.dir/perf_csv_source.cc.o.d"
  "/root/repo/src/core/tiered_policy.cc" "src/core/CMakeFiles/limoncello_core.dir/tiered_policy.cc.o" "gcc" "src/core/CMakeFiles/limoncello_core.dir/tiered_policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msr/CMakeFiles/limoncello_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/limoncello_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/limoncello_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/limoncello_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/limoncello_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
