file(REMOVE_RECURSE
  "liblimoncello_core.a"
)
