# Empty compiler generated dependencies file for limoncello_fleet.
# This may be replaced when dependencies are built.
