file(REMOVE_RECURSE
  "CMakeFiles/limoncello_fleet.dir/fleet_simulator.cc.o"
  "CMakeFiles/limoncello_fleet.dir/fleet_simulator.cc.o.d"
  "CMakeFiles/limoncello_fleet.dir/machine_model.cc.o"
  "CMakeFiles/limoncello_fleet.dir/machine_model.cc.o.d"
  "CMakeFiles/limoncello_fleet.dir/platform.cc.o"
  "CMakeFiles/limoncello_fleet.dir/platform.cc.o.d"
  "CMakeFiles/limoncello_fleet.dir/scheduler.cc.o"
  "CMakeFiles/limoncello_fleet.dir/scheduler.cc.o.d"
  "CMakeFiles/limoncello_fleet.dir/service.cc.o"
  "CMakeFiles/limoncello_fleet.dir/service.cc.o.d"
  "CMakeFiles/limoncello_fleet.dir/threshold_tuner.cc.o"
  "CMakeFiles/limoncello_fleet.dir/threshold_tuner.cc.o.d"
  "liblimoncello_fleet.a"
  "liblimoncello_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
