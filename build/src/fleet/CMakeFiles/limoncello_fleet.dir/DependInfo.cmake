
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fleet/fleet_simulator.cc" "src/fleet/CMakeFiles/limoncello_fleet.dir/fleet_simulator.cc.o" "gcc" "src/fleet/CMakeFiles/limoncello_fleet.dir/fleet_simulator.cc.o.d"
  "/root/repo/src/fleet/machine_model.cc" "src/fleet/CMakeFiles/limoncello_fleet.dir/machine_model.cc.o" "gcc" "src/fleet/CMakeFiles/limoncello_fleet.dir/machine_model.cc.o.d"
  "/root/repo/src/fleet/platform.cc" "src/fleet/CMakeFiles/limoncello_fleet.dir/platform.cc.o" "gcc" "src/fleet/CMakeFiles/limoncello_fleet.dir/platform.cc.o.d"
  "/root/repo/src/fleet/scheduler.cc" "src/fleet/CMakeFiles/limoncello_fleet.dir/scheduler.cc.o" "gcc" "src/fleet/CMakeFiles/limoncello_fleet.dir/scheduler.cc.o.d"
  "/root/repo/src/fleet/service.cc" "src/fleet/CMakeFiles/limoncello_fleet.dir/service.cc.o" "gcc" "src/fleet/CMakeFiles/limoncello_fleet.dir/service.cc.o.d"
  "/root/repo/src/fleet/threshold_tuner.cc" "src/fleet/CMakeFiles/limoncello_fleet.dir/threshold_tuner.cc.o" "gcc" "src/fleet/CMakeFiles/limoncello_fleet.dir/threshold_tuner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/limoncello_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/limoncello_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/limoncello_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/limoncello_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/limoncello_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/limoncello_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
