file(REMOVE_RECURSE
  "liblimoncello_fleet.a"
)
