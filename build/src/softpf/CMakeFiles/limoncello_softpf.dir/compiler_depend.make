# Empty compiler generated dependencies file for limoncello_softpf.
# This may be replaced when dependencies are built.
