
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softpf/prefetch_site_registry.cc" "src/softpf/CMakeFiles/limoncello_softpf.dir/prefetch_site_registry.cc.o" "gcc" "src/softpf/CMakeFiles/limoncello_softpf.dir/prefetch_site_registry.cc.o.d"
  "/root/repo/src/softpf/runtime.cc" "src/softpf/CMakeFiles/limoncello_softpf.dir/runtime.cc.o" "gcc" "src/softpf/CMakeFiles/limoncello_softpf.dir/runtime.cc.o.d"
  "/root/repo/src/softpf/soft_prefetch_config.cc" "src/softpf/CMakeFiles/limoncello_softpf.dir/soft_prefetch_config.cc.o" "gcc" "src/softpf/CMakeFiles/limoncello_softpf.dir/soft_prefetch_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
