file(REMOVE_RECURSE
  "liblimoncello_softpf.a"
)
