file(REMOVE_RECURSE
  "CMakeFiles/limoncello_softpf.dir/prefetch_site_registry.cc.o"
  "CMakeFiles/limoncello_softpf.dir/prefetch_site_registry.cc.o.d"
  "CMakeFiles/limoncello_softpf.dir/runtime.cc.o"
  "CMakeFiles/limoncello_softpf.dir/runtime.cc.o.d"
  "CMakeFiles/limoncello_softpf.dir/soft_prefetch_config.cc.o"
  "CMakeFiles/limoncello_softpf.dir/soft_prefetch_config.cc.o.d"
  "liblimoncello_softpf.a"
  "liblimoncello_softpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_softpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
