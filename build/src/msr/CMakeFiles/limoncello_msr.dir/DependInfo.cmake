
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msr/linux_msr_device.cc" "src/msr/CMakeFiles/limoncello_msr.dir/linux_msr_device.cc.o" "gcc" "src/msr/CMakeFiles/limoncello_msr.dir/linux_msr_device.cc.o.d"
  "/root/repo/src/msr/prefetch_control.cc" "src/msr/CMakeFiles/limoncello_msr.dir/prefetch_control.cc.o" "gcc" "src/msr/CMakeFiles/limoncello_msr.dir/prefetch_control.cc.o.d"
  "/root/repo/src/msr/simulated_msr_device.cc" "src/msr/CMakeFiles/limoncello_msr.dir/simulated_msr_device.cc.o" "gcc" "src/msr/CMakeFiles/limoncello_msr.dir/simulated_msr_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
