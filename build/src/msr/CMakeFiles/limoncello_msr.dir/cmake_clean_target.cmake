file(REMOVE_RECURSE
  "liblimoncello_msr.a"
)
