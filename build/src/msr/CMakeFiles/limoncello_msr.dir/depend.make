# Empty dependencies file for limoncello_msr.
# This may be replaced when dependencies are built.
