file(REMOVE_RECURSE
  "CMakeFiles/limoncello_msr.dir/linux_msr_device.cc.o"
  "CMakeFiles/limoncello_msr.dir/linux_msr_device.cc.o.d"
  "CMakeFiles/limoncello_msr.dir/prefetch_control.cc.o"
  "CMakeFiles/limoncello_msr.dir/prefetch_control.cc.o.d"
  "CMakeFiles/limoncello_msr.dir/simulated_msr_device.cc.o"
  "CMakeFiles/limoncello_msr.dir/simulated_msr_device.cc.o.d"
  "liblimoncello_msr.a"
  "liblimoncello_msr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_msr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
