file(REMOVE_RECURSE
  "CMakeFiles/limoncello_workloads.dir/function_catalog.cc.o"
  "CMakeFiles/limoncello_workloads.dir/function_catalog.cc.o.d"
  "CMakeFiles/limoncello_workloads.dir/generators.cc.o"
  "CMakeFiles/limoncello_workloads.dir/generators.cc.o.d"
  "CMakeFiles/limoncello_workloads.dir/trace_io.cc.o"
  "CMakeFiles/limoncello_workloads.dir/trace_io.cc.o.d"
  "liblimoncello_workloads.a"
  "liblimoncello_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
