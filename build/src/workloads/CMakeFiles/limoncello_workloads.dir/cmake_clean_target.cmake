file(REMOVE_RECURSE
  "liblimoncello_workloads.a"
)
