
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/function_catalog.cc" "src/workloads/CMakeFiles/limoncello_workloads.dir/function_catalog.cc.o" "gcc" "src/workloads/CMakeFiles/limoncello_workloads.dir/function_catalog.cc.o.d"
  "/root/repo/src/workloads/generators.cc" "src/workloads/CMakeFiles/limoncello_workloads.dir/generators.cc.o" "gcc" "src/workloads/CMakeFiles/limoncello_workloads.dir/generators.cc.o.d"
  "/root/repo/src/workloads/trace_io.cc" "src/workloads/CMakeFiles/limoncello_workloads.dir/trace_io.cc.o" "gcc" "src/workloads/CMakeFiles/limoncello_workloads.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
