# Empty dependencies file for limoncello_workloads.
# This may be replaced when dependencies are built.
