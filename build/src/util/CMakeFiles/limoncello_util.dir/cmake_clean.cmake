file(REMOVE_RECURSE
  "CMakeFiles/limoncello_util.dir/flags.cc.o"
  "CMakeFiles/limoncello_util.dir/flags.cc.o.d"
  "CMakeFiles/limoncello_util.dir/logging.cc.o"
  "CMakeFiles/limoncello_util.dir/logging.cc.o.d"
  "CMakeFiles/limoncello_util.dir/table.cc.o"
  "CMakeFiles/limoncello_util.dir/table.cc.o.d"
  "liblimoncello_util.a"
  "liblimoncello_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
