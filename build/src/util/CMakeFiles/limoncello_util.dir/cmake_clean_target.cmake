file(REMOVE_RECURSE
  "liblimoncello_util.a"
)
