# Empty compiler generated dependencies file for limoncello_util.
# This may be replaced when dependencies are built.
