file(REMOVE_RECURSE
  "liblimoncello_tax.a"
)
