# Empty compiler generated dependencies file for limoncello_tax.
# This may be replaced when dependencies are built.
