file(REMOVE_RECURSE
  "CMakeFiles/limoncello_tax.dir/adaptive.cc.o"
  "CMakeFiles/limoncello_tax.dir/adaptive.cc.o.d"
  "CMakeFiles/limoncello_tax.dir/block_compressor.cc.o"
  "CMakeFiles/limoncello_tax.dir/block_compressor.cc.o.d"
  "CMakeFiles/limoncello_tax.dir/block_hash.cc.o"
  "CMakeFiles/limoncello_tax.dir/block_hash.cc.o.d"
  "CMakeFiles/limoncello_tax.dir/prefetching_memcpy.cc.o"
  "CMakeFiles/limoncello_tax.dir/prefetching_memcpy.cc.o.d"
  "CMakeFiles/limoncello_tax.dir/wire_serializer.cc.o"
  "CMakeFiles/limoncello_tax.dir/wire_serializer.cc.o.d"
  "liblimoncello_tax.a"
  "liblimoncello_tax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_tax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
