
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tax/adaptive.cc" "src/tax/CMakeFiles/limoncello_tax.dir/adaptive.cc.o" "gcc" "src/tax/CMakeFiles/limoncello_tax.dir/adaptive.cc.o.d"
  "/root/repo/src/tax/block_compressor.cc" "src/tax/CMakeFiles/limoncello_tax.dir/block_compressor.cc.o" "gcc" "src/tax/CMakeFiles/limoncello_tax.dir/block_compressor.cc.o.d"
  "/root/repo/src/tax/block_hash.cc" "src/tax/CMakeFiles/limoncello_tax.dir/block_hash.cc.o" "gcc" "src/tax/CMakeFiles/limoncello_tax.dir/block_hash.cc.o.d"
  "/root/repo/src/tax/prefetching_memcpy.cc" "src/tax/CMakeFiles/limoncello_tax.dir/prefetching_memcpy.cc.o" "gcc" "src/tax/CMakeFiles/limoncello_tax.dir/prefetching_memcpy.cc.o.d"
  "/root/repo/src/tax/wire_serializer.cc" "src/tax/CMakeFiles/limoncello_tax.dir/wire_serializer.cc.o" "gcc" "src/tax/CMakeFiles/limoncello_tax.dir/wire_serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/softpf/CMakeFiles/limoncello_softpf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
