# Empty dependencies file for limoncello_sim.
# This may be replaced when dependencies are built.
