file(REMOVE_RECURSE
  "CMakeFiles/limoncello_sim.dir/cache/cache.cc.o"
  "CMakeFiles/limoncello_sim.dir/cache/cache.cc.o.d"
  "CMakeFiles/limoncello_sim.dir/machine/socket.cc.o"
  "CMakeFiles/limoncello_sim.dir/machine/socket.cc.o.d"
  "CMakeFiles/limoncello_sim.dir/memory/latency_curve.cc.o"
  "CMakeFiles/limoncello_sim.dir/memory/latency_curve.cc.o.d"
  "CMakeFiles/limoncello_sim.dir/memory/memory_controller.cc.o"
  "CMakeFiles/limoncello_sim.dir/memory/memory_controller.cc.o.d"
  "CMakeFiles/limoncello_sim.dir/prefetch/best_offset.cc.o"
  "CMakeFiles/limoncello_sim.dir/prefetch/best_offset.cc.o.d"
  "CMakeFiles/limoncello_sim.dir/prefetch/fdp_throttle.cc.o"
  "CMakeFiles/limoncello_sim.dir/prefetch/fdp_throttle.cc.o.d"
  "CMakeFiles/limoncello_sim.dir/prefetch/prefetcher.cc.o"
  "CMakeFiles/limoncello_sim.dir/prefetch/prefetcher.cc.o.d"
  "liblimoncello_sim.a"
  "liblimoncello_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/limoncello_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
