
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache/cache.cc" "src/sim/CMakeFiles/limoncello_sim.dir/cache/cache.cc.o" "gcc" "src/sim/CMakeFiles/limoncello_sim.dir/cache/cache.cc.o.d"
  "/root/repo/src/sim/machine/socket.cc" "src/sim/CMakeFiles/limoncello_sim.dir/machine/socket.cc.o" "gcc" "src/sim/CMakeFiles/limoncello_sim.dir/machine/socket.cc.o.d"
  "/root/repo/src/sim/memory/latency_curve.cc" "src/sim/CMakeFiles/limoncello_sim.dir/memory/latency_curve.cc.o" "gcc" "src/sim/CMakeFiles/limoncello_sim.dir/memory/latency_curve.cc.o.d"
  "/root/repo/src/sim/memory/memory_controller.cc" "src/sim/CMakeFiles/limoncello_sim.dir/memory/memory_controller.cc.o" "gcc" "src/sim/CMakeFiles/limoncello_sim.dir/memory/memory_controller.cc.o.d"
  "/root/repo/src/sim/prefetch/best_offset.cc" "src/sim/CMakeFiles/limoncello_sim.dir/prefetch/best_offset.cc.o" "gcc" "src/sim/CMakeFiles/limoncello_sim.dir/prefetch/best_offset.cc.o.d"
  "/root/repo/src/sim/prefetch/fdp_throttle.cc" "src/sim/CMakeFiles/limoncello_sim.dir/prefetch/fdp_throttle.cc.o" "gcc" "src/sim/CMakeFiles/limoncello_sim.dir/prefetch/fdp_throttle.cc.o.d"
  "/root/repo/src/sim/prefetch/prefetcher.cc" "src/sim/CMakeFiles/limoncello_sim.dir/prefetch/prefetcher.cc.o" "gcc" "src/sim/CMakeFiles/limoncello_sim.dir/prefetch/prefetcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/limoncello_util.dir/DependInfo.cmake"
  "/root/repo/build/src/msr/CMakeFiles/limoncello_msr.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/limoncello_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
