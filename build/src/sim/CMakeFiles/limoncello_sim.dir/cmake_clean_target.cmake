file(REMOVE_RECURSE
  "liblimoncello_sim.a"
)
