// Shared experiment runners for the per-figure benchmark binaries.
#ifndef LIMONCELLO_BENCH_BENCH_UTIL_H_
#define LIMONCELLO_BENCH_BENCH_UTIL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/controller_config.h"
#include "fleet/fleet_simulator.h"
#include "profiling/profile.h"
#include "sim/cache/cache.h"
#include "sim/machine/socket.h"
#include "workloads/function_catalog.h"

namespace limoncello::bench {

// ---------------------------------------------------------------------------
// Loaded-latency experiment (Intel MLC style, paper Fig. 1).

struct LoadedLatencyPoint {
  double demand_fraction = 0.0;  // requested load level (of peak)
  double utilization = 0.0;      // achieved total (demand+prefetch) util
  double touched_gbps = 0.0;     // application bandwidth (MLC-reported)
  double touched_fraction = 0.0; // touched_gbps / peak — the Fig. 1 x-axis
  double latency_ns = 0.0;       // average load-to-use latency
};

// Runs bandwidth-generator cores at increasing intensity and measures the
// average DRAM latency, with hardware prefetchers on or off.
std::vector<LoadedLatencyPoint> RunLoadedLatency(bool prefetchers_on,
                                                 int levels,
                                                 std::uint64_t seed);

// ---------------------------------------------------------------------------
// Fleet experiment helpers.

FleetOptions DefaultFleetOptions(std::uint64_t seed = 42);
ControllerConfig DeployedControllerConfig();

// Runs an A/B pair (same seed) and returns {before, after}. The arms
// share no mutable state and run concurrently (each with its own
// simulator and tick-loop thread pool).
struct FleetAb {
  FleetMetrics before;
  FleetMetrics after;
};
FleetAb RunFleetAb(const PlatformConfig& platform, DeploymentMode before,
                   DeploymentMode after, const ControllerConfig& controller,
                   const FleetOptions& options);

// Generalization for the multi-arm benches (e.g. the three-deployment
// Fig. 20 comparison): runs one arm per mode concurrently, returning
// metrics in mode order.
std::vector<FleetMetrics> RunFleetArms(const PlatformConfig& platform,
                                       const std::vector<DeploymentMode>& modes,
                                       const ControllerConfig& controller,
                                       const FleetOptions& options);

// ---------------------------------------------------------------------------
// Fleet-engine self-timing (tracked across PRs via BENCH_fleet.json).

struct FleetEngineTiming {
  int threads = 1;
  double seconds = 0.0;                 // wall time of Run() only
  std::uint64_t machine_ticks = 0;
  double machine_ticks_per_sec = 0.0;
  double served_qps_sum = 0.0;          // determinism cross-check value
};

// Constructs the simulator (placement excluded from timing), times Run()
// wall-clock, and reports machine-ticks/sec at the given thread count.
FleetEngineTiming TimeFleetEngine(const PlatformConfig& platform,
                                  DeploymentMode mode,
                                  const ControllerConfig& controller,
                                  FleetOptions options, int threads);

// Writes the timing sweep as JSON (one object, results array ordered as
// given) so CI can diff machine-ticks/sec across PRs. Headline fields:
// "speedup_4t" (4-thread rate over serial, 0 when either arm is absent)
// and "serial_speedup_vs_baseline" (serial rate over the pre-SoA
// engine's recorded rate, so single-core hosts still show the win).
// hardware_threads records the host so a flat curve on a 1-core CI box
// is not misread as a regression. big_run, when non-null, is the
// 100k-machine x 600-tick arm (ROADMAP's fleet-scale target) with its
// own options in big_options.
bool WriteFleetBenchJson(const std::string& path,
                         const FleetOptions& options,
                         const std::vector<FleetEngineTiming>& results,
                         int hardware_threads,
                         double serial_baseline_machine_ticks_per_sec,
                         const FleetEngineTiming* big_run,
                         const FleetOptions* big_options);

// ---------------------------------------------------------------------------
// Cache hot-path microbench (bench_cache / bench_socket, BENCH_socket.json
// and BENCH_cache.json).

struct CacheBenchResult {
  std::string level;     // l1 / l2 / llc (geometry label)
  std::string policy;    // lru / random / srrip
  std::string scenario;  // demand_hit / demand_miss / prefetch_fill
  std::uint64_t accesses = 0;
  double seconds = 0.0;  // best-of-reps wall time of the timed loop
  double accesses_per_sec = 0.0;
};

// Runs a deterministic (seeded-Rng) access trace against a cache of the
// given geometry and returns best-of-`reps` throughput. Scenarios:
//   demand_hit     working set = half the cache; mostly demand hits —
//                  the probe/layout-bound case the refactor targets
//   demand_miss    working set = 4x the cache; miss + victim-pick heavy
//   prefetch_fill  demand misses each followed by a presence-filtered
//                  buddy-line prefetch fill (the socket's fill shape)
CacheBenchResult RunCacheMicrobench(const std::string& level,
                                    const CacheConfig& config,
                                    const std::string& scenario,
                                    std::uint64_t accesses, int reps);

// Buckets machines of a run by their average CPU utilization (10 %-wide
// buckets, 0-10 .. 100-110) and averages a metric over each bucket.
struct CpuBucketRow {
  int bucket = 0;  // bucket * 10 .. bucket * 10 + 10 percent
  int machines = 0;
  double avg_bw_utilization = 0.0;
  double served_qps = 0.0;
};
std::vector<CpuBucketRow> BucketByCpu(const FleetMetrics& metrics);

// ---------------------------------------------------------------------------
// Native timing helper (for the memcpy sweeps, Fig. 15).

// Median-of-repeats wall time of fn(), in nanoseconds per call, after a
// warm-up. fn must do one "call" of the operation under test.
double TimeNsPerCall(const std::function<void()>& fn, int calls_per_rep,
                     int reps);

// ---------------------------------------------------------------------------
// Detailed-sim ablation (Figs. 11/12).

struct AblationResult {
  FunctionCatalog catalog;
  std::vector<FunctionDelta> deltas;
};

// Runs the control/experiment populations on the detailed simulator and
// diffs per-function profiles.
AblationResult RunDetailedAblation(int machines, int epochs,
                                   std::uint64_t seed);

}  // namespace limoncello::bench

#endif  // LIMONCELLO_BENCH_BENCH_UTIL_H_
