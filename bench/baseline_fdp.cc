// Baseline comparison (paper §7.1): Hard Limoncello vs. classic
// feedback-directed hardware throttling (FDP, Srinath et al. HPCA'07) vs.
// static prefetchers-always-on, on the detailed socket simulator under a
// three-phase load (light → saturating → light).
//
// The paper's argument: reactive hardware throttling and Limoncello both
// relieve bandwidth pressure, but Limoncello's software half then
// restores coverage for the prefetch-friendly functions (Fig. 20) —
// something a pure hardware ladder cannot target.
#include <cstdio>
#include <memory>

#include "core/daemon.h"
#include "sim/prefetch/fdp_throttle.h"
#include "telemetry/telemetry.h"
#include "util/table.h"
#include "workloads/function_catalog.h"

namespace limoncello::bench {
namespace {

using namespace limoncello;  // NOLINT: bench-local convenience

constexpr SimTimeNs kTick = 100 * kNsPerUs;
// Controller decisions run once per kEpochsPerTick socket epochs, so each
// telemetry sample averages over the socket's internal (epoch-scale)
// dynamics — as a 1 Hz perf sample does on real hardware.
constexpr int kEpochsPerTick = 5;
constexpr int kPhaseTicks = 40;

SocketConfig BenchSocket() {
  SocketConfig config;
  config.num_cores = 4;
  config.memory.peak_gbps = 14.0;  // saturates in the heavy phase
  config.memory.jitter_fraction = 0.0;
  return config;
}

// Light load = 1 active core; heavy = all 4.
void SetPhaseLoad(Socket& socket, const FunctionCatalog& catalog,
                  bool heavy, std::uint64_t seed) {
  for (int core = 0; core < socket.config().num_cores; ++core) {
    if (core == 0 || heavy) {
      socket.SetWorkload(core, catalog.MakeFleetMix(Rng(seed).Fork(
                                   static_cast<std::uint64_t>(core))));
    } else {
      socket.SetWorkload(core, nullptr);
    }
  }
}

struct PhaseMetrics {
  double latency_ns = 0.0;
  double bytes_per_instr = 0.0;
  double ipc = 0.0;
};

struct RunResult {
  PhaseMetrics phases[3];
};

enum class Mode { kStatic, kFdp, kLimoncello };

RunResult Run(Mode mode) {
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  Socket socket(BenchSocket(), catalog.size(), Rng(77));

  std::unique_ptr<FdpThrottle> fdp;
  std::unique_ptr<PrefetchControl> control;
  std::unique_ptr<MsrPrefetchActuator> actuator;
  std::unique_ptr<SocketUtilizationSource> telemetry;
  std::unique_ptr<LimoncelloDaemon> daemon;
  if (mode == Mode::kFdp) {
    fdp = std::make_unique<FdpThrottle>(FdpConfig{}, &socket);
  } else if (mode == Mode::kLimoncello) {
    control = std::make_unique<PrefetchControl>(
        &socket.msr_device(), PlatformMsrLayout::kIntelStyle, 0,
        socket.config().num_cores);
    actuator = std::make_unique<MsrPrefetchActuator>(
        control.get(), socket.config().num_cores);
    telemetry = std::make_unique<SocketUtilizationSource>(&socket);
    ControllerConfig config;
    config.tick_period_ns = kEpochsPerTick * kTick;
    config.sustain_duration_ns = 3 * kEpochsPerTick * kTick;
    daemon = std::make_unique<LimoncelloDaemon>(config, telemetry.get(),
                                                actuator.get());
  }

  RunResult result;
  for (int phase = 0; phase < 3; ++phase) {
    SetPhaseLoad(socket, catalog, /*heavy=*/phase == 1,
                 100 + static_cast<std::uint64_t>(phase));
    const PmuCounters before = socket.counters();
    for (int t = 0; t < kPhaseTicks; ++t) {
      for (int e = 0; e < kEpochsPerTick; ++e) socket.Step(kTick);
      if (fdp != nullptr) fdp->Tick();
      if (daemon != nullptr) daemon->RunTick(socket.now());
    }
    const PmuCounters& after = socket.counters();
    PhaseMetrics& m = result.phases[phase];
    const double requests =
        static_cast<double>(after.dram_requests - before.dram_requests);
    m.latency_ns = requests > 0
                       ? (after.dram_latency_ns_sum -
                          before.dram_latency_ns_sum) /
                             requests
                       : 0.0;
    const double instructions =
        static_cast<double>(after.instructions - before.instructions);
    m.bytes_per_instr =
        static_cast<double>(after.DramTotalBytes() -
                            before.DramTotalBytes()) /
        instructions;
    m.ipc = instructions /
            static_cast<double>(after.core_cycles - before.core_cycles);
  }
  return result;
}

void Run() {
  const char* phase_names[] = {"light", "heavy (saturating)",
                               "light again"};
  const RunResult static_on = Run(Mode::kStatic);
  const RunResult fdp = Run(Mode::kFdp);
  const RunResult limoncello = Run(Mode::kLimoncello);

  for (int phase = 0; phase < 3; ++phase) {
    Table table({"controller", "avg_dram_latency(ns)", "dram_bytes/instr",
                 "ipc"});
    auto row = [&](const char* name, const PhaseMetrics& m) {
      table.AddRow({name, Table::Num(m.latency_ns, 1),
                    Table::Num(m.bytes_per_instr, 3),
                    Table::Num(m.ipc, 3)});
    };
    row("always-on prefetchers", static_on.phases[phase]);
    row("FDP throttling (HPCA'07)", fdp.phases[phase]);
    row("Hard Limoncello", limoncello.phases[phase]);
    char title[64];
    std::snprintf(title, sizeof(title), "Baseline comparison: phase %d (%s)",
                  phase, phase_names[phase]);
    table.Print(title);
  }
  std::printf(
      "\nExpected shape: all three tie in the light phases (Limoncello "
      "leaves\nprefetchers alone below the threshold); in the saturating "
      "phase both\nthrottlers cut latency and traffic vs always-on, with "
      "Limoncello acting\ndecisively (all engines) and FDP stepping its "
      "ladder. The application-level\ndifference — recovering tax-function "
      "coverage in software — is measured\nfleet-wide in fig20.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
