// Reproduces paper Fig. 15a: native memcpy speedup vs. copy size for a
// range of software-prefetch distances, degree fixed at 256 bytes.
// Baseline is the plain (no software prefetch) copy path.
//
// Note: these run on the host CPU with whatever hardware-prefetcher state
// it has (we cannot write MSRs in a container), so absolute speedups are
// small — the paper's +HW,+SW bar (Fig. 15c) is the comparable setting.
// The interesting shape is relative: tiny copies never win, large copies
// respond to distance.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "tax/prefetching_memcpy.h"
#include "util/rng.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

using limoncello::Rng;
using limoncello::SoftPrefetchConfig;
using limoncello::Table;

void Run() {
  const std::size_t sizes[] = {256,       1024,      4 * 1024,
                               16 * 1024, 64 * 1024, 256 * 1024,
                               1000 * 1024};
  const std::uint32_t distances[] = {32, 64, 128, 256, 512};

  // Source/destination pool much larger than LLC so big copies stream
  // from memory; rotate through slices to defeat cache reuse.
  const std::size_t pool = 256 * 1024 * 1024;
  std::vector<char> src(pool);
  std::vector<char> dst(pool);
  Rng rng(1);
  for (std::size_t i = 0; i < pool; i += 4096) {
    src[i] = static_cast<char>(rng.NextU64());
  }

  std::vector<std::string> header = {"memcpy_size"};
  for (std::uint32_t d : distances) {
    header.push_back("d=" + std::to_string(d) + "(%)");
  }
  Table table(header);

  for (std::size_t size : sizes) {
    const int calls = size >= 256 * 1024 ? 64 : 512;
    const int reps = 9;
    std::size_t cursor = 0;
    auto next_slice = [&]() {
      cursor += size + 4096;
      if (cursor + size >= pool) cursor = 0;
      return cursor;
    };
    SoftPrefetchConfig off = SoftPrefetchConfig::Disabled();
    const double base_ns = TimeNsPerCall(
        [&] {
          const std::size_t at = next_slice();
          PrefetchingMemcpy(dst.data() + at, src.data() + at, size, off);
        },
        calls, reps);

    std::vector<std::string> row = {std::to_string(size)};
    for (std::uint32_t distance : distances) {
      SoftPrefetchConfig config;
      config.distance_bytes = distance;
      config.degree_bytes = 256;
      config.min_size_bytes = 0;
      const double ns = TimeNsPerCall(
          [&] {
            const std::size_t at = next_slice();
            PrefetchingMemcpy(dst.data() + at, src.data() + at, size,
                              config);
          },
          calls, reps);
      row.push_back(Table::Num(100.0 * (base_ns / ns - 1.0), 2));
    }
    table.AddRow(row);
  }
  table.Print(
      "Fig. 15a: memcpy speedup vs size, sweeping prefetch distance "
      "(degree=256B)");
  std::printf(
      "\nPaper shape: speedup concentrated in large copies; distance "
      "256-512B best\nfor the biggest sizes. Host HW prefetchers are on, "
      "so gains here are modest\n(compare paper Fig. 15c's +HW,+SW bar, "
      "~0.4%%).\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
