// Reproduces paper Fig. 20: fleet-wide cycles spent in the targeted
// data-center-tax categories under three deployments — no Limoncello,
// Hard Limoncello only, and Full Limoncello (hard + soft).
//
// Expected shape: Hard Limoncello slightly *increases* tax cycles (the
// tax functions lose their hardware prefetch coverage while prefetchers
// are off); adding software prefetching pulls them back below baseline.
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "softpf/size_class.h"
#include "softpf/tax_kernel.h"
#include "tax/tax_tuner.h"
#include "tax/tuned_params.h"
#include "util/table.h"
#include "workloads/function_catalog.h"

namespace limoncello::bench {
namespace {

// The same story on the native kernels: warm working sets (hardware
// prefetchers covering) vs cold page-scattered working sets (the
// post-actuation regime) without and with the committed tuned software
// prefetch parameters. Large size class.
void RunNativeSuite() {
  MeasuredProbeOptions options;
  options.reps = 2;
  options.budget_ms = 10.0;
  options.arena_bytes = std::size_t{384} << 20;
  options.join_footprint_scale = 0.25;
  MeasuredProbe probe(options);

  const int sc = kNumSizeClasses - 1;
  Table table({"kernel", "warm untuned MB/s", "cold untuned MB/s",
               "cold tuned MB/s", "cold loss", "tuned recovery"});
  for (std::size_t i = 0; i < TunedParamsCount(); ++i) {
    const TunedParam& p = TunedParamsBegin()[i];
    if (p.size_class != sc) continue;
    const double warm = probe.Measure(p.kernel, sc,
                                      SoftPrefetchConfig::Disabled(),
                                      TuneRegime::kHwOn);
    const double cold = probe.Measure(p.kernel, sc,
                                      SoftPrefetchConfig::Disabled(),
                                      TuneRegime::kHwOffEmulated);
    const double tuned = probe.Measure(p.kernel, sc, p.config,
                                       TuneRegime::kHwOffEmulated);
    table.AddRow({TaxKernelSiteName(p.kernel), Table::Num(warm, 1),
                  Table::Num(cold, 1), Table::Num(tuned, 1),
                  Table::Num(warm > 0 ? cold / warm : 0.0, 3),
                  Table::Num(cold > 0 ? tuned / cold : 0.0, 3)});
  }
  table.Print(
      "Native tax suite: cold-regime loss and tuned-prefetch recovery "
      "(large class)");
}

void Run() {
  FleetOptions options = DefaultFleetOptions(47);
  options.fill = 0.62;
  const ControllerConfig controller = DeployedControllerConfig();

  // The three deployment arms share no mutable state and run concurrently.
  const std::vector<FleetMetrics> metrics = RunFleetArms(
      PlatformConfig::Platform1(),
      {DeploymentMode::kBaseline, DeploymentMode::kHardLimoncello,
       DeploymentMode::kFullLimoncello},
      controller, options);

  const char* category_names[] = {"compression", "data_transmission",
                                  "hashing", "data_movement"};
  Table table({"category", "no_limoncello(%)", "hard_limoncello(%)",
               "full_limoncello(%)"});
  double tax_share[3] = {0.0, 0.0, 0.0};
  for (int c = 0; c < 4; ++c) {
    std::vector<std::string> row = {category_names[c]};
    for (int m = 0; m < 3; ++m) {
      const double share =
          100.0 * metrics[m].category_cycles[static_cast<size_t>(c)] /
          metrics[m].TotalCategoryCycles();
      tax_share[m] += share;
      row.push_back(Table::Num(share, 2));
    }
    table.AddRow(row);
  }
  table.AddRow({"all targeted DC tax", Table::Num(tax_share[0], 2),
                Table::Num(tax_share[1], 2), Table::Num(tax_share[2], 2)});
  table.Print(
      "Fig. 20: fleet cycles in targeted tax categories by deployment");
  std::printf(
      "\nPaper shape: Hard Limoncello raises tax-function cycles (hardware "
      "prefetchers\nwere useful there); Soft Limoncello recovers them "
      "(paper: ~2%% cycle reduction\nin targeted functions vs "
      "hard-only).\n");
}

}  // namespace
}  // namespace limoncello::bench

int main(int argc, char** argv) {
  limoncello::bench::Run();
  // The native measurement takes ~a minute; skip with --sim-only.
  if (!(argc > 1 && std::strcmp(argv[1], "--sim-only") == 0)) {
    std::printf("\n");
    limoncello::bench::RunNativeSuite();
  }
  return 0;
}
