// Reproduces paper Fig. 20: fleet-wide cycles spent in the targeted
// data-center-tax categories under three deployments — no Limoncello,
// Hard Limoncello only, and Full Limoncello (hard + soft).
//
// Expected shape: Hard Limoncello slightly *increases* tax cycles (the
// tax functions lose their hardware prefetch coverage while prefetchers
// are off); adding software prefetching pulls them back below baseline.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"
#include "workloads/function_catalog.h"

namespace limoncello::bench {
namespace {

void Run() {
  FleetOptions options = DefaultFleetOptions(47);
  options.fill = 0.62;
  const ControllerConfig controller = DeployedControllerConfig();

  // The three deployment arms share no mutable state and run concurrently.
  const std::vector<FleetMetrics> metrics = RunFleetArms(
      PlatformConfig::Platform1(),
      {DeploymentMode::kBaseline, DeploymentMode::kHardLimoncello,
       DeploymentMode::kFullLimoncello},
      controller, options);

  const char* category_names[] = {"compression", "data_transmission",
                                  "hashing", "data_movement"};
  Table table({"category", "no_limoncello(%)", "hard_limoncello(%)",
               "full_limoncello(%)"});
  double tax_share[3] = {0.0, 0.0, 0.0};
  for (int c = 0; c < 4; ++c) {
    std::vector<std::string> row = {category_names[c]};
    for (int m = 0; m < 3; ++m) {
      const double share =
          100.0 * metrics[m].category_cycles[static_cast<size_t>(c)] /
          metrics[m].TotalCategoryCycles();
      tax_share[m] += share;
      row.push_back(Table::Num(share, 2));
    }
    table.AddRow(row);
  }
  table.AddRow({"all targeted DC tax", Table::Num(tax_share[0], 2),
                Table::Num(tax_share[1], 2), Table::Num(tax_share[2], 2)});
  table.Print(
      "Fig. 20: fleet cycles in targeted tax categories by deployment");
  std::printf(
      "\nPaper shape: Hard Limoncello raises tax-function cycles (hardware "
      "prefetchers\nwere useful there); Soft Limoncello recovers them "
      "(paper: ~2%% cycle reduction\nin targeted functions vs "
      "hard-only).\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
