// Reproduces paper Fig. 16: Limoncello's application-throughput gain by
// CPU-utilization band. Machines are bucketed by their *baseline* average
// CPU utilization; throughput is compared machine-by-machine between the
// baseline and full-Limoncello arms (same seeds, same placement).
//
// Paper: +6-13 % depending on band, ~10 % at the 70/80 % bands, no
// regression at 60 %.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  FleetOptions options = DefaultFleetOptions(29);
  options.fill = 0.62;
  const FleetAb ab = RunFleetAb(
      PlatformConfig::Platform1(), DeploymentMode::kBaseline,
      DeploymentMode::kFullLimoncello, DeployedControllerConfig(), options);

  struct Band {
    const char* label;
    double lo;
    double hi;
    double before = 0.0;
    double after = 0.0;
    int machines = 0;
  };
  Band bands[] = {
      {"<50%", 0.0, 0.5}, {"50-60%", 0.5, 0.6}, {"60-70%", 0.6, 0.7},
      {"70-80%", 0.7, 0.8}, {">80%", 0.8, 10.0},
  };
  // Per-arm banding (the paper compares fleet telemetry per band across
  // the rollout; machines are not paired, since placement evolves).
  int before_machines[5] = {0};
  int after_machines[5] = {0};
  auto accumulate = [&](const FleetMetrics& metrics, bool is_after) {
    for (const MachineAggregate& m : metrics.machines) {
      const double cpu = m.AvgCpu();
      for (std::size_t b = 0; b < 5; ++b) {
        if (cpu >= bands[b].lo && cpu < bands[b].hi) {
          if (is_after) {
            bands[b].after += m.served_qps_sum;
            ++after_machines[b];
          } else {
            bands[b].before += m.served_qps_sum;
            ++before_machines[b];
          }
          break;
        }
      }
    }
  };
  accumulate(ab.before, false);
  accumulate(ab.after, true);

  Table table({"cpu_band", "machines(before/after)",
               "throughput_change(%)"});
  for (std::size_t b = 0; b < 5; ++b) {
    const Band& band = bands[b];
    if (before_machines[b] == 0 || after_machines[b] == 0 ||
        band.before <= 0.0) {
      continue;
    }
    const double before_avg = band.before / before_machines[b];
    const double after_avg = band.after / after_machines[b];
    table.AddRow({band.label,
                  std::to_string(before_machines[b]) + "/" +
                      std::to_string(after_machines[b]),
                  Table::Num(100.0 * (after_avg / before_avg - 1.0), 2)});
  }
  table.Print("Fig. 16: Limoncello throughput gain by CPU band");
  std::printf(
      "\nFleet-wide: %.2f%% (paper: +10%% at peak utilization; gains "
      "concentrate in\nthe high-utilization bands, no regression at "
      "moderate load).\n",
      100.0 * (ab.after.served_qps_sum / ab.before.served_qps_sum - 1.0));
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
