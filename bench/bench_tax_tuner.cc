// Soft-Limoncello autotuner driver: sweeps prefetch distance/degree/
// locality per tax kernel x call-size class against the self-timer, in
// both the hw-prefetchers-on regime (warm working sets) and the emulated
// hw-prefetchers-off regime (cold page-scattered working sets; this host
// cannot actually toggle the MSRs), and ships the winners as
// src/tax/tuned_params.cc. Emits BENCH_tax.json with untuned (software
// prefetching off) vs default (registry compromise) vs tuned throughput
// per cell and the tuned-vs-untuned geomean headline.
//
//   bench_tax_tuner [--grid=default|reduced] [--regimes=both|hw_off|hw_on]
//                   [--reps=N] [--budget-ms=MS] [--arena-mb=MB]
//                   [--join-scale=S] [--seed=N] [--smoke]
//                   [--json=BENCH_tax.json] [--emit-params=PATH]
//                   [--gate] [--gate-tolerance=0.90]
//
// --gate (the bench_tax_gate ctest) re-measures the committed tuned table
// against the untuned baseline per kernel (large class, hw-off regime,
// reduced budget) and fails if any kernel regresses below
// tolerance x untuned, or if any Adaptive* entry point heap-allocates at
// steady state (counted via the interposed operator new below). Writes
// BENCH_tax.gate.json.
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "softpf/size_class.h"
#include "softpf/tax_kernel.h"
#include "tax/adaptive.h"
#include "tax/dict_compressor.h"
#include "tax/hash_join.h"
#include "tax/tax_tuner.h"
#include "tax/tuned_params.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/units.h"

// ---------------------------------------------------------------------------
// Global allocation probe (same shape as bench_socket): every operator new
// funnels through CountedAlloc so the gate can assert the Adaptive* entry
// points are allocation-free at steady state.

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<bool> g_count_allocs{false};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace limoncello::bench {
namespace {

volatile std::uint64_t g_sink = 0;

std::string MakeTunerPayload(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::string s;
  s.reserve(n + 40);
  const char* phrase = "limoncello prefetchers for scale ";
  while (s.size() < n) {
    if (rng.NextBernoulli(0.7)) {
      s += phrase;
    } else {
      s += static_cast<char>('a' + rng.NextBounded(26));
    }
  }
  s.resize(n);
  return s;
}

// ---------------------------------------------------------------------------
// Steady-state allocation audit of every Adaptive* entry point.

struct AllocAudit {
  const char* name;
  std::uint64_t allocs;
};

std::vector<AllocAudit> AuditAdaptiveAllocs() {
  std::vector<AllocAudit> results;
  results.reserve(16);
  const std::size_t n = std::size_t{1} << 20;  // large class: prefetch on

  const std::string text = MakeTunerPayload(n, 0x5eed);
  std::vector<char> a(n, 'x');
  std::vector<char> b(n, 'y');
  std::vector<std::uint64_t> values(n / 8);
  Rng rng(0x5eed2);
  for (auto& v : values) v = rng.NextU64() >> rng.NextBounded(57);

  const auto audit = [&results](const char* name, auto&& fn) {
    fn();  // warm-up: tuned-table install, capacity growth
    fn();
    g_heap_allocs.store(0);
    g_count_allocs.store(true);
    for (int i = 0; i < 5; ++i) fn();
    g_count_allocs.store(false);
    results.push_back({name, g_heap_allocs.load()});
  };

  audit("memcpy", [&] { AdaptiveMemcpy(a.data(), b.data(), n); });
  audit("memmove",
        [&] { AdaptiveMemmove(a.data() + 64, a.data(), n - 64); });
  audit("memset", [&] { AdaptiveMemset(b.data(), 0x5a, n); });
  audit("fingerprint2011",
        [&] { g_sink = g_sink ^ AdaptiveBlockHash64(a.data(), n); });
  audit("crc32c", [&] { g_sink = g_sink ^ AdaptiveCrc32c(a.data(), n); });

  std::string out;
  audit("snappy_compress", [&] { AdaptiveCompress(text, &out); });
  const std::string compressed = out;
  std::string plain;
  audit("snappy_uncompress",
        [&] { AdaptiveDecompress(compressed, &plain); });

  WireMessage message;
  for (std::uint32_t f = 1; f <= 8; ++f) {
    message.push_back({f, MakeTunerPayload(n / 8, f)});
  }
  std::string wire;
  audit("proto_serialize",
        [&] { AdaptiveWireSerialize(message, &wire); });
  WireMessage parsed;
  audit("proto_parse", [&] { AdaptiveWireParse(wire, &parsed); });

  std::string encoded;
  audit("varint_encode", [&] {
    AdaptiveVarintEncode(values.data(), values.size(), &encoded);
  });
  std::vector<std::uint64_t> decoded;
  audit("varint_decode", [&] { AdaptiveVarintDecode(encoded, &decoded); });

  DictCompressor dict(MakeTunerPayload(64 * kKiB, 0xd1c7));
  std::string dict_out;
  audit("dict_compress",
        [&] { AdaptiveDictCompress(dict, text, &dict_out); });
  const std::string dict_compressed = dict_out;
  std::string dict_plain;
  audit("dict_uncompress", [&] {
    AdaptiveDictDecompress(dict, dict_compressed, &dict_plain);
  });

  const std::size_t nk = n / 16;
  std::vector<std::uint64_t> keys(nk);
  std::vector<std::uint64_t> vals(nk);
  for (std::size_t i = 0; i < nk; ++i) {
    keys[i] = rng.NextU64();
    vals[i] = i;
  }
  HashJoinTable join;
  std::vector<std::uint64_t> sums(nk);
  audit("hashjoin_build", [&] {
    AdaptiveHashJoinBuild(join, keys.data(), vals.data(), nk);
  });
  audit("hashjoin_probe", [&] {
    g_sink = g_sink ^ AdaptiveHashJoinProbe(join, keys.data(), nk, sums.data());
  });
  return results;
}

// ---------------------------------------------------------------------------
// Full sweep mode.

const char* ConfigString(const SoftPrefetchConfig& config, char* buf,
                         std::size_t len) {
  if (!config.enabled) {
    std::snprintf(buf, len, "off");
  } else {
    std::snprintf(buf, len, "d=%u g=%u loc=%u", config.distance_bytes,
                  config.degree_bytes,
                  static_cast<unsigned>(config.locality));
  }
  return buf;
}

void WriteSweepJson(const std::string& path, const TunerReport& report,
                    const std::string& grid_name, std::size_t arena_mb,
                    int reps, double budget_ms, std::uint64_t seed) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"tax_tuner\",\n  \"grid\": \"%s\",\n"
      "  \"arena_mb\": %zu,\n  \"reps\": %d,\n  \"budget_ms\": %.1f,\n"
      "  \"seed\": %llu,\n"
      "  \"geomean_tuned_vs_untuned_hw_off\": %.4f,\n"
      "  \"geomean_tuned_vs_untuned_hw_on\": %.4f,\n  \"cells\": [\n",
      grid_name.c_str(), arena_mb, reps, budget_ms,
      static_cast<unsigned long long>(seed),
      report.geomean_speedup_hw_off, report.geomean_speedup_hw_on);
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const TunedCell& cell = report.cells[i];
    std::fprintf(
        f,
        "    {\"kernel\": \"%s\", \"size_class\": \"%s\", "
        "\"regime\": \"%s\", \"untuned_mbps\": %.1f, "
        "\"default_mbps\": %.1f, \"tuned_mbps\": %.1f, "
        "\"speedup\": %.3f, \"config\": {\"enabled\": %s, "
        "\"distance_bytes\": %u, \"degree_bytes\": %u, \"locality\": %u}}"
        "%s\n",
        TaxKernelSiteName(cell.kernel), kSizeClassNames[cell.size_class],
        TuneRegimeName(cell.regime), cell.untuned_mbps, cell.default_mbps,
        cell.tuned_mbps, cell.speedup,
        cell.best.enabled ? "true" : "false", cell.best.distance_bytes,
        cell.best.degree_bytes, static_cast<unsigned>(cell.best.locality),
        i + 1 < report.cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int RunSweep(const FlagParser& flags) {
  const bool smoke = flags.GetBool("smoke").value_or(false);
  const std::string grid_name =
      flags.GetString("grid").value_or(smoke ? "reduced" : "default");
  TunerGrid grid = grid_name == "reduced" ? TunerGrid::Reduced()
                                          : TunerGrid::Default();

  MeasuredProbeOptions options;
  options.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed").value_or(0x11770c0ffeeLL));
  options.reps = static_cast<int>(flags.GetInt("reps").value_or(smoke ? 1 : 3));
  options.budget_ms =
      flags.GetDouble("budget-ms").value_or(smoke ? 4.0 : 40.0);
  options.arena_bytes =
      static_cast<std::size_t>(
          flags.GetInt("arena-mb").value_or(smoke ? 64 : 768))
      << 20;
  options.join_footprint_scale =
      flags.GetDouble("join-scale").value_or(smoke ? 0.05 : 1.0);

  const std::string regimes_name =
      flags.GetString("regimes").value_or("both");
  std::vector<TuneRegime> regimes;
  if (regimes_name == "hw_off") {
    regimes = {TuneRegime::kHwOffEmulated};
  } else if (regimes_name == "hw_on") {
    regimes = {TuneRegime::kHwOn};
  } else {
    regimes = {TuneRegime::kHwOffEmulated, TuneRegime::kHwOn};
  }

  // --kernels=a,b,c restricts the sweep by site-name substring match
  // (dev / triage runs; the committed table comes from a full sweep).
  std::vector<TaxKernel> only;
  if (const auto filter = flags.GetString("kernels"); filter.has_value()) {
    std::string list = *filter;
    for (char& c : list) {
      if (c == ',') c = '\0';
    }
    for (std::size_t pos = 0; pos < list.size();
         pos += std::strlen(list.c_str() + pos) + 1) {
      const char* name = list.c_str() + pos;
      if (*name == '\0') continue;
      for (int k = 0; k < kNumTaxKernels; ++k) {
        if (std::strstr(TaxKernelSiteName(TaxKernelAt(k)), name) !=
            nullptr) {
          only.push_back(TaxKernelAt(k));
        }
      }
    }
    if (only.empty()) {
      std::fprintf(stderr, "error: --kernels=%s matches no tax kernel\n",
                   filter->c_str());
      return 1;
    }
  }

  MeasuredProbe probe(options);
  const PrefetchSiteRegistry registry =
      PrefetchSiteRegistry::DeployedDefault();
  const TunerReport report =
      RunTunerSweep(probe, grid, regimes, registry, only);

  Table table({"kernel", "class", "regime", "untuned MB/s", "default MB/s",
               "tuned MB/s", "speedup", "chosen"});
  char cfg[64];
  for (const TunedCell& cell : report.cells) {
    table.AddRow({TaxKernelSiteName(cell.kernel),
                  kSizeClassNames[cell.size_class],
                  TuneRegimeName(cell.regime),
                  Table::Num(cell.untuned_mbps, 1),
                  Table::Num(cell.default_mbps, 1),
                  Table::Num(cell.tuned_mbps, 1),
                  Table::Num(cell.speedup, 3),
                  ConfigString(cell.best, cfg, sizeof(cfg))});
  }
  table.Print("Per-kernel prefetch autotuning (untuned = sw prefetch off)");
  std::printf(
      "\ngeomean tuned vs untuned: %.3fx (hw-off emulated), %.3fx (hw on)\n",
      report.geomean_speedup_hw_off, report.geomean_speedup_hw_on);

  WriteSweepJson(flags.GetString("json").value_or("BENCH_tax.json"), report,
                 grid_name, options.arena_bytes >> 20, options.reps,
                 options.budget_ms, options.seed);

  if (const auto emit = flags.GetString("emit-params"); emit.has_value()) {
    const std::string cc = EmitTunedParamsCc(SelectTunedParams(report));
    std::FILE* f = std::fopen(emit->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", emit->c_str());
      return 1;
    }
    const std::size_t written = std::fwrite(cc.data(), 1, cc.size(), f);
    std::fclose(f);
    if (written != cc.size()) {
      std::fprintf(stderr, "error: short write to %s\n", emit->c_str());
      return 1;
    }
    std::printf("wrote %s\n", emit->c_str());
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Gate mode: committed tuned table vs untuned baseline + alloc audit.

struct GateRow {
  const char* kernel;
  double untuned_mbps = 0.0;
  double tuned_mbps = 0.0;
  double ratio = 0.0;
  float committed_tuned_mbps = 0.0f;
  bool pass = false;
};

int RunGate(const FlagParser& flags) {
  const double tolerance =
      flags.GetDouble("gate-tolerance").value_or(0.90);

  MeasuredProbeOptions options;
  options.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed").value_or(0x11770c0ffeeLL));
  options.reps = static_cast<int>(flags.GetInt("reps").value_or(3));
  // Longer timed windows than the sweep's default: the gate makes a
  // pass/fail call per kernel from a single ratio, and the slow kernels
  // (tens of MB/s) complete too few ops in a short window to measure
  // within the tolerance this gate enforces.
  options.budget_ms = flags.GetDouble("budget-ms").value_or(30.0);
  // Above the LLC so cold slots stay cold, below the full-sweep default so
  // the gate stays ctest-fast.
  options.arena_bytes =
      static_cast<std::size_t>(flags.GetInt("arena-mb").value_or(384)) << 20;
  options.join_footprint_scale =
      flags.GetDouble("join-scale").value_or(0.25);
  MeasuredProbe probe(options);

  // Committed large-class config per kernel.
  const int sc = kNumSizeClasses - 1;
  std::vector<GateRow> rows;
  bool pass = true;
  for (std::size_t i = 0; i < TunedParamsCount(); ++i) {
    const TunedParam& p = TunedParamsBegin()[i];
    if (p.size_class != sc) continue;
    GateRow row;
    row.kernel = TaxKernelSiteName(p.kernel);
    row.committed_tuned_mbps = p.tuned_mbps;
    row.untuned_mbps =
        probe.Measure(p.kernel, sc, SoftPrefetchConfig::Disabled(),
                      TuneRegime::kHwOffEmulated);
    if (!p.config.enabled) {
      // A committed-disabled cell runs the identical code path tuned and
      // untuned; measuring it twice can only report timing noise (which
      // has been observed at +-20% at gate budgets — far beyond the
      // tolerance this gate enforces).
      row.tuned_mbps = row.untuned_mbps;
      row.ratio = 1.0;
      row.pass = true;
    } else {
      row.tuned_mbps = probe.Measure(p.kernel, sc, p.config,
                                     TuneRegime::kHwOffEmulated);
      row.ratio = row.untuned_mbps > 0.0
                      ? row.tuned_mbps / row.untuned_mbps
                      : 0.0;
      if (row.ratio < tolerance) {
        // One re-measure before declaring a regression: a single noisy
        // 15 ms window must not fail CI, a reproducible loss still does.
        const double untuned2 =
            probe.Measure(p.kernel, sc, SoftPrefetchConfig::Disabled(),
                          TuneRegime::kHwOffEmulated);
        const double tuned2 = probe.Measure(p.kernel, sc, p.config,
                                            TuneRegime::kHwOffEmulated);
        const double ratio2 = untuned2 > 0.0 ? tuned2 / untuned2 : 0.0;
        if (ratio2 > row.ratio) {
          row.untuned_mbps = untuned2;
          row.tuned_mbps = tuned2;
          row.ratio = ratio2;
        }
      }
      row.pass = row.ratio >= tolerance;
    }
    pass = pass && row.pass;
    rows.push_back(row);
  }

  const std::vector<AllocAudit> audits = AuditAdaptiveAllocs();
  std::uint64_t total_allocs = 0;
  for (const AllocAudit& a : audits) total_allocs += a.allocs;
  pass = pass && total_allocs == 0;

  Table table({"kernel", "untuned MB/s", "tuned MB/s", "ratio", "pass"});
  for (const GateRow& row : rows) {
    table.AddRow({row.kernel, Table::Num(row.untuned_mbps, 1),
                  Table::Num(row.tuned_mbps, 1), Table::Num(row.ratio, 3),
                  row.pass ? "yes" : "NO"});
  }
  table.Print("Tuned-vs-untuned gate (large class, hw-off emulated)");
  std::printf("\nadaptive steady-state allocs: %llu (15 entry points)\n",
              static_cast<unsigned long long>(total_allocs));

  const std::string json_path =
      flags.GetString("json").value_or("BENCH_tax.gate.json");
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"tax_tuner_gate\",\n"
               "  \"tolerance\": %.2f,\n  \"kernels\": [\n",
               tolerance);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const GateRow& row = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"untuned_mbps\": %.1f, "
                 "\"tuned_mbps\": %.1f, \"ratio\": %.3f, "
                 "\"committed_tuned_mbps\": %.1f, \"pass\": %s}%s\n",
                 row.kernel, row.untuned_mbps, row.tuned_mbps, row.ratio,
                 static_cast<double>(row.committed_tuned_mbps),
                 row.pass ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"adaptive_steady_state_allocs\": [\n");
  for (std::size_t i = 0; i < audits.size(); ++i) {
    std::fprintf(f, "    {\"entry_point\": \"%s\", \"allocs\": %llu}%s\n",
                 audits[i].name,
                 static_cast<unsigned long long>(audits[i].allocs),
                 i + 1 < audits.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"pass\": %s\n}\n", pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (!pass) {
    for (const GateRow& row : rows) {
      if (!row.pass) {
        std::fprintf(stderr,
                     "FAIL: %s tuned config measures %.3fx the untuned "
                     "baseline (tolerance %.2f)\n",
                     row.kernel, row.ratio, tolerance);
      }
    }
    for (const AllocAudit& a : audits) {
      if (a.allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: Adaptive %s performed %llu steady-state heap "
                     "allocations; the adaptive hot paths must be "
                     "allocation-free\n",
                     a.name, static_cast<unsigned long long>(a.allocs));
      }
    }
    return 1;
  }
  std::printf("gate OK (tolerance %.2f, 0 steady-state allocs)\n",
              tolerance);
  return 0;
}

}  // namespace
}  // namespace limoncello::bench

int main(int argc, char** argv) {
  limoncello::FlagParser flags;
  flags.Define("grid", "sweep grid: default | reduced")
      .Define("regimes", "both | hw_off | hw_on (default both)")
      .Define("reps", "best-of reps per measurement (default 3)")
      .Define("budget-ms", "timed-section target per rep (default 40)")
      .Define("arena-mb", "cold-slot arena size (default 768, gate 384)")
      .Define("join-scale", "hash-join build footprint scale (default 1.0)")
      .Define("seed", "workload generation seed")
      .Define("kernels",
              "comma-separated site-name substrings to restrict the sweep")
      .Define("smoke", "reduced grid and tiny budgets for CI")
      .Define("json", "output path (default BENCH_tax.json / .gate.json)")
      .Define("emit-params", "write generated tuned_params.cc to this path")
      .Define("gate", "verify committed tuned params + zero-alloc audit")
      .Define("gate-tolerance",
              "min tuned/untuned ratio per kernel (default 0.90)")
      .Define("help", "show this help");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.Help(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.Help(argv[0]).c_str());
    return 0;
  }
  if (flags.GetBool("gate").value_or(false)) {
    return limoncello::bench::RunGate(flags);
  }
  return limoncello::bench::RunSweep(flags);
}
