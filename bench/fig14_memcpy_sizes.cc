// Reproduces paper Fig. 14: the probability density of memcpy call sizes
// observed by fleet profiling — most copies are small, with a long heavy
// tail of large copies (the tail is where software prefetching pays).
#include <cstdio>

#include "stats/histogram.h"
#include "util/rng.h"
#include "util/table.h"
#include "workloads/generators.h"

namespace limoncello::bench {
namespace {

using limoncello::Histogram;
using limoncello::MemcpySizeDistribution;
using limoncello::Rng;
using limoncello::Table;

void Run() {
  MemcpySizeDistribution dist;
  Rng rng(14);
  Histogram sizes(1.0, 1.05);
  constexpr int kSamples = 500000;
  for (int i = 0; i < kSamples; ++i) {
    sizes.Add(static_cast<double>(dist.Sample(rng)));
  }

  Table table({"size_bucket(bytes)", "probability_mass(%)"});
  const double edges[] = {1,    8,     32,    64,     128,    256,    512,
                          1024, 4096,  16384, 65536,  262144, 1048576,
                          4194304, 67108864};
  for (std::size_t e = 0; e + 1 < sizeof(edges) / sizeof(edges[0]); ++e) {
    char label[48];
    std::snprintf(label, sizeof(label), "[%.0f, %.0f)", edges[e],
                  edges[e + 1]);
    table.AddRow({label, Table::Num(100.0 * sizes.MassBetween(
                                                edges[e], edges[e + 1]),
                                    2)});
  }
  table.Print("Fig. 14: memcpy call-size distribution (PDF)");
  std::printf(
      "\nSummary: P50=%.0f B, P90=%.0f B, P99=%.0f B, max=%.0f B; mass "
      "below 1 KiB: %.1f%%\n(paper: most copy sizes are small, with a "
      "long tail of large copies).\n",
      sizes.Percentile(50), sizes.Percentile(90), sizes.Percentile(99),
      sizes.Max(), 100.0 * sizes.MassBetween(0, 1024));
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
