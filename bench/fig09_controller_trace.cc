// Reproduces paper Fig. 9 (and exercises the Fig. 8 state machine): the
// hardware-prefetcher state over time for a scripted bandwidth profile
// that crosses the upper and lower thresholds with short excursions.
#include <cmath>
#include <cstdio>
#include <deque>

#include "core/daemon.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

using limoncello::ControllerAction;
using limoncello::ControllerConfig;
using limoncello::ControllerStateName;
using limoncello::LimoncelloDaemon;
using limoncello::PrefetchActuator;
using limoncello::Table;
using limoncello::UtilizationSource;
using limoncello::kNsPerSec;

class ScriptedTelemetry : public UtilizationSource {
 public:
  explicit ScriptedTelemetry(std::vector<double> samples)
      : samples_(samples.begin(), samples.end()) {}

  std::optional<double> SampleUtilization() override {
    if (samples_.empty()) return 0.5;
    const double s = samples_.front();
    samples_.pop_front();
    return s;
  }

 private:
  std::deque<double> samples_;
};

class RecordingActuator : public PrefetchActuator {
 public:
  bool DisablePrefetchers() override { return true; }
  bool EnablePrefetchers() override { return true; }
};

void Run() {
  // The paper's worked example: sustained high load at t=0 (disable);
  // a dip below UT but above LT around t=7.5 (stay disabled); a sustained
  // dip below LT at t=10 (enable); load between LT and UT before t=20
  // (stay enabled).
  std::vector<double> profile;
  auto add = [&](double value, int seconds) {
    for (int i = 0; i < seconds; ++i) profile.push_back(value);
  };
  add(0.86, 6);  // above UT: arming + disable
  add(0.72, 3);  // between thresholds: stays disabled
  add(0.52, 7);  // below LT: arming + enable
  add(0.70, 6);  // between thresholds: stays enabled
  add(0.90, 8);  // above UT again: disable
  add(0.40, 8);  // deep idle: enable

  ControllerConfig config;
  config.upper_threshold = 0.80;
  config.lower_threshold = 0.60;
  config.sustain_duration_ns = 3 * kNsPerSec;
  ScriptedTelemetry telemetry(profile);
  RecordingActuator actuator;
  LimoncelloDaemon daemon(config, &telemetry, &actuator);

  Table table({"t(s)", "membw_util(%)", "controller_state", "prefetchers",
               "action"});
  for (std::size_t t = 0; t < profile.size(); ++t) {
    const auto record =
        daemon.RunTick(static_cast<limoncello::SimTimeNs>(t) * kNsPerSec);
    const char* action = "";
    if (record.action == ControllerAction::kDisablePrefetchers) {
      action = "<< DISABLE";
    } else if (record.action == ControllerAction::kEnablePrefetchers) {
      action = "<< ENABLE";
    }
    table.AddRow({Table::Num(static_cast<std::int64_t>(t)),
                  Table::Num(100.0 * record.utilization, 0),
                  ControllerStateName(record.state),
                  daemon.controller().PrefetchersShouldBeEnabled() ? "on"
                                                                   : "off",
                  action});
  }
  table.Print("Fig. 9: prefetcher state over time (hysteresis trace)");
  std::printf(
      "\nSummary: %llu toggles over %zu s; dips between the thresholds "
      "never toggle\n(paper Fig. 9 shows exactly this two-threshold + "
      "sustain behaviour).\n",
      static_cast<unsigned long long>(daemon.controller().toggle_count()),
      profile.size());
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
