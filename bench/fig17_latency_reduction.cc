// Reproduces paper Fig. 17: reduction in memory (L3 miss) latency after
// the Limoncello rollout, by percentile across machine-tick samples.
// Paper: ~-13 % at the median, ~-10 % at P99.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  FleetOptions options = DefaultFleetOptions(37);
  options.fill = 0.62;
  const FleetAb ab = RunFleetAb(
      PlatformConfig::Platform1(), DeploymentMode::kBaseline,
      DeploymentMode::kFullLimoncello, DeployedControllerConfig(), options);

  Table table({"percentile", "before(ns)", "after(ns)", "change(%)"});
  for (double p : {50.0, 90.0, 99.0}) {
    const double before = ab.before.latency_ns.Percentile(p);
    const double after = ab.after.latency_ns.Percentile(p);
    char label[8];
    std::snprintf(label, sizeof(label), "P%.0f", p);
    table.AddRow({label, Table::Num(before, 1), Table::Num(after, 1),
                  Table::Num(100.0 * (after / before - 1.0), 2)});
  }
  table.Print("Fig. 17: memory latency reduction from Limoncello");
  std::printf(
      "\nPaper: -13%% median, -10%% P99 L3 latency. Expected shape: "
      "latency falls at\nevery percentile because prefetch traffic no "
      "longer queues behind demand\nat loaded sockets.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
