// Reproduces paper Fig. 15b: native memcpy speedup vs. copy size for a
// range of software-prefetch degrees, distance fixed at 512 bytes.
// See fig15a for the host-hardware caveat.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "tax/prefetching_memcpy.h"
#include "util/rng.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

using limoncello::Rng;
using limoncello::SoftPrefetchConfig;
using limoncello::Table;

void Run() {
  const std::size_t sizes[] = {256,       1024,      4 * 1024,
                               16 * 1024, 64 * 1024, 256 * 1024,
                               1000 * 1024};
  const std::uint32_t degrees[] = {64, 128, 256, 512, 1024, 2048};

  const std::size_t pool = 256 * 1024 * 1024;
  std::vector<char> src(pool);
  std::vector<char> dst(pool);
  Rng rng(2);
  for (std::size_t i = 0; i < pool; i += 4096) {
    src[i] = static_cast<char>(rng.NextU64());
  }

  std::vector<std::string> header = {"memcpy_size"};
  for (std::uint32_t g : degrees) {
    header.push_back("deg=" + std::to_string(g) + "(%)");
  }
  Table table(header);

  for (std::size_t size : sizes) {
    const int calls = size >= 256 * 1024 ? 64 : 512;
    const int reps = 9;
    std::size_t cursor = 0;
    auto next_slice = [&]() {
      cursor += size + 4096;
      if (cursor + size >= pool) cursor = 0;
      return cursor;
    };
    SoftPrefetchConfig off = SoftPrefetchConfig::Disabled();
    const double base_ns = TimeNsPerCall(
        [&] {
          const std::size_t at = next_slice();
          PrefetchingMemcpy(dst.data() + at, src.data() + at, size, off);
        },
        calls, reps);

    std::vector<std::string> row = {std::to_string(size)};
    for (std::uint32_t degree : degrees) {
      SoftPrefetchConfig config;
      config.distance_bytes = 512;
      config.degree_bytes = degree;
      config.min_size_bytes = 0;
      const double ns = TimeNsPerCall(
          [&] {
            const std::size_t at = next_slice();
            PrefetchingMemcpy(dst.data() + at, src.data() + at, size,
                              config);
          },
          calls, reps);
      row.push_back(Table::Num(100.0 * (base_ns / ns - 1.0), 2));
    }
    table.AddRow(row);
  }
  table.Print(
      "Fig. 15b: memcpy speedup vs size, sweeping prefetch degree "
      "(distance=512B)");
  std::printf(
      "\nPaper shape: very large degrees hurt small/medium copies "
      "(over-prefetch);\nmoderate degrees (128-512B) are safest across "
      "sizes.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
