// Reproduces paper Fig. 15c: LLVM-libc-style memcpy distribution
// benchmarks under the four prefetcher states, relative to +HW,-SW.
// Runs on the detailed simulator, which (unlike the host) lets us
// actually disable the hardware prefetchers.
//
// Expected shape: software prefetching recovers (and slightly exceeds)
// the loss from disabling hardware prefetchers on the copy path:
// (-HW,+SW) > (-HW,-SW), and (+HW,+SW) is close to neutral.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "util/table.h"
#include "workloads/generators.h"

namespace limoncello::bench {
namespace {

// Builds the fixed sequence of memcpy calls (sizes from the fleet
// distribution) as one concatenated finite trace.
std::unique_ptr<AccessGenerator> MemcpySequence(bool sw_prefetch,
                                                std::uint64_t seed) {
  // LLVM-libc style: each sampled copy is re-run several times over the
  // same buffers (the benchmark loops), so the steady state is cache-warm
  // for small copies; only the heavy tail streams from memory.
  constexpr int kDistinctCalls = 80;
  constexpr int kRepeats = 100;
  // The LLVM-libc sweep covers 0.25 KB - 1000 KB (paper Fig. 15a/b), so
  // cap the tail accordingly.
  MemcpySizeDistribution::Options size_options;
  size_options.max_bytes = 512 * 1024;
  MemcpySizeDistribution dist(size_options);
  Rng rng(seed);
  std::vector<MixGenerator::Element> elements;
  Addr src_base = 0;
  Addr dst_base = 2ULL * kGiB;
  for (int call = 0; call < kDistinctCalls; ++call) {
    MemcpyTraceGenerator::Options o;
    o.bytes = dist.Sample(rng);
    o.src = src_base;
    o.dst = dst_base;
    o.function = 0;
    if (sw_prefetch) {
      o.sw_prefetch_distance_bytes = 512;
      o.sw_prefetch_degree_bytes = 256;
      o.sw_prefetch_min_size_bytes = 2048;  // deployed size gate
      o.sw_prefetch_dst = true;             // memcpy knows both streams
    }
    for (int rep = 0; rep < kRepeats; ++rep) {
      MixGenerator::Element e;
      e.generator = std::make_unique<MemcpyTraceGenerator>(o);
      e.weight = 1.0;
      e.burst_length = 1u << 30;  // run each copy to completion in order
      elements.push_back(std::move(e));
    }
    src_base += (o.bytes / kCacheLineBytes + 2) * kCacheLineBytes;
    dst_base += (o.bytes / kCacheLineBytes + 2) * kCacheLineBytes;
    if (src_base > 1ULL * kGiB) src_base = 0;
    if (dst_base > 3ULL * kGiB) dst_base = 2ULL * kGiB;
  }
  return std::make_unique<MixGenerator>(std::move(elements),
                                        Rng(seed).Fork(9));
}

double RunCycles(bool hw_on, bool sw_on) {
  SocketConfig config;
  config.num_cores = 2;
  config.memory.peak_gbps = 6.0;
  config.memory.jitter_fraction = 0.0;
  // Server-class LLC: the benchmark's working set fits once warm, as in
  // the looping LLVM-libc harness.
  config.llc_bytes_per_core = 16 * kMiB;
  Socket socket(config, 4, Rng(3));
  socket.SetAllPrefetchersEnabled(hw_on);
  socket.SetWorkload(0, MemcpySequence(sw_on, 77));
  while (!socket.WorkloadExhausted(0)) socket.Step(100 * kNsPerUs);
  return static_cast<double>(socket.core_active_cycles(0));
}

void Run() {
  const double baseline = RunCycles(/*hw_on=*/true, /*sw_on=*/false);
  struct State {
    const char* label;
    bool hw;
    bool sw;
  };
  const State states[] = {
      {"-HW,-SW", false, false},
      {"-HW,+SW", false, true},
      {"+HW,+SW", true, true},
  };
  Table table({"prefetcher_state", "speedup_vs(+HW,-SW)(%)"});
  table.AddRow({"+HW,-SW (baseline)", "0.00"});
  for (const State& s : states) {
    const double cycles = RunCycles(s.hw, s.sw);
    table.AddRow({s.label, Table::Num(100.0 * (baseline / cycles - 1.0), 2)});
  }
  table.Print(
      "Fig. 15c: libc-distribution memcpy benchmarks across prefetcher "
      "states");
  std::printf(
      "\nPaper shape: (-HW,+SW) beats (-HW,-SW) — software prefetch "
      "recovers the\nloss from disabling hardware prefetchers on the "
      "copy path; (+HW,+SW) is\nroughly neutral.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
