// Reproduces paper Fig. 19: after deploying Limoncello, memory bandwidth
// no longer saturates until the 70-80 % CPU-utilization band (vs. the
// 40-60 % band before, Fig. 4), so machines can be driven to the target
// CPU utilization.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

int FirstSaturatedBucket(const std::vector<CpuBucketRow>& rows,
                         double threshold) {
  for (const CpuBucketRow& row : rows) {
    if (row.machines > 0 && row.avg_bw_utilization >= threshold) {
      return row.bucket;
    }
  }
  return -1;
}

void Run() {
  FleetOptions options = DefaultFleetOptions(43);
  options.fill = 0.62;
  const FleetAb ab = RunFleetAb(
      PlatformConfig::Platform1(), DeploymentMode::kBaseline,
      DeploymentMode::kFullLimoncello, DeployedControllerConfig(), options);
  const auto before = BucketByCpu(ab.before);
  const auto after = BucketByCpu(ab.after);

  Table table({"cpu_bucket(%)", "before: machines", "before: bw_util(%)",
               "after: machines", "after: bw_util(%)"});
  for (std::size_t b = 0; b < before.size(); ++b) {
    if (before[b].machines == 0 && after[b].machines == 0) continue;
    char label[16];
    std::snprintf(label, sizeof(label), "%d-%d", before[b].bucket * 10,
                  before[b].bucket * 10 + 10);
    table.AddRow(
        {label, Table::Num(static_cast<std::int64_t>(before[b].machines)),
         Table::Num(100.0 * before[b].avg_bw_utilization, 1),
         Table::Num(static_cast<std::int64_t>(after[b].machines)),
         Table::Num(100.0 * after[b].avg_bw_utilization, 1)});
  }
  table.Print("Fig. 19: bandwidth vs CPU bucket, before/after Limoncello");

  const int sat_before = FirstSaturatedBucket(before, 0.85);
  const int sat_after = FirstSaturatedBucket(after, 0.85);
  auto bucket_str = [](int b) {
    return b < 0 ? std::string("never")
                 : std::to_string(b * 10) + "-" + std::to_string(b * 10 + 10) +
                       "%";
  };
  std::printf(
      "\nSummary: bandwidth reaches 85%% of saturation at CPU bucket %s "
      "before vs %s\nafter (paper: saturation deferred from the 40-50%% "
      "band to the 70-80%% band).\n",
      bucket_str(sat_before).c_str(), bucket_str(sat_after).c_str());
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
