// Reproduces paper Fig. 6: the Limoncello operating envelope on the
// bandwidth-latency curve — hardware prefetchers enabled below the
// upper threshold (optimizing hit rate), disabled above it (optimizing
// latency).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/hysteresis_controller.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  constexpr int kLevels = 12;
  const auto on = RunLoadedLatency(/*prefetchers_on=*/true, kLevels, 3);
  const auto off = RunLoadedLatency(/*prefetchers_on=*/false, kLevels, 3);
  const ControllerConfig config = DeployedControllerConfig();

  Table table({"utilization(%)", "latency_on(ns)", "latency_off(ns)",
               "limoncello_state", "limoncello_latency(ns)"});
  for (int i = 0; i < kLevels; ++i) {
    // Steady-state controller choice at this utilization level (using
    // the prefetchers-on utilization as the operating point).
    const bool disabled = on[i].utilization > config.upper_threshold;
    table.AddRow(
        {Table::Num(100.0 * on[i].utilization, 1),
         Table::Num(on[i].latency_ns, 1), Table::Num(off[i].latency_ns, 1),
         disabled ? "PF disabled" : "PF enabled",
         Table::Num(disabled ? off[i].latency_ns : on[i].latency_ns, 1)});
  }
  table.Print("Fig. 6: Limoncello operating regions on the latency curve");
  std::printf(
      "\nSummary: below the %.0f%% threshold Limoncello keeps prefetchers "
      "on\n(optimizing cache hit rate); above it, the off-curve's lower "
      "latency wins.\n",
      100.0 * config.upper_threshold);
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
