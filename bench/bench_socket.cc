// Socket hot-path microbenchmark: end-to-end Socket::ProcessAccess
// throughput (demand lines/sec through the full L1/L2/LLC/memory path,
// prefetch engines on and off) plus a heap-allocation audit of the
// steady-state access loop. Emits BENCH_socket.json, which also carries
// the headline cache microbench (demand-hit-heavy LLC) and its recorded
// pre-refactor baseline so the layout-refactor win stays a tracked
// number.
//
//   bench_socket [--epochs=N] [--smoke] [--json=BENCH_socket.json]
//                [--check-allocs] [--cache-baseline=APS]
//                [--socket-baseline=LPS]
//
// --check-allocs exits non-zero if the steady-state tick loop performed
// any heap allocation (the zero-alloc invariant of the access loop), or
// if the journaled daemon arm allocates more than the bare one (the
// StateJournal append path must stay off the heap too).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/daemon.h"
#include "faults/fault_injector.h"
#include "msr/simulated_msr_device.h"
#include "recovery/recovery_manager.h"
#include "util/flags.h"
#include "util/table.h"
#include "workloads/generators.h"

// ---------------------------------------------------------------------------
// Global allocation probe. Every operator new in this binary funnels
// through CountedAlloc; the steady-state window between warm-up and the
// end of the timed loop must allocate nothing (the scratch-buffer
// invariant in Socket::ProcessAccess).

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<bool> g_count_allocs{false};

void* CountedAlloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace limoncello::bench {
namespace {

// Pre-refactor numbers recorded on this repo's reference machine before
// the flat-layout / probe-once / zero-alloc refactor, so the emitted JSON
// always shows the comparison. Override with --cache-baseline /
// --socket-baseline when re-baselining on different hardware.
constexpr double kPreRefactorCacheHitAps = 23234207.6;
constexpr double kPreRefactorSocketLps = 2978325.3;

struct SocketArmResult {
  bool prefetchers_on = false;
  std::uint64_t lines = 0;
  std::uint64_t instructions = 0;
  double seconds = 0.0;
  double lines_per_sec = 0.0;
  std::uint64_t steady_state_allocs = 0;
};

SocketConfig BenchSocketConfig() {
  SocketConfig config;
  config.num_cores = 4;
  config.memory.jitter_fraction = 0.0;
  return config;
}

// One core per access-pattern archetype: stream, memcpy-shaped stream
// with stores, strided walk, random (prefetch-hostile).
void AttachWorkloads(Socket* socket, std::uint64_t seed) {
  SequentialStreamGenerator::Options stream;
  stream.working_set_bytes = 64 * kMiB;
  stream.mean_stream_bytes = 32 * 1024;
  stream.function = 0;
  socket->SetWorkload(0, std::make_unique<SequentialStreamGenerator>(
                             stream, Rng(seed).Fork(0)));
  SequentialStreamGenerator::Options copy = stream;
  copy.store_fraction = 1.0;
  copy.function = 1;
  socket->SetWorkload(1, std::make_unique<SequentialStreamGenerator>(
                             copy, Rng(seed).Fork(1)));
  StridedGenerator::Options strided;
  strided.working_set_bytes = 64 * kMiB;
  strided.stride_lines = 4;
  strided.function = 2;
  socket->SetWorkload(
      2, std::make_unique<StridedGenerator>(strided, Rng(seed).Fork(2)));
  RandomAccessGenerator::Options random;
  random.working_set_bytes = 64 * kMiB;
  random.function = 3;
  socket->SetWorkload(3, std::make_unique<RandomAccessGenerator>(
                             random, Rng(seed).Fork(3)));
}

SocketArmResult RunSocketArm(bool prefetchers_on, int epochs) {
  using Clock = std::chrono::steady_clock;
  Socket socket(BenchSocketConfig(), /*num_functions=*/8, Rng(0x50C7));
  socket.SetAllPrefetchersEnabled(prefetchers_on);
  AttachWorkloads(&socket, 0x50C7);

  // Warm-up: trains the prefetch engines, fills the caches, and grows
  // every scratch buffer to its steady-state capacity.
  for (int epoch = 0; epoch < 12; ++epoch) socket.Step(100 * kNsPerUs);

  const PmuCounters warm = socket.counters();
  g_heap_allocs.store(0);
  g_count_allocs.store(true);
  const auto start = Clock::now();
  for (int epoch = 0; epoch < epochs; ++epoch) socket.Step(100 * kNsPerUs);
  const auto end = Clock::now();
  g_count_allocs.store(false);
  const PmuCounters& done = socket.counters();

  SocketArmResult result;
  result.prefetchers_on = prefetchers_on;
  result.lines = done.lines_touched - warm.lines_touched;
  result.instructions = done.instructions - warm.instructions;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.lines_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(result.lines) / result.seconds
          : 0.0;
  result.steady_state_allocs = g_heap_allocs.load();
  return result;
}

// ---------------------------------------------------------------------------
// Daemon fault-path overhead guard: the control loop with the fault
// decorators in place (but an empty FaultPlan) must allocate exactly as
// much as the bare loop in steady state — the no-fault path through
// FaultyUtilizationSource / FaultyMsrDevice is allocation-free.

struct DaemonArmResult {
  bool with_fault_layer = false;
  std::uint64_t ticks = 0;
  double seconds = 0.0;
  double ticks_per_sec = 0.0;
  std::uint64_t steady_state_allocs = 0;
};

// Sawtooth utilization sweeping through both thresholds so the daemon
// keeps actuating (period 200 ticks, 0.55 <-> 0.9).
class SawtoothTelemetry : public UtilizationSource {
 public:
  std::optional<double> SampleUtilization() override {
    const int phase = tick_++ % 200;
    const double frac =
        phase < 100 ? phase / 100.0 : (200 - phase) / 100.0;
    return 0.55 + 0.35 * frac;
  }

 private:
  int tick_ = 0;
};

DaemonArmResult RunDaemonArm(bool with_fault_layer, int ticks) {
  using Clock = std::chrono::steady_clock;
  constexpr int kCpus = 8;
  SimulatedMsrDevice device(kCpus);
  FaultPlan plan;  // empty: the fault layer is present but never fires
  FaultInjector injector(&plan);
  FaultyMsrDevice faulty_device(&device, &injector);
  MsrDevice* msr =
      with_fault_layer ? static_cast<MsrDevice*>(&faulty_device) : &device;
  PrefetchControl control(msr, PlatformMsrLayout::kIntelStyle, 0, kCpus);
  MsrPrefetchActuator actuator(&control, kCpus);
  SawtoothTelemetry inner_telemetry;
  FaultyUtilizationSource faulty_telemetry(&inner_telemetry, &injector);
  UtilizationSource* telemetry =
      with_fault_layer ? static_cast<UtilizationSource*>(&faulty_telemetry)
                       : &inner_telemetry;
  ControllerConfig config;
  config.sustain_duration_ns = 3 * kNsPerSec;
  LimoncelloDaemon daemon(config, telemetry, &actuator);

  // Warm-up: grows the daemon's trace buffers past the timed window.
  for (int t = 0; t < 256; ++t) {
    if (with_fault_layer) injector.BeginTick();
    daemon.RunTick(static_cast<SimTimeNs>(t) * kNsPerSec);
  }

  g_heap_allocs.store(0);
  g_count_allocs.store(true);
  const auto start = Clock::now();
  for (int t = 256; t < 256 + ticks; ++t) {
    if (with_fault_layer) injector.BeginTick();
    daemon.RunTick(static_cast<SimTimeNs>(t) * kNsPerSec);
  }
  const auto end = Clock::now();
  g_count_allocs.store(false);

  DaemonArmResult result;
  result.with_fault_layer = with_fault_layer;
  result.ticks = static_cast<std::uint64_t>(ticks);
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.ticks_per_sec =
      result.seconds > 0.0 ? ticks / result.seconds : 0.0;
  result.steady_state_allocs = g_heap_allocs.load();
  return result;
}

// ---------------------------------------------------------------------------
// Recovery-overhead guard: the control loop journaling its state through
// a RecoveryManager (worst case: an append every tick, periodic
// compaction) must allocate exactly as much as the bare loop in steady
// state — StateJournal serializes into a preallocated buffer and writes
// to a kept-open descriptor, so persistence costs I/O, never heap.

struct RecoveryArmResult {
  bool with_journal = false;
  std::uint64_t ticks = 0;
  double seconds = 0.0;
  double ticks_per_sec = 0.0;
  std::uint64_t steady_state_allocs = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_compactions = 0;
};

RecoveryArmResult RunRecoveryArm(bool with_journal, int ticks,
                                 const std::string& journal_path) {
  using Clock = std::chrono::steady_clock;
  constexpr int kCpus = 8;
  SimulatedMsrDevice device(kCpus);
  PrefetchControl control(&device, PlatformMsrLayout::kIntelStyle, 0, kCpus);
  MsrPrefetchActuator actuator(&control, kCpus);
  SawtoothTelemetry telemetry;
  ControllerConfig config;
  config.sustain_duration_ns = 3 * kNsPerSec;
  LimoncelloDaemon daemon(config, &telemetry, &actuator);

  std::unique_ptr<RecoveryManager> recovery;
  if (with_journal) {
    (void)std::remove(journal_path.c_str());
    RecoveryOptions options;
    options.state_file = journal_path;
    options.snapshot_period_ticks = 1;  // worst case: journal every tick
    options.compact_every_appends = 64;
    recovery = std::make_unique<RecoveryManager>(options, &daemon);
    (void)recovery->RecoverAndReconcile();
  }

  // Warm-up covers trace-buffer growth, the journal's lazy open, and at
  // least one compaction cycle, so the timed window sees only the
  // steady-state append path.
  for (int t = 0; t < 256; ++t) {
    const LimoncelloDaemon::TickRecord record =
        daemon.RunTick(static_cast<SimTimeNs>(t) * kNsPerSec);
    if (recovery != nullptr) recovery->OnTickComplete(record);
  }

  g_heap_allocs.store(0);
  g_count_allocs.store(true);
  const auto start = Clock::now();
  for (int t = 256; t < 256 + ticks; ++t) {
    const LimoncelloDaemon::TickRecord record =
        daemon.RunTick(static_cast<SimTimeNs>(t) * kNsPerSec);
    if (recovery != nullptr) recovery->OnTickComplete(record);
  }
  const auto end = Clock::now();
  g_count_allocs.store(false);

  RecoveryArmResult result;
  result.with_journal = with_journal;
  result.ticks = static_cast<std::uint64_t>(ticks);
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.ticks_per_sec =
      result.seconds > 0.0 ? ticks / result.seconds : 0.0;
  result.steady_state_allocs = g_heap_allocs.load();
  if (recovery != nullptr) {
    result.journal_appends = recovery->journal().stats().appends;
    result.journal_compactions = recovery->journal().stats().compactions;
    recovery.reset();
    (void)std::remove(journal_path.c_str());
  }
  return result;
}

int Run(const FlagParser& flags) {
  const bool smoke = flags.GetBool("smoke").value_or(false);
  const int epochs =
      static_cast<int>(flags.GetInt("epochs").value_or(smoke ? 6 : 60));
  const double cache_baseline =
      flags.GetDouble("cache-baseline").value_or(kPreRefactorCacheHitAps);
  const double socket_baseline =
      flags.GetDouble("socket-baseline").value_or(kPreRefactorSocketLps);

  // Headline cache microbench (same cell bench_cache reports): the
  // acceptance number for the layout refactor lives in this JSON too.
  const CacheBenchResult cache_hit = RunCacheMicrobench(
      "llc", CacheConfig{16 * kMiB, 16, ReplacementPolicy::kLru},
      "demand_hit", smoke ? 150000 : 4000000, smoke ? 1 : 3);

  const SocketArmResult arms[] = {RunSocketArm(true, epochs),
                                  RunSocketArm(false, epochs)};
  const int daemon_ticks = smoke ? 512 : 4096;
  const DaemonArmResult daemon_arms[] = {
      RunDaemonArm(/*with_fault_layer=*/false, daemon_ticks),
      RunDaemonArm(/*with_fault_layer=*/true, daemon_ticks)};
  const RecoveryArmResult recovery_arms[] = {
      RunRecoveryArm(/*with_journal=*/false, daemon_ticks,
                     "bench_socket_state.journal"),
      RunRecoveryArm(/*with_journal=*/true, daemon_ticks,
                     "bench_socket_state.journal")};

  Table table({"prefetchers", "Mlines/sec", "MIPS", "steady_allocs"});
  for (const SocketArmResult& arm : arms) {
    table.AddRow({arm.prefetchers_on ? "on" : "off",
                  Table::Num(arm.lines_per_sec / 1e6, 2),
                  Table::Num(static_cast<double>(arm.instructions) /
                                 arm.seconds / 1e6,
                             1),
                  Table::Num(static_cast<std::int64_t>(
                      arm.steady_state_allocs))});
  }
  table.Print("Socket::ProcessAccess throughput (demand lines/sec)");

  Table daemon_table({"daemon arm", "Mticks/sec", "steady_allocs"});
  for (const DaemonArmResult& arm : daemon_arms) {
    daemon_table.AddRow({arm.with_fault_layer ? "fault layer (empty plan)"
                                              : "bare",
                         Table::Num(arm.ticks_per_sec / 1e6, 2),
                         Table::Num(static_cast<std::int64_t>(
                             arm.steady_state_allocs))});
  }
  daemon_table.Print("Daemon control loop (fault-injection overhead)");

  Table recovery_table(
      {"recovery arm", "Mticks/sec", "steady_allocs", "appends"});
  for (const RecoveryArmResult& arm : recovery_arms) {
    recovery_table.AddRow(
        {arm.with_journal ? "journal (period 1)" : "bare",
         Table::Num(arm.ticks_per_sec / 1e6, 2),
         Table::Num(static_cast<std::int64_t>(arm.steady_state_allocs)),
         Table::Num(static_cast<std::int64_t>(arm.journal_appends))});
  }
  recovery_table.Print("Daemon control loop (state-journal overhead)");
  std::printf("\ncache llc/lru/demand_hit: %.1f M accesses/sec",
              cache_hit.accesses_per_sec / 1e6);
  if (cache_baseline > 0.0) {
    std::printf(" (%.2fx vs pre-refactor %.1f M/s)",
                cache_hit.accesses_per_sec / cache_baseline,
                cache_baseline / 1e6);
  }
  std::printf("\n");

  const std::string json_path =
      flags.GetString("json").value_or("BENCH_socket.json");
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(
      f,
      "{\n  \"bench\": \"socket_hot_path\",\n  \"epochs\": %d,\n"
      "  \"cache_demand_hit\": {\"level\": \"llc\", \"policy\": \"lru\", "
      "\"accesses_per_sec\": %.1f, "
      "\"pre_refactor_accesses_per_sec\": %.1f, "
      "\"speedup_vs_pre_refactor\": %.3f},\n  \"socket\": [\n",
      epochs, cache_hit.accesses_per_sec, cache_baseline,
      cache_baseline > 0.0 ? cache_hit.accesses_per_sec / cache_baseline
                           : 0.0);
  for (std::size_t i = 0; i < 2; ++i) {
    const SocketArmResult& arm = arms[i];
    std::fprintf(f,
                 "    {\"prefetchers\": \"%s\", \"lines_per_sec\": %.1f, "
                 "\"seconds\": %.6f, \"steady_state_allocs\": %llu}%s\n",
                 arm.prefetchers_on ? "on" : "off", arm.lines_per_sec,
                 arm.seconds,
                 static_cast<unsigned long long>(arm.steady_state_allocs),
                 i + 1 < 2 ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"daemon_fault_overhead\": [\n");
  for (std::size_t i = 0; i < 2; ++i) {
    const DaemonArmResult& arm = daemon_arms[i];
    std::fprintf(
        f,
        "    {\"arm\": \"%s\", \"ticks_per_sec\": %.1f, "
        "\"steady_state_allocs\": %llu}%s\n",
        arm.with_fault_layer ? "fault_layer_empty_plan" : "bare",
        arm.ticks_per_sec,
        static_cast<unsigned long long>(arm.steady_state_allocs),
        i + 1 < 2 ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"recovery_overhead\": [\n");
  for (std::size_t i = 0; i < 2; ++i) {
    const RecoveryArmResult& arm = recovery_arms[i];
    std::fprintf(
        f,
        "    {\"arm\": \"%s\", \"ticks_per_sec\": %.1f, "
        "\"steady_state_allocs\": %llu, \"journal_appends\": %llu, "
        "\"journal_compactions\": %llu}%s\n",
        arm.with_journal ? "journal_every_tick" : "bare", arm.ticks_per_sec,
        static_cast<unsigned long long>(arm.steady_state_allocs),
        static_cast<unsigned long long>(arm.journal_appends),
        static_cast<unsigned long long>(arm.journal_compactions),
        i + 1 < 2 ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"pre_refactor_lines_per_sec_on\": %.1f,\n"
               "  \"socket_speedup_vs_pre_refactor\": %.3f\n}\n",
               socket_baseline,
               socket_baseline > 0.0
                   ? arms[0].lines_per_sec / socket_baseline
                   : 0.0);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());

  if (flags.GetBool("check-allocs").value_or(false)) {
    for (const SocketArmResult& arm : arms) {
      if (arm.steady_state_allocs != 0) {
        std::fprintf(stderr,
                     "FAIL: %llu heap allocations in the steady-state "
                     "access loop (prefetchers %s); the hot path must be "
                     "allocation-free\n",
                     static_cast<unsigned long long>(
                         arm.steady_state_allocs),
                     arm.prefetchers_on ? "on" : "off");
        return 1;
      }
    }
    if (daemon_arms[0].steady_state_allocs !=
        daemon_arms[1].steady_state_allocs) {
      std::fprintf(stderr,
                   "FAIL: the empty-plan fault layer changed the daemon "
                   "loop's allocation count (bare %llu vs fault layer "
                   "%llu); the no-fault path must add zero allocations\n",
                   static_cast<unsigned long long>(
                       daemon_arms[0].steady_state_allocs),
                   static_cast<unsigned long long>(
                       daemon_arms[1].steady_state_allocs));
      return 1;
    }
    if (recovery_arms[0].steady_state_allocs !=
        recovery_arms[1].steady_state_allocs) {
      std::fprintf(stderr,
                   "FAIL: journaling changed the daemon loop's allocation "
                   "count (bare %llu vs journal %llu); the StateJournal "
                   "append path must be allocation-free\n",
                   static_cast<unsigned long long>(
                       recovery_arms[0].steady_state_allocs),
                   static_cast<unsigned long long>(
                       recovery_arms[1].steady_state_allocs));
      return 1;
    }
    std::printf("steady-state allocation check: clean\n");
  }
  return 0;
}

}  // namespace
}  // namespace limoncello::bench

int main(int argc, char** argv) {
  limoncello::FlagParser flags;
  flags.Define("epochs", "timed 100us epochs per arm (default 60, smoke 6)")
      .Define("smoke", "tiny sizes for CI (a few ms)")
      .Define("json", "output path (default BENCH_socket.json)")
      .Define("check-allocs", "fail if the steady-state loop allocates")
      .Define("cache-baseline", "pre-refactor cache headline accesses/sec")
      .Define("socket-baseline", "pre-refactor socket lines/sec (on-arm)")
      .Define("help", "show this help");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.Help(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.Help(argv[0]).c_str());
    return 0;
  }
  return limoncello::bench::Run(flags);
}
