// Reproduces paper Table 1: reduction in average, P99, and peak socket
// memory bandwidth when hardware prefetchers are disabled fleet-wide,
// for both evaluation platforms.
//
// Paper values: average -15.7 % / -11.2 %, P99 -10.4 % / -2.8 %,
// peak -5.6 % / -5.5 % (platform 1 / platform 2).
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  Table table({"membw_reduction", "platform1(%)", "platform2(%)"});
  double avg[2];
  double p99[2];
  double peak[2];
  const PlatformConfig platforms[2] = {PlatformConfig::Platform1(),
                                       PlatformConfig::Platform2()};
  for (int p = 0; p < 2; ++p) {
    FleetOptions options = DefaultFleetOptions(11);
    // Loaded fleet: the hottest sockets sit at the channel ceiling in
    // both arms, which is why the paper's peak reduction is small.
    options.fill = 0.62;
    const FleetAb ab =
        RunFleetAb(platforms[p], DeploymentMode::kBaseline,
                   DeploymentMode::kAblationOff, DeployedControllerConfig(),
                   options);
    auto reduction = [&](double before, double after) {
      return before > 0 ? 100.0 * (before - after) / before : 0.0;
    };
    avg[p] = reduction(ab.before.bandwidth_gbps.Mean(),
                       ab.after.bandwidth_gbps.Mean());
    p99[p] = reduction(ab.before.bandwidth_gbps.Percentile(99),
                       ab.after.bandwidth_gbps.Percentile(99));
    peak[p] = reduction(ab.before.bandwidth_gbps.Max(),
                        ab.after.bandwidth_gbps.Max());
  }
  table.AddRow({"Average", Table::Num(avg[0], 1), Table::Num(avg[1], 1)});
  table.AddRow({"P99", Table::Num(p99[0], 1), Table::Num(p99[1], 1)});
  table.AddRow({"Peak", Table::Num(peak[0], 1), Table::Num(peak[1], 1)});
  table.Print(
      "Table 1: memory bandwidth reduction from disabling HW prefetchers");
  std::printf(
      "\nPaper: average 15.7/11.2, P99 10.4/2.8, peak 5.6/5.5 (%%)\n"
      "Expected shape: platform 1 reduces more than platform 2; the\n"
      "reduction shrinks toward the tail (saturated sockets are capped\n"
      "by the channel, not by prefetch traffic).\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
