// Ablation (beyond the paper): what does each hysteresis mechanism buy?
//
// Paper §3 introduces two forms of hysteresis — separate upper/lower
// thresholds and a sustain duration Δ. We drive four controller variants
// with the same volatile bandwidth signal (the Fig. 7 shape) and count
// prefetcher toggles. Excess toggling is the failure mode hysteresis
// exists to prevent ("constantly toggling prefetchers ... may lead to
// unstable performance").
#include <algorithm>
#include <cstdio>

#include "core/hysteresis_controller.h"
#include "util/rng.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

using limoncello::ControllerConfig;
using limoncello::HysteresisController;
using limoncello::Rng;
using limoncello::Table;
using limoncello::kNsPerSec;

struct Variant {
  const char* name;
  double lower;
  double upper;
  int sustain_ticks;
};

void Run() {
  const Variant variants[] = {
      {"none (single threshold, act immediately)", 0.699, 0.70, 0},
      {"dual thresholds only (60/80)", 0.60, 0.80, 0},
      {"sustain only (5 ticks)", 0.699, 0.70, 5},
      {"both (deployed: 60/80 + 5 ticks)", 0.60, 0.80, 5},
  };

  constexpr int kTicks = 86400;  // one simulated day of 1 s samples

  Table table({"variant", "toggles", "toggles/hour", "off_time(%)"});
  for (const Variant& v : variants) {
    ControllerConfig config;
    config.lower_threshold = v.lower;
    config.upper_threshold = v.upper;
    config.tick_period_ns = kNsPerSec;
    config.sustain_duration_ns = v.sustain_ticks * kNsPerSec;
    HysteresisController controller(config);

    // The same volatile signal for every variant: AR(1) noise around a
    // slowly moving diurnal level that crosses the thresholds.
    Rng rng(7);
    double noise = 0.0;
    int off_ticks = 0;
    for (int t = 0; t < kTicks; ++t) {
      const double diurnal =
          0.70 + 0.12 * std::sin(2.0 * 3.14159265358979 * t / 86400.0);
      noise = 0.9 * noise + 0.436 * rng.NextGaussian(0.0, 0.06);
      const double u = std::clamp(diurnal + noise, 0.0, 1.2);
      controller.Tick(u);
      if (!controller.PrefetchersShouldBeEnabled()) ++off_ticks;
    }
    table.AddRow(
        {v.name,
         Table::Num(static_cast<std::int64_t>(controller.toggle_count())),
         Table::Num(static_cast<double>(controller.toggle_count()) /
                        (kTicks / 3600.0),
                    1),
         Table::Num(100.0 * off_ticks / kTicks, 1)});
  }
  table.Print("Ablation: hysteresis mechanisms vs controller toggling");
  std::printf(
      "\nExpected: each mechanism alone cuts toggling by an order of "
      "magnitude;\ncombined (the deployed design) the controller acts a "
      "handful of times per day\nwhile spending a similar fraction of "
      "time in the off state.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
