// Ablation (beyond the paper): per-engine contribution on the detailed
// simulator. The paper disables *all* prefetchers per platform; here we
// flip each of the four MSR 0x1A4 bits individually to see which engine
// buys the coverage and which burns the bandwidth — the finer-grained
// control §7.1 contrasts Limoncello against.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "msr/prefetch_control.h"
#include "sim/machine/socket.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/function_catalog.h"

namespace limoncello::bench {
namespace {

using namespace limoncello;  // NOLINT: bench-local convenience

struct Row {
  std::string label;
  double bytes_per_instr = 0.0;
  double mpki = 0.0;
  double ipc = 0.0;
};

Row RunConfig(const std::string& label, int disabled_engine /* -1 none,
               4 = all */) {
  SocketConfig config;
  config.num_cores = 4;
  config.memory.peak_gbps = 32.0;
  config.memory.jitter_fraction = 0.0;
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  Socket socket(config, catalog.size(), Rng(123));
  PrefetchControl control(&socket.msr_device(),
                          PlatformMsrLayout::kIntelStyle, 0,
                          config.num_cores);
  if (disabled_engine == 4) {
    LIMONCELLO_CHECK_EQ(control.DisableAll(), config.num_cores);
  } else if (disabled_engine >= 0) {
    LIMONCELLO_CHECK_EQ(
        control.SetEngine(static_cast<PrefetchEngine>(disabled_engine),
                          false),
        config.num_cores);
  }
  for (int core = 0; core < config.num_cores; ++core) {
    socket.SetWorkload(core, catalog.MakeFleetMix(Rng(123).Fork(
                                 static_cast<std::uint64_t>(core))));
  }
  for (int epoch = 0; epoch < 50; ++epoch) socket.Step(100 * kNsPerUs);

  const PmuCounters& c = socket.counters();
  Row row;
  row.label = label;
  row.bytes_per_instr = static_cast<double>(c.DramTotalBytes()) /
                        static_cast<double>(c.instructions);
  row.mpki = c.LlcMpki();
  row.ipc = static_cast<double>(c.instructions) /
            static_cast<double>(c.core_cycles);
  return row;
}

void Run() {
  Table table({"configuration", "dram_bytes/instr", "llc_mpki", "ipc"});
  // Each configuration simulates an independent socket; run all six arms
  // concurrently into ordered slots.
  const struct {
    const char* label;
    int disabled_engine;
  } configs[] = {
      {"all engines on", -1},        {"- l2_stream off", 0},
      {"- l2_adjacent_line off", 1}, {"- dcu_streamer off", 2},
      {"- dcu_ip_stride off", 3},    {"all engines off", 4},
  };
  Row rows[6];
  std::vector<std::function<void()>> arms;
  for (int i = 0; i < 6; ++i) {
    arms.push_back([&, i] {
      rows[i] = RunConfig(configs[i].label, configs[i].disabled_engine);
    });
  }
  ParallelInvoke(std::move(arms));
  for (const Row& row : rows) {
    table.AddRow({row.label, Table::Num(row.bytes_per_instr, 4),
                  Table::Num(row.mpki, 2), Table::Num(row.ipc, 3)});
  }
  table.Print("Ablation: per-engine prefetcher contribution (fleet mix)");
  std::printf(
      "\nExpected: no single engine explains the paper's tradeoff — the "
      "IP-stride\nengine carries the most coverage on this mix (disabling "
      "it costs the most MPKI\nand IPC), while the DCU streamer and "
      "adjacent-line engines carry most of the\nwasted traffic on "
      "scattered access (disabling either cuts bytes/instr with\nlittle "
      "MPKI cost). This is why Limoncello toggles all engines together "
      "and\nrecovers coverage in software instead of micro-managing "
      "engines.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
