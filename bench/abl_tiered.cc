// Ablation (beyond the paper, §8 future-work direction): does a middle
// tier — disabling only the noisy engines — beat the binary all-on/
// all-off choice at moderate utilization?
//
// Static comparison on the detailed simulator under a moderately loaded
// fleet mix: all engines on (tier 0), noisy engines off (tier 1), all
// engines off (tier 2). The interesting regime is where tier 1 keeps
// most of tier 0's coverage at a fraction of its traffic.
#include <cstdio>
#include <functional>
#include <vector>

#include "core/tiered_policy.h"
#include "sim/machine/socket.h"
#include "util/check.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workloads/function_catalog.h"

namespace limoncello::bench {
namespace {

using namespace limoncello;  // NOLINT: bench-local convenience

struct Result {
  double bytes_per_instr = 0.0;
  double mpki = 0.0;
  double ipc = 0.0;
  double latency_ns = 0.0;
};

Result RunTier(int tier, double peak_gbps) {
  SocketConfig config;
  config.num_cores = 4;
  config.memory.peak_gbps = peak_gbps;
  config.memory.jitter_fraction = 0.0;
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  Socket socket(config, catalog.size(), Rng(321));
  PrefetchControl control(&socket.msr_device(),
                          PlatformMsrLayout::kIntelStyle, 0,
                          config.num_cores);
  if (tier >= 1) {
    LIMONCELLO_CHECK_EQ(
        control.SetEngine(PrefetchEngine::kDcuStreamer, false),
        config.num_cores);
    LIMONCELLO_CHECK_EQ(
        control.SetEngine(PrefetchEngine::kL2AdjacentLine, false),
        config.num_cores);
  }
  if (tier >= 2) {
    LIMONCELLO_CHECK_EQ(
        control.SetEngine(PrefetchEngine::kDcuIpStride, false),
        config.num_cores);
    LIMONCELLO_CHECK_EQ(
        control.SetEngine(PrefetchEngine::kL2Stream, false),
        config.num_cores);
  }
  for (int core = 0; core < config.num_cores; ++core) {
    socket.SetWorkload(core, catalog.MakeFleetMix(Rng(321).Fork(
                                 static_cast<std::uint64_t>(core))));
  }
  for (int epoch = 0; epoch < 50; ++epoch) socket.Step(100 * kNsPerUs);

  const PmuCounters& c = socket.counters();
  Result r;
  r.bytes_per_instr = static_cast<double>(c.DramTotalBytes()) /
                      static_cast<double>(c.instructions);
  r.mpki = c.LlcMpki();
  r.ipc = static_cast<double>(c.instructions) /
          static_cast<double>(c.core_cycles);
  r.latency_ns = c.AvgDramLatencyNs();
  return r;
}

void Run() {
  const char* tier_names[] = {"tier 0: all engines on",
                              "tier 1: noisy engines off",
                              "tier 2: all engines off"};
  const double peaks[] = {32.0, 14.0};
  // All six (tier, peak) arms are independent sockets: run concurrently
  // into ordered slots, then render the tables in the original order.
  Result results[2][3];
  std::vector<std::function<void()>> arms;
  for (int p = 0; p < 2; ++p) {
    for (int tier = 0; tier < 3; ++tier) {
      arms.push_back(
          [&, p, tier] { results[p][tier] = RunTier(tier, peaks[p]); });
    }
  }
  ParallelInvoke(std::move(arms));
  for (int p = 0; p < 2; ++p) {
    const double peak = peaks[p];
    Table table({"configuration", "dram_bytes/instr", "llc_mpki", "ipc",
                 "avg_dram_latency(ns)"});
    for (int tier = 0; tier < 3; ++tier) {
      const Result& r = results[p][tier];
      table.AddRow({tier_names[tier], Table::Num(r.bytes_per_instr, 4),
                    Table::Num(r.mpki, 2), Table::Num(r.ipc, 3),
                    Table::Num(r.latency_ns, 1)});
    }
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Ablation: tiered engine modulation (peak %.0f GB/s)",
                  peak);
    table.Print(title);
  }
  std::printf(
      "\nExpected: tier 1 cuts a large share of tier 0's traffic while "
      "keeping most\nof its coverage, making it attractive at moderate "
      "contention (the lower peak);\ntier 2 minimizes traffic and "
      "latency but gives up all coverage — the paper's\nchoice for the "
      "saturated regime, where Soft Limoncello fills the gap.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
