// Control-plane ingest throughput, latency, and CI gate
// (BENCH_control.json).
//
// Sweep mode (default): pre-encodes a deterministic telemetry workload
// (SimulatedEndpoint fleet, parallel encode), then times the full ingest
// path — multi-producer pushes into the sharded BoundedControlQueues,
// parallel per-shard drains through decode, FSM tick, and actuation — at
// a sweep of thread counts. Reports samples/sec, frames/sec, and the
// p99 enqueue-to-actuation latency from the plane's own histogram, plus
// a chaos-transport reconvergence arm (EXPERIMENTS.md table), and emits
// BENCH_control.json so the numbers can be tracked across PRs.
//
// Gate mode (--gate, registered as the bench_control_gate ctest): fails
// the build when
//   - drains at different thread counts diverge in ANY counter or in any
//     endpoint's final persistent state (the plane promises bit-identical
//     results: pushes are serial canonical-order, drains parallelize per
//     shard, so shed/ingest counters must not depend on thread count),
//   - the steady-state push+drain loop allocates (>= 0.01 heap
//     allocations per frame, counted by the operator-new probe below), or
//   - serial ingest throughput falls below the 1M samples/sec floor the
//     design doc commits to (DESIGN.md §15).
//
// Gate mode additionally crosses the process boundary (PR: socket
// transport): a forked blaster child streams the same pre-encoded
// workload over a real UNIX socket into a SocketListener-fed plane
// (ingest + alloc floors must hold there too), and a kill -9 storm
// spawns the limoncellod / limoncello-exporter / limoncello-flakyproxy
// trio, SIGKILLs every role at least once, and requires the restarted
// plane to report full reconvergence and leave a replayable journal.
//
//   bench_control_plane [--endpoints=N] [--ticks=N] [--threads=1,2,4]
//                       [--json=BENCH_control.json] [--gate]
//                       [--daemon=PATH --exporter=PATH --flakyproxy=PATH]
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string>
#include <vector>

#include "control/control_plane.h"
#include "control/endpoint_sim.h"
#include "control/telemetry_batch.h"
#include "core/controller_config.h"
#include "faults/fault_plan.h"
#include "faults/transport_chaos.h"
#include "recovery/state_journal.h"
#include "transport/socket_addr.h"
#include "transport/socket_listener.h"
#include "util/flags.h"
#include "util/posix_io.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"

// ---------------------------------------------------------------------------
// Global allocation probe (same shape as bench_fleet_engine's): every
// operator new in this binary funnels through CountedAlloc, so the gate
// can assert that the steady-state push+drain loop performs ~zero heap
// allocations per frame. The aligned forms are overridden too.

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<bool> g_count_allocs{false};

void CountAlloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

void* CountedAlloc(std::size_t size) {
  CountAlloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  CountAlloc();
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace limoncello::bench {
namespace {

// DESIGN.md §15's ingest throughput commitment (samples/sec, serial).
constexpr double kGateSamplesPerSecFloor = 1.0e6;
// Steady-state allocation budget: the push+drain loop must not touch
// the heap; the budget only absorbs measurement jitter.
constexpr double kGateAllocsPerFrame = 0.01;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Workload: the full frame stream of a SimulatedEndpoint fleet,
// pre-encoded so the timed region measures ingest, not generation.
// Frames are stored in canonical order (round-major, endpoint-minor);
// every run replays the identical byte stream.

struct Workload {
  int endpoints = 0;
  int samples_per_batch = 0;
  int rounds = 0;  // ticks / samples_per_batch
  std::uint64_t total_samples = 0;
  // frame (round, endpoint) lives at offsets[round * endpoints + e].
  std::vector<unsigned char> bytes;
  std::vector<std::size_t> offsets;
  std::vector<std::uint32_t> sizes;

  const unsigned char* FrameData(int round, int endpoint) const {
    return bytes.data() + offsets[static_cast<std::size_t>(round) *
                                      static_cast<std::size_t>(endpoints) +
                                  static_cast<std::size_t>(endpoint)];
  }
  std::uint32_t FrameSize(int round, int endpoint) const {
    return sizes[static_cast<std::size_t>(round) *
                     static_cast<std::size_t>(endpoints) +
                 static_cast<std::size_t>(endpoint)];
  }
};

Workload GenerateWorkload(int endpoints, int ticks, int samples_per_batch,
                          int threads) {
  Workload w;
  w.endpoints = endpoints;
  w.samples_per_batch = samples_per_batch;
  w.rounds = ticks / samples_per_batch;
  const std::size_t frames =
      static_cast<std::size_t>(w.rounds) * static_cast<std::size_t>(endpoints);
  w.bytes.resize(frames * kMaxTelemetryFrameBytes);
  w.offsets.resize(frames);
  w.sizes.resize(frames);
  for (std::size_t i = 0; i < frames; ++i) {
    w.offsets[i] = i * kMaxTelemetryFrameBytes;
  }

  // Parallel encode: each endpoint's stream is an independent function
  // of its forked Rng, so lanes share nothing.
  const Rng root(42);
  ThreadPool pool(ResolveThreadCount(threads));
  pool.ParallelFor(0, endpoints, [&](std::int64_t e) {
    SimulatedEndpoint::Options eo;
    eo.endpoint_id = static_cast<std::uint32_t>(e);
    eo.samples_per_batch = samples_per_batch;
    SimulatedEndpoint endpoint(eo, root.Fork(static_cast<std::uint64_t>(e)));
    int round = 0;
    for (int tick = 0; tick < w.rounds * samples_per_batch; ++tick) {
      const std::size_t slot =
          static_cast<std::size_t>(round) *
              static_cast<std::size_t>(w.endpoints) +
          static_cast<std::size_t>(e);
      const std::size_t size = endpoint.Tick(&w.bytes[w.offsets[slot]]);
      if (size > 0) {
        w.sizes[slot] = static_cast<std::uint32_t>(size);
        ++round;
      }
    }
  });
  w.total_samples = static_cast<std::uint64_t>(w.rounds) *
                    static_cast<std::uint64_t>(endpoints) *
                    static_cast<std::uint64_t>(samples_per_batch);
  return w;
}

ControlPlaneOptions PlaneOptions(int endpoints, int shards, int capacity) {
  ControlPlaneOptions options;
  options.num_endpoints = endpoints;
  options.num_shards = shards;
  options.queue.capacity = capacity;
  options.config.tick_period_ns = 1'000'000;  // 1 ms plane tick
  return options;
}

// ---------------------------------------------------------------------------
// One timed ingest run: replays the workload through a fresh plane.
// Pushes are serial in canonical order (so counters are comparable
// across thread counts); drains parallelize per shard on `threads`
// lanes every `drain_every` rounds. With parallel_push, pushes fan out
// across endpoint lanes instead (the MPSC demonstration arm — counters
// still race-free, but shed choices may vary with interleaving).

struct RunResult {
  int threads = 1;
  double seconds = 0.0;
  double samples_per_sec = 0.0;
  double frames_per_sec = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  ControlPlane::Stats stats;
  BoundedControlQueue::Counters queue;
  std::vector<EndpointPersistentState> final_states;
};

RunResult RunIngest(const Workload& w, const ControlPlaneOptions& options,
                    int threads, int drain_every, bool parallel_push) {
  std::vector<std::uint8_t> hardware(
      static_cast<std::size_t>(options.num_endpoints), 1);
  ControlPlane plane(options, [&hardware](std::uint32_t id, bool enable) {
    hardware[id] = enable ? 1 : 0;
    return true;
  });
  ThreadPool pool(threads);
  const int shards = plane.num_shards();

  RunResult r;
  r.threads = threads;
  const std::uint64_t start = NowNs();
  for (int round = 0; round < w.rounds; ++round) {
    if (parallel_push) {
      pool.ParallelFor(0, w.endpoints, [&](std::int64_t e) {
        plane.IngestFrame(w.FrameData(round, static_cast<int>(e)),
                          w.FrameSize(round, static_cast<int>(e)), NowNs());
      });
    } else {
      for (int e = 0; e < w.endpoints; ++e) {
        plane.IngestFrame(w.FrameData(round, e), w.FrameSize(round, e),
                          NowNs());
      }
    }
    if ((round + 1) % drain_every == 0 || round + 1 == w.rounds) {
      pool.ParallelFor(0, shards, [&](std::int64_t shard) {
        plane.DrainShard(static_cast<int>(shard), NowNs());
      });
      plane.AdvanceTick();
    }
  }
  const std::uint64_t stop = NowNs();

  r.seconds = static_cast<double>(stop - start) * 1e-9;
  r.stats = plane.SnapshotStats();
  r.queue = plane.SnapshotQueueCounters();
  r.final_states = plane.ExportAllEndpoints();
  const IngestLatencyHistogram latency = plane.SnapshotLatency();
  r.p50_ns = latency.ApproxQuantileNs(0.50);
  r.p99_ns = latency.ApproxQuantileNs(0.99);
  if (r.seconds > 0.0) {
    r.samples_per_sec =
        static_cast<double>(r.stats.samples_accepted.value()) / r.seconds;
    r.frames_per_sec =
        static_cast<double>(r.stats.frames_ingested.value()) / r.seconds;
  }
  return r;
}

bool SameOutcome(const RunResult& a, const RunResult& b) {
  return a.stats == b.stats && a.queue == b.queue &&
         a.final_states == b.final_states;
}

// Allocations per frame across a serial push+drain replay, counted after
// a one-round warmup (construction, ring building, and the first drain's
// lazily-grown scratch excluded — steady state is the claim).
double MeasureIngestAllocs(const Workload& w,
                           const ControlPlaneOptions& options) {
  std::vector<std::uint8_t> hardware(
      static_cast<std::size_t>(options.num_endpoints), 1);
  ControlPlane plane(options, [&hardware](std::uint32_t id, bool enable) {
    hardware[id] = enable ? 1 : 0;
    return true;
  });
  // Warmup round.
  for (int e = 0; e < w.endpoints; ++e) {
    plane.IngestFrame(w.FrameData(0, e), w.FrameSize(0, e), NowNs());
  }
  plane.DrainAll(NowNs());
  plane.AdvanceTick();

  g_heap_allocs.store(0);
  g_count_allocs.store(true);
  std::uint64_t frames = 0;
  for (int round = 1; round < w.rounds; ++round) {
    for (int e = 0; e < w.endpoints; ++e) {
      plane.IngestFrame(w.FrameData(round, e), w.FrameSize(round, e),
                        NowNs());
      ++frames;
    }
    plane.DrainAll(NowNs());
    plane.AdvanceTick();
  }
  g_count_allocs.store(false);
  const std::uint64_t allocs = g_heap_allocs.load();
  return frames > 0 ? static_cast<double>(allocs) /
                          static_cast<double>(frames)
                    : static_cast<double>(allocs);
}

// ---------------------------------------------------------------------------
// Chaos reconvergence arm: replays a fleet through per-endpoint
// ChaosTransports with aggressive fault rates for the first
// `chaos_ticks`, then clean transport, and measures how long the plane
// takes to shake off the damage — the EXPERIMENTS.md table row.

struct ChaosResult {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t reordered = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t truncated = 0;
  std::uint64_t staled = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t sequence_rejects = 0;
  std::uint64_t failsafes = 0;
  // Ticks after the chaos window until the last endpoint delivered a
  // clean accepted batch (plane fully reconverged; -1 = never).
  int reconvergence_ticks = -1;
  int endpoints_reconverged = 0;
  int endpoints = 0;
};

ChaosResult RunChaos(int endpoints, int ticks, int chaos_ticks,
                     int samples_per_batch) {
  ChaosResult result;
  result.endpoints = endpoints;

  ControlPlaneOptions options = PlaneOptions(endpoints,
                                             std::min(endpoints, 8), 1024);
  // Staleness must budget for batch cadence: a batch lands every
  // samples_per_batch plane ticks, so the threshold sits past one whole
  // missed batch — a single dropped frame recovers on the next batch,
  // two consecutive losses trip the fail-safe.
  options.config.max_missed_samples = 2 * samples_per_batch;
  const Rng root(42);
  std::vector<std::unique_ptr<SimulatedEndpoint>> fleet;
  for (int e = 0; e < endpoints; ++e) {
    SimulatedEndpoint::Options eo;
    eo.endpoint_id = static_cast<std::uint32_t>(e);
    eo.samples_per_batch = samples_per_batch;
    fleet.push_back(std::make_unique<SimulatedEndpoint>(
        eo, root.Fork(static_cast<std::uint64_t>(e))));
  }
  ControlPlane plane(options, [&fleet](std::uint32_t id, bool enable) {
    return fleet[id]->Actuate(enable);
  });

  // Aggressive chaos window: ~1 in 4 frames is faulted somehow.
  FaultSpec spec;
  spec.transport_drop_rate = 0.08;
  spec.transport_reorder_rate = 0.05;
  spec.transport_duplicate_rate = 0.04;
  spec.transport_truncate_rate = 0.05;
  spec.transport_stale_rate = 0.03;
  const int chaos_frames = chaos_ticks / samples_per_batch;
  const Rng chaos_root(7);
  std::vector<FaultPlan> plans;
  std::vector<std::unique_ptr<ChaosTransport>> wires;
  for (int e = 0; e < endpoints; ++e) {
    plans.push_back(FaultPlan::Generate(
        spec, chaos_frames, chaos_root.Fork(static_cast<std::uint64_t>(e))));
  }
  std::uint64_t now_ns = 0;
  for (int e = 0; e < endpoints; ++e) {
    wires.push_back(std::make_unique<ChaosTransport>(
        &plans[static_cast<std::size_t>(e)],
        [&plane, &now_ns](const unsigned char* data, std::size_t size) {
          plane.IngestFrame(data, size, now_ns);
        }));
  }

  std::vector<int> reconverged_at(static_cast<std::size_t>(endpoints), -1);
  unsigned char frame[kMaxTelemetryFrameBytes];
  for (int tick = 0; tick < ticks; ++tick) {
    now_ns = static_cast<std::uint64_t>(tick) * 1'000'000ULL;
    for (int e = 0; e < endpoints; ++e) {
      const std::size_t size = fleet[static_cast<std::size_t>(e)]->Tick(frame);
      if (size > 0) {
        wires[static_cast<std::size_t>(e)]->Send(frame, size);
      }
    }
    if (tick == chaos_ticks - 1) {
      for (auto& wire : wires) wire->Flush();  // release parked frames
    }
    const std::uint64_t accepted_before =
        plane.SnapshotStats().samples_accepted.value();
    plane.DrainAll(now_ns);
    plane.AdvanceTick();
    // Post-window bookkeeping: an endpoint has reconverged once a clean
    // batch of its telemetry lands (samples accepted and it is out of
    // fail-safe).
    if (tick >= chaos_ticks &&
        plane.SnapshotStats().samples_accepted.value() > accepted_before) {
      for (int e = 0; e < endpoints; ++e) {
        if (reconverged_at[static_cast<std::size_t>(e)] < 0 &&
            !plane.EndpointInFailsafe(static_cast<std::uint32_t>(e))) {
          reconverged_at[static_cast<std::size_t>(e)] = tick - chaos_ticks;
        }
      }
    }
  }

  for (const auto& wire : wires) {
    const ChaosTransport::Stats& ws = wire->stats();
    result.frames_sent += ws.sent.value();
    result.frames_delivered += ws.delivered.value();
    result.dropped += ws.dropped.value();
    result.reordered += ws.reordered.value();
    result.duplicated += ws.duplicated.value();
    result.truncated += ws.truncated.value();
    result.staled += ws.staled.value();
  }
  const ControlPlane::Stats stats = plane.SnapshotStats();
  result.decode_failures = stats.decode_failures.value();
  result.sequence_rejects = stats.sequence_rejects.value();
  result.failsafes = stats.stale_endpoint_failsafes.value();
  for (int e = 0; e < endpoints; ++e) {
    const int at = reconverged_at[static_cast<std::size_t>(e)];
    if (at >= 0) {
      ++result.endpoints_reconverged;
      result.reconvergence_ticks = std::max(result.reconvergence_ticks, at);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Multi-process arms (gate only). Everything above exercises the plane
// in process; these two put the PR's actual deliverable — the socket
// transport — under the same floors.

// Socket-floor arm: a forked child connects to a real UNIX socket and
// blasts the pre-encoded workload; the parent runs the production
// wiring (SocketListener + ControlPlane, actuation routed back through
// the listener) and must sustain the ingest floor and the allocation
// budget with the frames arriving as an arbitrarily-split byte stream
// instead of in-process function calls.
struct SocketFloorResult {
  bool completed = false;
  double samples_per_sec = 0.0;
  double allocs_per_frame = 0.0;
  std::uint64_t frames_over_socket = 0;
};

SocketFloorResult RunSocketFloor(const Workload& w) {
  SocketFloorResult result;
  char path[64];
  std::snprintf(path, sizeof(path), "/tmp/limoncello_gate_%d.sock",
                static_cast<int>(::getpid()));
  SocketAddress address;
  address.kind = SocketAddress::Kind::kUnix;
  address.path = path;

  SocketListener::Options listener_options;
  listener_options.address = address;
  SocketListener listener(listener_options);
  // Queue capacity x shards exceeds the whole workload, so nothing can
  // shed: every frame the wire delivers must be accepted, making
  // samples/sec an honest end-to-end rate.
  ControlPlane plane(PlaneOptions(w.endpoints, 8, 4096),
                     [&listener](std::uint32_t id, bool enable) {
                       return listener.SendActuation(id, enable);
                     });
  listener.BindPlane(&plane);
  if (!listener.Start()) return result;

  const pid_t child = ::fork();
  if (child < 0) {
    listener.Stop();
    (void)::unlink(path);
    return result;
  }
  if (child == 0) {
    // Blaster: the workload bytes are shared copy-on-write and only
    // read; nothing here allocates. The opportunistic drain keeps the
    // child's receive buffer from filling with actuation frames.
    const int fd = ConnectSocket(address);
    if (fd < 0) _exit(3);
    unsigned char sink[4096];
    for (int round = 0; round < w.rounds; ++round) {
      for (int e = 0; e < w.endpoints; ++e) {
        if (!SendFully(fd, w.FrameData(round, e), w.FrameSize(round, e))) {
          _exit(4);
        }
      }
      (void)::recv(fd, sink, sizeof(sink), MSG_DONTWAIT);
    }
    _exit(0);
  }

  const std::uint64_t expected_frames =
      static_cast<std::uint64_t>(w.rounds) *
      static_cast<std::uint64_t>(w.endpoints);
  // Warmup ends once a full round has crossed the wire: accept, sink
  // binding, pollfd growth, and first-drain scratch are all excluded —
  // steady state is the claim, same as the in-process measurement.
  const std::uint64_t warmup_frames =
      static_cast<std::uint64_t>(w.endpoints);
  const std::uint64_t deadline_ns = NowNs() + 30'000'000'000ULL;
  bool counting = false;
  std::uint64_t counted_from_frames = 0;
  std::uint64_t counted_from_samples = 0;
  std::uint64_t count_start_ns = 0;
  std::uint64_t frames = 0;
  while (frames < expected_frames && NowNs() < deadline_ns) {
    listener.PollOnce(20, NowNs());
    plane.DrainAll(NowNs());
    plane.AdvanceTick();
    frames = listener.SnapshotStats().frames_ingested.value();
    if (!counting && frames >= warmup_frames) {
      counting = true;
      counted_from_frames = frames;
      counted_from_samples = plane.SnapshotStats().samples_accepted.value();
      g_heap_allocs.store(0);
      g_count_allocs.store(true);
      count_start_ns = NowNs();
    }
  }
  g_count_allocs.store(false);
  const std::uint64_t count_stop_ns = NowNs();

  int status = 0;
  (void)::waitpid(child, &status, 0);
  const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  listener.Stop();
  (void)::unlink(path);

  const std::uint64_t counted_frames = frames - counted_from_frames;
  const std::uint64_t counted_samples =
      plane.SnapshotStats().samples_accepted.value() - counted_from_samples;
  const double seconds =
      static_cast<double>(count_stop_ns - count_start_ns) * 1e-9;
  result.completed = child_ok && frames == expected_frames && counting;
  result.frames_over_socket = frames;
  if (seconds > 0.0) {
    result.samples_per_sec = static_cast<double>(counted_samples) / seconds;
  }
  if (counted_frames > 0) {
    result.allocs_per_frame = static_cast<double>(g_heap_allocs.load()) /
                              static_cast<double>(counted_frames);
  }
  return result;
}

// Kill-storm arm: the real binaries, a real chaos proxy on the wire,
// and SIGKILL for every role — exporters one by one, the proxy, and the
// plane itself (journal warm-restore on the way back up). The restarted
// plane's graceful shutdown must report every endpoint reconverged, and
// the journal it leaves behind must replay to all endpoints.

pid_t SpawnTool(const std::vector<std::string>& argv,
                const std::string& log_path) {
  // argv is marshalled before fork: the child only dup2s and execs.
  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& a : argv) {
    args.push_back(const_cast<char*>(a.c_str()));
  }
  args.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const int fd =
      ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd >= 0) {
    (void)::dup2(fd, STDOUT_FILENO);
    (void)::dup2(fd, STDERR_FILENO);
    if (fd > STDERR_FILENO) (void)::close(fd);
  }
  ::execv(args[0], args.data());
  _exit(127);
}

void ReapProcess(pid_t pid) {
  if (pid <= 0) return;
  int status = 0;
  (void)::waitpid(pid, &status, 0);
}

void KillHard(pid_t pid) {
  if (pid <= 0) return;
  (void)::kill(pid, SIGKILL);
  ReapProcess(pid);
}

void StopSoft(pid_t pid) {
  if (pid <= 0) return;
  (void)::kill(pid, SIGTERM);
  ReapProcess(pid);
}

void SleepMs(int ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1'000'000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

bool FileContains(const std::string& path, const char* needle) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string contents;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  return contents.find(needle) != std::string::npos;
}

struct KillStormResult {
  bool ran = false;          // all three binaries spawned
  bool reconverged = false;  // plane's final banner says every endpoint
  bool journal_ok = false;   // journal replays to all endpoints
  int journal_endpoints = 0;
  std::uint64_t journal_valid_records = 0;
};

KillStormResult RunKillStorm(const std::string& daemon_path,
                             const std::string& exporter_path,
                             const std::string& proxy_path) {
  KillStormResult result;
  constexpr int kEndpoints = 8;
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "/tmp/limoncello_gate_%d",
                static_cast<int>(::getpid()));
  const std::string plane_sock = std::string(prefix) + "_plane.sock";
  const std::string proxy_sock = std::string(prefix) + "_proxy.sock";
  const std::string journal = std::string(prefix) + ".journal";
  const std::string plane_log = std::string(prefix) + "_plane.log";
  const std::string peer_log = std::string(prefix) + "_peers.log";
  for (const std::string& p :
       {plane_sock, proxy_sock, journal, plane_log, peer_log}) {
    (void)::unlink(p.c_str());
  }

  // Plane tick 10 ms with a 16-tick staleness window: a restarted
  // exporter (sequence reset to 1) must be re-adopted within 160 ms.
  auto spawn_plane = [&]() {
    return SpawnTool({daemon_path, "--listen=" + plane_sock,
                      "--endpoints=" + std::to_string(kEndpoints),
                      "--tick-ms=10", "--max-missed-samples=16",
                      "--state-file=" + journal},
                     plane_log);
  };
  // Mild ambient chaos: every fault category stays live on the wire for
  // the whole storm, on top of the kills.
  auto spawn_proxy = [&]() {
    return SpawnTool({proxy_path, "--listen=" + proxy_sock,
                      "--upstream=" + plane_sock, "--seed=7",
                      "--drop=0.02", "--reorder=0.01", "--duplicate=0.02",
                      "--truncate=0.02", "--stale=0.01"},
                     peer_log);
  };
  auto spawn_exporter = [&](int id) {
    return SpawnTool({exporter_path, "--connect=" + proxy_sock,
                      "--endpoint-id=" + std::to_string(id),
                      "--seed=" + std::to_string(100 + id), "--tick-ms=2",
                      "--samples-per-batch=2", "--initial-backoff-ms=5",
                      "--max-backoff-ms=80"},
                     peer_log);
  };

  pid_t plane = spawn_plane();
  pid_t proxy = spawn_proxy();
  std::vector<pid_t> exporters;
  for (int i = 0; i < kEndpoints; ++i) {
    exporters.push_back(spawn_exporter(i));
  }
  result.ran = plane > 0 && proxy > 0;
  for (const pid_t e : exporters) result.ran = result.ran && e > 0;
  if (!result.ran) {
    StopSoft(plane);
    StopSoft(proxy);
    for (const pid_t e : exporters) StopSoft(e);
    return result;
  }

  SleepMs(400);  // steady telemetry through the proxy

  // SIGKILL every exporter in turn; each restart resets its sequence
  // numbering, forcing the plane through reject -> staleness-forget ->
  // re-adopt for every endpoint.
  for (int i = 0; i < kEndpoints; ++i) {
    KillHard(exporters[static_cast<std::size_t>(i)]);
    SleepMs(30);
    exporters[static_cast<std::size_t>(i)] = spawn_exporter(i);
  }
  SleepMs(200);

  // SIGKILL the proxy: every connection on both sides dies at once.
  KillHard(proxy);
  SleepMs(100);
  proxy = spawn_proxy();
  SleepMs(200);

  // SIGKILL the plane itself; the restart warm-restores from the
  // journal (stale socket file included — no operator cleanup).
  KillHard(plane);
  SleepMs(150);
  plane = spawn_plane();

  // Stabilization: covers reconnect backoff (cap 80 ms), the staleness
  // window (160 ms), and several clean batches on top.
  SleepMs(1500);

  // Graceful shutdown prints the reconvergence banner and snapshots the
  // journal; peers are still alive at that instant, so "fresh" is a
  // statement about the healed fleet, not about shutdown ordering.
  StopSoft(plane);
  for (const pid_t e : exporters) StopSoft(e);
  StopSoft(proxy);

  char banner[64];
  std::snprintf(banner, sizeof(banner), "reconverged %d/%d endpoints",
                kEndpoints, kEndpoints);
  result.reconverged = FileContains(plane_log, banner);

  const EndpointJournalReplay replay = EndpointStateJournal::Replay(journal);
  result.journal_endpoints = static_cast<int>(replay.states.size());
  result.journal_valid_records = replay.valid_records;
  bool all_sequenced =
      replay.states.size() == static_cast<std::size_t>(kEndpoints);
  for (const EndpointPersistentState& state : replay.states) {
    all_sequenced = all_sequenced && state.have_sequence;
  }
  result.journal_ok = replay.file_found && all_sequenced;

  if (result.reconverged && result.journal_ok) {
    for (const std::string& p :
         {plane_sock, proxy_sock, journal, plane_log, peer_log}) {
      (void)::unlink(p.c_str());
    }
  } else {
    std::fprintf(stderr,
                 "kill-storm evidence kept: %s %s %s\n",
                 plane_log.c_str(), peer_log.c_str(), journal.c_str());
  }
  return result;
}

// ---------------------------------------------------------------------------

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> threads;
  std::string token;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ',') {
      if (!token.empty()) {
        const int t = std::atoi(token.c_str());
        if (t >= 1) threads.push_back(t);
        token.clear();
      }
    } else {
      token.push_back(spec[i]);
    }
  }
  return threads;
}

bool WriteJson(const std::string& path, const Workload& w,
               const ControlPlaneOptions& options,
               const std::vector<RunResult>& runs, bool deterministic,
               double allocs_per_frame, const ChaosResult& chaos,
               int hardware_threads) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"control_plane\",\n");
  std::fprintf(f, "  \"endpoints\": %d,\n", w.endpoints);
  std::fprintf(f, "  \"shards\": %d,\n", options.num_shards);
  std::fprintf(f, "  \"samples_per_batch\": %d,\n", w.samples_per_batch);
  std::fprintf(f, "  \"rounds\": %d,\n", w.rounds);
  std::fprintf(f, "  \"queue_capacity\": %d,\n", options.queue.capacity);
  std::fprintf(f, "  \"hardware_threads\": %d,\n", hardware_threads);
  std::fprintf(f, "  \"ingest\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    std::fprintf(
        f,
        "    {\"threads\": %d, \"seconds\": %.6f, \"samples_per_sec\": "
        "%.0f, \"frames_per_sec\": %.0f, \"p50_enqueue_to_actuation_ns\": "
        "%llu, \"p99_enqueue_to_actuation_ns\": %llu, \"frames_shed\": "
        "%llu, \"backpressure_signals\": %llu}%s\n",
        r.threads, r.seconds, r.samples_per_sec, r.frames_per_sec,
        static_cast<unsigned long long>(r.p50_ns),
        static_cast<unsigned long long>(r.p99_ns),
        static_cast<unsigned long long>(r.stats.frames_shed.value()),
        static_cast<unsigned long long>(
            r.stats.backpressure_signals.value()),
        i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"deterministic_across_threads\": %s,\n",
               deterministic ? "true" : "false");
  std::fprintf(f, "  \"allocs_per_frame\": %.6f,\n", allocs_per_frame);
  std::fprintf(
      f,
      "  \"chaos\": {\"endpoints\": %d, \"frames_sent\": %llu, "
      "\"frames_delivered\": %llu, \"dropped\": %llu, \"reordered\": %llu, "
      "\"duplicated\": %llu, \"truncated\": %llu, \"stale_redeliveries\": "
      "%llu, \"decode_failures\": %llu, \"sequence_rejects\": %llu, "
      "\"stale_endpoint_failsafes\": %llu, \"endpoints_reconverged\": %d, "
      "\"reconvergence_ticks_max\": %d}\n",
      chaos.endpoints, static_cast<unsigned long long>(chaos.frames_sent),
      static_cast<unsigned long long>(chaos.frames_delivered),
      static_cast<unsigned long long>(chaos.dropped),
      static_cast<unsigned long long>(chaos.reordered),
      static_cast<unsigned long long>(chaos.duplicated),
      static_cast<unsigned long long>(chaos.truncated),
      static_cast<unsigned long long>(chaos.staled),
      static_cast<unsigned long long>(chaos.decode_failures),
      static_cast<unsigned long long>(chaos.sequence_rejects),
      static_cast<unsigned long long>(chaos.failsafes),
      chaos.endpoints_reconverged, chaos.reconvergence_ticks);
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------------

int RunGate(const FlagParser& flags) {
  // Fixed gate configuration: big enough that serial wall time dominates
  // timer noise, small enough to stay an instant ctest. Capacity 64 with
  // drains every 4 rounds makes the queues actually shed, so the
  // determinism check covers the shed path, not just the happy path.
  const int endpoints = 128;
  const int samples_per_batch = 8;
  const int ticks = 1024;
  const int hw = ResolveThreadCount(0);
  const Workload w = GenerateWorkload(endpoints, ticks, samples_per_batch, 0);
  std::printf("control plane gate: %d endpoints x %d rounds (%llu samples), "
              "host has %d hardware threads\n",
              endpoints, w.rounds,
              static_cast<unsigned long long>(w.total_samples), hw);

  const ControlPlaneOptions shed_options = PlaneOptions(endpoints, 8, 64);
  std::vector<RunResult> runs;
  for (int t : {1, 2, 4}) {
    runs.push_back(RunIngest(w, shed_options, t, /*drain_every=*/4,
                             /*parallel_push=*/false));
  }
  bool identical = true;
  for (const RunResult& r : runs) identical &= SameOutcome(runs[0], r);
  std::printf("[%s] counters + endpoint state bit-identical at 1/2/4 drain "
              "threads (shed %llu of %llu frames)\n",
              identical ? "pass" : "FAIL",
              static_cast<unsigned long long>(
                  runs[0].stats.frames_shed.value()),
              static_cast<unsigned long long>(
                  runs[0].stats.frames_ingested.value()));
  const bool shed_exercised = runs[0].stats.frames_shed.value() > 0;
  std::printf("[%s] shed path exercised by the gate workload\n",
              shed_exercised ? "pass" : "FAIL");

  const ControlPlaneOptions roomy_options = PlaneOptions(endpoints, 8, 1024);
  const double allocs_per_frame = MeasureIngestAllocs(w, roomy_options);
  const bool allocs_ok = allocs_per_frame < kGateAllocsPerFrame;
  std::printf("[%s] heap allocs per frame: %.4f (budget %.2f)\n",
              allocs_ok ? "pass" : "FAIL", allocs_per_frame,
              kGateAllocsPerFrame);

  // Best-of-3 serial throughput vs the 1M samples/sec floor.
  RunResult best;
  for (int rep = 0; rep < 3; ++rep) {
    RunResult r = RunIngest(w, roomy_options, 1, /*drain_every=*/1,
                            /*parallel_push=*/false);
    if (rep == 0 || r.samples_per_sec > best.samples_per_sec) {
      best = std::move(r);
    }
  }
  const bool fast_enough = best.samples_per_sec >= kGateSamplesPerSecFloor;
  std::printf("[%s] serial ingest %.2fM samples/sec (floor %.1fM; p99 "
              "enqueue-to-actuation %llu ns)\n",
              fast_enough ? "pass" : "FAIL", best.samples_per_sec * 1e-6,
              kGateSamplesPerSecFloor * 1e-6,
              static_cast<unsigned long long>(best.p99_ns));

  // The same floors, with a process boundary and a real socket in the
  // middle: frames arrive as an arbitrarily-split byte stream through
  // the reassembler instead of as in-process calls.
  const SocketFloorResult socket_floor = RunSocketFloor(w);
  const bool socket_fast =
      socket_floor.completed &&
      socket_floor.samples_per_sec >= kGateSamplesPerSecFloor;
  const bool socket_allocs_ok =
      socket_floor.completed &&
      socket_floor.allocs_per_frame < kGateAllocsPerFrame;
  std::printf("[%s] socket ingest %.2fM samples/sec across the process "
              "boundary (floor %.1fM; %llu frames over the wire)\n",
              socket_fast ? "pass" : "FAIL",
              socket_floor.samples_per_sec * 1e-6,
              kGateSamplesPerSecFloor * 1e-6,
              static_cast<unsigned long long>(
                  socket_floor.frames_over_socket));
  std::printf("[%s] socket heap allocs per frame: %.4f (budget %.2f)\n",
              socket_allocs_ok ? "pass" : "FAIL",
              socket_floor.allocs_per_frame, kGateAllocsPerFrame);

  // Kill-storm: needs the tool binaries (ctest passes their paths).
  // Without them the arm is reported as skipped, never silently green.
  const std::string daemon_path = flags.GetString("daemon").value_or("");
  const std::string exporter_path = flags.GetString("exporter").value_or("");
  const std::string proxy_path = flags.GetString("flakyproxy").value_or("");
  bool storm_ok = true;
  if (daemon_path.empty() || exporter_path.empty() || proxy_path.empty()) {
    std::printf("[skip] kill -9 storm (pass --daemon/--exporter/"
                "--flakyproxy to run it)\n");
  } else {
    const KillStormResult storm =
        RunKillStorm(daemon_path, exporter_path, proxy_path);
    storm_ok = storm.ran && storm.reconverged && storm.journal_ok;
    std::printf("[%s] kill -9 storm: plane, proxy, and all 8 exporters "
                "each SIGKILLed; restarted plane reconverged 8/8 "
                "(banner %s) and the journal replays %d endpoint(s) "
                "from %llu valid record(s)\n",
                storm_ok ? "pass" : "FAIL",
                storm.reconverged ? "found" : "MISSING",
                storm.journal_endpoints,
                static_cast<unsigned long long>(
                    storm.journal_valid_records));
  }

  return identical && shed_exercised && allocs_ok && fast_enough &&
                 socket_fast && socket_allocs_ok && storm_ok
             ? 0
             : 1;
}

int Run(const FlagParser& flags) {
  if (flags.GetBool("gate").value_or(false)) return RunGate(flags);

  const int endpoints =
      static_cast<int>(flags.GetInt("endpoints").value_or(256));
  const int ticks = static_cast<int>(flags.GetInt("ticks").value_or(4096));
  const int samples_per_batch = 8;
  const int hw = ResolveThreadCount(0);
  std::string spec = flags.GetString("threads").value_or("1,2,4");
  std::vector<int> threads = ParseThreadList(spec);
  if (threads.empty()) {
    std::fprintf(stderr, "error: bad --threads list '%s'\n", spec.c_str());
    return 2;
  }

  std::printf("control plane ingest: %d endpoints x %d ticks (host has %d "
              "hardware threads)\n",
              endpoints, ticks, hw);
  const Workload w = GenerateWorkload(endpoints, ticks, samples_per_batch, 0);
  const ControlPlaneOptions options = PlaneOptions(endpoints, 8, 1024);

  // Throughput sweep: parallel producers + parallel per-shard drains.
  std::vector<RunResult> runs;
  for (int t : threads) {
    runs.push_back(RunIngest(w, options, t, /*drain_every=*/1,
                             /*parallel_push=*/t > 1));
  }
  Table table({"threads", "wall(s)", "samples/sec", "frames/sec",
               "p99 enq->act(ns)", "shed"});
  for (const RunResult& r : runs) {
    table.AddRow({Table::Num(static_cast<std::int64_t>(r.threads)),
                  Table::Num(r.seconds, 3), Table::Num(r.samples_per_sec, 0),
                  Table::Num(r.frames_per_sec, 0),
                  Table::Num(static_cast<std::int64_t>(r.p99_ns)),
                  Table::Num(static_cast<std::int64_t>(
                      r.stats.frames_shed.value()))});
  }
  table.Print("Control plane: ingest throughput by thread count");

  // Determinism cross-check at sweep scale (serial canonical pushes).
  std::vector<RunResult> det;
  for (int t : {1, 4}) {
    det.push_back(RunIngest(w, PlaneOptions(endpoints, 8, 64), t,
                            /*drain_every=*/4, /*parallel_push=*/false));
  }
  const bool deterministic = SameOutcome(det[0], det[1]);
  std::printf("\ncounters across drain thread counts: %s\n",
              deterministic ? "bit-identical" : "MISMATCH (plane bug!)");

  const double allocs_per_frame = MeasureIngestAllocs(w, options);
  std::printf("steady-state heap allocs per frame: %.4f\n", allocs_per_frame);

  // Chaos reconvergence arm.
  const ChaosResult chaos = RunChaos(/*endpoints=*/64, /*ticks=*/2048,
                                     /*chaos_ticks=*/1024, samples_per_batch);
  std::printf(
      "\nchaos arm: %llu frames sent -> %llu delivered (%llu dropped, %llu "
      "reordered, %llu duplicated, %llu truncated, %llu stale)\n"
      "           %llu decode failures, %llu sequence rejects, %llu "
      "fail-safes; %d/%d endpoints reconverged within %d ticks of the "
      "window closing\n",
      static_cast<unsigned long long>(chaos.frames_sent),
      static_cast<unsigned long long>(chaos.frames_delivered),
      static_cast<unsigned long long>(chaos.dropped),
      static_cast<unsigned long long>(chaos.reordered),
      static_cast<unsigned long long>(chaos.duplicated),
      static_cast<unsigned long long>(chaos.truncated),
      static_cast<unsigned long long>(chaos.staled),
      static_cast<unsigned long long>(chaos.decode_failures),
      static_cast<unsigned long long>(chaos.sequence_rejects),
      static_cast<unsigned long long>(chaos.failsafes),
      chaos.endpoints_reconverged, chaos.endpoints,
      chaos.reconvergence_ticks);

  const std::string json_path =
      flags.GetString("json").value_or("BENCH_control.json");
  if (!WriteJson(json_path, w, options, runs, deterministic, allocs_per_frame,
                 chaos, hw)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return deterministic ? 0 : 1;
}

}  // namespace
}  // namespace limoncello::bench

int main(int argc, char** argv) {
  limoncello::FlagParser flags;
  flags.Define("endpoints", "fleet size for the sweep (default 256)")
      .Define("ticks", "exporter ticks to replay (default 4096)")
      .Define("threads", "comma-separated thread counts (default 1,2,4)")
      .Define("json", "output path (default BENCH_control.json)")
      .Define("gate", "run the CI gate checks and exit")
      .Define("daemon", "limoncellod path (gate kill-storm arm)")
      .Define("exporter", "limoncello-exporter path (gate kill-storm arm)")
      .Define("flakyproxy", "limoncello-flakyproxy path (gate kill-storm arm)");
  if (!flags.Parse(argc, argv)) return 2;
  return limoncello::bench::Run(flags);
}
