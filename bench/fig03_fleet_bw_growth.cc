// Reproduces paper Fig. 3: average fleet memory bandwidth per compute
// unit, 2020-2023. Workload memory intensity grows ~10 % per year
// (injected via FleetOptions::memory_intensity_scale); the fleet
// simulator measures the resulting bandwidth per busy core.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  Table table({"year", "intensity_scale", "bw_per_compute_unit(MB/s)",
               "normalized_to_2020"});
  double base = 0.0;
  double last = 0.0;
  const PlatformConfig platform = PlatformConfig::Platform1();
  for (int year = 2020; year <= 2023; ++year) {
    FleetOptions options = DefaultFleetOptions(100);
    options.num_machines = 60;
    options.ticks = 300;
    options.diurnal_period_ns = 300LL * kNsPerSec;
    options.memory_intensity_scale = std::pow(1.13, year - 2020);
    const FleetMetrics metrics =
        RunFleetArm(platform, DeploymentMode::kBaseline,
                    DeployedControllerConfig(), options);
    double bw_sum_gbps = 0.0;
    for (const MachineAggregate& m : metrics.machines) {
      bw_sum_gbps += m.AvgBwUtil() * platform.saturation_gbps;
    }
    // A "compute unit" abstracts a fixed amount of computational power
    // (paper cites Borg's normalized compute unit): we normalize by the
    // work served, so rising per-request memory intensity shows up as
    // bandwidth per compute unit.
    const double served_kqps = metrics.served_qps_sum /
                               static_cast<double>(options.ticks) / 1000.0;
    const double mbps_per_cu =
        served_kqps > 0 ? bw_sum_gbps * 1000.0 / served_kqps : 0.0;
    if (base == 0.0) base = mbps_per_cu;
    last = mbps_per_cu;
    table.AddRow({Table::Num(static_cast<std::int64_t>(year)),
                  Table::Num(options.memory_intensity_scale, 2),
                  Table::Num(mbps_per_cu, 1),
                  Table::Num(mbps_per_cu / base, 2)});
  }
  table.Print(
      "Fig. 3: fleet memory bandwidth per compute unit, 2020-2023");
  std::printf(
      "\nSummary: bandwidth per compute unit grew %.2fx over 3 years\n"
      "(paper: ~1.4x since 2020, ~10%% year on year).\n",
      last / base);
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
