// google-benchmark microbenchmarks for the native data-center-tax
// library: data movement, hashing, compression, and serialization, each
// with software prefetching off and on (deployed parameters).
//
// These are the library-level microbenchmarks §4.2 uses to evaluate a
// candidate prefetch configuration before load testing.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "softpf/soft_prefetch_config.h"
#include "tax/block_compressor.h"
#include "tax/block_hash.h"
#include "tax/dict_compressor.h"
#include "tax/hash_join.h"
#include "tax/prefetching_memcpy.h"
#include "tax/varint_codec.h"
#include "tax/wire_serializer.h"
#include "util/rng.h"

namespace limoncello {
namespace {

SoftPrefetchConfig SweepConfig(bool enabled) {
  if (!enabled) return SoftPrefetchConfig::Disabled();
  SoftPrefetchConfig config;
  config.distance_bytes = 512;
  config.degree_bytes = 256;
  config.min_size_bytes = 0;
  return config;
}

std::string MakePayload(std::size_t n, bool compressible) {
  std::string s;
  s.reserve(n);
  Rng rng(n);
  const char* phrase = "limoncello prefetchers for scale ";
  while (s.size() < n) {
    if (compressible && rng.NextBernoulli(0.7)) {
      s += phrase;
    } else {
      s += static_cast<char>(rng.NextU64());
    }
  }
  s.resize(n);
  return s;
}

void BM_Memcpy(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  std::vector<char> src(size, 'x');
  std::vector<char> dst(size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PrefetchingMemcpy(dst.data(), src.data(), size, config));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Memcpy)
    ->ArgsProduct({{4096, 65536, 1 << 20}, {0, 1}});

void BM_Memmove_Overlapping(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  std::vector<char> buf(size + 64, 'y');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        PrefetchingMemmove(buf.data() + 64, buf.data(), size, config));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Memmove_Overlapping)->ArgsProduct({{65536}, {0, 1}});

void BM_BlockHash64(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  const std::string data = MakePayload(size, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BlockHash64(data.data(), data.size(), 0, config));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_BlockHash64)->ArgsProduct({{4096, 1 << 20}, {0, 1}});

void BM_Crc32c(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  const std::string data = MakePayload(size, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size(), config));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Crc32c)->ArgsProduct({{65536}, {0, 1}});

void BM_Compress(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const BlockCompressor codec(SweepConfig(state.range(1) != 0));
  const std::string input = MakePayload(size, true);
  std::string output;
  for (auto _ : state) {
    codec.Compress(input, &output);
    benchmark::DoNotOptimize(output.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Compress)->ArgsProduct({{65536, 1 << 20}, {0, 1}});

void BM_Decompress(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const BlockCompressor codec(SweepConfig(state.range(1) != 0));
  const std::string input = MakePayload(size, true);
  std::string compressed;
  codec.Compress(input, &compressed);
  std::string output;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Decompress(compressed, &output));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Decompress)->ArgsProduct({{1 << 20}, {0, 1}});

void BM_Serialize(benchmark::State& state) {
  const WireSerializer serializer(SweepConfig(state.range(0) != 0));
  WireMessage message;
  for (std::uint32_t f = 1; f <= 8; ++f) {
    message.push_back({f, MakePayload(16 * 1024, false)});
  }
  std::string wire;
  for (auto _ : state) {
    serializer.Serialize(message, &wire);
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(WireSerializer::EncodedSize(message)));
}
BENCHMARK(BM_Serialize)->Arg(0)->Arg(1);

void BM_Parse(benchmark::State& state) {
  const WireSerializer serializer(SweepConfig(state.range(0) != 0));
  WireMessage message;
  for (std::uint32_t f = 1; f <= 8; ++f) {
    message.push_back({f, MakePayload(16 * 1024, false)});
  }
  std::string wire;
  serializer.Serialize(message, &wire);
  WireMessage parsed;
  for (auto _ : state) {
    benchmark::DoNotOptimize(serializer.Parse(wire, &parsed));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_Parse)->Arg(0)->Arg(1);

void BM_VarintEncode(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  Rng rng(count);
  std::vector<std::uint64_t> values(count);
  for (auto& v : values) v = rng.NextU64() >> rng.NextBounded(57);
  std::string out;
  for (auto _ : state) {
    VarintEncodeStream(values.data(), values.size(), config, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(count * sizeof(std::uint64_t)));
}
BENCHMARK(BM_VarintEncode)->ArgsProduct({{8192, 131072}, {0, 1}});

void BM_VarintDecode(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  Rng rng(count);
  std::vector<std::uint64_t> values(count);
  for (auto& v : values) v = rng.NextU64() >> rng.NextBounded(57);
  std::string encoded;
  VarintEncodeStream(values.data(), values.size(), &encoded);
  std::vector<std::uint64_t> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(VarintDecodeStream(encoded, config, &out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(encoded.size()));
}
BENCHMARK(BM_VarintDecode)->ArgsProduct({{8192, 131072}, {0, 1}});

void BM_DictCompress(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  DictCompressor codec(MakePayload(64 * 1024, true));
  const std::string input = MakePayload(size, true);
  std::string out;
  for (auto _ : state) {
    codec.Compress(input, config, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DictCompress)->ArgsProduct({{65536, 1 << 20}, {0, 1}});

void BM_DictDecompress(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  DictCompressor codec(MakePayload(64 * 1024, true));
  const std::string input = MakePayload(size, true);
  std::string compressed;
  codec.Compress(input, SoftPrefetchConfig::Disabled(), &compressed);
  std::string out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Decompress(compressed, config, &out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_DictDecompress)->ArgsProduct({{1 << 20}, {0, 1}});

void BM_HashJoinBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  Rng rng(n);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint64_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.NextU64();
    values[i] = i;
  }
  HashJoinTable table;
  for (auto _ : state) {
    table.Build(keys.data(), values.data(), n, config);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n * sizeof(std::uint64_t)));
}
BENCHMARK(BM_HashJoinBuild)->ArgsProduct({{1 << 16, 1 << 20}, {0, 1}});

void BM_HashJoinProbe(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const SoftPrefetchConfig config = SweepConfig(state.range(1) != 0);
  Rng rng(n);
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint64_t> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.NextU64();
    values[i] = i;
  }
  HashJoinTable table;
  table.Build(keys.data(), values.data(), n);
  // Probe stream: half hits, half misses, shuffled order.
  std::vector<std::uint64_t> probes(n);
  for (std::size_t i = 0; i < n; ++i) {
    probes[i] = rng.NextBernoulli(0.5) ? keys[rng.NextBounded(n)]
                                       : rng.NextU64();
  }
  std::vector<std::uint64_t> sums(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.Probe(probes.data(), probes.size(), sums.data(), config));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n * sizeof(std::uint64_t)));
}
BENCHMARK(BM_HashJoinProbe)->ArgsProduct({{1 << 16, 1 << 20}, {0, 1}});

}  // namespace
}  // namespace limoncello

BENCHMARK_MAIN();
