// Reproduces paper Fig. 11: per-function change in CPU cycles and LLC
// MPKI when hardware prefetchers are disabled (the hardware ablation
// study). Data-center-tax functions regress; scattered-access functions
// improve.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  AblationResult result = RunDetailedAblation(/*machines=*/8,
                                              /*epochs=*/40, /*seed=*/31);
  std::sort(result.deltas.begin(), result.deltas.end(),
            [](const FunctionDelta& a, const FunctionDelta& b) {
              return a.cycles_change_pct > b.cycles_change_pct;
            });

  Table table({"function", "category", "cycles_change(%)",
               "llc_mpki_change(%)", "cycle_share(%)"});
  for (const FunctionDelta& d : result.deltas) {
    table.AddRow({d.name, FunctionCategoryName(d.category),
                  Table::Num(d.cycles_change_pct, 1),
                  Table::Num(d.mpki_change_pct, 1),
                  Table::Num(100.0 * d.control_cycle_share, 2)});
  }
  table.Print(
      "Fig. 11: per-function impact of disabling HW prefetchers");
  std::printf(
      "\nPaper: tax functions (memcpy, compression, hashing, proto) show "
      "large\ncycle and MPKI increases; other hot functions improve from "
      "lower latency\nand less pollution.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
