// Reproduces paper Fig. 2: total memory bandwidth growth vs. per-core
// bandwidth plateau across server generations (2010-2022), from the
// platform catalog.
#include <cstdio>

#include "fleet/platform.h"
#include "util/table.h"

int main() {
  using limoncello::HistoricalGenerations;
  using limoncello::ServerGeneration;
  using limoncello::Table;

  const auto generations = HistoricalGenerations();
  const ServerGeneration& base = generations.front();

  Table table({"year", "cores", "membw(GB/s)", "membw_growth",
               "membw_per_core(GB/s)", "per_core_growth"});
  for (const ServerGeneration& gen : generations) {
    table.AddRow({Table::Num(static_cast<std::int64_t>(gen.year)),
                  Table::Num(static_cast<std::int64_t>(gen.cores)),
                  Table::Num(gen.membw_gbps, 1),
                  Table::Num(gen.membw_gbps / base.membw_gbps, 2),
                  Table::Num(gen.MembwPerCore(), 2),
                  Table::Num(gen.MembwPerCore() / base.MembwPerCore(), 2)});
  }
  table.Print("Fig. 2: memory bandwidth per core has plateaued");
  std::printf(
      "\nSummary: total bandwidth grew %.1fx while per-core bandwidth "
      "grew only %.2fx\n(paper: total membw up ~6x, per-core membw "
      "roughly flat).\n",
      generations.back().membw_gbps / base.membw_gbps,
      generations.back().MembwPerCore() / base.MembwPerCore());
  return 0;
}
