// Reproduces paper Fig. 7: memory-bandwidth volatility of one machine
// over an hour (1-minute samples). This volatility is why the controller
// needs hysteresis: reacting to every burst would thrash the prefetchers.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/hysteresis_controller.h"
#include "fleet/machine_model.h"
#include "stats/time_series.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  const PlatformConfig platform = PlatformConfig::Platform1();
  MachineModel machine(platform, DeploymentMode::kBaseline,
                       DeployedControllerConfig(), Rng(17));
  const auto services = ServiceSpec::FleetArchetypes();
  // A moderately loaded machine running a few services (enough headroom
  // that load swings show up as bandwidth swings, not as load shedding).
  for (int i = 0; i < 6; ++i) {
    MachineModel::Task task;
    task.service_index = i;
    task.spec = &services[static_cast<std::size_t>(i)];
    task.share = 0.7;
    machine.AddTask(task);
  }
  LoadProcess::Options lp;
  lp.diurnal_period_ns = 3600LL * kNsPerSec;
  lp.noise_stddev = 0.10;
  lp.burst_probability = 0.02;
  std::vector<std::unique_ptr<LoadProcess>> loads;
  for (std::size_t s = 0; s < services.size(); ++s) {
    loads.push_back(
        std::make_unique<LoadProcess>(lp, Rng(17).Fork(40 + s)));
  }

  TimeSeries bandwidth;
  std::vector<double> factors(services.size(), 1.0);
  for (int second = 0; second < 3600; ++second) {
    const SimTimeNs now = static_cast<SimTimeNs>(second) * kNsPerSec;
    for (std::size_t s = 0; s < services.size(); ++s) {
      factors[s] = loads[s]->Tick(now);
    }
    const auto r = machine.Tick(now, factors);
    bandwidth.Add(now, r.bandwidth_gbps);
  }

  const TimeSeries per_minute = bandwidth.Resample(60 * kNsPerSec);
  Table table({"minute", "bandwidth(GB/s)"});
  for (const auto& point : per_minute.points()) {
    table.AddRow({Table::Num(point.time_ns / (60 * kNsPerSec)),
                  Table::Num(point.value, 1)});
  }
  table.Print("Fig. 7: memory bandwidth variability over one hour");
  const Summary s = per_minute.Summarize();
  std::printf(
      "\nSummary: mean %.1f GB/s, stddev %.1f GB/s (%.0f%% of mean), "
      "range [%.1f, %.1f]\n(paper: volatile minute-scale swings that "
      "motivate hysteresis).\n",
      s.mean(), s.stddev(), 100.0 * s.stddev() / s.mean(), s.min(),
      s.max());
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
