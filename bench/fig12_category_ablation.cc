// Reproduces paper Fig. 12: aggregated change in CPU cycles per function
// category under Hard Limoncello ablation. All four tax categories
// regress; non-tax functions in aggregate improve.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  const AblationResult result =
      RunDetailedAblation(/*machines=*/8, /*epochs=*/40, /*seed=*/31);
  const auto categories = AggregateByCategory(result.deltas);

  Table table({"category", "cycles_change(%)", "mpki_change(%)",
               "cycle_share(%)"});
  for (const CategoryDelta& c : categories) {
    table.AddRow({FunctionCategoryName(c.category),
                  Table::Num(c.cycles_change_pct, 1),
                  Table::Num(c.mpki_change_pct, 1),
                  Table::Num(100.0 * c.control_cycle_share, 1)});
  }
  table.Print(
      "Fig. 12: per-category cycle change from disabling HW prefetchers");
  std::printf(
      "\nPaper: compression / data transmission / hashing / data movement "
      "all\nincrease in cycles; non-DC-tax functions decrease in "
      "aggregate.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
