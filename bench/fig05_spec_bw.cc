// Reproduces paper Fig. 5: memory bandwidth of a SPEC-like stream-heavy
// suite with and without hardware prefetching, across three server
// generations whose stream prefetchers grow more aggressive.
//
// Expected shape: prefetching adds ~30 % traffic on the oldest of the
// three generations, growing to ~40 % on the newest.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "util/check.h"
#include "util/table.h"
#include "workloads/generators.h"

namespace limoncello::bench {
namespace {

// SPEC-like mix: dominated by long streams with some strided and a
// little pointer-chasing (SPEC CPU is far more regular than fleet code).
std::unique_ptr<AccessGenerator> SpecLikeMix(Rng rng) {
  std::vector<MixGenerator::Element> elements;
  {
    SequentialStreamGenerator::Options o;
    o.working_set_bytes = 256 * kMiB;
    o.mean_stream_bytes = 64 * 1024;
    o.store_fraction = 0.3;
    o.gap_instructions_mean = 3.0;
    o.function = 0;
    elements.push_back({std::make_unique<SequentialStreamGenerator>(
                            o, rng.Fork(1)),
                        6.0, 128});
  }
  {
    StridedGenerator::Options o;
    o.working_set_bytes = 128 * kMiB;
    o.stride_lines = 3;
    o.function = 1;
    elements.push_back(
        {std::make_unique<StridedGenerator>(o, rng.Fork(2)), 2.0, 128});
  }
  {
    RandomAccessGenerator::Options o;
    o.working_set_bytes = 256 * kMiB;
    o.function = 2;
    elements.push_back({std::make_unique<RandomAccessGenerator>(
                            o, rng.Fork(3)),
                        1.2, 128});
  }
  return std::make_unique<MixGenerator>(std::move(elements), rng.Fork(4));
}

void Run() {
  Table table({"generation", "bw_off(GB/s)", "bw_on(GB/s)",
               "prefetch_share(%)", "overhead(%)"});
  int gen_index = 0;
  for (const ServerGeneration& gen : RecentGenerations()) {
    ++gen_index;
    double bw[2];      // [off, on]
    double pf_share = 0.0;
    for (int on = 0; on < 2; ++on) {
      SocketConfig config;
      config.num_cores = 4;
      config.memory.peak_gbps = 24.0;
      config.memory.jitter_fraction = 0.0;
      config.stream.degree = gen.stream_degree;
      config.stream.distance = gen.stream_distance;
      // Vendor aggressiveness grows per generation: the oldest of the
      // three ships without the adjacent-line engine, and the newest
      // runs a wider IP-stride degree.
      config.ip_stride.degree = gen_index <= 2 ? 2 : 4;
      Socket socket(config, 4, Rng(gen.year));
      socket.SetAllPrefetchersEnabled(on == 1);
      if (on == 1 && gen_index == 1) {
        // gen N-2: no adjacent-line prefetcher.
        PrefetchControl control(&socket.msr_device(),
                                PlatformMsrLayout::kIntelStyle, 0,
                                config.num_cores);
        LIMONCELLO_CHECK_EQ(
            control.SetEngine(PrefetchEngine::kL2AdjacentLine, false),
            config.num_cores);
      }
      for (int core = 0; core < config.num_cores; ++core) {
        socket.SetWorkload(
            core, SpecLikeMix(Rng(gen.year).Fork(
                      static_cast<std::uint64_t>(core))));
      }
      for (int epoch = 0; epoch < 60; ++epoch) {
        socket.Step(100 * kNsPerUs);
      }
      const PmuCounters& c = socket.counters();
      // Normalize to work done: bytes per instruction, scaled to GB/s at
      // the generation's nominal instruction rate.
      const double bytes_per_instr =
          static_cast<double>(c.DramTotalBytes()) /
          static_cast<double>(c.instructions);
      bw[on] = bytes_per_instr * 2.5;  // GB/s per 2.5e9 instr/s core
      if (on == 1) {
        pf_share = 100.0 *
                   static_cast<double>(c.dram_bytes[static_cast<int>(
                       TrafficClass::kHwPrefetch)]) /
                   static_cast<double>(c.DramTotalBytes());
      }
    }
    table.AddRow({gen.name, Table::Num(bw[0], 2), Table::Num(bw[1], 2),
                  Table::Num(pf_share, 1),
                  Table::Num(100.0 * (bw[1] / bw[0] - 1.0), 1)});
  }
  table.Print(
      "Fig. 5: SPEC-like memory bandwidth with/without HW prefetching "
      "across generations");
  std::printf(
      "\nPaper: +30-40%% bandwidth with prefetching on, growing with\n"
      "generation as vendors tuned for coverage over traffic.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
