// Reproduces paper Fig. 10: application throughput under different Hard
// Limoncello threshold configurations (lower/upper as % of saturation).
// The deployed 60/80 configuration should win or tie.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  struct Config {
    double lower;
    double upper;
    const char* label;
  };
  const Config configs[] = {
      {0.60, 0.80, "60/80"},
      {0.50, 0.70, "50/70"},
      {0.70, 0.90, "70/90"},
  };

  FleetOptions options = DefaultFleetOptions(23);
  options.fill = 0.62;  // loaded fleet: thresholds matter here
  const FleetMetrics baseline =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DeployedControllerConfig(), options);

  Table table({"config(LT/UT)", "throughput_increase(%)",
               "prefetcher_off_ticks(%)", "toggles"});
  for (const Config& c : configs) {
    ControllerConfig controller = DeployedControllerConfig();
    controller.lower_threshold = c.lower;
    controller.upper_threshold = c.upper;
    const FleetMetrics metrics = RunFleetArm(
        PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
        controller, options);
    const double gain = 100.0 * (metrics.served_qps_sum /
                                     baseline.served_qps_sum -
                                 1.0);
    table.AddRow(
        {c.label, Table::Num(gain, 2),
         Table::Num(100.0 *
                        static_cast<double>(metrics.prefetcher_off_ticks) /
                        static_cast<double>(metrics.machine_ticks),
                    1),
         Table::Num(static_cast<std::int64_t>(
             metrics.controller_toggles))});
  }
  table.Print("Fig. 10: throughput by threshold configuration");
  std::printf(
      "\nPaper: 60/80 delivered the best application throughput; 50/70 "
      "toggles too\neagerly at moderate load, 70/90 reacts too late.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
