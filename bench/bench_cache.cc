// Cache hot-path microbenchmark: accesses/sec per replacement policy and
// per hierarchy-level geometry (L1 / L2 / LLC sizes), over three traffic
// shapes (demand-hit-heavy, miss-heavy, prefetch-fill). Every number is a
// deterministic trace, so runs on the same machine are comparable across
// PRs — this is the regression guard for the flat-layout / probe-once
// cache refactor.
//
//   bench_cache [--accesses=N] [--reps=N] [--smoke] [--json=BENCH_cache.json]
//               [--baseline=ACCESSES_PER_SEC]
//
// --baseline overrides the recorded pre-refactor throughput of the
// headline scenario (llc/lru/demand_hit) that the emitted JSON compares
// against.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/flags.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

// Pre-refactor headline throughput (llc/lru/demand_hit accesses/sec),
// measured on this repo's reference machine with the original
// vector-of-vectors cache before the flat-layout refactor. Recorded here
// so BENCH_cache.json always carries the comparison baseline.
constexpr double kPreRefactorHeadlineAps = 21972598.2;

struct Geometry {
  const char* level;
  std::uint64_t size_bytes;
  int ways;
};

int Run(const FlagParser& flags) {
  const bool smoke = flags.GetBool("smoke").value_or(false);
  const std::uint64_t accesses = static_cast<std::uint64_t>(
      flags.GetInt("accesses").value_or(smoke ? 150000 : 4000000));
  const int reps = static_cast<int>(
      flags.GetInt("reps").value_or(smoke ? 1 : 3));
  const double baseline =
      flags.GetDouble("baseline").value_or(kPreRefactorHeadlineAps);

  const Geometry geometries[] = {
      {"l1", 32 * kKiB, 8},
      {"l2", 1 * kMiB, 16},
      {"llc", 16 * kMiB, 16},
  };
  const ReplacementPolicy policies[] = {ReplacementPolicy::kLru,
                                        ReplacementPolicy::kRandom,
                                        ReplacementPolicy::kSrrip};
  const char* scenarios[] = {"demand_hit", "demand_miss", "prefetch_fill"};

  std::vector<CacheBenchResult> results;
  double headline_aps = 0.0;
  for (const Geometry& geometry : geometries) {
    for (ReplacementPolicy policy : policies) {
      for (const char* scenario : scenarios) {
        CacheConfig config{geometry.size_bytes, geometry.ways, policy};
        results.push_back(RunCacheMicrobench(geometry.level, config,
                                             scenario, accesses, reps));
        const CacheBenchResult& r = results.back();
        if (r.level == "llc" && r.policy == "lru" &&
            r.scenario == "demand_hit") {
          headline_aps = r.accesses_per_sec;
        }
      }
    }
  }

  Table table({"level", "policy", "scenario", "Maccesses/sec"});
  for (const CacheBenchResult& r : results) {
    table.AddRow({r.level, r.policy, r.scenario,
                  Table::Num(r.accesses_per_sec / 1e6, 1)});
  }
  table.Print("Cache hot path: accesses/sec by geometry, policy, traffic");
  if (baseline > 0.0) {
    std::printf("\nheadline llc/lru/demand_hit: %.1f M/s vs pre-refactor "
                "%.1f M/s => %.2fx\n",
                headline_aps / 1e6, baseline / 1e6,
                headline_aps / baseline);
  }

  const std::string json_path =
      flags.GetString("json").value_or("BENCH_cache.json");
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"cache\",\n  \"accesses\": %llu,\n"
               "  \"headline\": {\"scenario\": \"llc/lru/demand_hit\", "
               "\"accesses_per_sec\": %.1f, "
               "\"pre_refactor_accesses_per_sec\": %.1f, "
               "\"speedup_vs_pre_refactor\": %.3f},\n  \"results\": [\n",
               static_cast<unsigned long long>(accesses), headline_aps,
               baseline, baseline > 0.0 ? headline_aps / baseline : 0.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CacheBenchResult& r = results[i];
    std::fprintf(f,
                 "    {\"level\": \"%s\", \"policy\": \"%s\", "
                 "\"scenario\": \"%s\", \"accesses_per_sec\": %.1f}%s\n",
                 r.level.c_str(), r.policy.c_str(), r.scenario.c_str(),
                 r.accesses_per_sec, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace limoncello::bench

int main(int argc, char** argv) {
  limoncello::FlagParser flags;
  flags.Define("accesses", "timed accesses per cell (default 4M, smoke 150k)")
      .Define("reps", "timing repetitions, best taken (default 3)")
      .Define("smoke", "tiny sizes for CI (a few ms)")
      .Define("json", "output path (default BENCH_cache.json)")
      .Define("baseline", "pre-refactor headline accesses/sec to compare")
      .Define("help", "show this help");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.Help(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.Help(argv[0]).c_str());
    return 0;
  }
  return limoncello::bench::Run(flags);
}
