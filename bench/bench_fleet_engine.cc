// Self-timing harness for the parallel fleet engine.
//
// Runs the same fleet at a sweep of thread counts, prints wall time and
// machine-ticks/sec per count (plus speedup vs the serial engine), cross
// checks that every thread count produced bit-identical metrics, and
// emits BENCH_fleet.json so the numbers can be tracked across PRs.
//
//   bench_fleet_engine [--machines=N] [--ticks=N] [--threads=1,2,4]
//                      [--json=BENCH_fleet.json]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace limoncello::bench {
namespace {

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> threads;
  std::string token;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ',') {
      if (!token.empty()) {
        const int t = std::atoi(token.c_str());
        if (t >= 1) threads.push_back(t);
        token.clear();
      }
    } else {
      token.push_back(spec[i]);
    }
  }
  return threads;
}

int Run(const FlagParser& flags) {
  // Run at the same scale the figure benches use (DefaultFleetOptions:
  // 1000 machines x 600 ticks), so the engine numbers here describe the
  // configuration the rest of the suite actually pays for.
  FleetOptions options = DefaultFleetOptions(42);
  options.num_machines = static_cast<int>(
      flags.GetInt("machines").value_or(options.num_machines));
  options.ticks =
      static_cast<int>(flags.GetInt("ticks").value_or(options.ticks));
  // Default sweep: serial engine, 2 and 4 lanes, and whatever the host
  // (or LIMONCELLO_THREADS) resolves to.
  std::string spec = flags.GetString("threads").value_or("1,2,4");
  std::vector<int> threads = ParseThreadList(spec);
  if (threads.empty()) {
    std::fprintf(stderr, "error: bad --threads list '%s'\n", spec.c_str());
    return 2;
  }
  const int resolved = ResolveThreadCount(0);
  if (!flags.GetString("threads").has_value() &&
      std::find(threads.begin(), threads.end(), resolved) == threads.end()) {
    threads.push_back(resolved);
  }

  std::printf("fleet engine self-timing: %d machines x %d ticks (host has "
              "%d hardware threads)\n",
              options.num_machines, options.ticks, ResolveThreadCount(0));
  std::vector<FleetEngineTiming> results;
  for (int t : threads) {
    results.push_back(TimeFleetEngine(PlatformConfig::Platform1(),
                                      DeploymentMode::kFullLimoncello,
                                      DeployedControllerConfig(), options,
                                      t));
  }

  bool identical = true;
  for (const FleetEngineTiming& r : results) {
    if (r.served_qps_sum != results[0].served_qps_sum ||
        r.machine_ticks != results[0].machine_ticks) {
      identical = false;
    }
  }

  Table table({"threads", "wall(s)", "machine_ticks/sec", "speedup_vs_1"});
  double serial_rate = 0.0;
  for (const FleetEngineTiming& r : results) {
    if (r.threads == 1) serial_rate = r.machine_ticks_per_sec;
  }
  for (const FleetEngineTiming& r : results) {
    table.AddRow({Table::Num(static_cast<std::int64_t>(r.threads)),
                  Table::Num(r.seconds, 3),
                  Table::Num(r.machine_ticks_per_sec, 0),
                  serial_rate > 0.0
                      ? Table::Num(r.machine_ticks_per_sec / serial_rate, 2)
                      : "n/a"});
  }
  table.Print("Parallel fleet engine: machine-ticks/sec by thread count");
  std::printf("\nmetrics across thread counts: %s\n",
              identical ? "bit-identical" : "MISMATCH (engine bug!)");

  const std::string json_path =
      flags.GetString("json").value_or("BENCH_fleet.json");
  if (!WriteFleetBenchJson(json_path, options, results)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace limoncello::bench

int main(int argc, char** argv) {
  limoncello::FlagParser flags;
  flags.Define("machines", "fleet size (default 1000)")
      .Define("ticks", "telemetry ticks to run (default 600)")
      .Define("threads", "comma-separated thread counts (default 1,2,4 + host)")
      .Define("json", "output path (default BENCH_fleet.json)")
      .Define("help", "show this help");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.Help(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.Help(argv[0]).c_str());
    return 0;
  }
  return limoncello::bench::Run(flags);
}
