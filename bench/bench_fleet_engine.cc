// Self-timing harness and CI gate for the parallel fleet engine.
//
// Sweep mode (default): runs the same fleet at a sweep of thread counts,
// prints wall time and machine-ticks/sec per count (plus speedup vs the
// serial engine), cross-checks that every thread count produced
// bit-identical metrics, and emits BENCH_fleet.json so the numbers can
// be tracked across PRs. --big appends the fleet-scale arm (100k
// machines x 600 ticks, 8 threads) to the JSON.
//
// Gate mode (--gate, registered as the bench_fleet_gate ctest): a small
// fixed configuration that fails the build when
//   - parallel metrics diverge from serial (determinism regression),
//   - the epoch loop allocates (>= 0.05 heap allocations per
//     machine-tick, counted by the operator-new probe below), or
//   - 4-thread speedup falls below a hardware-aware floor: 1.5x where
//     the host has >= 4 hardware threads, 1.05x with >= 2, and 0.85x on
//     a single-core host (threads can't win there; the gate only
//     rejects parallel-much-slower-than-serial regressions).
//
//   bench_fleet_engine [--machines=N] [--ticks=N] [--threads=1,2,4,8]
//                      [--spin-us=N] [--json=BENCH_fleet.json]
//                      [--baseline=RATE] [--big] [--gate]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "util/flags.h"
#include "util/table.h"
#include "util/thread_pool.h"

// ---------------------------------------------------------------------------
// Global allocation probe (same shape as bench_socket's): every operator
// new in this binary funnels through CountedAlloc, so the gate can assert
// that a steady-state Run() window performs ~zero heap allocations per
// machine-tick. The aligned forms are overridden too — FleetState's SoA
// arrays are 64-byte-aligned, and a regression that re-allocates them
// mid-run must not slip past the probe.

namespace {

std::atomic<std::uint64_t> g_heap_allocs{0};
std::atomic<bool> g_count_allocs{false};

void CountAlloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

void* CountedAlloc(std::size_t size) {
  CountAlloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) std::abort();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  CountAlloc();
  const std::size_t padded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, padded == 0 ? align : padded);
  if (p == nullptr) std::abort();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace limoncello::bench {
namespace {

// Serial machine-ticks/sec recorded on this repo's reference machine
// before the SoA / epoch-batching refactor, so the emitted JSON always
// carries the serial-engine comparison even on single-core hosts where
// the thread-sweep curve is flat. Override with --baseline when
// re-baselining on different hardware.
constexpr double kPreSoaSerialTicksPerSec = 400822.0;

// Gate allocation budget: heap allocations per machine-tick across one
// full serial Run(). The epoch loop itself is allocation-free; the
// budget absorbs one-time Run() setup (slice partials, the epoch factor
// buffer) and amortized histogram-bucket growth.
constexpr double kGateAllocsPerMachineTick = 0.05;

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> threads;
  std::string token;
  for (std::size_t i = 0; i <= spec.size(); ++i) {
    if (i == spec.size() || spec[i] == ',') {
      if (!token.empty()) {
        const int t = std::atoi(token.c_str());
        if (t >= 1) threads.push_back(t);
        token.clear();
      }
    } else {
      token.push_back(spec[i]);
    }
  }
  return threads;
}

bool Identical(const std::vector<FleetEngineTiming>& results) {
  for (const FleetEngineTiming& r : results) {
    if (r.served_qps_sum != results[0].served_qps_sum ||
        r.machine_ticks != results[0].machine_ticks) {
      return false;
    }
  }
  return true;
}

// Counts heap allocations across one serial Run() (construction and
// placement excluded) and returns allocations per machine-tick.
double MeasureRunAllocs(const FleetOptions& options) {
  FleetOptions serial = options;
  serial.num_threads = 1;
  FleetSimulator sim(PlatformConfig::Platform1(),
                     DeploymentMode::kFullLimoncello,
                     DeployedControllerConfig(), serial);
  g_heap_allocs.store(0);
  g_count_allocs.store(true);
  const FleetMetrics metrics = sim.Run();
  g_count_allocs.store(false);
  const std::uint64_t allocs = g_heap_allocs.load();
  return metrics.machine_ticks > 0
             ? static_cast<double>(allocs) /
                   static_cast<double>(metrics.machine_ticks)
             : static_cast<double>(allocs);
}

// Hardware-aware 4-thread speedup floor (see file comment).
double GateSpeedupFloor(int hardware_threads) {
  if (hardware_threads >= 4) return 1.5;
  if (hardware_threads >= 2) return 1.05;
  return 0.85;
}

int RunGate() {
  // Small fixed configuration: big enough that per-arm wall time
  // (~0.1 s serial) dominates timer noise, small enough that the gate
  // stays an instant ctest.
  FleetOptions options = DefaultFleetOptions(42);
  options.num_machines = 512;
  options.ticks = 240;

  const int hw = ResolveThreadCount(0);
  std::printf("fleet engine gate: %d machines x %d ticks, host has %d "
              "hardware threads\n",
              options.num_machines, options.ticks, hw);

  const double allocs_per_tick = MeasureRunAllocs(options);
  const bool allocs_ok = allocs_per_tick < kGateAllocsPerMachineTick;
  std::printf("[%s] heap allocs per machine-tick: %.4f (budget %.2f)\n",
              allocs_ok ? "pass" : "FAIL", allocs_per_tick,
              kGateAllocsPerMachineTick);

  // Best-of-3 per arm: the gate compares rates, so each arm gets its
  // noise floor knocked down independently.
  FleetEngineTiming serial;
  FleetEngineTiming parallel;
  for (int rep = 0; rep < 3; ++rep) {
    const FleetEngineTiming s =
        TimeFleetEngine(PlatformConfig::Platform1(),
                        DeploymentMode::kFullLimoncello,
                        DeployedControllerConfig(), options, 1);
    const FleetEngineTiming p =
        TimeFleetEngine(PlatformConfig::Platform1(),
                        DeploymentMode::kFullLimoncello,
                        DeployedControllerConfig(), options, 4);
    if (rep == 0 || s.seconds < serial.seconds) serial = s;
    if (rep == 0 || p.seconds < parallel.seconds) parallel = p;
  }

  const bool identical = Identical({serial, parallel});
  std::printf("[%s] serial vs 4-thread metrics bit-identical\n",
              identical ? "pass" : "FAIL");

  const double speedup =
      serial.machine_ticks_per_sec > 0.0
          ? parallel.machine_ticks_per_sec / serial.machine_ticks_per_sec
          : 0.0;
  const double floor = GateSpeedupFloor(hw);
  const bool fast_enough = speedup >= floor;
  std::printf("[%s] 4-thread speedup %.2fx (floor %.2fx at %d hardware "
              "threads; serial %.0f machine-ticks/sec)\n",
              fast_enough ? "pass" : "FAIL", speedup, floor, hw,
              serial.machine_ticks_per_sec);

  return allocs_ok && identical && fast_enough ? 0 : 1;
}

int Run(const FlagParser& flags) {
  if (const auto spin = flags.GetInt("spin-us"); spin.has_value()) {
    SetSpinBudgetUs(static_cast<int>(*spin));
  }
  if (flags.GetBool("gate").value_or(false)) return RunGate();

  // The sweep pins 1000 machines (not DefaultFleetOptions' 100k) so the
  // curve in BENCH_fleet.json stays comparable across PRs; the
  // fleet-scale configuration is covered by the --big arm below.
  FleetOptions options = DefaultFleetOptions(42);
  options.num_machines = 1000;
  options.num_machines = static_cast<int>(
      flags.GetInt("machines").value_or(options.num_machines));
  options.ticks =
      static_cast<int>(flags.GetInt("ticks").value_or(options.ticks));
  // Default sweep: serial engine, 2/4/8 lanes, and whatever the host
  // (or LIMONCELLO_THREADS) resolves to.
  std::string spec = flags.GetString("threads").value_or("1,2,4,8");
  std::vector<int> threads = ParseThreadList(spec);
  if (threads.empty()) {
    std::fprintf(stderr, "error: bad --threads list '%s'\n", spec.c_str());
    return 2;
  }
  const int resolved = ResolveThreadCount(0);
  if (!flags.GetString("threads").has_value() &&
      std::find(threads.begin(), threads.end(), resolved) == threads.end()) {
    threads.push_back(resolved);
  }

  std::printf("fleet engine self-timing: %d machines x %d ticks (host has "
              "%d hardware threads)\n",
              options.num_machines, options.ticks, resolved);
  std::vector<FleetEngineTiming> results;
  for (int t : threads) {
    results.push_back(TimeFleetEngine(PlatformConfig::Platform1(),
                                      DeploymentMode::kFullLimoncello,
                                      DeployedControllerConfig(), options,
                                      t));
  }
  const bool identical = Identical(results);

  Table table({"threads", "wall(s)", "machine_ticks/sec", "speedup_vs_1"});
  double serial_rate = 0.0;
  for (const FleetEngineTiming& r : results) {
    if (r.threads == 1) serial_rate = r.machine_ticks_per_sec;
  }
  for (const FleetEngineTiming& r : results) {
    table.AddRow({Table::Num(static_cast<std::int64_t>(r.threads)),
                  Table::Num(r.seconds, 3),
                  Table::Num(r.machine_ticks_per_sec, 0),
                  serial_rate > 0.0
                      ? Table::Num(r.machine_ticks_per_sec / serial_rate, 2)
                      : "n/a"});
  }
  table.Print("Parallel fleet engine: machine-ticks/sec by thread count");
  std::printf("\nmetrics across thread counts: %s\n",
              identical ? "bit-identical" : "MISMATCH (engine bug!)");
  const double baseline =
      flags.GetDouble("baseline").value_or(kPreSoaSerialTicksPerSec);
  if (serial_rate > 0.0 && baseline > 0.0) {
    std::printf("serial engine vs pre-SoA baseline: %.2fx "
                "(%.0f vs %.0f machine-ticks/sec)\n",
                serial_rate / baseline, serial_rate, baseline);
  }

  // Fleet-scale arm: DefaultFleetOptions' 100k machines for the full 600
  // ticks on 8 lanes — the ROADMAP target is completing this under 60 s.
  FleetEngineTiming big_run;
  FleetOptions big_options = DefaultFleetOptions(42);
  const bool ran_big = flags.GetBool("big").value_or(false);
  if (ran_big) {
    std::printf("\nfleet-scale arm: %d machines x %d ticks, 8 threads...\n",
                big_options.num_machines, big_options.ticks);
    big_run = TimeFleetEngine(PlatformConfig::Platform1(),
                              DeploymentMode::kFullLimoncello,
                              DeployedControllerConfig(), big_options, 8);
    std::printf("fleet-scale arm: %.1f s wall, %.0f machine-ticks/sec\n",
                big_run.seconds, big_run.machine_ticks_per_sec);
  }

  const std::string json_path =
      flags.GetString("json").value_or("BENCH_fleet.json");
  if (!WriteFleetBenchJson(json_path, options, results, resolved, baseline,
                           ran_big ? &big_run : nullptr,
                           ran_big ? &big_options : nullptr)) {
    std::fprintf(stderr, "error: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace limoncello::bench

int main(int argc, char** argv) {
  limoncello::FlagParser flags;
  flags.Define("machines", "fleet size for the sweep (default 1000)")
      .Define("ticks", "telemetry ticks to run (default 600)")
      .Define("threads",
              "comma-separated thread counts (default 1,2,4,8 + host)")
      .Define("spin-us", "pool spin budget override in microseconds")
      .Define("json", "output path (default BENCH_fleet.json)")
      .Define("baseline", "pre-SoA serial machine-ticks/sec to compare")
      .Define("big", "also run the 100k-machine x 600-tick arm")
      .Define("gate", "CI gate: determinism + allocs + speedup floor")
      .Define("help", "show this help");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.Help(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.Help(argv[0]).c_str());
    return 0;
  }
  return limoncello::bench::Run(flags);
}
