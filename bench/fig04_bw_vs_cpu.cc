// Reproduces paper Fig. 4: memory bandwidth usage vs. CPU-utilization
// bucket for the two evaluation platforms, before Limoncello. Expected
// shape: bandwidth climbs with CPU utilization and saturates around the
// 40-60 % CPU buckets — the utilization ceiling Limoncello attacks.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  Table table({"cpu_bucket(%)", "p1_machines", "p1_bw_util(%)",
               "p2_machines", "p2_bw_util(%)"});
  FleetOptions options = DefaultFleetOptions(7);
  options.fill = 0.62;  // loaded fleet: populate the upper buckets

  const FleetMetrics p1 =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DeployedControllerConfig(), options);
  const FleetMetrics p2 =
      RunFleetArm(PlatformConfig::Platform2(), DeploymentMode::kBaseline,
                  DeployedControllerConfig(), options);
  const auto rows1 = BucketByCpu(p1);
  const auto rows2 = BucketByCpu(p2);

  for (std::size_t b = 0; b < rows1.size(); ++b) {
    if (rows1[b].machines == 0 && rows2[b].machines == 0) continue;
    char label[16];
    std::snprintf(label, sizeof(label), "%d-%d",
                  rows1[b].bucket * 10, rows1[b].bucket * 10 + 10);
    table.AddRow({label,
                  Table::Num(static_cast<std::int64_t>(rows1[b].machines)),
                  Table::Num(100.0 * rows1[b].avg_bw_utilization, 1),
                  Table::Num(static_cast<std::int64_t>(rows2[b].machines)),
                  Table::Num(100.0 * rows2[b].avg_bw_utilization, 1)});
  }
  table.Print("Fig. 4: memory bandwidth vs CPU-utilization bucket");
  std::printf(
      "\nSummary: bandwidth saturates before machines reach the 70-80%% "
      "CPU target band\n(paper: saturation at 40-60%% CPU utilization).\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
