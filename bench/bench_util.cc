#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "profiling/sampling_profiler.h"
#include "util/thread_pool.h"
#include "workloads/generators.h"

namespace limoncello::bench {

namespace {

SocketConfig LoadedLatencySocket() {
  SocketConfig config;
  config.num_cores = 8;
  config.memory.peak_gbps = 24.0;
  config.memory.jitter_fraction = 0.0;
  // Bandwidth generators overlap many misses, like MLC's streaming
  // threads; latency is still measured per DRAM request.
  config.mlp = 8.0;
  return config;
}

}  // namespace

std::vector<LoadedLatencyPoint> RunLoadedLatency(bool prefetchers_on,
                                                 int levels,
                                                 std::uint64_t seed) {
  std::vector<LoadedLatencyPoint> points;
  for (int level = 1; level <= levels; ++level) {
    // Demand sweeps up to 1.5x the channel peak so the socket reaches
    // true saturation even with prefetchers off.
    const double fraction = 1.5 * static_cast<double>(level) /
                            static_cast<double>(levels);
    Socket socket(LoadedLatencySocket(), 4, Rng(seed + level));
    socket.SetAllPrefetchersEnabled(prefetchers_on);
    const int active_cores = socket.config().num_cores;
    // MLC-style bandwidth generators: long sequential streams. The
    // compute gap is calibrated per prefetcher state so both states
    // inject comparable application bandwidth: with prefetchers on the
    // stream is covered (no stall per line), with them off each line
    // stalls for ~unloaded_latency/mlp cycles.
    const double cycles_per_access = 53.0 / std::max(0.05, fraction);
    const double stall = prefetchers_on ? 0.0 : 28.0;
    const double target_gap =
        std::max(1.0, 2.0 * (cycles_per_access - stall));
    for (int core = 0; core < active_cores; ++core) {
      SequentialStreamGenerator::Options o;
      o.working_set_bytes = 512 * kMiB;
      o.mean_stream_bytes = 1 * kMiB;  // long MLC-like buffers
      o.stream_sigma = 0.3;
      o.gap_instructions_mean = target_gap;
      o.store_fraction = 0.0;
      o.function = 0;
      socket.SetWorkload(core, std::make_unique<SequentialStreamGenerator>(
                                   o, Rng(seed).Fork(core)));
    }
    // Warm to steady state, then measure.
    for (int epoch = 0; epoch < 30; ++epoch) socket.Step(100 * kNsPerUs);
    const PmuCounters warm = socket.counters();
    const SimTimeNs t0 = socket.now();
    for (int epoch = 0; epoch < 30; ++epoch) socket.Step(100 * kNsPerUs);
    const PmuCounters done = socket.counters();
    const double interval_ns = static_cast<double>(socket.now() - t0);

    LoadedLatencyPoint p;
    p.demand_fraction = fraction;
    const double touched_bytes =
        static_cast<double>(done.lines_touched - warm.lines_touched) *
        static_cast<double>(kCacheLineBytes);
    const double total_bytes =
        static_cast<double>(done.DramTotalBytes() - warm.DramTotalBytes());
    p.touched_gbps = touched_bytes / interval_ns;
    p.touched_fraction =
        p.touched_gbps / socket.memory().config().peak_gbps;
    p.utilization =
        total_bytes / interval_ns / socket.memory().config().peak_gbps;
    const double requests =
        static_cast<double>(done.dram_requests - warm.dram_requests);
    p.latency_ns =
        requests > 0
            ? (done.dram_latency_ns_sum - warm.dram_latency_ns_sum) /
                  requests
            : 0.0;
    points.push_back(p);
  }
  return points;
}

FleetOptions DefaultFleetOptions(std::uint64_t seed) {
  FleetOptions options;
  // Fleet scale proper (paper §5 runs warehouse-scale deployments): the
  // SoA machine state and epoch-batched tick loop hold >1M machine-
  // ticks/sec per lane, so 100k machines x 600 ticks completes in about
  // a minute per arm. Benches that only need distribution *shape* (not
  // population) override num_machines downward; bench_fleet_engine's
  // sweep pins 1000 machines so its curve stays comparable across PRs.
  options.num_machines = 100000;
  options.ticks = 600;
  options.fill = 0.50;
  options.seed = seed;
  options.diurnal_period_ns = 600LL * kNsPerSec;
  return options;
}

ControllerConfig DeployedControllerConfig() {
  ControllerConfig config;
  config.upper_threshold = 0.80;
  config.lower_threshold = 0.60;
  config.sustain_duration_ns = 5 * kNsPerSec;
  return config;
}

FleetAb RunFleetAb(const PlatformConfig& platform, DeploymentMode before,
                   DeploymentMode after, const ControllerConfig& controller,
                   const FleetOptions& options) {
  const std::vector<FleetMetrics> arms =
      RunFleetArms(platform, {before, after}, controller, options);
  FleetAb result;
  result.before = arms[0];
  result.after = arms[1];
  return result;
}

std::vector<FleetMetrics> RunFleetArms(
    const PlatformConfig& platform, const std::vector<DeploymentMode>& modes,
    const ControllerConfig& controller, const FleetOptions& options) {
  std::vector<FleetMetrics> results(modes.size());
  std::vector<std::function<void()>> arms;
  arms.reserve(modes.size());
  for (std::size_t i = 0; i < modes.size(); ++i) {
    arms.push_back([&, i] {
      results[i] = RunFleetArm(platform, modes[i], controller, options);
    });
  }
  ParallelInvoke(std::move(arms));
  return results;
}

FleetEngineTiming TimeFleetEngine(const PlatformConfig& platform,
                                  DeploymentMode mode,
                                  const ControllerConfig& controller,
                                  FleetOptions options, int threads) {
  using Clock = std::chrono::steady_clock;
  options.num_threads = threads;
  FleetSimulator sim(platform, mode, controller, options);
  const auto start = Clock::now();
  const FleetMetrics metrics = sim.Run();
  const auto end = Clock::now();

  FleetEngineTiming timing;
  timing.threads = threads;
  timing.seconds = std::chrono::duration<double>(end - start).count();
  timing.machine_ticks = metrics.machine_ticks;
  timing.machine_ticks_per_sec =
      timing.seconds > 0.0
          ? static_cast<double>(timing.machine_ticks) / timing.seconds
          : 0.0;
  timing.served_qps_sum = metrics.served_qps_sum;
  return timing;
}

bool WriteFleetBenchJson(const std::string& path,
                         const FleetOptions& options,
                         const std::vector<FleetEngineTiming>& results,
                         int hardware_threads,
                         double serial_baseline_machine_ticks_per_sec,
                         const FleetEngineTiming* big_run,
                         const FleetOptions* big_options) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  double serial_rate = 0.0;
  double rate_4t = 0.0;
  for (const FleetEngineTiming& r : results) {
    if (r.threads == 1) serial_rate = r.machine_ticks_per_sec;
    if (r.threads == 4) rate_4t = r.machine_ticks_per_sec;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"fleet_engine\",\n"
               "  \"machines\": %d,\n  \"ticks\": %d,\n"
               "  \"hardware_threads\": %d,\n"
               "  \"speedup_4t\": %.3f,\n"
               "  \"serial_baseline_machine_ticks_per_sec\": %.1f,\n"
               "  \"serial_speedup_vs_baseline\": %.3f,\n"
               "  \"results\": [\n",
               options.num_machines, options.ticks, hardware_threads,
               serial_rate > 0.0 ? rate_4t / serial_rate : 0.0,
               serial_baseline_machine_ticks_per_sec,
               serial_baseline_machine_ticks_per_sec > 0.0
                   ? serial_rate / serial_baseline_machine_ticks_per_sec
                   : 0.0);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FleetEngineTiming& r = results[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds\": %.6f, "
                 "\"machine_ticks\": %llu, "
                 "\"machine_ticks_per_sec\": %.1f, "
                 "\"speedup_vs_1t\": %.3f}%s\n",
                 r.threads, r.seconds,
                 static_cast<unsigned long long>(r.machine_ticks),
                 r.machine_ticks_per_sec,
                 serial_rate > 0.0 ? r.machine_ticks_per_sec / serial_rate
                                   : 0.0,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  if (big_run != nullptr && big_options != nullptr) {
    std::fprintf(f,
                 ",\n  \"big_run\": {\"machines\": %d, \"ticks\": %d, "
                 "\"threads\": %d, \"seconds\": %.3f, "
                 "\"machine_ticks\": %llu, "
                 "\"machine_ticks_per_sec\": %.1f}",
                 big_options->num_machines, big_options->ticks,
                 big_run->threads, big_run->seconds,
                 static_cast<unsigned long long>(big_run->machine_ticks),
                 big_run->machine_ticks_per_sec);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return true;
}

CacheBenchResult RunCacheMicrobench(const std::string& level,
                                    const CacheConfig& config,
                                    const std::string& scenario,
                                    std::uint64_t accesses, int reps) {
  using Clock = std::chrono::steady_clock;
  const std::uint64_t lines = config.size_bytes / kCacheLineBytes;
  std::uint64_t working_set = lines / 2;
  if (scenario == "demand_miss") working_set = lines * 4;
  if (scenario == "prefetch_fill") working_set = lines * 2;

  // Pre-generated trace so the timed loop measures the cache, not the Rng.
  Rng rng(0xBE7C5EEDULL);
  std::vector<Addr> trace(std::size_t{1} << 18);
  for (Addr& addr : trace) addr = rng.NextBounded(working_set);
  const bool prefetch_fill = scenario == "prefetch_fill";

  Cache cache(config, level);
  // Same probe-once sequence the socket hot path uses: the miss probe
  // from LookupDemand feeds the demand fill, and the buddy prefetch is
  // filtered and filled off a single probe.
  auto run_trace = [&](std::uint64_t count) {
    std::size_t cursor = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      const Addr addr = trace[cursor];
      cursor = cursor + 1 == trace.size() ? 0 : cursor + 1;
      Cache::ProbeResult probe;
      if (!cache.LookupDemand(addr, /*is_store=*/false, nullptr, &probe)) {
        cache.FillAt(probe, addr, /*is_prefetch=*/false, /*dirty=*/false);
        if (prefetch_fill) {
          const Addr buddy = addr ^ 1;
          const Cache::ProbeResult buddy_probe = cache.Probe(buddy);
          if (!buddy_probe.hit) {
            cache.FillAt(buddy_probe, buddy, /*is_prefetch=*/true,
                         /*dirty=*/false);
          }
        }
      }
    }
  };
  // Warm: populate the working set, then one trace pass to steady state.
  for (Addr addr = 0; addr < working_set && addr < lines; ++addr) {
    cache.Fill(addr, /*is_prefetch=*/false, /*dirty=*/false);
  }
  run_trace(trace.size());

  CacheBenchResult result;
  result.level = level;
  result.policy = config.policy == ReplacementPolicy::kLru      ? "lru"
                  : config.policy == ReplacementPolicy::kRandom ? "random"
                                                                : "srrip";
  result.scenario = scenario;
  result.accesses = accesses;
  result.seconds = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    run_trace(accesses);
    const auto end = Clock::now();
    const double seconds =
        std::chrono::duration<double>(end - start).count();
    if (rep == 0 || seconds < result.seconds) result.seconds = seconds;
  }
  result.accesses_per_sec =
      result.seconds > 0.0
          ? static_cast<double>(accesses) / result.seconds
          : 0.0;
  return result;
}

std::vector<CpuBucketRow> BucketByCpu(const FleetMetrics& metrics) {
  std::vector<CpuBucketRow> rows(11);
  for (int b = 0; b < 11; ++b) rows[static_cast<std::size_t>(b)].bucket = b;
  for (const MachineAggregate& m : metrics.machines) {
    const int b = std::clamp(static_cast<int>(m.AvgCpu() * 10.0), 0, 10);
    CpuBucketRow& row = rows[static_cast<std::size_t>(b)];
    ++row.machines;
    row.avg_bw_utilization += m.AvgBwUtil();
    row.served_qps += m.served_qps_sum;
  }
  for (CpuBucketRow& row : rows) {
    if (row.machines > 0) {
      row.avg_bw_utilization /= static_cast<double>(row.machines);
    }
  }
  return rows;
}

double TimeNsPerCall(const std::function<void()>& fn, int calls_per_rep,
                     int reps) {
  using Clock = std::chrono::steady_clock;
  // Warm-up.
  for (int i = 0; i < calls_per_rep; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto start = Clock::now();
    for (int i = 0; i < calls_per_rep; ++i) fn();
    const auto end = Clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(end - start).count() /
        static_cast<double>(calls_per_rep));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

AblationResult RunDetailedAblation(int machines, int epochs,
                                   std::uint64_t seed) {
  AblationResult result;
  result.catalog = FunctionCatalog::FleetDefault();

  SocketConfig config;
  config.num_cores = 4;
  config.memory.peak_gbps = 32.0;  // moderate fleet-average load point
  config.memory.jitter_fraction = 0.0;

  auto run_population = [&](bool prefetchers_on) {
    ProfileAggregate aggregate(result.catalog.size());
    SamplingProfiler::Options po;
    po.machine_sample_probability = 1.0;
    po.event_sample_fraction = 0.5;
    SamplingProfiler profiler(po, Rng(seed));
    for (int m = 0; m < machines; ++m) {
      Socket socket(config, result.catalog.size(),
                    Rng(seed + static_cast<std::uint64_t>(m)));
      socket.SetAllPrefetchersEnabled(prefetchers_on);
      for (int core = 0; core < config.num_cores; ++core) {
        socket.SetWorkload(
            core, result.catalog.MakeFleetMix(
                      Rng(seed + static_cast<std::uint64_t>(m))
                          .Fork(static_cast<std::uint64_t>(core))));
      }
      for (int epoch = 0; epoch < epochs; ++epoch) {
        socket.Step(100 * kNsPerUs);
      }
      profiler.CollectFrom(socket.function_profile(), &aggregate);
    }
    return aggregate;
  };

  const ProfileAggregate control = run_population(true);
  const ProfileAggregate experiment = run_population(false);
  result.deltas = CompareAblation(control, experiment, result.catalog);
  return result;
}

}  // namespace limoncello::bench
