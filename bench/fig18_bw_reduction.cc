// Reproduces paper Fig. 18: reduction in socket memory-bandwidth usage
// after the Limoncello rollout (average / P90 / P99), plus the drop in
// the fraction of saturated sockets.
// Paper: ~-15 % average bandwidth; saturated sockets down ~8 %.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  FleetOptions options = DefaultFleetOptions(41);
  options.fill = 0.62;
  const FleetAb ab = RunFleetAb(
      PlatformConfig::Platform1(), DeploymentMode::kBaseline,
      DeploymentMode::kFullLimoncello, DeployedControllerConfig(), options);

  Table table({"metric", "before", "after", "change(%)"});
  auto row = [&](const char* label, double before, double after) {
    table.AddRow({label, Table::Num(before, 2), Table::Num(after, 2),
                  Table::Num(100.0 * (after / before - 1.0), 2)});
  };
  row("avg_socket_bw(GB/s)", ab.before.bandwidth_gbps.Mean(),
      ab.after.bandwidth_gbps.Mean());
  row("p90_socket_bw(GB/s)", ab.before.bandwidth_gbps.Percentile(90),
      ab.after.bandwidth_gbps.Percentile(90));
  row("p99_socket_bw(GB/s)", ab.before.bandwidth_gbps.Percentile(99),
      ab.after.bandwidth_gbps.Percentile(99));
  row("saturated_socket_ticks(%)", 100.0 * ab.before.SaturatedFraction(),
      100.0 * ab.after.SaturatedFraction());
  table.Print("Fig. 18: socket bandwidth usage reduction from Limoncello");
  std::printf(
      "\nPaper: ~15%% average bandwidth reduction, saturated sockets down "
      "~8%%.\n");
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
