// Reproduces paper Fig. 1: average load-to-use latency vs. memory
// bandwidth utilization, with hardware prefetchers on and off (Intel
// MLC-style loaded-latency experiment on the detailed socket simulator).
//
// Expected shape: latency roughly doubles toward saturation, and the
// prefetchers-on curve sits above the prefetchers-off curve at the same
// demand level (~15 % higher latency at high utilization).
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table.h"

namespace limoncello::bench {
namespace {

void Run() {
  constexpr int kLevels = 12;
  const auto on = RunLoadedLatency(/*prefetchers_on=*/true, kLevels, 1);
  const auto off = RunLoadedLatency(/*prefetchers_on=*/false, kLevels, 1);

  Table table({"app_bw_on(%)", "total_util_on(%)", "latency_on(ns)",
               "app_bw_off(%)", "latency_off(ns)", "on/off"});
  for (int i = 0; i < kLevels; ++i) {
    table.AddRow({Table::Num(100.0 * on[i].touched_fraction, 1),
                  Table::Num(100.0 * on[i].utilization, 1),
                  Table::Num(on[i].latency_ns, 1),
                  Table::Num(100.0 * off[i].touched_fraction, 1),
                  Table::Num(off[i].latency_ns, 1),
                  Table::Num(on[i].latency_ns / off[i].latency_ns, 3)});
  }
  table.Print(
      "Fig. 1: load-to-use latency vs bandwidth utilization (MLC-style)");

  const double low_ratio = on.front().latency_ns / off.front().latency_ns;
  const double high_ratio = on.back().latency_ns / off.back().latency_ns;
  const double doubling =
      off.back().latency_ns / off.front().latency_ns;
  std::printf(
      "\nSummary: latency grows %.2fx from idle to saturation (PF off);\n"
      "PF-on latency penalty: %.1f%% at low load, %.1f%% at high load\n"
      "(paper: ~2x growth; ~15%% lower latency with prefetchers off at "
      "high utilization).\n",
      doubling, 100.0 * (low_ratio - 1.0), 100.0 * (high_ratio - 1.0));
}

}  // namespace
}  // namespace limoncello::bench

int main() {
  limoncello::bench::Run();
  return 0;
}
