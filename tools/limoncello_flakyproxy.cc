// limoncello-flakyproxy — chaos on the wire, as its own process.
//
// Sits between exporters and a limoncellod --listen plane and replays
// the PR 9 transport fault categories (drop, reorder, duplicate,
// truncate, stale re-delivery) against the real byte streams flowing
// through it. Exporters point --connect at the proxy; the proxy dials
// --upstream per accepted connection. Fault schedules are deterministic
// in --seed and the accept order, so a chaos soak reproduces.
//
// Example (plane on /tmp/plane.sock, proxy on /tmp/chaos.sock):
//   limoncello-flakyproxy --listen=/tmp/chaos.sock
//       --upstream=/tmp/plane.sock --seed=7 --drop=0.05 --truncate=0.02
#include <csignal>
#include <cstdio>
#include <string>

#include "transport/flaky_proxy.h"
#include "transport/socket_addr.h"
#include "util/flags.h"
#include "util/logging.h"

namespace limoncello {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int signum) { g_stop = signum; }

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.Define("listen",
               "address exporters dial: a UNIX socket path or host:port")
      .Define("upstream", "the control plane's --listen address")
      .Define("seed", "fault schedule seed (1)")
      .Define("drop", "per-frame drop probability (0.02)")
      .Define("reorder", "per-frame reorder probability (0.01)")
      .Define("duplicate", "per-frame duplicate probability (0.01)")
      .Define("truncate", "per-frame mid-payload cut probability (0.01)")
      .Define("stale", "per-frame stale re-delivery probability (0.01)")
      .Define("frames-per-plan",
              "frames each connection's fault schedule covers; the wire "
              "runs clean past it (65536)")
      .Define("verbose", "log pair churn")
      .Define("help", "show this help");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.Help(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::fprintf(stdout, "%s", flags.Help(argv[0]).c_str());
    return 0;
  }
  if (flags.GetBool("verbose").value_or(false)) {
    SetLogLevel(LogLevel::kDebug);
  }

  FlakyProxy::Options options;
  const std::string listen_text = flags.GetString("listen").value_or("");
  const std::string upstream_text =
      flags.GetString("upstream").value_or("");
  options.listen_address = ParseSocketAddress(listen_text);
  options.upstream_address = ParseSocketAddress(upstream_text);
  if (!options.listen_address.valid() ||
      !options.upstream_address.valid()) {
    LIMONCELLO_LOG_ERROR(
        "--listen=%s / --upstream=%s: both must be a socket path or "
        "host:port address",
        listen_text.c_str(), upstream_text.c_str());
    return 2;
  }
  options.seed =
      static_cast<std::uint64_t>(flags.GetInt("seed").value_or(1));
  options.spec.transport_drop_rate =
      flags.GetDouble("drop").value_or(0.02);
  options.spec.transport_reorder_rate =
      flags.GetDouble("reorder").value_or(0.01);
  options.spec.transport_duplicate_rate =
      flags.GetDouble("duplicate").value_or(0.01);
  options.spec.transport_truncate_rate =
      flags.GetDouble("truncate").value_or(0.01);
  options.spec.transport_stale_rate =
      flags.GetDouble("stale").value_or(0.01);
  options.frames_per_plan =
      static_cast<int>(flags.GetInt("frames-per-plan").value_or(65536));
  if (options.frames_per_plan < 1) {
    LIMONCELLO_LOG_ERROR("--frames-per-plan must be >= 1");
    return 2;
  }

  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt the poll
  (void)sigaction(SIGTERM, &action, nullptr);
  (void)sigaction(SIGINT, &action, nullptr);
  (void)std::signal(SIGPIPE, SIG_IGN);

  FlakyProxy proxy(options);
  if (!proxy.Start()) {
    LIMONCELLO_LOG_ERROR("cannot listen on %s", listen_text.c_str());
    return 3;
  }
  LIMONCELLO_LOG_INFO(
      "flakyproxy: %s -> %s, seed %llu, rates drop=%.3f reorder=%.3f "
      "dup=%.3f trunc=%.3f stale=%.3f",
      listen_text.c_str(), upstream_text.c_str(),
      static_cast<unsigned long long>(options.seed),
      options.spec.transport_drop_rate,
      options.spec.transport_reorder_rate,
      options.spec.transport_duplicate_rate,
      options.spec.transport_truncate_rate,
      options.spec.transport_stale_rate);

  while (g_stop == 0) {
    if (proxy.PollOnce(500) < 0) {
      LIMONCELLO_LOG_ERROR("listener socket died; shutting down");
      break;
    }
  }
  if (g_stop != 0) {
    LIMONCELLO_LOG_INFO("signal %d: stopping", static_cast<int>(g_stop));
  }

  const FlakyProxy::Stats stats = proxy.SnapshotStats();
  LIMONCELLO_LOG_INFO(
      "flakyproxy summary: %llu accepts (%llu upstream dial failures, "
      "%llu pairs closed), %llu frames forwarded, %llu dropped, %llu "
      "reordered, %llu duplicated, %llu truncated, %llu stale "
      "re-deliveries, %llu actuation bytes relayed",
      static_cast<unsigned long long>(stats.accepts),
      static_cast<unsigned long long>(stats.upstream_dial_failures),
      static_cast<unsigned long long>(stats.pairs_closed),
      static_cast<unsigned long long>(stats.frames_forwarded),
      static_cast<unsigned long long>(stats.frames_dropped),
      static_cast<unsigned long long>(stats.frames_reordered),
      static_cast<unsigned long long>(stats.frames_duplicated),
      static_cast<unsigned long long>(stats.frames_truncated),
      static_cast<unsigned long long>(stats.frames_staled),
      static_cast<unsigned long long>(stats.actuation_bytes_relayed));
  return 0;
}

}  // namespace
}  // namespace limoncello

int main(int argc, char** argv) { return limoncello::Main(argc, argv); }
