#!/usr/bin/env bash
# Static-analysis driver: limolint + clang-tidy + one sanitizer test pass.
#
# This is the pre-bench sanity gate (see EXPERIMENTS.md): run it before
# trusting any fleet A/B numbers. Exits non-zero if any stage finds
# anything. Stages that need a tool the host lacks (clang-tidy, clang's
# -Wthread-safety) are reported as skipped, not silently dropped.
#
# Usage:
#   tools/run_static_analysis.sh [--sanitizer=asan|ubsan|tsan|none]
#                                [--build-dir=DIR] [--jobs=N]
#                                [--json=PATH]
#
# The limolint stage checks the whole tree — per-line rules plus the
# call-graph hot-path contracts (hot-path-alloc / hot-path-blocking /
# lock-cycle) — against the committed baseline
# (tools/limolint_baseline.json). --json=PATH additionally writes the
# full pre-baseline findings as JSON (CI uploads this as an artifact;
# it is also the input for regenerating the baseline).
#
# The sanitizer stage configures a dedicated build tree
# (<build-dir>-<sanitizer>) with the matching LIMONCELLO_* option and runs
# the concurrency-focused tests (mutex, thread pool, parallel fleet) under
# it. Default sanitizer: asan.
set -u -o pipefail

cd "$(dirname "$0")/.."
REPO_ROOT=$(pwd)

SANITIZER=asan
BUILD_DIR=build
JOBS=$(nproc 2>/dev/null || echo 4)
JSON_OUT=
for arg in "$@"; do
  case "$arg" in
    --sanitizer=*) SANITIZER="${arg#*=}" ;;
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --jobs=*) JOBS="${arg#*=}" ;;
    --json=*) JSON_OUT="${arg#*=}" ;;
    *)
      echo "usage: $0 [--sanitizer=asan|ubsan|tsan|none] [--build-dir=DIR] [--jobs=N] [--json=PATH]" >&2
      exit 2
      ;;
  esac
done

FAILURES=0
declare -a SUMMARY

stage() { # name status detail
  SUMMARY+=("$(printf '%-12s %-8s %s' "$1" "$2" "$3")")
  if [ "$2" = FAIL ]; then FAILURES=$((FAILURES + 1)); fi
}

echo "=== [1/3] limolint ==="
LINT_ARGS=(--root "$REPO_ROOT" --baseline "$REPO_ROOT/tools/limolint_baseline.json")
if [ -n "$JSON_OUT" ]; then
  LINT_ARGS+=(--json "$JSON_OUT")
fi
if ! cmake -B "$BUILD_DIR" -S . >/dev/null; then
  stage limolint FAIL "cmake configure failed"
elif ! cmake --build "$BUILD_DIR" --target limolint -j "$JOBS" >/dev/null; then
  stage limolint FAIL "limolint failed to build"
elif "$BUILD_DIR/tools/limolint" "${LINT_ARGS[@]}"; then
  stage limolint OK "tree is clean vs tools/limolint_baseline.json"
else
  stage limolint FAIL "findings above (per-rule table printed by limolint)"
fi

echo
echo "=== [2/3] clang-tidy ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # The configure above exported compile_commands.json
  # (CMAKE_EXPORT_COMPILE_COMMANDS is ON unconditionally).
  TIDY_SOURCES=$(git ls-files 'src/**/*.cc' 'tools/*.cc' 2>/dev/null ||
                 find src tools -name '*.cc')
  if echo "$TIDY_SOURCES" | xargs clang-tidy -p "$BUILD_DIR" --quiet; then
    stage clang-tidy OK "no diagnostics"
  else
    stage clang-tidy FAIL "diagnostics above"
  fi
else
  stage clang-tidy SKIP "clang-tidy not installed on this host"
fi

echo
echo "=== [3/3] sanitizer pass ($SANITIZER) ==="
# Matches the discovered gtest names (SuiteName.Case) plus the limolint
# tree check itself. The fault-injection suites ride along: the chaos
# paths (decorators, reboot callbacks, retry/backoff state) must be as
# data-race- and UB-clean as the happy path. So must the recovery paths:
# journal replay parses attacker-grade bytes (torn/corrupt fixtures), so
# it runs under every sanitizer too.
SAN_TESTS_REGEX='^(MutexTest|CondVarTest|ThreadPoolTest|FleetParallelTest|FleetChaosTest|DaemonFaultTest|FaultPlanTest|FaultInjectorTest|StateJournalTest|RecoveryManagerTest|WarmRestartTest|ControllerConfigTest|Limolint|limolint)'
case "$SANITIZER" in
  none)
    stage sanitizer SKIP "disabled via --sanitizer=none"
    ;;
  asan | ubsan | tsan)
    SAN_OPT=$(echo "LIMONCELLO_${SANITIZER}" | tr '[:lower:]' '[:upper:]')
    SAN_DIR="${BUILD_DIR}-${SANITIZER}"
    if ! cmake -B "$SAN_DIR" -S . -D "${SAN_OPT}=ON" >/dev/null; then
      stage sanitizer FAIL "configure with ${SAN_OPT}=ON failed"
    elif ! cmake --build "$SAN_DIR" -j "$JOBS" --target \
        mutex_test thread_pool_test fleet_parallel_test \
        fleet_chaos_test daemon_fault_test fault_plan_test \
        fault_injector_test state_journal_test recovery_manager_test \
        warm_restart_test controller_config_test \
        limolint limolint_test >/dev/null; then
      stage sanitizer FAIL "build under ${SAN_OPT} failed"
    elif (cd "$SAN_DIR" && ctest -R "$SAN_TESTS_REGEX" \
        --output-on-failure -j "$JOBS"); then
      stage sanitizer OK "concurrency tests clean under $SANITIZER"
    else
      stage sanitizer FAIL "test failures under $SANITIZER"
    fi
    ;;
  *)
    echo "unknown sanitizer: $SANITIZER" >&2
    exit 2
    ;;
esac

echo
echo "=== static analysis summary ==="
printf '%-12s %-8s %s\n' stage status detail
for line in "${SUMMARY[@]}"; do echo "$line"; done
if [ "$FAILURES" -gt 0 ]; then
  echo "FAILED: $FAILURES stage(s)"
  exit 1
fi
echo "all stages passed (skips are non-fatal)"
