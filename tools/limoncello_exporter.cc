// limoncello-exporter — the machine-side telemetry agent, as its own
// process.
//
// One exporter owns one SimulatedEndpoint and ships its telemetry
// batches to a limoncellod --listen control plane over a UNIX or TCP
// socket, applying the actuation frames the plane pushes back. The
// process is deliberately boring: all of the interesting behaviour —
// reconnect with capped-exponential backoff + jitter, implicit
// re-registration after a plane restart, surviving kill -9 of either
// side — lives in ExporterClient so tests and the bench gate drive the
// exact code this binary runs.
//
// Examples:
//   limoncello-exporter --connect=/tmp/limoncello.sock --endpoint-id=3
//   limoncello-exporter --connect=127.0.0.1:7077 --tick-ms=20 --ticks=500
#include <csignal>
#include <cstdio>
#include <string>

#include "transport/exporter_client.h"
#include "transport/socket_addr.h"
#include "util/flags.h"
#include "util/logging.h"

namespace limoncello {
namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int signum) { g_stop = signum; }

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.Define("connect",
               "control plane address: a UNIX socket path or host:port")
      .Define("endpoint-id", "this machine's endpoint id (0)")
      .Define("seed", "simulated workload seed (1)")
      .Define("ticks", "telemetry batches to ship (0 = until signalled)")
      .Define("tick-ms",
              "wall-clock period between batches in milliseconds (10; "
              "0 = as fast as the socket accepts)")
      .Define("samples-per-batch", "samples per telemetry frame (4)")
      .Define("initial-backoff-ms", "first reconnect delay (10)")
      .Define("max-backoff-ms", "reconnect delay cap (200)")
      .Define("verbose", "log every reconnect attempt")
      .Define("help", "show this help");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.Help(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::fprintf(stdout, "%s", flags.Help(argv[0]).c_str());
    return 0;
  }
  if (flags.GetBool("verbose").value_or(false)) {
    SetLogLevel(LogLevel::kDebug);
  }

  ExporterClient::Options options;
  const std::string connect_text =
      flags.GetString("connect").value_or("");
  options.address = ParseSocketAddress(connect_text);
  if (!options.address.valid()) {
    LIMONCELLO_LOG_ERROR(
        "--connect=%s is not a socket path or host:port address",
        connect_text.c_str());
    return 2;
  }
  const long long endpoint_id = flags.GetInt("endpoint-id").value_or(0);
  if (endpoint_id < 0) {
    LIMONCELLO_LOG_ERROR("--endpoint-id must be >= 0");
    return 2;
  }
  options.endpoint.endpoint_id = static_cast<std::uint32_t>(endpoint_id);
  options.endpoint.samples_per_batch =
      static_cast<int>(flags.GetInt("samples-per-batch").value_or(4));
  options.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed").value_or(1));
  options.tick_period_ms =
      static_cast<int>(flags.GetInt("tick-ms").value_or(10));
  options.initial_backoff_ms =
      static_cast<int>(flags.GetInt("initial-backoff-ms").value_or(10));
  options.max_backoff_ms =
      static_cast<int>(flags.GetInt("max-backoff-ms").value_or(200));
  if (options.endpoint.samples_per_batch < 1 ||
      options.tick_period_ms < 0 || options.initial_backoff_ms < 1 ||
      options.max_backoff_ms < options.initial_backoff_ms) {
    LIMONCELLO_LOG_ERROR(
        "need --samples-per-batch >= 1, --tick-ms >= 0, "
        "--initial-backoff-ms >= 1, --max-backoff-ms >= initial");
    return 2;
  }
  const long long ticks = flags.GetInt("ticks").value_or(0);
  if (ticks < 0) {
    LIMONCELLO_LOG_ERROR("--ticks must be >= 0");
    return 2;
  }

  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt the pacing poll
  (void)sigaction(SIGTERM, &action, nullptr);
  (void)sigaction(SIGINT, &action, nullptr);
  (void)std::signal(SIGPIPE, SIG_IGN);

  LIMONCELLO_LOG_INFO(
      "exporter: endpoint %lld -> %s, tick %d ms, %s",
      endpoint_id, connect_text.c_str(), options.tick_period_ms,
      ticks > 0 ? "bounded run" : "running until signalled");

  ExporterClient client(options);
  client.Run(&g_stop, static_cast<std::uint64_t>(ticks));

  const ExporterClient::Stats& stats = client.stats();
  LIMONCELLO_LOG_INFO(
      "exporter summary: %llu connects (%llu failures, %llu "
      "disconnects), %llu frames sent (%llu send failures), %llu "
      "actuations applied, %llu ignored",
      static_cast<unsigned long long>(stats.connects),
      static_cast<unsigned long long>(stats.connect_failures),
      static_cast<unsigned long long>(stats.disconnects),
      static_cast<unsigned long long>(stats.frames_sent),
      static_cast<unsigned long long>(stats.send_failures),
      static_cast<unsigned long long>(stats.actuations_applied),
      static_cast<unsigned long long>(stats.actuations_ignored));
  return 0;
}

}  // namespace
}  // namespace limoncello

int main(int argc, char** argv) { return limoncello::Main(argc, argv); }
