#include "limolint_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "limolint_callgraph.h"
#include "util/table.h"

namespace limoncello::limolint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsHeaderPath(const std::string& rel) {
  return EndsWith(rel, ".h") || EndsWith(rel, ".hpp");
}

// Directories whose code may use raw std threading primitives: the wrappers
// themselves live here, along with their direct tests.
bool InThreadingExemptDir(const std::string& rel) {
  return StartsWith(rel, "src/util/") || StartsWith(rel, "tests/util/");
}

// Directories under the determinism contract: simulation results must be a
// pure function of (config, seed), so ambient randomness and host clocks
// are banned outright. Fault plans are pre-scheduled from a seed and
// journal replay must reproduce the run, so src/faults/ and src/recovery/
// are in scope too. The control plane promises bit-identical counters at
// any drain thread count, so src/control/ joins them.
bool InDeterministicDir(const std::string& rel) {
  return StartsWith(rel, "src/sim/") || StartsWith(rel, "src/fleet/") ||
         StartsWith(rel, "src/core/") || StartsWith(rel, "src/faults/") ||
         StartsWith(rel, "src/recovery/") ||
         StartsWith(rel, "src/control/");
}

}  // namespace

// Splits content into lines, routing comments into .comment and blanking
// string/char literals so matchers only ever see real code tokens. Handles
// // and /*...*/ comments, escapes, raw strings, and digit separators.
std::vector<ScannedLine> ScanLines(const std::string& content) {
  std::vector<ScannedLine> lines;
  lines.emplace_back();
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // for raw strings: )delim"
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    if (c == '\n') {
      // Block comments and raw strings continue across lines; everything
      // else resets (an unterminated ordinary literal is a syntax error
      // anyway).
      if (state != State::kBlockComment && state != State::kRawString) {
        state = State::kCode;
      }
      lines.emplace_back();
      continue;
    }
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    ScannedLine& line = lines.back();
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          const std::size_t nl = content.find('\n', i);
          const std::size_t len =
              (nl == std::string::npos ? content.size() : nl) - i;
          line.comment.append(content, i, len);
          i += len - 1;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (line.code.empty() || !IsIdentChar(line.code.back()))) {
          std::size_t paren = content.find('(', i + 2);
          if (paren == std::string::npos) {
            line.code += ' ';
            break;
          }
          raw_terminator =
              ")" + content.substr(i + 2, paren - (i + 2)) + "\"";
          state = State::kRawString;
          line.code += ' ';
          i = paren;
        } else if (c == '"') {
          state = State::kString;
          line.code += ' ';
        } else if (c == '\'') {
          // A quote between xdigits is a digit separator (1'000), not a
          // character literal.
          const bool separator =
              !line.code.empty() &&
              std::isxdigit(static_cast<unsigned char>(line.code.back())) &&
              std::isxdigit(static_cast<unsigned char>(next));
          if (separator) {
            line.code += ' ';
          } else {
            state = State::kChar;
            line.code += ' ';
          }
        } else {
          line.code += c;
        }
        break;
      case State::kBlockComment:
        line.comment += c;
        if (c == '*' && next == '/') {
          line.comment += '/';
          ++i;
          state = State::kCode;
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        break;
      case State::kRawString:
        if (c == raw_terminator[0] &&
            content.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          i += raw_terminator.size() - 1;
          state = State::kCode;
        }
        break;
    }
  }
  return lines;
}

namespace {

// Word-bounded search: the match must not be preceded or followed by an
// identifier character. `word` may itself contain "::".
bool FindWord(const std::string& code, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Word-bounded `name` immediately followed (modulo whitespace) by '('.
bool FindCall(const std::string& code, const std::string& name) {
  std::size_t pos = 0;
  while ((pos = code.find(name, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    std::size_t end = pos + name.size();
    if (left_ok && (end >= code.size() || !IsIdentChar(code[end]))) {
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end]))) {
        ++end;
      }
      if (end < code.size() && code[end] == '(') return true;
    }
    pos = pos + name.size();
  }
  return false;
}

bool HasAllow(const std::string& comment, const std::string& rule) {
  const std::string needle = "limolint:allow(" + rule + ")";
  return comment.find(needle) != std::string::npos;
}

std::string ExpectedGuard(const std::string& rel_path) {
  std::string path = rel_path;
  if (StartsWith(path, "src/")) path.erase(0, 4);
  std::string guard = "LIMONCELLO_";
  for (const char c : path) {
    if (c == '/' || c == '.' || c == '-') {
      guard += '_';
    } else {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

// First identifier token in `code` after `offset`, or "".
std::string TokenAfter(const std::string& code, std::size_t offset) {
  std::size_t begin = offset;
  while (begin < code.size() &&
         std::isspace(static_cast<unsigned char>(code[begin]))) {
    ++begin;
  }
  std::size_t end = begin;
  while (end < code.size() && IsIdentChar(code[end])) ++end;
  return code.substr(begin, end - begin);
}

constexpr const char* kRawThreadTokens[] = {
    "std::mutex", "std::timed_mutex", "std::recursive_mutex",
    "std::recursive_timed_mutex", "std::shared_mutex",
    "std::shared_timed_mutex", "std::condition_variable",
    "std::condition_variable_any", "std::thread", "std::jthread",
    "std::lock_guard", "std::unique_lock", "std::scoped_lock",
    "std::shared_lock", "std::call_once", "std::once_flag"};

constexpr const char* kRawThreadIncludes[] = {"<mutex>", "<thread>",
                                              "<condition_variable>",
                                              "<shared_mutex>"};

// Ambient RNG types: anything stochastic must draw from util/rng.h.
constexpr const char* kRandomTypeTokens[] = {
    "std::random_device", "std::mt19937", "std::mt19937_64",
    "std::default_random_engine", "std::minstd_rand", "std::minstd_rand0"};

// Host clock types: simulated time comes from the tick counter.
constexpr const char* kClockTypeTokens[] = {
    "std::chrono::system_clock", "std::chrono::steady_clock",
    "std::chrono::high_resolution_clock"};

// C-library randomness / wall-clock calls.
constexpr const char* kNondeterministicCalls[] = {
    "rand", "srand", "rand_r", "time", "clock", "gettimeofday",
    "clock_gettime", "localtime", "gmtime"};

// Persistence code may touch raw stdio/POSIX file descriptors only in
// src/recovery/, which owns the journaled write path (StateJournal) and
// checks every short write. Its direct tests drive corrupt fixtures.
bool InFileIoExemptDir(const std::string& rel) {
  return StartsWith(rel, "src/recovery/");
}

// Raw file-I/O entry points whose return values report the opened handle
// or the number of bytes actually written. A bare call drops partial
// writes and open failures on the floor — exactly the torn-journal bug
// the recovery subsystem exists to survive.
constexpr const char* kRawFileIoCalls[] = {"fopen",  "open",  "creat",
                                           "fwrite", "write", "pwrite"};

bool IsRawFileIoCall(const std::string& name) {
  for (const char* call : kRawFileIoCalls) {
    if (name == call) return true;
  }
  return false;
}

// Methods whose return value reports whether an MSR write / prefetcher
// actuation took effect. Dropping it silently is how a daemon ends up
// believing prefetchers are off while the hardware says otherwise.
constexpr const char* kActuationMethods[] = {
    "Write",  "DisableAll",         "EnableAll",
    "SetEngine", "DisablePrefetchers", "EnablePrefetchers"};

bool IsActuationMethod(const std::string& name) {
  for (const char* method : kActuationMethods) {
    if (name == method) return true;
  }
  return false;
}

// Skips the balanced parenthesized group starting at code[pos] == '('.
// Returns the index just past the closing ')', or npos if the group does
// not close on this line (the call continues on the next one).
std::size_t SkipParens(const std::string& code, std::size_t pos) {
  int depth = 0;
  for (; pos < code.size(); ++pos) {
    if (code[pos] == '(') {
      ++depth;
    } else if (code[pos] == ')') {
      if (--depth == 0) return pos + 1;
    }
  }
  return std::string::npos;
}

// True if `code` — a line known to start a new statement — is a bare
// method-call statement (`obj.Method(...);` / `obj->Method(...);`,
// possibly through a chain like `sock.msr_device().Write(...)`) whose
// terminal callee is a watched actuation method. Anything that consumes
// the value bails out early: an assignment (`ok = ...`), a wrapping call
// (`EXPECT_TRUE(...)`, `LIMONCELLO_CHECK(...)`), `return ...`, an `if`
// condition, or a `(void)` cast — in each case the statement's first
// token is not an identifier followed by '.', '->' or '('-then-';'.
bool UncheckedActuationCall(const std::string& code) {
  std::size_t pos = code.find_first_not_of(" \t");
  if (pos == std::string::npos || !IsIdentChar(code[pos]) ||
      std::isdigit(static_cast<unsigned char>(code[pos])) != 0) {
    return false;
  }
  bool have_sep = false;  // saw '.' or '->': a method call on an object
  for (;;) {
    std::size_t end = pos;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    const std::string name = code.substr(pos, end - pos);
    while (end < code.size() &&
           std::isspace(static_cast<unsigned char>(code[end]))) {
      ++end;
    }
    bool called = false;
    if (end < code.size() && code[end] == '(') {
      const std::size_t after = SkipParens(code, end);
      if (after == std::string::npos) {
        // The argument list spans lines, so nothing on this line can
        // consume the result: the call itself is the whole statement.
        return have_sep && IsActuationMethod(name);
      }
      called = true;
      end = after;
      while (end < code.size() &&
             std::isspace(static_cast<unsigned char>(code[end]))) {
        ++end;
      }
    }
    if (end >= code.size() || code[end] == ';') {
      return called && have_sep && IsActuationMethod(name);
    }
    if (code[end] == '.') {
      have_sep = true;
      pos = end + 1;
    } else if (code[end] == '-' && end + 1 < code.size() &&
               code[end + 1] == '>') {
      have_sep = true;
      pos = end + 2;
    } else {
      return false;  // operator, '=', '<<', ... — the value is consumed
    }
    while (pos < code.size() &&
           std::isspace(static_cast<unsigned char>(code[pos]))) {
      ++pos;
    }
    if (pos >= code.size() || !IsIdentChar(code[pos]) ||
        std::isdigit(static_cast<unsigned char>(code[pos])) != 0) {
      return false;
    }
  }
}

// True if `code` — a line known to start a new statement — is a bare
// call to one of the raw file-I/O free functions (optionally ::- or
// std::-qualified) whose result is dropped. Member calls like
// `out.write(...)` are stream methods, not the POSIX/stdio entry points,
// and never match: the first token would be the receiver, not the call.
// Any consumption — assignment, `if (...)`, `return`, a wrapping check
// macro, `(void)` — puts a different token first and bails out. A call
// whose argument list spans lines is the whole statement, so it is a
// dropped result too.
bool UncheckedFileIoCall(const std::string& code) {
  std::size_t pos = code.find_first_not_of(" \t");
  if (pos == std::string::npos) return false;
  if (code.compare(pos, 5, "std::") == 0) {
    pos += 5;
  } else if (code.compare(pos, 2, "::") == 0) {
    pos += 2;
  }
  if (pos >= code.size() || !IsIdentChar(code[pos]) ||
      std::isdigit(static_cast<unsigned char>(code[pos])) != 0) {
    return false;
  }
  std::size_t end = pos;
  while (end < code.size() && IsIdentChar(code[end])) ++end;
  if (!IsRawFileIoCall(code.substr(pos, end - pos))) return false;
  while (end < code.size() &&
         std::isspace(static_cast<unsigned char>(code[end]))) {
    ++end;
  }
  if (end >= code.size() || code[end] != '(') return false;
  const std::size_t after = SkipParens(code, end);
  if (after == std::string::npos) return true;  // spans lines: bare call
  const std::size_t rest = code.find_first_not_of(" \t", after);
  return rest == std::string::npos || code[rest] == ';';
}

// Marker comment opening a hot-struct region: the next brace-balanced
// type body holds per-tick state, and growing it a std::vector member
// reintroduces exactly the pointer chase the SoA FleetState removed.
// (The allow escape spells "limolint:allow(hot-struct-vector)", which
// does not contain this marker, so the two never collide on one line.)
constexpr const char* kHotStructMarker = "limolint:hot-struct";

// Tracks whether each line sits inside a marked hot-struct body. The
// marker arms the tracker; the first '{' after it opens the region and
// brace depth closes it. Lines are classified by their state on entry,
// so the opening `struct X {` line itself is not part of the region.
class HotStructTracker {
 public:
  // Returns true if `code` (with `comment`) lies inside a hot region.
  // Call once per line, in file order.
  bool Advance(const std::string& code, const std::string& comment) {
    const bool inside = depth_ > 0;
    if (comment.find(kHotStructMarker) != std::string::npos) {
      armed_ = true;
    }
    for (const char c : code) {
      if (armed_ && c == '{') {
        armed_ = false;
        depth_ = 1;
      } else if (depth_ > 0 && c == '{') {
        ++depth_;
      } else if (depth_ > 0 && c == '}') {
        --depth_;
      }
    }
    return inside;
  }

 private:
  bool armed_ = false;
  int depth_ = 0;
};

// A member declaration of std::vector inside a hot struct. Lines with a
// paren are method signatures or calls that merely *mention* the type
// (accessors, parameters — including continuation lines of a multi-line
// signature, which carry only the closing paren), not new state.
bool HotStructVectorMember(const std::string& code) {
  return code.find("std::vector<") != std::string::npos &&
         code.find('(') == std::string::npos &&
         code.find(')') == std::string::npos;
}

void Emit(std::vector<Finding>* findings, const std::string& rel_path,
          int line, const std::string& rule, const std::string& message,
          const std::string& comment) {
  if (HasAllow(comment, rule)) return;
  findings->push_back(Finding{rel_path, line, rule, message});
}

void CheckIncludeGuard(const std::string& rel_path,
                       const std::vector<ScannedLine>& lines,
                       std::vector<Finding>* findings) {
  const std::string expected = ExpectedGuard(rel_path);
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    const std::size_t hash = code.find_first_not_of(" \t");
    if (hash == std::string::npos || code[hash] != '#') continue;
    const std::size_t directive = code.find_first_not_of(" \t", hash + 1);
    if (directive == std::string::npos) continue;
    if (code.compare(directive, 6, "ifndef") == 0) {
      const std::string guard = TokenAfter(code, directive + 6);
      if (guard != expected) {
        Emit(findings, rel_path, static_cast<int>(n + 1), "include-guard",
             "include guard '" + guard + "' should be '" + expected + "'",
             lines[n].comment);
      }
      return;  // only the opening guard is checked
    }
    if (code.compare(directive, 6, "pragma") == 0 &&
        code.find("once", directive) != std::string::npos) {
      Emit(findings, rel_path, static_cast<int>(n + 1), "include-guard",
           "use an include guard named " + expected + ", not #pragma once",
           lines[n].comment);
      return;
    }
    // Any other directive before the guard (#include, #define) means the
    // guard is missing or misplaced.
    break;
  }
  Emit(findings, rel_path, 1, "include-guard",
       "header has no include guard; expected #ifndef " + expected, "");
}

}  // namespace

const std::vector<Rule>& Rules() {
  static const std::vector<Rule>* rules = new std::vector<Rule>{
      {"raw-thread", "all but */util/",
       "raw std::mutex/std::thread/std::condition_variable; use "
       "util/mutex.h or util/thread_pool.h"},
      {"no-assert", "everywhere",
       "assert(); use LIMONCELLO_CHECK / LIMONCELLO_DCHECK (util/check.h)"},
      {"determinism", "src/{sim,fleet,core,faults,recovery,control}/",
       "ambient RNG or host clocks; use util/rng.h and simulated time"},
      {"iostream-header", "src/ headers",
       "#include <iostream> in a header; log via util/logging.h in a .cc"},
      {"include-guard", "all headers",
       "include guard must be LIMONCELLO_<PATH>_H_ (src/ prefix dropped)"},
      {"unchecked-msr-write", "everywhere",
       "discarded MsrDevice::Write / prefetcher actuation result; check "
       "it or annotate the line"},
      {"raw-file-io", "all but src/recovery/",
       "bare fopen/open/creat/fwrite/write/pwrite with dropped result; "
       "check it or persist through src/recovery/ (StateJournal)"},
      {"hot-struct-vector", "types marked limolint:hot-struct",
       "std::vector member in a per-tick hot struct; put the state in "
       "FleetState's SoA arrays or annotate a cold member"},
      {"hot-path-alloc", "reachable from limolint:hot-path roots",
       "allocating construct (new/make_unique, container growth, "
       "string/function construction) on a hot call path"},
      {"hot-path-blocking", "reachable from limolint:hot-path roots",
       "blocking call (file I/O, fsync, sleep, lock acquisition, "
       "logging, pool rendezvous) on a hot call path"},
      {"lock-cycle", "whole program (util/mutex.h locks)",
       "cycle in the lock-acquisition order graph, or a lock held "
       "across a ThreadPool rendezvous"},
  };
  return *rules;
}

std::vector<Finding> LintFile(const std::string& rel_path,
                              const std::string& content) {
  std::vector<Finding> findings;
  const std::vector<ScannedLine> lines = ScanLines(content);
  const bool header = IsHeaderPath(rel_path);
  const bool check_raw_thread = !InThreadingExemptDir(rel_path);
  const bool check_raw_file_io = !InFileIoExemptDir(rel_path);
  const bool check_determinism = InDeterministicDir(rel_path);
  const bool check_iostream = header && StartsWith(rel_path, "src/");

  // Tail of the previous non-blank code line; a line starts a fresh
  // statement when that tail ends one (';', '{', '}', or a label ':').
  char prev_tail = ';';
  HotStructTracker hot_tracker;
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string& code = lines[n].code;
    const std::string& comment = lines[n].comment;
    const int line = static_cast<int>(n + 1);
    // The tracker must see every line: the marker usually sits on a
    // comment-only line that the statement scanner below skips.
    const bool in_hot_struct = hot_tracker.Advance(code, comment);
    if (code.empty()) continue;

    if (in_hot_struct && HotStructVectorMember(code)) {
      Emit(&findings, rel_path, line, "hot-struct-vector",
           "per-tick hot struct grew a std::vector member; hot state "
           "belongs in FleetState's SoA arrays (fleet_state.h), or mark "
           "a cold member with limolint:allow(hot-struct-vector)",
           comment);
    }
    const std::size_t tail = code.find_last_not_of(" \t");
    const bool statement_start = prev_tail == ';' || prev_tail == '{' ||
                                 prev_tail == '}' || prev_tail == ':';
    if (tail != std::string::npos) prev_tail = code[tail];
    else continue;  // comment-only line: statement state is unchanged

    if (statement_start && UncheckedActuationCall(code)) {
      Emit(&findings, rel_path, line, "unchecked-msr-write",
           "MSR writes and prefetcher actuation can fail; check the "
           "returned status instead of dropping it",
           comment);
    }

    if (check_raw_file_io && statement_start && UncheckedFileIoCall(code)) {
      Emit(&findings, rel_path, line, "raw-file-io",
           "raw file I/O can open-fail or short-write; check the result "
           "or persist through src/recovery/ (StateJournal)",
           comment);
    }

    if (check_raw_thread) {
      for (const char* token : kRawThreadTokens) {
        if (FindWord(code, token)) {
          Emit(&findings, rel_path, line, "raw-thread",
               std::string(token) +
                   " outside util/; use Mutex/MutexLock/CondVar "
                   "(util/mutex.h) or ThreadPool (util/thread_pool.h)",
               comment);
          break;
        }
      }
      for (const char* inc : kRawThreadIncludes) {
        if (code.find("include") != std::string::npos &&
            code.find(inc) != std::string::npos) {
          Emit(&findings, rel_path, line, "raw-thread",
               "#include " + std::string(inc) +
                   " outside util/; include util/mutex.h or "
                   "util/thread_pool.h instead",
               comment);
          break;
        }
      }
    }

    if (FindCall(code, "assert")) {
      Emit(&findings, rel_path, line, "no-assert",
           "assert() is compiled out in release; use LIMONCELLO_CHECK or "
           "LIMONCELLO_DCHECK from util/check.h",
           comment);
    }

    if (check_determinism) {
      for (const char* token : kRandomTypeTokens) {
        if (FindWord(code, token)) {
          Emit(&findings, rel_path, line, "determinism",
               std::string(token) +
                   " breaks reproducibility; draw from a seeded "
                   "limoncello::Rng (util/rng.h)",
               comment);
          break;
        }
      }
      for (const char* token : kClockTypeTokens) {
        if (FindWord(code, token)) {
          Emit(&findings, rel_path, line, "determinism",
               std::string(token) +
                   " reads the host clock; simulator code must use "
                   "simulated ticks",
               comment);
          break;
        }
      }
      // FindCall is word-bounded on the left by any non-identifier char,
      // so this also matches the std:: / ::-qualified spellings.
      for (const char* call : kNondeterministicCalls) {
        if (FindCall(code, call)) {
          Emit(&findings, rel_path, line, "determinism",
               std::string(call) +
                   "() is nondeterministic; use util/rng.h or simulated "
                   "time",
               comment);
          break;
        }
      }
    }

    if (check_iostream && code.find("include") != std::string::npos &&
        code.find("<iostream>") != std::string::npos) {
      Emit(&findings, rel_path, line, "iostream-header",
           "<iostream> in a header drags iostream static init into every "
           "TU; include it in the .cc or use util/logging.h",
           comment);
    }
  }

  if (header) CheckIncludeGuard(rel_path, lines, &findings);
  return findings;
}

std::vector<Finding> LintTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> rel_paths;
  for (const char* top : {"src", "tests", "bench", "tools"}) {
    const fs::path dir = fs::path(root) / top;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (it->is_directory() &&
          it->path().filename() == "limolint_fixtures") {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".hpp" && ext != ".cc" && ext != ".cpp" &&
          ext != ".inl") {
        continue;
      }
      rel_paths.push_back(
          fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(rel_paths.begin(), rel_paths.end());

  std::vector<Finding> findings;
  std::vector<SourceFile> program_files;
  for (const std::string& rel : rel_paths) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{rel, 0, "io", "could not read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<Finding> file_findings = LintFile(rel, buf.str());
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
    if (InProgramScope(rel)) {
      program_files.push_back(SourceFile{rel, buf.str()});
    }
  }
  std::vector<Finding> program_findings = AnalyzeProgram(program_files);
  findings.insert(findings.end(), program_findings.begin(),
                  program_findings.end());
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
        << '\n';
  }
  return out.str();
}

std::string SummaryTable(const std::vector<Finding>& findings) {
  Table table({"rule", "findings", "scope"});
  for (const Rule& rule : Rules()) {
    std::int64_t count = 0;
    for (const Finding& f : findings) {
      if (f.rule == rule.name) ++count;
    }
    table.AddRow({rule.name, Table::Num(count), rule.scope});
  }
  return table.ToAligned();
}

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

// Minimal tolerant reader for the JSON subset FindingsJson emits. Tracks
// just enough structure to pull "file"/"line"/"rule" out of each object
// in the "findings" array; unknown keys are skipped.
struct JsonReader {
  const std::string& text;
  std::size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool ReadString(std::string* out) {
    SkipWs();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        ++pos;
        switch (text[pos]) {
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'u':
            pos += 4;  // findings never need non-ASCII round-trips
            out->push_back('?');
            break;
          default:
            out->push_back(text[pos]);
        }
      } else {
        out->push_back(text[pos]);
      }
      ++pos;
    }
    if (pos >= text.size()) return false;
    ++pos;
    return true;
  }
  bool ReadInt(int* out) {
    SkipWs();
    std::size_t end = pos;
    if (end < text.size() && text[end] == '-') ++end;
    std::size_t digits = end;
    while (digits < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[digits]))) {
      ++digits;
    }
    if (digits == end) return false;
    *out = std::atoi(text.substr(pos, digits - pos).c_str());
    pos = digits;
    return true;
  }
  // Skips any JSON value (string/number/true/false/null/array/object).
  bool SkipValue() {
    SkipWs();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '"') {
      std::string tmp;
      return ReadString(&tmp);
    }
    if (c == '[' || c == '{') {
      const char close = c == '[' ? ']' : '}';
      int depth = 0;
      bool in_string = false;
      for (; pos < text.size(); ++pos) {
        const char d = text[pos];
        if (in_string) {
          if (d == '\\') {
            ++pos;
          } else if (d == '"') {
            in_string = false;
          }
          continue;
        }
        if (d == '"') in_string = true;
        if (d == c) ++depth;
        if (d == close && --depth == 0) {
          ++pos;
          return true;
        }
      }
      return false;
    }
    while (pos < text.size() && text[pos] != ',' && text[pos] != '}' &&
           text[pos] != ']') {
      ++pos;
    }
    return true;
  }
};

}  // namespace

std::string FindingsJson(const std::vector<Finding>& findings) {
  std::string out = "{\"version\":1,\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out += ',';
    out += "\n  {\"file\":";
    AppendJsonString(f.file, &out);
    out += ",\"line\":" + std::to_string(f.line) + ",\"rule\":";
    AppendJsonString(f.rule, &out);
    out += ",\"message\":";
    AppendJsonString(f.message, &out);
    out += '}';
  }
  out += findings.empty() ? "]}\n" : "\n]}\n";
  return out;
}

bool LoadBaselineFile(const std::string& path,
                      std::vector<Finding>* baseline) {
  baseline->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  JsonReader reader{text};
  if (!reader.Eat('{')) return false;
  // Top-level object: find the "findings" array, skipping other keys.
  for (;;) {
    std::string key;
    if (!reader.ReadString(&key)) return false;
    if (!reader.Eat(':')) return false;
    if (key != "findings") {
      if (!reader.SkipValue()) return false;
      if (reader.Eat(',')) continue;
      return reader.Eat('}');  // no findings array: empty baseline
    }
    break;
  }
  if (!reader.Eat('[')) return false;
  if (reader.Eat(']')) return true;  // empty array
  for (;;) {
    if (!reader.Eat('{')) return false;
    Finding f;
    for (;;) {
      std::string key;
      if (!reader.ReadString(&key)) return false;
      if (!reader.Eat(':')) return false;
      if (key == "file") {
        if (!reader.ReadString(&f.file)) return false;
      } else if (key == "rule") {
        if (!reader.ReadString(&f.rule)) return false;
      } else if (key == "message") {
        if (!reader.ReadString(&f.message)) return false;
      } else if (key == "line") {
        if (!reader.ReadInt(&f.line)) return false;
      } else {
        if (!reader.SkipValue()) return false;
      }
      if (reader.Eat(',')) continue;
      if (reader.Eat('}')) break;
      return false;
    }
    baseline->push_back(std::move(f));
    if (reader.Eat(',')) continue;
    if (reader.Eat(']')) return true;
    return false;
  }
}

std::vector<Finding> SubtractBaseline(const std::vector<Finding>& findings,
                                      const std::vector<Finding>& baseline,
                                      std::size_t* matched_out) {
  // Multiset consume: each baseline (file, line, rule) triple absorbs at
  // most one finding, so a *second* violation on a baselined line still
  // fails.
  std::vector<char> used(baseline.size(), 0);
  std::vector<Finding> remaining;
  std::size_t matched = 0;
  for (const Finding& f : findings) {
    bool absorbed = false;
    for (std::size_t b = 0; b < baseline.size(); ++b) {
      if (used[b] != 0) continue;
      if (baseline[b].file == f.file && baseline[b].line == f.line &&
          baseline[b].rule == f.rule) {
        used[b] = 1;
        absorbed = true;
        ++matched;
        break;
      }
    }
    if (!absorbed) remaining.push_back(f);
  }
  if (matched_out != nullptr) *matched_out = matched;
  return remaining;
}

}  // namespace limoncello::limolint
