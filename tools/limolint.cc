// limolint CLI — lints the Limoncello tree for repo invariants the
// compiler can't check. Registered as a ctest, so `ctest` fails on any
// new violation; tools/run_static_analysis.sh runs it as stage 1.
//
// Usage:
//   limolint [--root=DIR] [--quiet] [--json=PATH] [--baseline=PATH]
//            [FILE...]
//
// With no FILE arguments, walks src/ tests/ bench/ tools/ under --root
// (default: the current directory), skipping limolint_fixtures/, and runs
// both the line rules and the whole-program call-graph rules. Explicit
// FILE arguments are linted with the line rules only; their path relative
// to --root decides which rules apply.
//
// --json=PATH writes ALL findings (before baseline subtraction) as a
// stable JSON artifact — the same document format the baseline uses, so
// a clean review of the artifact can be committed verbatim as
// tools/limolint_baseline.json. --baseline=PATH subtracts accepted legacy
// findings: only findings NOT in the baseline are printed and fail the
// run. Exits 0 when clean, 1 on (non-baselined) findings, 2 on usage or
// I/O errors.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "limolint_lib.h"

namespace {

namespace lint = limoncello::limolint;

int Usage() {
  std::fprintf(
      stderr,
      "usage: limolint [--root=DIR] [--quiet] [--json=PATH]\n"
      "                [--baseline=PATH] [FILE...]\n"
      "  --root=DIR      repo root to scan (default: .)\n"
      "  --quiet         suppress the per-rule summary table\n"
      "  --json=PATH     write all findings (pre-baseline) as JSON\n"
      "  --baseline=PATH subtract accepted findings; only new ones fail\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_path;
  std::string baseline_path;
  bool quiet = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      files.push_back(arg);
    }
  }

  std::vector<lint::Finding> findings;
  if (files.empty()) {
    std::error_code ec;
    if (!std::filesystem::is_directory(root, ec)) {
      std::fprintf(stderr, "limolint: no such directory: %s\n", root.c_str());
      return 2;
    }
    findings = lint::LintTree(root);
  } else {
    for (const std::string& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "limolint: could not read: %s\n", file.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      // Rule scoping keys off the repo-relative path.
      std::error_code ec;
      const std::filesystem::path rel =
          std::filesystem::proximate(file, root, ec);
      const std::string rel_path =
          ec ? file : rel.generic_string();
      const std::vector<lint::Finding> file_findings =
          lint::LintFile(rel_path, buf.str());
      findings.insert(findings.end(), file_findings.begin(),
                      file_findings.end());
    }
  }

  // The JSON artifact always carries the full picture: baselined findings
  // included, so the artifact itself can seed or refresh the baseline.
  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "limolint: could not write: %s\n",
                   json_path.c_str());
      return 2;
    }
    out << lint::FindingsJson(findings);
  }

  std::size_t baselined = 0;
  if (!baseline_path.empty()) {
    std::vector<lint::Finding> baseline;
    if (!lint::LoadBaselineFile(baseline_path, &baseline)) {
      std::fprintf(stderr, "limolint: could not parse baseline: %s\n",
                   baseline_path.c_str());
      return 2;
    }
    findings = lint::SubtractBaseline(findings, baseline, &baselined);
  }

  if (!findings.empty()) {
    std::fputs(lint::FormatFindings(findings).c_str(), stdout);
  }
  if (!quiet) {
    std::printf("%s\n%zu finding(s)", lint::SummaryTable(findings).c_str(),
                findings.size());
    if (baselined > 0) {
      std::printf(", %zu baselined", baselined);
    }
    std::printf("\n");
  }
  return findings.empty() ? 0 : 1;
}
