// limolint — repo-invariant checker for the Limoncello tree.
//
// Enforces the rules the compiler can't: concurrency primitives must go
// through util/mutex.h / util/thread_pool.h, simulator code must stay
// deterministic (no wall clocks, no ambient RNG), failed invariants abort
// via LIMONCELLO_CHECK rather than assert, headers stay iostream-free and
// carry canonical include guards. See DESIGN.md §8 for the rationale.
//
// The engine is a small line scanner, not a real parser: comments and
// string literals are blanked before matching, and every match is
// word-bounded, so `std::this_thread` or a mention of assert() in prose
// never fires. A finding on a line carrying `// limolint:allow(<rule>)`
// is suppressed — the escape hatch is per-line and per-rule.
#ifndef LIMONCELLO_TOOLS_LIMOLINT_LIB_H_
#define LIMONCELLO_TOOLS_LIMOLINT_LIB_H_

#include <string>
#include <vector>

namespace limoncello::limolint {

struct Finding {
  std::string file;     // repo-relative path
  int line = 0;         // 1-based
  std::string rule;     // rule name, e.g. "raw-thread"
  std::string message;  // human-readable explanation
};

struct Rule {
  std::string name;
  std::string scope;        // human-readable scope description
  std::string description;  // what it enforces
};

// The full rule set, in reporting order.
const std::vector<Rule>& Rules();

// Lints one file's content. rel_path is the repo-relative path (e.g.
// "src/fleet/scheduler.cc") and drives rule scoping; callers may pass a
// synthetic path to lint fixture content as if it lived elsewhere.
std::vector<Finding> LintFile(const std::string& rel_path,
                              const std::string& content);

// Walks src/ tests/ bench/ tools/ under root (deterministic order),
// linting every C++ file. Directories named "limolint_fixtures" are
// skipped: they hold deliberate violations for the self-tests. Missing
// top-level directories are ignored.
std::vector<Finding> LintTree(const std::string& root);

// Renders findings one per line as "path:line: [rule] message".
std::string FormatFindings(const std::vector<Finding>& findings);

// Per-rule summary using util/table (rule, findings, scope).
std::string SummaryTable(const std::vector<Finding>& findings);

}  // namespace limoncello::limolint

#endif  // LIMONCELLO_TOOLS_LIMOLINT_LIB_H_
