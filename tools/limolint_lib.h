// limolint — repo-invariant checker for the Limoncello tree.
//
// Enforces the rules the compiler can't: concurrency primitives must go
// through util/mutex.h / util/thread_pool.h, simulator code must stay
// deterministic (no wall clocks, no ambient RNG), failed invariants abort
// via LIMONCELLO_CHECK rather than assert, headers stay iostream-free and
// carry canonical include guards. See DESIGN.md §8 for the rationale.
//
// The engine is a small line scanner, not a real parser: comments and
// string literals are blanked before matching, and every match is
// word-bounded, so `std::this_thread` or a mention of assert() in prose
// never fires. A finding on a line carrying `// limolint:allow(<rule>)`
// is suppressed — the escape hatch is per-line and per-rule.
//
// On top of the line rules sits a whole-program layer (see
// limolint_callgraph.h): a function extractor + cross-TU call graph that
// proves hot-path contracts — hot-path-alloc, hot-path-blocking, and
// lock-cycle. LintTree runs both layers; accepted legacy findings live in
// tools/limolint_baseline.json and are subtracted by the CLI.
#ifndef LIMONCELLO_TOOLS_LIMOLINT_LIB_H_
#define LIMONCELLO_TOOLS_LIMOLINT_LIB_H_

#include <cstddef>
#include <string>
#include <vector>

namespace limoncello::limolint {

struct Finding {
  std::string file;     // repo-relative path
  int line = 0;         // 1-based
  std::string rule;     // rule name, e.g. "raw-thread"
  std::string message;  // human-readable explanation
};

struct Rule {
  std::string name;
  std::string scope;        // human-readable scope description
  std::string description;  // what it enforces
};

// One source line split into its code text and its comment text, with
// string/char literals blanked out of the code portion. Produced by the
// shared lexer; consumed by both the line rules and the call-graph layer.
struct ScannedLine {
  std::string code;
  std::string comment;
};

// Splits content into lines, routing comments into .comment and blanking
// string/char literals so matchers only ever see real code tokens. Handles
// // and /*...*/ comments, escapes, raw strings, and digit separators.
std::vector<ScannedLine> ScanLines(const std::string& content);

// The full rule set, in reporting order.
const std::vector<Rule>& Rules();

// Lints one file's content. rel_path is the repo-relative path (e.g.
// "src/fleet/scheduler.cc") and drives rule scoping; callers may pass a
// synthetic path to lint fixture content as if it lived elsewhere.
std::vector<Finding> LintFile(const std::string& rel_path,
                              const std::string& content);

// Walks src/ tests/ bench/ tools/ under root (deterministic order),
// linting every C++ file, then runs the whole-program call-graph rules
// over the src/ tools/ bench/ subset. Directories named
// "limolint_fixtures" are skipped: they hold deliberate violations for
// the self-tests. Missing top-level directories are ignored.
std::vector<Finding> LintTree(const std::string& root);

// Renders findings one per line as "path:line: [rule] message".
std::string FormatFindings(const std::vector<Finding>& findings);

// Per-rule summary using util/table (rule, findings, scope).
std::string SummaryTable(const std::vector<Finding>& findings);

// Renders findings as a stable JSON document:
//   {"version":1,"findings":[{"file":...,"line":...,"rule":...,
//    "message":...},...]}
// Field order is fixed and paths are repo-relative, so CI diffs and the
// baseline mechanism consume the same artifact byte-for-byte.
std::string FindingsJson(const std::vector<Finding>& findings);

// Parses a baseline produced by FindingsJson (messages are ignored;
// only file/line/rule triples matter). Returns false on unreadable or
// malformed input, leaving *baseline empty.
bool LoadBaselineFile(const std::string& path,
                      std::vector<Finding>* baseline);

// Removes findings matched by the baseline. Matching is by exact
// (file, line, rule) triple; each baseline entry absorbs at most one
// finding. Returns the findings that remain (the ones that fail CI).
// If matched_out is non-null it receives the count of absorbed findings.
std::vector<Finding> SubtractBaseline(const std::vector<Finding>& findings,
                                      const std::vector<Finding>& baseline,
                                      std::size_t* matched_out = nullptr);

}  // namespace limoncello::limolint

#endif  // LIMONCELLO_TOOLS_LIMOLINT_LIB_H_
