// limolint call-graph layer — whole-program rules on top of the per-line
// scanner (limolint_lib.h).
//
// A lightweight C++ function extractor walks every program file (comments
// and string literals blanked by the shared lexer, brace depth tracked,
// preprocessor lines skipped) and records function definitions, the call
// sites inside each body, allocating / blocking constructs, and lock
// acquisitions through util/mutex.h. The cross-TU call graph built from
// those records drives three rules the line scanner cannot express:
//
//   hot-path-alloc     no allocating construct (new/make_unique, vector
//                      growth, string/map/set/function construction)
//                      reachable from a function tagged limolint:hot-path
//   hot-path-blocking  no blocking call (file I/O, fsync, sleep, lock
//                      acquisition, logging) reachable from a hot root
//   lock-cycle         no cycle in the lock-acquisition order graph, and
//                      no lock held across ThreadPool::ParallelFor
//
// Tagging and escapes (all comment markers, per line):
//   // limolint:hot-path            on/above a definition: a hot root
//   // limolint:cold-path           on/above a definition: reachability
//                                   never traverses INTO this function
//                                   (designed rare path; the runtime
//                                   gates still cover it)
//   // limolint:allow(<rule>)       at a construct site: accept it; at a
//                                   call site: prune that edge for <rule>
//
// The extractor is a token scanner, not a compiler: overload resolution
// collapses to name matching (a call `Tick(...)` reaches every function
// named Tick), virtual calls reach every same-named method, lambdas are
// attributed to their enclosing function, and code behind both arms of an
// #if is analyzed. That over-approximation is the point — the rules are
// reachability contracts, and the escape hatches above plus the committed
// baseline (tools/limolint_baseline.json) absorb the deliberate cases.
// See DESIGN.md §13 for limits and the baseline workflow.
#ifndef LIMONCELLO_TOOLS_LIMOLINT_CALLGRAPH_H_
#define LIMONCELLO_TOOLS_LIMOLINT_CALLGRAPH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "limolint_lib.h"

namespace limoncello::limolint {

// One program file: repo-relative path + full content.
struct SourceFile {
  std::string rel_path;
  std::string content;
};

// Extracted function summary (exposed for tests and --dump-graph).
struct FunctionSummary {
  std::string qualified;  // e.g. "MachineModel::Tick"
  std::string file;
  int line = 0;  // 1-based line of the body's opening brace
  bool hot_root = false;
  bool cold_path = false;
  std::size_t num_calls = 0;       // call sites recorded in the body
  std::size_t num_constructs = 0;  // alloc+blocking constructs recorded
};

class ProgramModel {
 public:
  // Extracts every function from `files` and builds the call graph.
  static ProgramModel Build(const std::vector<SourceFile>& files);

  // Runs hot-path-alloc, hot-path-blocking, and lock-cycle. Findings are
  // sorted by (file, line, rule) and deduplicated.
  std::vector<Finding> Analyze() const;

  // Extraction introspection, ordered by (file, line).
  std::vector<FunctionSummary> Functions() const;

  ProgramModel(ProgramModel&&) noexcept;
  ProgramModel& operator=(ProgramModel&&) noexcept;
  ~ProgramModel();

 private:
  ProgramModel();
  struct Impl;
  Impl* impl_;
};

// Convenience: Build + Analyze.
std::vector<Finding> AnalyzeProgram(const std::vector<SourceFile>& files);

// True if rel_path participates in whole-program analysis: C++ files
// under src/, tools/, or bench/ (tests/ holds gtest macro bodies the
// extractor would mis-attribute, and fixtures are deliberate violations).
bool InProgramScope(const std::string& rel_path);

}  // namespace limoncello::limolint

#endif  // LIMONCELLO_TOOLS_LIMOLINT_CALLGRAPH_H_
