#include "limolint_callgraph.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <set>
#include <utility>

namespace limoncello::limolint {

namespace {

bool IsIdent(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// ALL_CAPS_WITH_UNDERSCORE tokens are treated as annotation macros
// (LIMONCELLO_ACQUIRE(...), attributes) when parsing signatures.
bool LooksLikeMacro(const std::string& token) {
  if (token.find('_') == std::string::npos) return false;
  for (char c : token) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
  }
  return !token.empty();
}

bool IsControlKeyword(const std::string& name) {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "if", "for", "while", "switch", "catch", "return", "sizeof",
      "alignof", "alignas", "decltype", "noexcept", "throw", "delete",
      "co_await", "co_return", "static_assert", "defined", "requires"};
  return kw->count(name) != 0;
}

// Allocating constructs -----------------------------------------------------

// Method / free calls that (can) allocate: container growth, string
// building, smart-pointer factories.
bool IsAllocCall(const std::string& name) {
  static const std::set<std::string>* calls = new std::set<std::string>{
      "push_back", "emplace_back", "push_front", "emplace_front",
      "emplace", "emplace_hint", "resize", "reserve", "insert", "assign",
      "append", "make_unique", "make_shared", "to_string", "substr",
      "shrink_to_fit"};
  return calls->count(name) != 0;
}

// Type spellings whose value construction allocates (or may allocate on
// first growth). Matched as `std::X` optionally followed by a template
// argument list; references/pointers/nested-name uses are skipped at the
// match site.
const char* const kAllocTypes[] = {
    "string",  "vector",        "map",           "set",
    "deque",   "list",          "unordered_map", "unordered_set",
    "function", "ostringstream", "stringstream",  "istringstream",
    "multimap", "multiset"};

// Blocking constructs -------------------------------------------------------

// Free-function calls that block: file I/O, syncing, sleeping, polling,
// logging. `Logf` is util/logging.h's engine; the LIMONCELLO_LOG_* macro
// names are matched too because macros are invisible post-lex.
bool IsBlockingCall(const std::string& name) {
  static const std::set<std::string>* calls = new std::set<std::string>{
      "write",      "pwrite",    "read",       "pread",
      "fsync",      "fdatasync", "open",       "fopen",
      "creat",      "close",     "fclose",     "fwrite",
      "fread",      "fflush",    "fprintf",    "printf",
      "vfprintf",   "fputs",     "puts",       "fgets",
      "sleep",      "usleep",    "nanosleep",  "sleep_for",
      "sleep_until", "poll",     "select",     "epoll_wait",
      "rename",     "remove",    "unlink",     "system",
      "Logf",       "LIMONCELLO_LOG_DEBUG",    "LIMONCELLO_LOG_INFO",
      "LIMONCELLO_LOG_WARN",     "LIMONCELLO_LOG_ERROR"};
  return calls->count(name) != 0;
}

// Method calls that block: pool rendezvous, condvar waits, explicit lock
// acquisition. (MutexLock guard declarations are detected separately.)
bool IsBlockingMethod(const std::string& name) {
  return name == "ParallelFor" || name == "ParallelInvoke" ||
         name == "Wait" || name == "Lock" || name == "join";
}

// Extraction ---------------------------------------------------------------

struct CallSite {
  std::string callee;  // as written: "Tick" or "FaultPlan::Generate"
  int line = 0;
  // Locks held (static names) at this call site, for lock-cycle.
  std::vector<std::string> held;
  // Rules for which a limolint:allow(...) on this line prunes the edge.
  bool allow_alloc = false;
  bool allow_blocking = false;
  bool allow_lock = false;
};

struct Construct {
  const char* rule;  // "hot-path-alloc" or "hot-path-blocking"
  std::string what;  // e.g. "push_back", "new", "std::string value"
  int line = 0;
};

struct LockAcquire {
  std::string lock;  // normalized static name, e.g. "ThreadPool::mu_"
  int line = 0;
  bool allowed = false;  // limolint:allow(lock-cycle) on the line
};

struct Function {
  std::string name;       // last component, e.g. "Tick"
  std::string qualified;  // e.g. "MachineModel::Tick"
  std::string file;
  int line = 0;
  bool hot_root = false;
  bool cold_path = false;
  std::vector<CallSite> calls;
  std::vector<Construct> constructs;
  // Direct lock-order edges (acquired b while a held) with their site.
  struct LockEdge {
    std::string from, to;
    int line = 0;
  };
  std::vector<LockEdge> lock_edges;
  std::vector<LockAcquire> acquires;
  // ParallelFor/ParallelInvoke called directly with these locks held.
  std::vector<CallSite> rendezvous_under_lock;
};

bool HasAllow(const std::string& comment, const char* rule) {
  return comment.find(std::string("limolint:allow(") + rule + ")") !=
         std::string::npos;
}

// An active scoped lock guard inside a function body.
struct ActiveGuard {
  std::string lock;
  int depth = 0;  // brace depth at declaration; released when depth drops
  bool allowed = false;
  bool manual = false;  // mu.Lock(): released only by Unlock()/body end
};

// Per-function state while its body is being scanned.
struct OpenFunction {
  std::size_t index = 0;  // into functions vector
  int entry_depth = 0;    // brace depth at which the body opened
  std::vector<ActiveGuard> guards;
};

// One scope on the extractor's stack.
struct Scope {
  enum Kind { kNamespace, kType, kFunction, kOther } kind = kOther;
  std::string name;  // type name for kType
};

class Extractor {
 public:
  explicit Extractor(std::vector<Function>* out) : functions_(out) {}

  void File(const std::string& rel_path, const std::string& content) {
    file_ = rel_path;
    file_stem_ = rel_path;
    const std::size_t slash = file_stem_.find_last_of('/');
    if (slash != std::string::npos) file_stem_.erase(0, slash + 1);
    const std::size_t dot = file_stem_.find_last_of('.');
    if (dot != std::string::npos) file_stem_.resize(dot);
    scopes_.clear();
    open_functions_.clear();
    pending_.clear();
    pending_comment_.clear();
    depth_ = 0;
    last_code_char_ = ';';
    in_preprocessor_ = false;

    const std::vector<ScannedLine> lines = ScanLines(content);
    for (std::size_t n = 0; n < lines.size(); ++n) {
      Line(static_cast<int>(n + 1), lines[n].code, lines[n].comment);
    }
  }

 private:
  void Line(int line_no, const std::string& code,
            const std::string& comment) {
    // Preprocessor lines (and their backslash continuations) are opaque:
    // macro bodies must not contribute braces or call sites.
    bool preprocessor = in_preprocessor_;
    if (!preprocessor) {
      const std::size_t first = code.find_first_not_of(" \t");
      preprocessor = first != std::string::npos && code[first] == '#';
    }
    if (preprocessor) {
      in_preprocessor_ = !code.empty() && code.back() == '\\';
      return;
    }

    line_ = line_no;
    comment_ = &comment;
    std::size_t i = 0;
    while (i < code.size()) {
      if (!open_functions_.empty()) {
        i = BodyStep(code, i);
      } else {
        i = TopStep(code, i);
      }
    }
    // Comments attach after the line's code so `}  // marker` applies to
    // what FOLLOWS the brace, and marker comments above a signature
    // accumulate with it.
    if (open_functions_.empty() && !comment.empty()) {
      pending_comment_ += comment;
      pending_comment_ += '\n';
    }
  }

  // --- outside any function body ---------------------------------------

  std::size_t TopStep(const std::string& code, std::size_t i) {
    const char c = code[i];
    if (c == '{') {
      OpenBrace();
      return i + 1;
    }
    if (c == '}') {
      CloseBrace();
      last_code_char_ = '}';
      return i + 1;
    }
    if (c == ';') {
      pending_.clear();
      pending_comment_.clear();
      last_code_char_ = ';';
      return i + 1;
    }
    pending_ += c;
    if (!std::isspace(static_cast<unsigned char>(c))) last_code_char_ = c;
    return i + 1;
  }

  void OpenBrace() {
    Scope scope;
    std::string trimmed = Trim(pending_);
    if (init_brace_depth_ > 0 ||
        (CtorColonSplit(trimmed) && IsIdentTail(last_code_char_))) {
      // A brace inside a constructor's member-init list (`: a_{1}`), not
      // the body: transparent, just track nesting.
      ++init_brace_depth_;
      ++depth_;
      return;
    }
    if (ContainsWord(trimmed, "namespace")) {
      scope.kind = Scope::kNamespace;
    } else if (ContainsWord(trimmed, "enum")) {
      scope.kind = Scope::kOther;
    } else if (TopLevelEquals(trimmed)) {
      scope.kind = Scope::kOther;  // initializer: `= {...}`
    } else if (ContainsWord(trimmed, "class") ||
               ContainsWord(trimmed, "struct") ||
               ContainsWord(trimmed, "union")) {
      scope.kind = Scope::kType;
      scope.name = TypeName(trimmed);
    } else {
      std::string name = FunctionName(trimmed);
      if (!name.empty()) {
        scope.kind = Scope::kFunction;
        scope.name = name;
        StartFunction(name);
      } else {
        scope.kind = Scope::kOther;
      }
    }
    pending_.clear();
    pending_comment_.clear();
    scopes_.push_back(scope);
    ++depth_;
    last_code_char_ = '{';
  }

  void CloseBrace() {
    if (depth_ > 0) --depth_;
    if (init_brace_depth_ > 0) {
      --init_brace_depth_;
      return;
    }
    if (!scopes_.empty()) scopes_.pop_back();
    pending_.clear();
    pending_comment_.clear();
  }

  void StartFunction(const std::string& name) {
    Function fn;
    const std::size_t last_sep = name.rfind("::");
    fn.name = last_sep == std::string::npos ? name
                                            : name.substr(last_sep + 2);
    std::string prefix;
    for (const Scope& s : scopes_) {
      if (s.kind == Scope::kType && !s.name.empty()) {
        prefix += s.name;
        prefix += "::";
      }
    }
    fn.qualified = prefix + name;
    fn.file = file_;
    fn.line = line_;
    fn.hot_root =
        pending_comment_.find("limolint:hot-path") != std::string::npos;
    fn.cold_path =
        pending_comment_.find("limolint:cold-path") != std::string::npos;
    OpenFunction open;
    open.index = functions_->size();
    open.entry_depth = depth_;  // body opens at depth_ (incremented after)
    functions_->push_back(std::move(fn));
    open_functions_.push_back(std::move(open));
  }

  // --- inside a function body -------------------------------------------

  std::size_t BodyStep(const std::string& code, std::size_t i) {
    OpenFunction& open = open_functions_.back();
    Function& fn = (*functions_)[open.index];
    const char c = code[i];
    if (c == '{') {
      ++depth_;
      return i + 1;
    }
    if (c == '}') {
      if (depth_ > 0) --depth_;
      // Release scoped guards whose block just closed.
      auto& guards = open.guards;
      guards.erase(std::remove_if(guards.begin(), guards.end(),
                                  [&](const ActiveGuard& g) {
                                    return !g.manual && g.depth > depth_;
                                  }),
                   guards.end());
      if (depth_ == open.entry_depth) {
        open_functions_.pop_back();
        if (!scopes_.empty() &&
            scopes_.back().kind == Scope::kFunction) {
          scopes_.pop_back();
        }
        last_code_char_ = '}';
      }
      return i + 1;
    }
    if (IsIdent(c) && (i == 0 || !IsIdent(code[i - 1])) &&
        std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return Token(fn, open, code, i);
    }
    return i + 1;
  }

  // Reads the identifier chain at code[i] (`A::B::name`), classifies it,
  // and returns the index to resume scanning at.
  std::size_t Token(Function& fn, OpenFunction& open,
                    const std::string& code, std::size_t i) {
    std::size_t end = i;
    std::string chain;
    for (;;) {
      std::size_t tok_end = end;
      while (tok_end < code.size() && IsIdent(code[tok_end])) ++tok_end;
      chain.append(code, end, tok_end - end);
      end = tok_end;
      if (end + 1 < code.size() && code[end] == ':' &&
          code[end + 1] == ':' && end + 2 < code.size() &&
          IsIdent(code[end + 2])) {
        chain += "::";
        end += 2;
        continue;
      }
      break;
    }

    // `new` expression.
    if (chain == "new") {
      AddConstruct(fn, "hot-path-alloc", "new expression");
      return end;
    }

    // Value construction of an allocating std:: type?
    if (StartsWith(chain, "std::")) {
      const std::string tail = chain.substr(5);
      for (const char* type : kAllocTypes) {
        if (tail == type) {
          const std::size_t after = SkipTemplateArgs(code, end);
          if (IsValueConstruction(code, after)) {
            AddConstruct(fn, "hot-path-alloc",
                         "std::" + tail + " construction");
          }
          return after;
        }
      }
    }

    std::size_t after_ws = end;
    while (after_ws < code.size() &&
           std::isspace(static_cast<unsigned char>(code[after_ws]))) {
      ++after_ws;
    }
    // A template argument list between name and '(' — Foo<T>(...) — is a
    // call too; SkipTemplateArgs returns its input unless a balanced <...>
    // group follows, so bare comparisons fall through unchanged.
    if (after_ws < code.size() && code[after_ws] == '<') {
      const std::size_t after_args = SkipTemplateArgs(code, after_ws);
      if (after_args != after_ws && after_args < code.size()) {
        std::size_t p = after_args;
        while (p < code.size() &&
               std::isspace(static_cast<unsigned char>(code[p]))) {
          ++p;
        }
        if (p < code.size() && code[p] == '(') after_ws = p;
      }
    }
    const bool is_call = after_ws < code.size() && code[after_ws] == '(';

    // MutexLock guard declaration: `MutexLock lock(&mu_);` (or a direct
    // temporary `MutexLock(&mu_)`).
    if (chain == "MutexLock" || chain == "limoncello::MutexLock") {
      const std::size_t paren = FindGuardParen(code, after_ws);
      if (paren != std::string::npos) {
        Acquire(fn, open, LockNameFromArg(code, paren), /*manual=*/false);
        AddConstruct(fn, "hot-path-blocking", "MutexLock acquisition");
        return SkipParenGroup(code, paren);
      }
      return end;
    }

    if (!is_call) return end;
    if (IsControlKeyword(chain)) return end;

    // Receiver context: `.name(` / `->name(` marks a method call.
    std::size_t before = i;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(code[before - 1]))) {
      --before;
    }
    const bool method =
        before > 0 && (code[before - 1] == '.' ||
                       (before > 1 && code[before - 2] == '-' &&
                        code[before - 1] == '>'));

    const std::string last = chain.rfind("::") == std::string::npos
                                 ? chain
                                 : chain.substr(chain.rfind("::") + 2);

    if (method && last == "Lock") {
      Acquire(fn, open, ReceiverBefore(code, before), /*manual=*/true);
      AddConstruct(fn, "hot-path-blocking", "Mutex::Lock acquisition");
      return after_ws + 1;
    }
    if (method && last == "Unlock") {
      Release(open, ReceiverBefore(code, before));
      return after_ws + 1;
    }

    // Constructs.
    if (method && IsAllocCall(last)) {
      AddConstruct(fn, "hot-path-alloc", last + "()");
    } else if (!method && (last == "make_unique" || last == "make_shared" ||
                           last == "to_string")) {
      AddConstruct(fn, "hot-path-alloc", last + "()");
    }
    if (IsBlockingCall(last) || (method && IsBlockingMethod(last))) {
      AddConstruct(fn, "hot-path-blocking", last + "()");
    }

    // Record the call site (for reachability and lock propagation).
    CallSite site;
    site.callee = chain;
    site.line = line_;
    site.allow_alloc = HasAllow(*comment_, "hot-path-alloc");
    site.allow_blocking = HasAllow(*comment_, "hot-path-blocking");
    site.allow_lock = HasAllow(*comment_, "lock-cycle");
    for (const ActiveGuard& g : open.guards) site.held.push_back(g.lock);
    if ((last == "ParallelFor" || last == "ParallelInvoke") &&
        !site.held.empty() && !site.allow_lock) {
      fn.rendezvous_under_lock.push_back(site);
    }
    fn.calls.push_back(std::move(site));
    return after_ws + 1;  // continue inside the argument list
  }

  void AddConstruct(Function& fn, const char* rule,
                    const std::string& what) {
    if (HasAllow(*comment_, rule)) return;
    fn.constructs.push_back(Construct{rule, what, line_});
  }

  void Acquire(Function& fn, OpenFunction& open, const std::string& raw,
               bool manual) {
    if (raw.empty()) return;
    ActiveGuard guard;
    guard.lock = QualifyLock(fn, raw);
    guard.depth = depth_;
    guard.allowed = HasAllow(*comment_, "lock-cycle");
    guard.manual = manual;
    LockAcquire acq{guard.lock, line_, guard.allowed};
    if (!guard.allowed) {
      // Direct order edges: every lock already held precedes this one.
      for (const ActiveGuard& held : open.guards) {
        if (held.allowed) continue;
        fn.lock_edges.push_back(
            Function::LockEdge{held.lock, guard.lock, line_});
      }
      fn.acquires.push_back(acq);
    }
    open.guards.push_back(std::move(guard));
  }

  void Release(OpenFunction& open, const std::string& raw) {
    if (raw.empty()) return;
    auto& guards = open.guards;
    for (std::size_t g = guards.size(); g > 0; --g) {
      if (guards[g - 1].manual &&
          guards[g - 1].lock.find(LastComponent(raw)) !=
              std::string::npos) {
        guards.erase(guards.begin() + static_cast<std::ptrdiff_t>(g - 1));
        return;
      }
    }
  }

  // Static lock name: a bare identifier is qualified by the enclosing
  // class (or the file stem for free functions) so `mu_` in ThreadPool
  // and `mu_` in another class stay distinct nodes.
  std::string QualifyLock(const Function& fn, const std::string& raw) {
    std::string name = raw;
    if (StartsWith(name, "this->")) name.erase(0, 6);
    bool bare = true;
    for (char c : name) {
      if (!IsIdent(c)) {
        bare = false;
        break;
      }
    }
    if (!bare) return name;
    const std::size_t sep = fn.qualified.rfind("::");
    const std::string owner = sep == std::string::npos
                                  ? file_stem_
                                  : fn.qualified.substr(0, sep);
    return owner + "::" + name;
  }

  static std::string LastComponent(const std::string& s) {
    const std::size_t sep = s.rfind("::");
    return sep == std::string::npos ? s : s.substr(sep + 2);
  }

  // --- small parsing helpers --------------------------------------------

  static std::string Trim(const std::string& s) {
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
  }

  static bool IsIdentTail(char c) { return IsIdent(c) || c == '>'; }

  static bool ContainsWord(const std::string& s, const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    std::size_t pos = 0;
    while ((pos = s.find(word, pos)) != std::string::npos) {
      const bool left = pos == 0 || !IsIdent(s[pos - 1]);
      const bool right =
          pos + len >= s.size() || !IsIdent(s[pos + len]);
      if (left && right) return true;
      pos += len;
    }
    return false;
  }

  // True if `s` has a top-level (paren-depth-0) '=' that is not part of
  // ==, <=, >=, != or operator spelling.
  static bool TopLevelEquals(const std::string& s) {
    int paren = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(') ++paren;
      if (c == ')') --paren;
      if (paren != 0 || c != '=') continue;
      const char prev = i > 0 ? s[i - 1] : '\0';
      const char next = i + 1 < s.size() ? s[i + 1] : '\0';
      if (prev == '=' || prev == '!' || prev == '<' || prev == '>' ||
          next == '=') {
        continue;
      }
      // `operator=` definitions are functions, not initializers.
      if (i >= 8 && s.compare(i - 8, 8, "operator") == 0) continue;
      return true;
    }
    return false;
  }

  // If `s` is a constructor signature with a member-init list, truncates
  // at the top-level ':' and returns true. Access-specifier colons
  // (public:) are removed and scanning continues.
  static bool CtorColonSplit(std::string& s) {
    int paren = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(') ++paren;
      if (c == ')') --paren;
      if (paren != 0 || c != ':') continue;
      if (i + 1 < s.size() && s[i + 1] == ':') {
        ++i;
        continue;
      }
      if (i > 0 && s[i - 1] == ':') continue;
      const std::string before = Trim(s.substr(0, i));
      if (EndsWithWord(before, "public") ||
          EndsWithWord(before, "private") ||
          EndsWithWord(before, "protected")) {
        s = Trim(s.substr(i + 1));
        return CtorColonSplit(s);
      }
      s = before;
      return true;
    }
    return false;
  }

  static bool EndsWithWord(const std::string& s, const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (s.size() < len || s.compare(s.size() - len, len, word) != 0) {
      return false;
    }
    return s.size() == len || !IsIdent(s[s.size() - len - 1]);
  }

  // Class/struct name: the first non-macro identifier after the keyword,
  // skipping alignas(...) and annotation macros with arguments.
  static std::string TypeName(const std::string& s) {
    std::size_t pos = 0;
    for (const char* kw : {"class", "struct", "union"}) {
      std::size_t k = s.find(kw);
      while (k != std::string::npos) {
        const std::size_t len = std::char_traits<char>::length(kw);
        if ((k == 0 || !IsIdent(s[k - 1])) &&
            (k + len >= s.size() || !IsIdent(s[k + len]))) {
          pos = k + len;
          goto found;
        }
        k = s.find(kw, k + 1);
      }
    }
    return "";
  found:
    for (;;) {
      while (pos < s.size() &&
             !IsIdent(s[pos])) {
        ++pos;
      }
      if (pos >= s.size()) return "";
      std::size_t end = pos;
      while (end < s.size() && IsIdent(s[end])) ++end;
      const std::string token = s.substr(pos, end - pos);
      // Skip alignas(...)/macro(...) groups and macro-like tokens.
      std::size_t after = end;
      while (after < s.size() &&
             std::isspace(static_cast<unsigned char>(s[after]))) {
        ++after;
      }
      if (after < s.size() && s[after] == '(') {
        int depth = 0;
        while (after < s.size()) {
          if (s[after] == '(') ++depth;
          if (s[after] == ')' && --depth == 0) break;
          ++after;
        }
        pos = after + 1;
        continue;
      }
      if (token == "alignas" || token == "final" ||
          LooksLikeMacro(token)) {
        pos = end;
        continue;
      }
      return token;
    }
  }

  // Extracts the function name from a signature whose body brace was just
  // reached, or "" if `s` does not look like a function definition.
  static std::string FunctionName(std::string s) {
    CtorColonSplit(s);
    s = Trim(s);
    if (s.empty() || TopLevelEquals(s)) return "";
    // Find the parameter list: the last balanced paren group, walking
    // back over trailing annotation/qualifier groups like
    // LIMONCELLO_ACQUIRE() or noexcept(...).
    std::size_t search_end = s.size();
    for (int hops = 0; hops < 8; ++hops) {
      const std::size_t close = s.find_last_of(')', search_end - 1);
      if (close == std::string::npos) return "";
      int depth = 0;
      std::size_t open = close;
      for (;; --open) {
        if (s[open] == ')') ++depth;
        if (s[open] == '(' && --depth == 0) break;
        if (open == 0) return "";
      }
      // Name ends just before the '(' group.
      std::size_t name_end = open;
      while (name_end > 0 &&
             std::isspace(static_cast<unsigned char>(s[name_end - 1]))) {
        --name_end;
      }
      if (name_end == 0) return "";
      // Skip a template-argument list on the name (f<int>).
      if (s[name_end - 1] == '>') {
        int tdepth = 0;
        std::size_t t = name_end;
        for (; t > 0; --t) {
          if (s[t - 1] == '>') ++tdepth;
          if (s[t - 1] == '<' && --tdepth == 0) break;
        }
        if (t == 0) return "";
        name_end = t - 1;
      }
      std::size_t name_begin = name_end;
      while (name_begin > 0 &&
             (IsIdent(s[name_begin - 1]) || s[name_begin - 1] == '~')) {
        --name_begin;
      }
      // Extend over :: chains.
      while (name_begin > 1 && s[name_begin - 1] == ':' &&
             s[name_begin - 2] == ':') {
        name_begin -= 2;
        while (name_begin > 0 &&
               (IsIdent(s[name_begin - 1]) || s[name_begin - 1] == '~')) {
          --name_begin;
        }
      }
      std::string name = s.substr(name_begin, name_end - name_begin);
      if (name.empty()) return "";
      const std::string last =
          name.rfind("::") == std::string::npos
              ? name
              : name.substr(name.rfind("::") + 2);
      if (IsControlKeyword(last) || LooksLikeMacro(last) ||
          last == "operator") {
        // Annotation macro / qualifier group: step back past it.
        if (open == 0) return "";
        search_end = name_begin == 0 ? open : name_begin;
        continue;
      }
      return name;
    }
    return "";
  }

  static std::size_t SkipParenGroup(const std::string& code,
                                    std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i] == '(') ++depth;
      if (code[i] == ')' && --depth == 0) return i + 1;
    }
    return code.size();
  }

  // After `std::vector` etc., skips a template argument list if present.
  static std::size_t SkipTemplateArgs(const std::string& code,
                                      std::size_t i) {
    std::size_t p = i;
    while (p < code.size() &&
           std::isspace(static_cast<unsigned char>(code[p]))) {
      ++p;
    }
    if (p >= code.size() || code[p] != '<') return i;
    int depth = 0;
    for (; p < code.size(); ++p) {
      if (code[p] == '<') ++depth;
      if (code[p] == '>' && --depth == 0) return p + 1;
    }
    return code.size();
  }

  // A type use constructs a value when followed by an identifier (a
  // declaration), '(' or '{' (a temporary); references, pointers,
  // nested-name uses (std::string::npos) and template nesting are not
  // constructions.
  static bool IsValueConstruction(const std::string& code, std::size_t i) {
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
    }
    if (i >= code.size()) return false;  // declaration continues: assume ref
    const char c = code[i];
    if (c == ':' || c == '&' || c == '*' || c == '>' || c == ')' ||
        c == ',' || c == ';' || c == '=') {
      return false;
    }
    return IsIdent(c) || c == '(' || c == '{';
  }

  // For `MutexLock guard(&mu_)` / `MutexLock(&mu_)`: finds the arg paren.
  static std::size_t FindGuardParen(const std::string& code,
                                    std::size_t i) {
    if (i < code.size() && code[i] == '(') return i;
    // Skip the guard's variable name.
    while (i < code.size() && IsIdent(code[i])) ++i;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
    }
    return i < code.size() && code[i] == '(' ? i : std::string::npos;
  }

  // First argument of the guard: `&mu_` -> "mu_", `&sock->mu_` ->
  // "sock->mu_".
  static std::string LockNameFromArg(const std::string& code,
                                     std::size_t paren) {
    std::size_t i = paren + 1;
    int depth = 1;
    std::string arg;
    for (; i < code.size() && depth > 0; ++i) {
      if (code[i] == '(') ++depth;
      if (code[i] == ')') --depth;
      if (depth == 0 || (code[i] == ',' && depth == 1)) break;
      arg += code[i];
    }
    arg = Trim(arg);
    if (!arg.empty() && arg[0] == '&') arg.erase(0, 1);
    return Trim(arg);
  }

  // The identifier chain that precedes `.` / `->` at code[sep_end - 1].
  static std::string ReceiverBefore(const std::string& code,
                                    std::size_t sep_end) {
    std::size_t end = sep_end;
    if (end > 0 && code[end - 1] == '.') {
      --end;
    } else if (end > 1 && code[end - 1] == '>' && code[end - 2] == '-') {
      end -= 2;
    } else {
      return "";
    }
    std::size_t begin = end;
    while (begin > 0 && (IsIdent(code[begin - 1]) ||
                         code[begin - 1] == '_')) {
      --begin;
    }
    return code.substr(begin, end - begin);
  }

  std::vector<Function>* functions_;
  std::string file_;
  std::string file_stem_;
  std::vector<Scope> scopes_;
  std::vector<OpenFunction> open_functions_;
  std::string pending_;
  std::string pending_comment_;
  int depth_ = 0;
  int init_brace_depth_ = 0;
  char last_code_char_ = ';';
  bool in_preprocessor_ = false;
  int line_ = 0;
  const std::string* comment_ = nullptr;
};

}  // namespace

// Graph + rules -------------------------------------------------------------

struct ProgramModel::Impl {
  std::vector<Function> functions;
  // simple name -> function indices; qualified name -> indices.
  std::map<std::string, std::vector<std::size_t>> by_name;
  std::map<std::string, std::vector<std::size_t>> by_qualified;

  std::vector<std::size_t> Resolve(const std::string& callee) const {
    if (callee.find("::") != std::string::npos) {
      std::vector<std::size_t> out;
      // Suffix match on components: `MachineModel::Tick` resolves both
      // the exact qualified name and longer nestings ending in it.
      for (const auto& [qualified, ids] : by_qualified) {
        if (qualified == callee ||
            (qualified.size() > callee.size() + 2 &&
             qualified.compare(qualified.size() - callee.size() - 2, 2,
                               "::") == 0 &&
             qualified.compare(qualified.size() - callee.size(),
                               callee.size(), callee) == 0)) {
          out.insert(out.end(), ids.begin(), ids.end());
        }
      }
      if (!out.empty()) return out;
      // Fall back to the last component (out-of-line helpers).
      const std::string last = callee.substr(callee.rfind("::") + 2);
      const auto it = by_name.find(last);
      return it == by_name.end() ? std::vector<std::size_t>{}
                                 : it->second;
    }
    const auto it = by_name.find(callee);
    return it == by_name.end() ? std::vector<std::size_t>{} : it->second;
  }

  // BFS over call edges from hot roots for one rule; emits findings for
  // every matching construct in a reachable function.
  void HotPathRule(const char* rule, std::vector<Finding>* findings) const {
    const bool alloc = std::string(rule) == "hot-path-alloc";
    std::vector<int> parent(functions.size(), -2);  // -2 unvisited
    std::vector<std::size_t> queue;
    for (std::size_t f = 0; f < functions.size(); ++f) {
      if (functions[f].hot_root && !functions[f].cold_path) {
        parent[f] = -1;
        queue.push_back(f);
      }
    }
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::size_t f = queue[head];
      for (const CallSite& site : functions[f].calls) {
        if (alloc ? site.allow_alloc : site.allow_blocking) continue;
        for (std::size_t callee : Resolve(site.callee)) {
          if (parent[callee] != -2 || functions[callee].cold_path) {
            continue;
          }
          parent[callee] = static_cast<int>(f);
          queue.push_back(callee);
        }
      }
    }
    for (std::size_t f : queue) {
      for (const Construct& construct : functions[f].constructs) {
        if (std::string(construct.rule) != rule) continue;
        findings->push_back(Finding{
            functions[f].file, construct.line, rule,
            construct.what + " on a hot path (" + PathTo(parent, f) +
                "); restructure, move off the hot path, or annotate the "
                "line with limolint:allow(" +
                rule + ")"});
      }
    }
  }

  std::string PathTo(const std::vector<int>& parent, std::size_t f) const {
    std::vector<std::string> hops;
    for (int cur = static_cast<int>(f); cur >= 0;
         cur = parent[static_cast<std::size_t>(cur)]) {
      hops.push_back(Display(functions[static_cast<std::size_t>(cur)]));
      if (hops.size() > 12) {
        hops.push_back("...");
        break;
      }
    }
    std::reverse(hops.begin(), hops.end());
    std::string out;
    for (std::size_t h = 0; h < hops.size(); ++h) {
      if (h > 0) out += " -> ";
      out += hops[h];
    }
    return out;
  }

  static std::string Display(const Function& fn) {
    return fn.qualified.empty() ? fn.name : fn.qualified;
  }

  void LockCycleRule(std::vector<Finding>* findings) const {
    // 1. Transitive lock set per function (locks acquired by it or any
    // callee), via fixpoint — the graphs are tiny.
    std::vector<std::set<std::string>> all_locks(functions.size());
    for (std::size_t f = 0; f < functions.size(); ++f) {
      for (const LockAcquire& acq : functions[f].acquires) {
        all_locks[f].insert(acq.lock);
      }
    }
    // Also: which functions transitively reach a pool rendezvous.
    std::vector<char> reaches_rendezvous(functions.size(), 0);
    for (std::size_t f = 0; f < functions.size(); ++f) {
      if (functions[f].name == "ParallelFor" ||
          functions[f].name == "ParallelInvoke") {
        reaches_rendezvous[f] = 1;
      }
    }
    for (bool changed = true; changed;) {
      changed = false;
      for (std::size_t f = 0; f < functions.size(); ++f) {
        for (const CallSite& site : functions[f].calls) {
          if (site.allow_lock) continue;
          for (std::size_t callee : Resolve(site.callee)) {
            for (const std::string& lock : all_locks[callee]) {
              if (all_locks[f].insert(lock).second) changed = true;
            }
            if (reaches_rendezvous[callee] != 0 &&
                reaches_rendezvous[f] == 0) {
              reaches_rendezvous[f] = 1;
              changed = true;
            }
          }
        }
      }
    }

    // 2. Order edges: direct (two guards in one scope) and via calls made
    // while holding a lock.
    struct EdgeSite {
      std::string file;
      int line = 0;
    };
    std::map<std::pair<std::string, std::string>, EdgeSite> edges;
    auto add_edge = [&](const std::string& a, const std::string& b,
                        const std::string& file, int line) {
      const auto key = std::make_pair(a, b);
      if (edges.find(key) == edges.end()) {
        edges[key] = EdgeSite{file, line};
      }
    };
    for (const Function& fn : functions) {
      for (const Function::LockEdge& e : fn.lock_edges) {
        add_edge(e.from, e.to, fn.file, e.line);
      }
    }
    for (const Function& fn : functions) {
      for (const CallSite& site : fn.calls) {
        if (site.held.empty() || site.allow_lock) continue;
        for (std::size_t callee : Resolve(site.callee)) {
          for (const std::string& to : all_locks[callee]) {
            for (const std::string& from : site.held) {
              if (from != to) add_edge(from, to, fn.file, site.line);
            }
          }
          // Self-deadlock: calling into code that re-acquires a held
          // non-reentrant lock.
          for (const std::string& held : site.held) {
            if (all_locks[callee].count(held) != 0) {
              add_edge(held, held, fn.file, site.line);
            }
          }
        }
      }
    }

    // 3. Cycle detection over the lock graph (DFS, deterministic order).
    std::set<std::string> nodes;
    for (const auto& [key, site] : edges) {
      nodes.insert(key.first);
      nodes.insert(key.second);
    }
    std::map<std::string, int> state;  // 0 new, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::set<std::string> reported;
    std::function<void(const std::string&)> dfs =
        [&](const std::string& node) {
          state[node] = 1;
          stack.push_back(node);
          for (const auto& [key, site] : edges) {
            if (key.first != node) continue;
            const std::string& next = key.second;
            if (state[next] == 1) {
              // Cycle: stack suffix from `next` + this closing edge.
              std::string cycle;
              bool in = false;
              for (const std::string& hop : stack) {
                if (hop == next) in = true;
                if (!in) continue;
                cycle += hop;
                cycle += " -> ";
              }
              cycle += next;
              if (reported.insert(cycle).second) {
                findings->push_back(Finding{
                    site.file, site.line, "lock-cycle",
                    "lock order cycle " + cycle +
                        " (closing edge acquired here); establish one "
                        "global acquisition order or annotate with "
                        "limolint:allow(lock-cycle)"});
              }
            } else if (state[next] == 0) {
              dfs(next);
            }
          }
          stack.pop_back();
          state[node] = 2;
        };
    for (const std::string& node : nodes) {
      if (state[node] == 0) dfs(node);
    }

    // 4. Locks held across a pool rendezvous: a worker lane needs the
    // same locks' critical sections to make progress, so holding one
    // across the barrier is a deadlock (or at best a full-fleet stall).
    for (const Function& fn : functions) {
      for (const CallSite& site : fn.rendezvous_under_lock) {
        std::string held;
        for (const std::string& lock : site.held) {
          if (!held.empty()) held += ", ";
          held += lock;
        }
        findings->push_back(Finding{
            fn.file, site.line, "lock-cycle",
            "lock(s) " + held + " held across " + site.callee +
                " in " + Display(fn) +
                "; release before the rendezvous or annotate with "
                "limolint:allow(lock-cycle)"});
      }
      for (const CallSite& site : fn.calls) {
        if (site.held.empty() || site.allow_lock) continue;
        for (std::size_t callee : Resolve(site.callee)) {
          if (reaches_rendezvous[callee] == 0) continue;
          if (functions[callee].name == "ParallelFor" ||
              functions[callee].name == "ParallelInvoke") {
            continue;  // direct case already reported above
          }
          std::string held;
          for (const std::string& lock : site.held) {
            if (!held.empty()) held += ", ";
            held += lock;
          }
          findings->push_back(Finding{
              fn.file, site.line, "lock-cycle",
              "lock(s) " + held + " held across a call to " +
                  Display(functions[callee]) +
                  ", which reaches a ThreadPool rendezvous; release "
                  "before the call or annotate with "
                  "limolint:allow(lock-cycle)"});
        }
      }
    }
  }
};

ProgramModel::ProgramModel() : impl_(new Impl) {}
ProgramModel::~ProgramModel() { delete impl_; }
ProgramModel::ProgramModel(ProgramModel&& other) noexcept
    : impl_(other.impl_) {
  other.impl_ = nullptr;
}
ProgramModel& ProgramModel::operator=(ProgramModel&& other) noexcept {
  std::swap(impl_, other.impl_);
  return *this;
}

ProgramModel ProgramModel::Build(const std::vector<SourceFile>& files) {
  ProgramModel model;
  Extractor extractor(&model.impl_->functions);
  for (const SourceFile& file : files) {
    extractor.File(file.rel_path, file.content);
  }
  for (std::size_t f = 0; f < model.impl_->functions.size(); ++f) {
    const Function& fn = model.impl_->functions[f];
    if (fn.name.empty()) continue;
    model.impl_->by_name[fn.name].push_back(f);
    model.impl_->by_qualified[fn.qualified].push_back(f);
  }
  return model;
}

std::vector<Finding> ProgramModel::Analyze() const {
  std::vector<Finding> findings;
  impl_->HotPathRule("hot-path-alloc", &findings);
  impl_->HotPathRule("hot-path-blocking", &findings);
  impl_->LockCycleRule(&findings);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file &&
                                      a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

std::vector<FunctionSummary> ProgramModel::Functions() const {
  std::vector<FunctionSummary> out;
  for (const Function& fn : impl_->functions) {
    FunctionSummary summary;
    summary.qualified = fn.qualified.empty() ? fn.name : fn.qualified;
    summary.file = fn.file;
    summary.line = fn.line;
    summary.hot_root = fn.hot_root;
    summary.cold_path = fn.cold_path;
    summary.num_calls = fn.calls.size();
    summary.num_constructs = fn.constructs.size();
    out.push_back(std::move(summary));
  }
  std::sort(out.begin(), out.end(),
            [](const FunctionSummary& a, const FunctionSummary& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.line < b.line;
            });
  return out;
}

std::vector<Finding> AnalyzeProgram(const std::vector<SourceFile>& files) {
  return ProgramModel::Build(files).Analyze();
}

bool InProgramScope(const std::string& rel_path) {
  if (!StartsWith(rel_path, "src/") && !StartsWith(rel_path, "tools/") &&
      !StartsWith(rel_path, "bench/")) {
    return false;
  }
  return rel_path.find("limolint_fixtures") == std::string::npos;
}

}  // namespace limoncello::limolint
