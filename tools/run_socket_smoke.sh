#!/usr/bin/env bash
# Socket-transport smoke: the real limoncellod / limoncello-exporter /
# limoncello-flakyproxy trio on UNIX sockets, with a kill -9 of every
# role at least once. Passes when the restarted plane's graceful
# shutdown reports all 8 endpoints reconverged and (if limolint was
# built) the tree is lint-clean against the committed baseline.
#
#   tools/run_socket_smoke.sh [BUILD_DIR]   # default: build
set -euo pipefail

BUILD_DIR="${1:-build}"
DAEMON="$BUILD_DIR/tools/limoncellod"
EXPORTER="$BUILD_DIR/tools/limoncello-exporter"
PROXY="$BUILD_DIR/tools/limoncello-flakyproxy"
ENDPOINTS=8

for bin in "$DAEMON" "$EXPORTER" "$PROXY"; do
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR first)" >&2
    exit 2
  fi
done

WORK="$(mktemp -d /tmp/limoncello_smoke.XXXXXX)"
PLANE_SOCK="$WORK/plane.sock"
PROXY_SOCK="$WORK/proxy.sock"
JOURNAL="$WORK/endpoints.journal"
PLANE_LOG="$WORK/plane.log"
PEER_LOG="$WORK/peers.log"

cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

start_plane() {
  "$DAEMON" --listen="$PLANE_SOCK" --endpoints="$ENDPOINTS" \
    --tick-ms=10 --max-missed-samples=16 --state-file="$JOURNAL" \
    >>"$PLANE_LOG" 2>&1 &
  PLANE_PID=$!
}

start_proxy() {
  "$PROXY" --listen="$PROXY_SOCK" --upstream="$PLANE_SOCK" --seed=7 \
    --drop=0.02 --reorder=0.01 --duplicate=0.02 --truncate=0.02 \
    --stale=0.01 >>"$PEER_LOG" 2>&1 &
  PROXY_PID=$!
}

start_exporter() {  # $1 = endpoint id
  "$EXPORTER" --connect="$PROXY_SOCK" --endpoint-id="$1" \
    --seed=$((100 + $1)) --tick-ms=2 --samples-per-batch=2 \
    --initial-backoff-ms=5 --max-backoff-ms=80 >>"$PEER_LOG" 2>&1 &
  EXPORTER_PIDS[$1]=$!
}

hard_kill() {  # $1 = pid
  kill -9 "$1" 2>/dev/null || true
  wait "$1" 2>/dev/null || true
}

declare -a EXPORTER_PIDS
echo "smoke: plane + flaky proxy + $ENDPOINTS exporters in $WORK"
start_plane
start_proxy
for i in $(seq 0 $((ENDPOINTS - 1))); do start_exporter "$i"; done
sleep 0.5

echo "smoke: kill -9 every exporter (one at a time), restarting each"
for i in $(seq 0 $((ENDPOINTS - 1))); do
  hard_kill "${EXPORTER_PIDS[$i]}"
  start_exporter "$i"
done
sleep 0.3

echo "smoke: kill -9 the chaos proxy, restarting it"
hard_kill "$PROXY_PID"
start_proxy
sleep 0.3

echo "smoke: kill -9 the control plane, restarting it (journal warm restore)"
hard_kill "$PLANE_PID"
start_plane
sleep 2

echo "smoke: graceful plane shutdown"
kill -TERM "$PLANE_PID"
wait "$PLANE_PID" || { echo "error: plane exited nonzero" >&2; exit 1; }
kill -TERM "${EXPORTER_PIDS[@]}" "$PROXY_PID" 2>/dev/null || true

BANNER="reconverged $ENDPOINTS/$ENDPOINTS endpoints"
if ! grep -q "$BANNER" "$PLANE_LOG"; then
  echo "error: plane log lacks \"$BANNER\"; log follows" >&2
  cat "$PLANE_LOG" >&2
  exit 1
fi
echo "smoke: $BANNER"

if ! grep -q "warm-restored" "$PLANE_LOG"; then
  echo "error: restarted plane never warm-restored from $JOURNAL" >&2
  cat "$PLANE_LOG" >&2
  exit 1
fi
echo "smoke: journal warm restore observed after plane kill -9"

LINT="$BUILD_DIR/tools/limolint"
if [ -x "$LINT" ]; then
  "$LINT" --root "$(pwd)" --baseline tools/limolint_baseline.json
  echo "smoke: limolint clean"
fi

rm -rf "$WORK"
echo "smoke: PASS"
