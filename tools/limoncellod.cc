// limoncellod — the Limoncello controller daemon.
//
// Modes:
//   --mode=sim   (default) run against a simulated machine under bursty
//                load; useful for demos, controller tuning, and CI.
//   --mode=real  run against this host's MSRs (/dev/cpu/N/msr, needs the
//                msr kernel module and root). Telemetry comes from a
//                sample file that a sidecar appends utilization values
//                to (--telemetry-file). Use --dry-run to log intended
//                MSR writes without performing them.
//
// Examples:
//   limoncellod --ticks=120 --upper=0.8 --lower=0.6 --sustain-sec=5
//   limoncellod --mode=real --telemetry-file=/run/membw.txt --dry-run
#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "control/control_plane.h"
#include "control/endpoint_sim.h"
#include "core/daemon.h"
#include "core/file_utilization_source.h"
#include "core/perf_csv_source.h"
#include "faults/transport_chaos.h"
#include "fleet/machine_model.h"
#include "msr/linux_msr_device.h"
#include "recovery/recovery_manager.h"
#include "transport/socket_addr.h"
#include "transport/socket_listener.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace limoncello {
namespace {

// SIGTERM/SIGINT request a graceful exit: finish the current tick, flush
// a final journal snapshot, print the stats summary, return 0. Installed
// without SA_RESTART so the tick-period nanosleep wakes immediately.
volatile std::sig_atomic_t g_shutdown_signal = 0;

void HandleShutdownSignal(int signum) { g_shutdown_signal = signum; }

void InstallShutdownHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  (void)sigaction(SIGTERM, &action, nullptr);
  (void)sigaction(SIGINT, &action, nullptr);
  // Socket mode writes to peers that can vanish mid-frame. Every send
  // in the tree already passes MSG_NOSIGNAL; ignoring SIGPIPE as well
  // means even a future bare write cannot kill the daemon.
  (void)std::signal(SIGPIPE, SIG_IGN);
}

// End-of-run stats summary, printed on both bounded completion and
// signal-driven shutdown.
void PrintDaemonSummary(const LimoncelloDaemon::Stats& stats) {
  LIMONCELLO_LOG_INFO(
      "summary: %llu ticks, %llu disables, %llu enables, %llu missed / "
      "%llu invalid / %llu stale samples, %llu fail-safes, %llu "
      "actuation failures, %llu reboots detected, %llu warm restores, "
      "%llu recovery reconciles",
      static_cast<unsigned long long>(stats.ticks),
      static_cast<unsigned long long>(stats.disables),
      static_cast<unsigned long long>(stats.enables),
      static_cast<unsigned long long>(stats.missed_samples),
      static_cast<unsigned long long>(stats.invalid_samples),
      static_cast<unsigned long long>(stats.stale_samples),
      static_cast<unsigned long long>(stats.failsafe_resets),
      static_cast<unsigned long long>(stats.actuation_failures),
      static_cast<unsigned long long>(stats.reboots_detected),
      static_cast<unsigned long long>(stats.warm_restores),
      static_cast<unsigned long long>(stats.recovery_reconciles));
}

// Satellite of the recovery work: an invalid config is now a startup
// error with every violated constraint spelled out, not a CHECK crash
// (or silent misbehaviour) at tick time.
bool ValidateConfigOrLog(const ControllerConfig& config) {
  const std::vector<std::string> errors = config.Validate();
  if (errors.empty()) return true;
  LIMONCELLO_LOG_ERROR("invalid controller configuration (%zu error%s):",
                       errors.size(), errors.size() == 1 ? "" : "s");
  for (const std::string& error : errors) {
    LIMONCELLO_LOG_ERROR("  - %s", error.c_str());
  }
  return false;
}

// Wraps an actuator to log (and optionally suppress) MSR writes.
class LoggingActuator : public PrefetchActuator {
 public:
  LoggingActuator(PrefetchActuator* inner, bool dry_run)
      : inner_(inner), dry_run_(dry_run) {}

  bool DisablePrefetchers() override {
    LIMONCELLO_LOG_INFO("actuate: DISABLE hardware prefetchers%s",
                        dry_run_ ? " (dry run)" : "");
    return dry_run_ ? true : inner_->DisablePrefetchers();
  }
  bool EnablePrefetchers() override {
    LIMONCELLO_LOG_INFO("actuate: ENABLE hardware prefetchers%s",
                        dry_run_ ? " (dry run)" : "");
    return dry_run_ ? true : inner_->EnablePrefetchers();
  }
  std::optional<bool> StateMatches(bool want_enabled) override {
    // Dry runs never touched the MSRs, so a readback would always
    // disagree with the FSM; report "unknown" instead.
    return dry_run_ ? std::nullopt : inner_->StateMatches(want_enabled);
  }

 private:
  PrefetchActuator* inner_;
  bool dry_run_;
};

ControllerConfig ConfigFromFlags(const FlagParser& flags) {
  ControllerConfig config;
  config.upper_threshold = flags.GetDouble("upper").value_or(0.80);
  config.lower_threshold = flags.GetDouble("lower").value_or(0.60);
  config.sustain_duration_ns =
      flags.GetInt("sustain-sec").value_or(5) * kNsPerSec;
  config.tick_period_ns = flags.GetInt("tick-sec").value_or(1) * kNsPerSec;
  config.max_missed_samples =
      static_cast<int>(flags.GetInt("max-missed-samples").value_or(5));
  return config;
}

int RunSim(const FlagParser& flags) {
  const int ticks = static_cast<int>(flags.GetInt("ticks").value_or(120));
  const ControllerConfig config = ConfigFromFlags(flags);
  if (!ValidateConfigOrLog(config)) return 2;

  // Optional chaos mode: a deterministic fault schedule (telemetry
  // corruption, MSR write failures, crash/reboot) driven by --chaos-seed,
  // exercising the daemon's hardening paths end to end.
  const bool chaos = flags.GetBool("chaos").value_or(false);
  FaultPlan fault_plan;
  if (chaos) {
    FaultSpec spec;
    spec.telemetry_dropout_rate = 0.02;
    spec.telemetry_nan_rate = 0.01;
    spec.telemetry_stale_rate = 0.008;
    spec.telemetry_spike_rate = 0.008;
    spec.msr_transient_rate = 0.015;
    spec.msr_core_fault_rate = 0.008;
    spec.crash_rate = 0.008;
    const std::uint64_t chaos_seed = static_cast<std::uint64_t>(
        flags.GetInt("chaos-seed").value_or(1));
    fault_plan = FaultPlan::Generate(spec, ticks, Rng(chaos_seed));
    LIMONCELLO_LOG_INFO(
        "chaos mode: seed %llu -> %zu telemetry faults, %zu MSR faults, "
        "%zu crashes scheduled",
        static_cast<unsigned long long>(chaos_seed),
        fault_plan.telemetry_faults().size(), fault_plan.msr_faults().size(),
        fault_plan.crashes().size());
  }

  // A machine under bursty diurnal load; its daemon is the one we run.
  MachineModel machine(PlatformConfig::Platform1(),
                       DeploymentMode::kHardLimoncello, config, Rng(42),
                       chaos ? &fault_plan : nullptr);
  const auto services = ServiceSpec::FleetArchetypes();
  for (int i = 0; i < 5; ++i) {
    MachineModel::Task task;
    task.service_index = i;
    task.spec = &services[static_cast<std::size_t>(i)];
    task.share = 1.0;
    machine.AddTask(task);
  }
  LoadProcess::Options lp;
  lp.diurnal_period_ns = (ticks / 2) * kNsPerSec;
  lp.burst_probability = 0.03;
  std::vector<std::unique_ptr<LoadProcess>> loads;
  for (std::size_t s = 0; s < services.size(); ++s) {
    loads.push_back(std::make_unique<LoadProcess>(lp, Rng(9).Fork(s)));
  }

  LIMONCELLO_LOG_INFO(
      "sim mode: %d ticks, thresholds %.0f%%/%.0f%%, sustain %lld s",
      ticks, 100.0 * config.lower_threshold,
      100.0 * config.upper_threshold,
      static_cast<long long>(config.sustain_duration_ns / kNsPerSec));

  std::vector<double> factors(services.size(), 1.0);
  bool last_state = true;
  bool last_down = false;
  for (int t = 0; t < ticks; ++t) {
    if (g_shutdown_signal != 0) {
      LIMONCELLO_LOG_INFO("signal %d: stopping at tick %d",
                          static_cast<int>(g_shutdown_signal), t);
      break;
    }
    const SimTimeNs now = static_cast<SimTimeNs>(t) * config.tick_period_ns;
    for (std::size_t s = 0; s < services.size(); ++s) {
      factors[s] = loads[s]->Tick(now);
    }
    const auto r = machine.Tick(now, factors);
    if (r.down != last_down) {
      LIMONCELLO_LOG_INFO("t=%4d s  machine %s", t,
                          r.down ? "DOWN (crash)" : "rebooted");
      last_down = r.down;
    }
    if (r.prefetchers_on != last_state) {
      LIMONCELLO_LOG_INFO("t=%4d s  prefetchers -> %s", t,
                          r.prefetchers_on ? "ON" : "OFF");
      last_state = r.prefetchers_on;
    }
    LIMONCELLO_LOG_DEBUG(
        "t=%4d s  bw=%6.1f GB/s (util %5.1f%%)  latency=%6.1f ns  pf=%s",
        t, r.bandwidth_gbps, 100.0 * r.bandwidth_utilization, r.latency_ns,
        r.prefetchers_on ? "on" : "off");
  }
  const LimoncelloDaemon* daemon = machine.daemon();
  PrintDaemonSummary(daemon->stats());
  if (machine.injector() != nullptr) {
    const FaultInjector::Stats& injected = machine.injector()->stats();
    const MachineModel::FaultRecovery& recovery = machine.fault_recovery();
    LIMONCELLO_LOG_INFO(
        "chaos: injected %llu telemetry / %llu MSR-write faults, "
        "%llu crashes (%llu reboots); daemon saw %llu invalid + %llu "
        "stale samples, %llu actuation failures, detected %llu reboots",
        static_cast<unsigned long long>(injected.telemetry_faults),
        static_cast<unsigned long long>(injected.msr_write_faults),
        static_cast<unsigned long long>(injected.crashes),
        static_cast<unsigned long long>(injected.reboots),
        static_cast<unsigned long long>(daemon->stats().invalid_samples),
        static_cast<unsigned long long>(daemon->stats().stale_samples),
        static_cast<unsigned long long>(daemon->stats().actuation_failures),
        static_cast<unsigned long long>(daemon->stats().reboots_detected));
    LIMONCELLO_LOG_INFO(
        "chaos: %llu down ticks, %llu diverged ticks over %llu episodes "
        "(max %llu ticks to reconverge)",
        static_cast<unsigned long long>(recovery.down_ticks),
        static_cast<unsigned long long>(recovery.diverged_ticks),
        static_cast<unsigned long long>(recovery.reconverge_events),
        static_cast<unsigned long long>(recovery.max_reconverge_ticks));
  }
  return 0;
}

// Multi-endpoint sim: one ControlPlane managing --endpoints simulated
// machines over the framed wire protocol, with optional transport chaos.
// The single-socket path (--endpoints=1) never enters here — it stays on
// RunSim bit for bit.
int RunControlSim(const FlagParser& flags) {
  const int ticks = static_cast<int>(flags.GetInt("ticks").value_or(240));
  const int num_endpoints =
      static_cast<int>(flags.GetInt("endpoints").value_or(1));
  const ControllerConfig config = ConfigFromFlags(flags);
  if (!ValidateConfigOrLog(config)) return 2;

  ControlPlaneOptions options;
  options.num_endpoints = num_endpoints;
  options.num_shards = static_cast<int>(
      flags.GetInt("shards").value_or(std::min(num_endpoints, 8)));
  options.config = config;
  const int samples_per_batch =
      static_cast<int>(flags.GetInt("samples-per-batch").value_or(4));
  if (options.num_shards < 1 || samples_per_batch < 1 ||
      samples_per_batch > static_cast<int>(TelemetryBatch::kMaxSamples)) {
    LIMONCELLO_LOG_ERROR(
        "--shards must be >= 1 and --samples-per-batch in [1, %u]",
        TelemetryBatch::kMaxSamples);
    return 2;
  }

  // The endpoint fleet: diurnal + bursty utilization, forked per
  // endpoint from one seed so the run reproduces bit for bit.
  const Rng root(42);
  std::vector<std::unique_ptr<SimulatedEndpoint>> endpoints;
  endpoints.reserve(static_cast<std::size_t>(num_endpoints));
  for (int i = 0; i < num_endpoints; ++i) {
    SimulatedEndpoint::Options eo;
    eo.endpoint_id = static_cast<std::uint32_t>(i);
    eo.samples_per_batch = samples_per_batch;
    eo.diurnal_period_ticks = std::max(2, ticks / 2);
    endpoints.push_back(std::make_unique<SimulatedEndpoint>(
        eo, root.Fork(static_cast<std::uint64_t>(i))));
  }

  ControlPlane plane(options, [&endpoints](std::uint32_t id, bool enable) {
    return endpoints[id]->Actuate(enable);
  });

  // Optional chaos: per-endpoint transport fault schedules (drop,
  // reorder, duplicate, truncate, stale) replayed on each wire.
  const bool chaos = flags.GetBool("chaos").value_or(false);
  std::vector<FaultPlan> plans;
  if (chaos) {
    FaultSpec spec;
    spec.transport_drop_rate = 0.02;
    spec.transport_reorder_rate = 0.01;
    spec.transport_duplicate_rate = 0.01;
    spec.transport_truncate_rate = 0.01;
    spec.transport_stale_rate = 0.01;
    const std::uint64_t chaos_seed = static_cast<std::uint64_t>(
        flags.GetInt("chaos-seed").value_or(1));
    const Rng chaos_root(chaos_seed);
    plans.reserve(static_cast<std::size_t>(num_endpoints));
    for (int i = 0; i < num_endpoints; ++i) {
      plans.push_back(FaultPlan::Generate(
          spec, ticks, chaos_root.Fork(static_cast<std::uint64_t>(i))));
    }
  }
  std::uint64_t now_ns = 0;
  std::vector<std::unique_ptr<ChaosTransport>> wires;
  wires.reserve(static_cast<std::size_t>(num_endpoints));
  for (int i = 0; i < num_endpoints; ++i) {
    wires.push_back(std::make_unique<ChaosTransport>(
        chaos ? &plans[static_cast<std::size_t>(i)] : nullptr,
        [&plane, &now_ns](const unsigned char* data, std::size_t size) {
          (void)plane.IngestFrame(data, size, now_ns);
        }));
  }

  // Optional per-endpoint journal: warm-restart the fleet's committed
  // decisions, journal dirty endpoints each tick, snapshot on exit.
  std::unique_ptr<EndpointStateJournal> journal;
  const auto state_file = flags.GetString("state-file");
  if (state_file.has_value()) {
    const EndpointRecoveryResult recovered =
        RecoverEndpointStates(*state_file, &plane);
    LIMONCELLO_LOG_INFO(
        "endpoint journal %s: %d endpoint(s) warm-restored, %d rejected "
        "(%llu torn, %llu corrupt record(s) tolerated)",
        state_file->c_str(), recovered.adopted, recovered.rejected,
        static_cast<unsigned long long>(recovered.replay.torn_records),
        static_cast<unsigned long long>(recovered.replay.corrupt_records));
    EndpointStateJournal::Options jo;
    jo.path = *state_file;
    journal = std::make_unique<EndpointStateJournal>(jo);
  }

  LIMONCELLO_LOG_INFO(
      "control-plane mode: %d endpoints over %d shard(s), %d ticks, "
      "batch of %d, thresholds %.0f%%/%.0f%%%s",
      num_endpoints, options.num_shards, ticks, samples_per_batch,
      100.0 * config.lower_threshold, 100.0 * config.upper_threshold,
      chaos ? ", transport chaos on" : "");

  std::array<unsigned char, kMaxTelemetryFrameBytes> frame;
  std::vector<EndpointPersistentState> dirty;
  for (int t = 0; t < ticks; ++t) {
    if (g_shutdown_signal != 0) {
      LIMONCELLO_LOG_INFO("signal %d: stopping at tick %d",
                          static_cast<int>(g_shutdown_signal), t);
      break;
    }
    now_ns = static_cast<std::uint64_t>(t) *
             static_cast<std::uint64_t>(config.tick_period_ns);
    for (int i = 0; i < num_endpoints; ++i) {
      const std::size_t size = endpoints[static_cast<std::size_t>(i)]->Tick(
          frame.data());
      if (size > 0) {
        wires[static_cast<std::size_t>(i)]->Send(frame.data(), size);
      }
    }
    plane.DrainAll(now_ns);
    plane.AdvanceTick();
    if (journal != nullptr) {
      dirty.clear();
      plane.CollectDirtyEndpoints(&dirty);
      for (const EndpointPersistentState& record : dirty) {
        (void)journal->Append(record);
      }
    }
  }
  for (auto& wire : wires) wire->Flush();
  plane.DrainAll(now_ns);
  if (journal != nullptr) {
    if (journal->WriteSnapshot(plane.ExportAllEndpoints())) {
      LIMONCELLO_LOG_INFO("flushed endpoint snapshot to %s",
                          journal->path().c_str());
    } else {
      LIMONCELLO_LOG_WARN("failed to flush endpoint snapshot to %s",
                          journal->path().c_str());
    }
  }

  const ControlPlane::Stats stats = plane.SnapshotStats();
  LIMONCELLO_LOG_INFO(
      "summary: %llu ticks, %llu frames ingested (%llu shed, %llu "
      "rejected, %llu backpressure signals), %llu decoded (%llu decode "
      "failures, %llu sequence rejects), %llu samples",
      static_cast<unsigned long long>(plane.tick()),
      static_cast<unsigned long long>(stats.frames_ingested),
      static_cast<unsigned long long>(stats.frames_shed),
      static_cast<unsigned long long>(stats.frames_rejected),
      static_cast<unsigned long long>(stats.backpressure_signals),
      static_cast<unsigned long long>(stats.frames_decoded),
      static_cast<unsigned long long>(stats.decode_failures),
      static_cast<unsigned long long>(stats.sequence_rejects),
      static_cast<unsigned long long>(stats.samples_accepted));
  LIMONCELLO_LOG_INFO(
      "summary: %llu disables, %llu enables, %llu actuation failures, "
      "%llu command overflows, %llu stale-endpoint fail-safes, %llu "
      "warm restores",
      static_cast<unsigned long long>(stats.disables),
      static_cast<unsigned long long>(stats.enables),
      static_cast<unsigned long long>(stats.actuation_failures),
      static_cast<unsigned long long>(stats.command_overflows),
      static_cast<unsigned long long>(stats.stale_endpoint_failsafes),
      static_cast<unsigned long long>(stats.warm_restores));
  if (chaos) {
    ChaosTransport::Stats wire_totals;
    for (const auto& wire : wires) {
      const ChaosTransport::Stats& s = wire->stats();
      wire_totals.sent += s.sent.value();
      wire_totals.delivered += s.delivered.value();
      wire_totals.dropped += s.dropped.value();
      wire_totals.reordered += s.reordered.value();
      wire_totals.duplicated += s.duplicated.value();
      wire_totals.truncated += s.truncated.value();
      wire_totals.staled += s.staled.value();
    }
    LIMONCELLO_LOG_INFO(
        "chaos: %llu frames sent -> %llu delivered (%llu dropped, %llu "
        "reordered, %llu duplicated, %llu truncated, %llu stale "
        "re-deliveries)",
        static_cast<unsigned long long>(wire_totals.sent),
        static_cast<unsigned long long>(wire_totals.delivered),
        static_cast<unsigned long long>(wire_totals.dropped),
        static_cast<unsigned long long>(wire_totals.reordered),
        static_cast<unsigned long long>(wire_totals.duplicated),
        static_cast<unsigned long long>(wire_totals.truncated),
        static_cast<unsigned long long>(wire_totals.staled));
  }
  return 0;
}

// Socket mode: the same ControlPlane as RunControlSim, but fed by real
// exporter processes over a UNIX or TCP listener instead of in-process
// function calls. The in-process --endpoints path above is untouched —
// it stays bit-identical — while this loop trades determinism for a
// genuine process boundary: wall-clock ticks, kill -9-able peers, and
// the journal + staleness fail-safe healing around both.
int RunListen(const FlagParser& flags) {
  const std::string listen_text = flags.GetString("listen").value_or("");
  const SocketAddress address = ParseSocketAddress(listen_text);
  if (!address.valid()) {
    LIMONCELLO_LOG_ERROR(
        "--listen=%s is not a socket path or host:port address",
        listen_text.c_str());
    return 2;
  }
  const int num_endpoints =
      static_cast<int>(flags.GetInt("endpoints").value_or(8));
  if (num_endpoints < 1) {
    LIMONCELLO_LOG_ERROR("--listen needs --endpoints >= 1");
    return 2;
  }
  ControllerConfig config = ConfigFromFlags(flags);
  // Socket runs are paced by the wall clock; sub-second ticks keep the
  // kill-storm reconvergence window short enough for CI.
  const long long tick_ms = flags.GetInt("tick-ms").value_or(0);
  if (tick_ms > 0) {
    config.tick_period_ns = tick_ms * 1000 * 1000;
    config.sustain_duration_ns = std::max<SimTimeNs>(
        config.sustain_duration_ns, 2 * config.tick_period_ns);
  }
  if (!ValidateConfigOrLog(config)) return 2;

  ControlPlaneOptions options;
  options.num_endpoints = num_endpoints;
  options.num_shards = static_cast<int>(
      flags.GetInt("shards").value_or(std::min(num_endpoints, 8)));
  options.config = config;
  if (options.num_shards < 1) {
    LIMONCELLO_LOG_ERROR("--shards must be >= 1");
    return 2;
  }

  SocketListener::Options listener_options;
  listener_options.address = address;
  SocketListener listener(listener_options);
  // The plane actuates through the listener's learned endpoint routes;
  // a missing route or slow consumer reports failure into the plane's
  // capped-exponential retry.
  ControlPlane plane(options, [&listener](std::uint32_t id, bool enable) {
    return listener.SendActuation(id, enable);
  });
  listener.BindPlane(&plane);

  std::unique_ptr<EndpointStateJournal> journal;
  const auto state_file = flags.GetString("state-file");
  if (state_file.has_value()) {
    const EndpointRecoveryResult recovered =
        RecoverEndpointStates(*state_file, &plane);
    LIMONCELLO_LOG_INFO(
        "endpoint journal %s: %d endpoint(s) warm-restored, %d rejected "
        "(%llu torn, %llu corrupt record(s) tolerated)",
        state_file->c_str(), recovered.adopted, recovered.rejected,
        static_cast<unsigned long long>(recovered.replay.torn_records),
        static_cast<unsigned long long>(recovered.replay.corrupt_records));
    EndpointStateJournal::Options jo;
    jo.path = *state_file;
    journal = std::make_unique<EndpointStateJournal>(jo);
  }

  if (!listener.Start()) {
    LIMONCELLO_LOG_ERROR("cannot listen on %s: %s", listen_text.c_str(),
                         std::strerror(errno));
    return 3;
  }
  LIMONCELLO_LOG_INFO(
      "listen mode: %s (%s), %d endpoints over %d shard(s), tick %lld ms%s",
      listen_text.c_str(),
      address.kind == SocketAddress::Kind::kUnix ? "unix" : "tcp",
      num_endpoints, options.num_shards,
      static_cast<long long>(config.tick_period_ns / 1000000),
      journal != nullptr ? ", journaled" : "");

  using Clock = std::chrono::steady_clock;
  const auto tick_period =
      std::chrono::nanoseconds(static_cast<long long>(config.tick_period_ns));
  const auto started = Clock::now();
  auto next_tick = started + tick_period;
  const long long max_ticks = flags.GetInt("ticks").value_or(0);
  long long ticks_run = 0;
  std::vector<EndpointPersistentState> dirty;
  auto now_ns = [&started]() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             started)
            .count());
  };
  while (g_shutdown_signal == 0 &&
         (max_ticks == 0 || ticks_run < max_ticks)) {
    const auto now = Clock::now();
    int timeout_ms = 0;
    if (now < next_tick) {
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(next_tick -
                                                                now)
              .count() +
          1);
    }
    if (listener.PollOnce(timeout_ms, now_ns()) < 0) {
      LIMONCELLO_LOG_ERROR("listener socket died; shutting down");
      break;
    }
    if (Clock::now() >= next_tick) {
      plane.DrainAll(now_ns());
      plane.AdvanceTick();
      if (journal != nullptr) {
        dirty.clear();
        plane.CollectDirtyEndpoints(&dirty);
        for (const EndpointPersistentState& record : dirty) {
          (void)journal->Append(record);
        }
      }
      ++ticks_run;
      next_tick += tick_period;
      // A long poll stall (debugger, VM pause) must not cause a tick
      // sprint that instantly trips every staleness timer.
      if (Clock::now() > next_tick + 10 * tick_period) {
        next_tick = Clock::now() + tick_period;
      }
    }
  }
  if (g_shutdown_signal != 0) {
    LIMONCELLO_LOG_INFO("signal %d: stopping after %lld tick(s)",
                        static_cast<int>(g_shutdown_signal), ticks_run);
  }
  plane.DrainAll(now_ns());
  if (journal != nullptr) {
    if (journal->WriteSnapshot(plane.ExportAllEndpoints())) {
      LIMONCELLO_LOG_INFO("flushed endpoint snapshot to %s",
                          journal->path().c_str());
    } else {
      LIMONCELLO_LOG_WARN("failed to flush endpoint snapshot to %s",
                          journal->path().c_str());
    }
  }

  // Reconvergence banner: an endpoint is converged when it is out of
  // fail-safe and its last accepted batch is fresher than the staleness
  // window. The socket smoke test greps this line.
  int converged = 0;
  for (int i = 0; i < num_endpoints; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    const EndpointPersistentState state = plane.ExportEndpoint(id);
    const bool fresh =
        state.have_sequence &&
        plane.tick() - state.last_update_tick <=
            static_cast<std::uint64_t>(
                std::max(1, config.max_missed_samples));
    if (fresh && !plane.EndpointInFailsafe(id)) ++converged;
  }
  LIMONCELLO_LOG_INFO("reconverged %d/%d endpoints", converged,
                      num_endpoints);

  const ControlPlane::Stats stats = plane.SnapshotStats();
  const SocketListener::Stats wire = listener.SnapshotStats();
  LIMONCELLO_LOG_INFO(
      "summary: %llu ticks, %llu frames ingested (%llu shed, %llu "
      "rejected), %llu decoded (%llu decode failures, %llu sequence "
      "rejects), %llu samples, %llu stale-endpoint fail-safes, %llu "
      "warm restores",
      static_cast<unsigned long long>(plane.tick()),
      static_cast<unsigned long long>(stats.frames_ingested),
      static_cast<unsigned long long>(stats.frames_shed),
      static_cast<unsigned long long>(stats.frames_rejected),
      static_cast<unsigned long long>(stats.frames_decoded),
      static_cast<unsigned long long>(stats.decode_failures),
      static_cast<unsigned long long>(stats.sequence_rejects),
      static_cast<unsigned long long>(stats.samples_accepted),
      static_cast<unsigned long long>(stats.stale_endpoint_failsafes),
      static_cast<unsigned long long>(stats.warm_restores));
  LIMONCELLO_LOG_INFO(
      "transport: %llu accepts, %llu disconnects, %llu bytes in, %llu "
      "frames (%llu resync bytes, %llu corrupt, %llu oversize, %llu "
      "partial-frame drops), %llu actuations queued (%llu partial "
      "flushes, %llu no-route, %llu slow-consumer)",
      static_cast<unsigned long long>(wire.accepts),
      static_cast<unsigned long long>(wire.disconnects),
      static_cast<unsigned long long>(wire.bytes_received),
      static_cast<unsigned long long>(wire.frames_ingested),
      static_cast<unsigned long long>(wire.resync_bytes),
      static_cast<unsigned long long>(wire.corrupt_frames),
      static_cast<unsigned long long>(wire.oversize_rejects),
      static_cast<unsigned long long>(wire.partial_frame_drops),
      static_cast<unsigned long long>(wire.actuations_queued),
      static_cast<unsigned long long>(wire.actuation_partial_flushes),
      static_cast<unsigned long long>(wire.actuation_no_route),
      static_cast<unsigned long long>(wire.actuation_slow_consumer));
  return 0;
}

int RunReal(const FlagParser& flags) {
  const auto telemetry_path = flags.GetString("telemetry-file");
  const auto perf_csv_path = flags.GetString("perf-csv");
  if (!telemetry_path.has_value() && !perf_csv_path.has_value()) {
    LIMONCELLO_LOG_ERROR(
        "--mode=real requires --telemetry-file=<path> or "
        "--perf-csv=<path>");
    return 2;
  }
  const bool dry_run = flags.GetBool("dry-run").value_or(false);
  const ControllerConfig config = ConfigFromFlags(flags);
  if (!ValidateConfigOrLog(config)) return 2;

  LinuxMsrDevice device;
  if (!device.available() && !dry_run) {
    LIMONCELLO_LOG_ERROR(
        "no /dev/cpu/*/msr access (need the msr module and root); "
        "re-run with --dry-run to test the control loop");
    return 3;
  }
  const int cpus = device.available() ? device.num_cpus() : 1;
  PrefetchControl control(&device, PlatformMsrLayout::kIntelStyle, 0,
                          std::max(1, cpus));
  MsrPrefetchActuator msr_actuator(&control, std::max(1, cpus));
  LoggingActuator actuator(&msr_actuator, dry_run);

  std::unique_ptr<UtilizationSource> telemetry;
  std::string telemetry_desc;
  if (perf_csv_path.has_value()) {
    PerfCsvOptions perf_options;
    perf_options.saturation_gbps =
        flags.GetDouble("saturation-gbps").value_or(100.0);
    perf_options.interval_ns = config.tick_period_ns;
    telemetry = std::make_unique<PerfCsvUtilizationSource>(*perf_csv_path,
                                                           perf_options);
    telemetry_desc = "perf csv " + *perf_csv_path;
  } else {
    telemetry = std::make_unique<FileUtilizationSource>(*telemetry_path);
    telemetry_desc = "sample file " + *telemetry_path;
  }
  LimoncelloDaemon daemon(config, telemetry.get(), &actuator);

  // Crash-safe state: with --state-file the daemon journals its FSM +
  // retry state and warm-restarts from the newest valid record,
  // reconciling the recovered intent against the hardware before the
  // first tick (DESIGN.md §11).
  std::unique_ptr<RecoveryManager> recovery;
  const auto state_file = flags.GetString("state-file");
  if (state_file.has_value()) {
    RecoveryOptions recovery_options;
    recovery_options.state_file = *state_file;
    recovery_options.snapshot_period_ticks = static_cast<int>(
        flags.GetInt("snapshot-period-ticks").value_or(8));
    if (recovery_options.snapshot_period_ticks < 1) {
      LIMONCELLO_LOG_ERROR("--snapshot-period-ticks must be >= 1");
      return 2;
    }
    recovery = std::make_unique<RecoveryManager>(recovery_options, &daemon);
    const RecoveryResult result = recovery->RecoverAndReconcile();
    const JournalReplay& replay = result.replay;
    if (result.warm) {
      LIMONCELLO_LOG_INFO(
          "warm restart from %s: restored %s @ tick %llu "
          "(prefetchers %s, %llu toggles); hardware %s",
          state_file->c_str(),
          ControllerStateName(daemon.controller().state()),
          static_cast<unsigned long long>(daemon.stats().ticks),
          daemon.controller().PrefetchersShouldBeEnabled() ? "on" : "off",
          static_cast<unsigned long long>(
              daemon.controller().toggle_count()),
          ReconcileStatusName(result.reconcile));
    } else {
      LIMONCELLO_LOG_INFO(
          "cold start (%s): %s; hardware %s", state_file->c_str(),
          !replay.file_found ? "no journal"
          : result.rejected_state
              ? "journal record failed state validation"
              : "journal held no valid record",
          ReconcileStatusName(result.reconcile));
    }
    if (!replay.Clean()) {
      LIMONCELLO_LOG_WARN(
          "journal damage tolerated: %llu torn, %llu corrupt, %llu "
          "version-mismatched record(s); kept %llu valid",
          static_cast<unsigned long long>(replay.torn_records),
          static_cast<unsigned long long>(replay.corrupt_records),
          static_cast<unsigned long long>(replay.version_mismatches),
          static_cast<unsigned long long>(replay.valid_records));
    }
  }

  const int ticks = static_cast<int>(flags.GetInt("ticks").value_or(0));
  LIMONCELLO_LOG_INFO(
      "real mode (%s): %d cpus, telemetry from %s, %s",
      dry_run ? "dry run" : "live", cpus, telemetry_desc.c_str(),
      ticks > 0 ? "bounded run" : "running until interrupted");

  // NOTE: this loop uses wall-clock sleeps; a bounded --ticks run is
  // provided for testing. SIGTERM/SIGINT exit it cleanly: the handler
  // interrupts the nanosleep (no SA_RESTART) and the loop breaks at the
  // next check, flushing a final journal snapshot on the way out.
  for (int t = 0; ticks == 0 || t < ticks; ++t) {
    if (g_shutdown_signal != 0) {
      LIMONCELLO_LOG_INFO("signal %d: stopping at tick %d",
                          static_cast<int>(g_shutdown_signal), t);
      break;
    }
    const auto record =
        daemon.RunTick(static_cast<SimTimeNs>(t) * config.tick_period_ns);
    if (recovery != nullptr) recovery->OnTickComplete(record);
    if (record.sample_ok) {
      LIMONCELLO_LOG_DEBUG("t=%d util=%.1f%% state=%s", t,
                           100.0 * record.utilization,
                           ControllerStateName(record.state));
    } else {
      LIMONCELLO_LOG_WARN("t=%d telemetry sample missing", t);
    }
#ifndef LIMONCELLO_NO_SLEEP
    // Sleep one tick period between samples.
    const auto seconds =
        static_cast<unsigned>(config.tick_period_ns / kNsPerSec);
    if (seconds > 0 && !(ticks > 0 && t + 1 >= ticks) &&
        g_shutdown_signal == 0) {
      // std::this_thread would drag in <thread>; keep it POSIX.
      struct timespec ts = {static_cast<time_t>(seconds), 0};
      nanosleep(&ts, nullptr);
    }
#endif
  }
  if (recovery != nullptr) {
    if (recovery->FlushSnapshot()) {
      LIMONCELLO_LOG_INFO("flushed final state snapshot to %s",
                          recovery->journal().path().c_str());
    } else {
      LIMONCELLO_LOG_WARN("failed to flush final state snapshot to %s",
                          recovery->journal().path().c_str());
    }
  }
  PrintDaemonSummary(daemon.stats());
  return 0;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.Define("mode", "sim (default) or real")
      .Define("ticks", "number of controller ticks (0 = forever in real mode)")
      .Define("upper", "upper threshold as a fraction of saturation (0.80)")
      .Define("lower", "lower threshold as a fraction of saturation (0.60)")
      .Define("sustain-sec", "sustain duration in seconds (5)")
      .Define("tick-sec", "telemetry period in seconds (1)")
      .Define("max-missed-samples", "missed samples before fail-safe (5)")
      .Define("chaos",
              "sim mode: inject a deterministic fault load (telemetry "
              "corruption, MSR failures, crash/reboot; with "
              "--endpoints>1, transport faults on every wire)")
      .Define("chaos-seed", "sim mode with --chaos: fault schedule seed (1)")
      .Define("endpoints",
              "sim mode: machines managed by one control plane (1 = the "
              "classic single-socket daemon loop)")
      .Define("listen",
              "run the control plane behind a socket listener: a UNIX "
              "socket path or host:port; exporters connect with "
              "limoncello-exporter (see DESIGN.md section 16)")
      .Define("tick-ms",
              "with --listen: control tick period in milliseconds "
              "(overrides --tick-sec; sub-second ticks keep kill-storm "
              "reconvergence windows short)")
      .Define("shards",
              "sim mode with --endpoints>1: control-plane shards "
              "(default min(endpoints, 8))")
      .Define("samples-per-batch",
              "sim mode with --endpoints>1: samples per telemetry batch "
              "frame (4)")
      .Define("telemetry-file", "real mode: file with utilization samples")
      .Define("state-file",
              "CRC-protected state journal enabling warm restart: the "
              "daemon journal in real mode, the per-endpoint journal "
              "with --endpoints>1 (see DESIGN.md sections 11 and 15)")
      .Define("snapshot-period-ticks",
              "real mode with --state-file: journal cadence on quiet "
              "ticks (8; actuations always journal)")
      .Define("perf-csv", "real mode: perf stat -I -x, output file")
      .Define("saturation-gbps",
              "real mode with --perf-csv: socket saturation bandwidth (100)")
      .Define("dry-run", "real mode: log MSR writes without performing them")
      .Define("threads",
              "worker threads for fleet simulations (0 = auto; overrides "
              "LIMONCELLO_THREADS)")
      .Define("verbose", "log every tick")
      .Define("help", "show this help");
  if (!flags.Parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", flags.error().c_str(),
                 flags.Help(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::fprintf(stdout, "%s", flags.Help(argv[0]).c_str());
    return 0;
  }
  if (flags.GetBool("verbose").value_or(false)) {
    SetLogLevel(LogLevel::kDebug);
  }
  InstallShutdownHandlers();
  // Process-wide default thread count: any FleetSimulator created with
  // num_threads = 0 (auto) picks this up ahead of the environment.
  SetDefaultThreadCount(
      static_cast<int>(flags.GetInt("threads").value_or(0)));
  const std::string mode = flags.GetString("mode").value_or("sim");
  if (flags.GetString("listen").has_value()) return RunListen(flags);
  const long long endpoints = flags.GetInt("endpoints").value_or(1);
  if (mode == "sim" && endpoints > 1) return RunControlSim(flags);
  if (mode == "sim") return RunSim(flags);
  if (mode == "real") return RunReal(flags);
  LIMONCELLO_LOG_ERROR("unknown --mode=%s (want sim or real)",
                       mode.c_str());
  return 2;
}

}  // namespace
}  // namespace limoncello

int main(int argc, char** argv) { return limoncello::Main(argc, argv); }
