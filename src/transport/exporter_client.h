// The exporter side of the socket transport: one SimulatedEndpoint
// shipped over a real connection.
//
// An ExporterClient owns the machine-side loop of the control protocol:
// connect to the plane, tick the endpoint, send each completed
// telemetry frame, apply any actuation frames the plane pushes back —
// and survive the plane dying at any point in that cycle. Connection
// loss (refused, reset, EOF mid-stream) never propagates as an error:
// the client closes, backs off with capped exponential delay + jitter
// (so a thousand exporters whose plane restarts do not reconnect in
// lockstep), redials, and resumes. Re-registration is implicit — the
// first telemetry frame on the new connection rebinds the endpoint's
// actuation route on the listener.
//
// A restarted exporter *process* begins its sequence numbers at 1
// again; the plane's staleness fail-safe forgets the old watermark
// after max_missed_samples silent ticks, which bounds how long the
// fresh stream is rejected. The client does not try to be clever about
// this — surviving it is the plane's contract, and the kill-storm gate
// proves it holds.
#ifndef LIMONCELLO_TRANSPORT_EXPORTER_CLIENT_H_
#define LIMONCELLO_TRANSPORT_EXPORTER_CLIENT_H_

#include <csignal>
#include <cstdint>

#include "control/endpoint_sim.h"
#include "stats/saturating.h"
#include "transport/frame_reassembler.h"
#include "transport/socket_addr.h"
#include "util/rng.h"

namespace limoncello {

class ExporterClient {
 public:
  struct Options {
    SocketAddress address;
    SimulatedEndpoint::Options endpoint;
    std::uint64_t seed = 1;
    // Wall-clock pacing between endpoint ticks. 0 ticks as fast as the
    // socket accepts (bench / soak mode).
    int tick_period_ms = 10;
    // Reconnect backoff: initial delay doubles per consecutive failure
    // up to the cap, each delay jittered uniformly in [50%, 100%].
    int initial_backoff_ms = 10;
    int max_backoff_ms = 200;
  };

  struct Stats {
    SatCounter connects;
    SatCounter connect_failures;
    SatCounter disconnects;
    SatCounter frames_sent;
    SatCounter send_failures;
    SatCounter actuations_applied;
    SatCounter actuations_ignored;  // valid frame for a different endpoint
  };

  explicit ExporterClient(const Options& options);
  ~ExporterClient();

  ExporterClient(const ExporterClient&) = delete;
  ExporterClient& operator=(const ExporterClient&) = delete;

  // Runs the connect/tick/send/apply loop until *stop becomes nonzero
  // (signal-handler safe) or `max_ticks` endpoint ticks have run
  // (0 = unbounded).
  void Run(const volatile std::sig_atomic_t* stop, std::uint64_t max_ticks);

  // Single-step form for tests: ensures a connection (one dial attempt,
  // no sleeping), runs one endpoint tick, pumps inbound actuation.
  // Returns true if connected at the end of the step.
  bool Step();

  const Stats& stats() const { return stats_; }
  const SimulatedEndpoint& endpoint() const { return endpoint_; }
  bool connected() const { return fd_ >= 0; }

 private:
  bool EnsureConnected();  // one attempt; false = caller should back off
  void Disconnect();
  void PumpActuation();  // nonblocking drain of plane -> exporter frames
  void TickOnce();
  int NextBackoffMs();

  // Sends a connection must survive before it clears the backoff
  // streak (see Disconnect for why connect(2) success is not enough).
  static constexpr int kHealthyConnFrames = 2;

  Options options_;
  SimulatedEndpoint endpoint_;
  Rng rng_;
  FrameReassembler reassembler_;
  int fd_ = -1;
  int consecutive_failures_ = 0;
  int conn_frames_sent_ = 0;  // successful sends on this connection
  Stats stats_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_TRANSPORT_EXPORTER_CLIENT_H_
