// The control plane's ingest front door: a poll(2) readiness loop over
// a listening socket and its accepted exporter connections.
//
// Design (DESIGN.md §16):
//
//   exporters ──connect──► listener ──frames──► ControlPlane::IngestFrame
//             ◄─actuation─          ◄─ActuateFn─
//
//   * Single-threaded by construction: the owner calls PollOnce() from
//     its control loop; accepts, reads, frame reassembly, ingest and
//     actuation flushes all happen on that one thread, so the listener
//     needs no locks of its own. (The plane's own sharded locking makes
//     ingest safe regardless.)
//   * Nonblocking everywhere: accept4(SOCK_NONBLOCK), EAGAIN-aware
//     reads and sends, EINTR retried at the syscall wrappers
//     (util/posix_io.h). The loop never stalls on one slow peer.
//   * Each connection owns a FrameReassembler, so frames split or
//     coalesced across reads — or torn by the flaky proxy — reassemble
//     independently per stream.
//   * Actuation routing is learned, not configured: a CRC-valid
//     telemetry frame binds its endpoint id to the connection it
//     arrived on. A rebind (exporter restarted and reconnected) re-
//     asserts the plane's current intent to the new connection, because
//     a fresh exporter process boots with hardware-default prefetcher
//     state and must be told what the plane last decided.
//   * The actuation path absorbs the three classic write-side failures:
//     SIGPIPE is never raised (MSG_NOSIGNAL), partial writes stay
//     buffered per connection and flush on POLLOUT, and a slow consumer
//     whose buffer is full causes the actuation to report failure —
//     feeding the plane's existing capped-exponential retry — instead
//     of blocking the loop.
#ifndef LIMONCELLO_TRANSPORT_SOCKET_LISTENER_H_
#define LIMONCELLO_TRANSPORT_SOCKET_LISTENER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "control/control_plane.h"
#include "stats/saturating.h"
#include "transport/frame_reassembler.h"
#include "transport/socket_addr.h"

struct pollfd;  // <poll.h>

namespace limoncello {

class SocketListener {
 public:
  struct Options {
    SocketAddress address;
    int backlog = 64;
    int max_connections = 512;
    std::size_t read_chunk_bytes = 4096;
    // Cap on buffered outbound actuation bytes per connection; beyond
    // it the consumer is slow and actuations fail into the plane's
    // retry machinery rather than growing memory.
    std::size_t out_buffer_bytes = 8192;
  };

  struct Stats {
    SatCounter accepts;
    SatCounter accept_overflows;   // connection table full
    SatCounter disconnects;
    SatCounter bytes_received;
    SatCounter frames_ingested;    // handed to ControlPlane::IngestFrame
    // Reassembly (summed over live and closed connections).
    SatCounter resync_bytes;
    SatCounter corrupt_frames;
    SatCounter oversize_rejects;
    SatCounter partial_frame_drops;  // EOF mid-frame (truncated final)
    // Actuation routing and delivery.
    SatCounter reroutes;             // endpoint bound to a new connection
    SatCounter intent_reasserts;     // intent pushed after a (re)bind
    SatCounter actuations_queued;
    SatCounter actuation_partial_flushes;
    SatCounter actuation_no_route;       // endpoint never seen / peer gone
    SatCounter actuation_slow_consumer;  // out buffer full, actuation failed
  };

  explicit SocketListener(const Options& options);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // The plane is bound after construction (its ActuateFn closes over
  // this listener, so the two reference each other). Must be called
  // before PollOnce.
  void BindPlane(ControlPlane* plane);

  // Binds + listens. Returns false with errno set on failure.
  bool Start();

  // One readiness cycle: waits up to timeout_ms (0 = nonblocking poll),
  // then accepts new connections, reads and ingests telemetry, and
  // flushes pending actuation bytes. Returns the number of descriptors
  // that had events, or -1 on a dead listener socket.
  int PollOnce(int timeout_ms, std::uint64_t now_ns);

  // ControlPlane ActuateFn target: encodes an actuation frame and
  // queues it to endpoint_id's connection. Returns false (plane will
  // retry with backoff) when the endpoint has no live route or its
  // connection is a slow consumer. Called with a shard lock held: never
  // calls back into the plane.
  bool SendActuation(std::uint32_t endpoint_id, bool enable);

  void Stop();

  // TCP only: the port actually bound (use port 0 to auto-assign in
  // tests). 0 for UNIX listeners.
  std::uint16_t bound_port() const { return bound_port_; }

  int connection_count() const { return live_connections_; }

  // Totals including reassembly counters of closed connections.
  Stats SnapshotStats() const;

 private:
  struct Connection;

  void Accept();
  void HandleReadable(int slot, std::uint64_t now_ns);
  void HandleWritable(int slot);
  void CloseConnection(int slot);
  // Routes frame bytes into the plane and maintains actuation routing.
  void DeliverFrame(int slot, const unsigned char* frame, std::size_t size,
                    std::uint64_t now_ns);
  bool QueueFrameBytes(Connection& conn, const unsigned char* frame,
                       std::size_t size);
  void FlushConnection(int slot);

  Options options_;
  ControlPlane* plane_ = nullptr;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  int live_connections_ = 0;
  std::vector<std::unique_ptr<Connection>> slots_;
  // endpoint id -> slot index, -1 when unrouted.
  std::vector<int> route_;
  std::vector<pollfd> pollfds_;
  std::vector<int> pollfd_slot_;  // parallel: slot of pollfds_[i], -1 = listener
  // Timestamp for frames delivered by the current read pass; the per-
  // connection sinks are bound once and read it from here instead of
  // being rebound (and reallocated) every read.
  std::uint64_t deliver_now_ns_ = 0;
  Stats stats_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_TRANSPORT_SOCKET_LISTENER_H_
