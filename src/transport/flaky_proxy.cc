#include "transport/flaky_proxy.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "control/telemetry_batch.h"
#include "util/check.h"
#include "util/posix_io.h"

namespace limoncello {

// One proxied exporter: the downstream socket it dialed us on, the
// upstream socket we dialed the plane on, and the chaos pipeline
// between them. The FaultPlan lives here so the ChaosTransport's
// pointer outlives every frame.
struct FlakyProxy::Pair {
  Pair(const FrameReassembler::Options& reassembly, FaultPlan fault_plan,
       ChaosTransport::DeliverFn deliver)
      : reassembler(reassembly),
        plan(std::move(fault_plan)),
        chaos(&plan, std::move(deliver)) {}

  int down_fd = -1;  // exporter side
  int up_fd = -1;    // plane side
  FrameReassembler reassembler;
  FaultPlan plan;
  ChaosTransport chaos;
  FrameReassembler::FrameSink sink;  // bound once at accept
};

FlakyProxy::FlakyProxy(const Options& options) : options_(options) {
  LIMONCELLO_CHECK_GT(options_.max_connections, 0);
  LIMONCELLO_CHECK_GT(options_.frames_per_plan, 0);
  slots_.resize(static_cast<std::size_t>(options_.max_connections));
}

FlakyProxy::~FlakyProxy() { Stop(); }

bool FlakyProxy::Start() {
  listen_fd_ = CreateListenSocket(options_.listen_address, 64);
  if (listen_fd_ < 0) return false;
  if (!SetNonBlocking(listen_fd_)) {
    Stop();
    return false;
  }
  if (options_.listen_address.kind == SocketAddress::Kind::kTcp) {
    sockaddr_in sin{};
    socklen_t len = sizeof(sin);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sin),
                      &len) == 0) {
      bound_port_ = ntohs(sin.sin_port);
    }
  }
  return true;
}

void FlakyProxy::Stop() {
  for (int slot = 0; slot < static_cast<int>(slots_.size()); ++slot) {
    Pair* pair = slots_[static_cast<std::size_t>(slot)].get();
    if (pair != nullptr && pair->down_fd >= 0) ClosePair(slot);
  }
  if (listen_fd_ >= 0) {
    (void)::close(listen_fd_);
    listen_fd_ = -1;
  }
}

int FlakyProxy::PollOnce(int timeout_ms) {
  if (listen_fd_ < 0) return -1;
  pollfds_.clear();
  pollfd_tag_.clear();
  pollfd listener_entry{};
  listener_entry.fd = listen_fd_;
  listener_entry.events = POLLIN;
  pollfds_.push_back(listener_entry);
  pollfd_tag_.push_back(-1);
  for (int slot = 0; slot < static_cast<int>(slots_.size()); ++slot) {
    Pair* pair = slots_[static_cast<std::size_t>(slot)].get();
    if (pair == nullptr || pair->down_fd < 0) continue;
    pollfd down{};
    down.fd = pair->down_fd;
    down.events = POLLIN;
    pollfds_.push_back(down);
    pollfd_tag_.push_back(slot << 1);
    pollfd up{};
    up.fd = pair->up_fd;
    up.events = POLLIN;
    pollfds_.push_back(up);
    pollfd_tag_.push_back(slot << 1 | 1);
  }

  int ready;
  for (;;) {
    ready = ::poll(pollfds_.data(),
                   static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (ready < 0 && errno == EINTR) return 0;  // let the owner re-check
    break;
  }
  if (ready <= 0) return 0;

  for (std::size_t i = 0; i < pollfds_.size(); ++i) {
    const short revents = pollfds_[i].revents;
    if (revents == 0) continue;
    const int tag = pollfd_tag_[i];
    if (tag < 0) {
      if (revents & POLLIN) Accept();
      continue;
    }
    const int slot = tag >> 1;
    Pair* pair = slots_[static_cast<std::size_t>(slot)].get();
    if (pair == nullptr || pair->down_fd < 0) continue;  // closed earlier
    if (tag & 1) {
      RelayUpstream(slot);
    } else {
      RelayDownstream(slot);
    }
  }
  return ready;
}

void FlakyProxy::Accept() {
  for (;;) {
    const int down = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (down < 0) {
      if (errno == EINTR) continue;
      return;
    }
    const int up = ConnectSocket(options_.upstream_address);
    if (up < 0) {
      // Plane down: refuse by closing, so the exporter's backoff path
      // sees the outage immediately instead of a black-holed stream.
      ++stats_.upstream_dial_failures;
      (void)::close(down);
      continue;
    }
    int slot = -1;
    for (int s = 0; s < static_cast<int>(slots_.size()); ++s) {
      Pair* pair = slots_[static_cast<std::size_t>(s)].get();
      if (pair == nullptr || pair->down_fd < 0) {
        slot = s;
        break;
      }
    }
    if (slot < 0) {
      (void)::close(down);
      (void)::close(up);
      continue;
    }
    FrameReassembler::Options reassembly;
    reassembly.magic = kTelemetryBatchMagic;
    reassembly.max_payload_bytes = kTelemetryBatchFixedPayloadBytes +
                                   8 * TelemetryBatch::kMaxSamples;
    reassembly.read_chunk_bytes = options_.read_chunk_bytes;
    // Every connection replays an independent, deterministic fault
    // schedule: seed x accept-ordinal. An exporter that reconnects gets
    // a fresh plan — chaos does not pause just because the victim
    // redialed.
    FaultPlan plan =
        FaultPlan::Generate(options_.spec, options_.frames_per_plan,
                            Rng(options_.seed).Fork(accepted_total_));
    ++accepted_total_;
    auto& entry = slots_[static_cast<std::size_t>(slot)];
    entry = std::make_unique<Pair>(
        reassembly, std::move(plan),
        [this, slot](const unsigned char* data, std::size_t size) {
          Pair* target = slots_[static_cast<std::size_t>(slot)].get();
          if (target == nullptr || target->up_fd < 0) return;
          if (!SendFully(target->up_fd, data, size)) ClosePair(slot);
        });
    entry->down_fd = down;
    entry->up_fd = up;
    entry->sink = [this, slot](const unsigned char* frame,
                               std::size_t size) {
      Pair* target = slots_[static_cast<std::size_t>(slot)].get();
      if (target == nullptr || target->down_fd < 0) return;
      target->chaos.Send(frame, size);
    };
    ++live_pairs_;
    ++stats_.accepts;
  }
}

void FlakyProxy::RelayDownstream(int slot) {
  Pair* pair = slots_[static_cast<std::size_t>(slot)].get();
  unsigned char chunk[8192];
  const std::size_t cap = options_.read_chunk_bytes < sizeof(chunk)
                              ? options_.read_chunk_bytes
                              : sizeof(chunk);
  const ssize_t n = ReadChunk(pair->down_fd, chunk, cap);
  if (n <= 0) {
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    ClosePair(slot);
    return;
  }
  (void)pair->reassembler.Ingest(chunk, static_cast<std::size_t>(n),
                                 pair->sink);
}

void FlakyProxy::RelayUpstream(int slot) {
  Pair* pair = slots_[static_cast<std::size_t>(slot)].get();
  unsigned char chunk[8192];
  const ssize_t n = ReadChunk(pair->up_fd, chunk, sizeof(chunk));
  if (n <= 0) {
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    ClosePair(slot);  // plane died: the exporter must see it too
    return;
  }
  // Actuation bytes relay verbatim; the chaos contract under test is
  // the telemetry ingest direction.
  if (!SendFully(pair->down_fd, chunk, static_cast<std::size_t>(n))) {
    ClosePair(slot);
    return;
  }
  stats_.actuation_bytes_relayed += static_cast<std::uint64_t>(n);
}

void FlakyProxy::ClosePair(int slot) {
  Pair* pair = slots_[static_cast<std::size_t>(slot)].get();
  if (pair == nullptr || pair->down_fd < 0) return;
  (void)::close(pair->down_fd);
  if (pair->up_fd >= 0) (void)::close(pair->up_fd);
  pair->down_fd = -1;
  pair->up_fd = -1;
  --live_pairs_;
  ++stats_.pairs_closed;
  const ChaosTransport::Stats& cs = pair->chaos.stats();
  stats_.frames_forwarded += cs.delivered;
  stats_.frames_dropped += cs.dropped;
  stats_.frames_reordered += cs.reordered;
  stats_.frames_duplicated += cs.duplicated;
  stats_.frames_truncated += cs.truncated;
  stats_.frames_staled += cs.staled;
  // The Pair object survives until its slot is recycled at accept:
  // ClosePair can fire from inside this pair's own chaos delivery while
  // Ingest is still walking the reassembly buffer.
}

FlakyProxy::Stats FlakyProxy::SnapshotStats() const {
  Stats merged = stats_;
  for (const auto& pair : slots_) {
    if (pair == nullptr || pair->down_fd < 0) continue;
    const ChaosTransport::Stats& cs = pair->chaos.stats();
    merged.frames_forwarded += cs.delivered;
    merged.frames_dropped += cs.dropped;
    merged.frames_reordered += cs.reordered;
    merged.frames_duplicated += cs.duplicated;
    merged.frames_truncated += cs.truncated;
    merged.frames_staled += cs.staled;
  }
  return merged;
}

}  // namespace limoncello
