// A chaos proxy for the control plane's socket transport.
//
// The flaky proxy sits on the wire between exporters and the plane and
// replays the PR 9 chaos-transport fault schedule against real byte
// streams: exporters connect to the proxy, the proxy dials the plane,
// and every telemetry frame crossing exporter → plane runs through a
// per-connection ChaosTransport seeded from a FaultPlan — dropped,
// reordered, duplicated, cut mid-payload, or re-delivered stale, on a
// genuine socket instead of an in-process function call. A truncated
// frame leaves the upstream TCP/UNIX stream torn exactly the way a real
// split write would, which is what the listener's byte-scan resync
// exists to survive.
//
// Faulting needs frame boundaries, so the exporter-side stream is
// reassembled (same FrameReassembler as the listener) before chaos and
// re-serialized after. The actuation direction (plane → exporter) is an
// unmodified byte shuttle: the chaos contract under test is telemetry
// ingest, and a faulted actuation channel would only re-test the same
// decode trust boundary from the other side.
//
// Connections are paired: either side dying closes both, so exporters
// observe a plane kill through the proxy exactly as they would
// directly, and redial through their normal backoff path.
#ifndef LIMONCELLO_TRANSPORT_FLAKY_PROXY_H_
#define LIMONCELLO_TRANSPORT_FLAKY_PROXY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_plan.h"
#include "faults/transport_chaos.h"
#include "stats/saturating.h"
#include "transport/frame_reassembler.h"
#include "transport/socket_addr.h"

struct pollfd;  // <poll.h>

namespace limoncello {

class FlakyProxy {
 public:
  struct Options {
    SocketAddress listen_address;    // exporters dial this
    SocketAddress upstream_address;  // the plane's listener
    // Transport fault rates; only the transport_* fields matter.
    FaultSpec spec;
    std::uint64_t seed = 1;
    // Frames per connection the fault schedule covers; past it the
    // wire runs clean (mirrors FaultPlan's quiet-tail convention).
    int frames_per_plan = 65536;
    int max_connections = 256;
    std::size_t read_chunk_bytes = 4096;
  };

  struct Stats {
    SatCounter accepts;
    SatCounter upstream_dial_failures;
    SatCounter pairs_closed;
    SatCounter frames_forwarded;   // chaos-surviving exporter frames
    SatCounter frames_dropped;
    SatCounter frames_reordered;
    SatCounter frames_duplicated;
    SatCounter frames_truncated;
    SatCounter frames_staled;
    SatCounter actuation_bytes_relayed;
  };

  explicit FlakyProxy(const Options& options);
  ~FlakyProxy();

  FlakyProxy(const FlakyProxy&) = delete;
  FlakyProxy& operator=(const FlakyProxy&) = delete;

  bool Start();
  // One readiness cycle over the listener and every pair; waits up to
  // timeout_ms. Returns descriptors with events, or -1 when the
  // listener is dead.
  int PollOnce(int timeout_ms);
  void Stop();

  std::uint16_t bound_port() const { return bound_port_; }
  int pair_count() const { return live_pairs_; }
  Stats SnapshotStats() const;

 private:
  struct Pair;

  void Accept();
  void RelayDownstream(int slot);  // exporter -> chaos -> plane
  void RelayUpstream(int slot);    // plane -> exporter, verbatim
  void ClosePair(int slot);

  Options options_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  int live_pairs_ = 0;
  std::uint64_t accepted_total_ = 0;  // seeds per-connection fault plans
  std::vector<std::unique_ptr<Pair>> slots_;
  std::vector<pollfd> pollfds_;
  // Parallel to pollfds_: (slot << 1) | is_upstream; -1 = listener.
  std::vector<int> pollfd_tag_;
  Stats stats_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_TRANSPORT_FLAKY_PROXY_H_
