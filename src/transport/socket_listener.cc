#include "transport/socket_listener.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "control/actuation_frame.h"
#include "control/telemetry_batch.h"
#include "util/check.h"
#include "util/posix_io.h"
#include "util/wire.h"

namespace limoncello {

// One accepted exporter stream. The reassembler buffer and the outbound
// actuation buffer are both sized at accept time; nothing here grows on
// the steady-state read/ingest/flush path.
struct SocketListener::Connection {
  Connection(const FrameReassembler::Options& reassembly,
             std::size_t out_capacity)
      : reassembler(reassembly), out(out_capacity) {}

  int fd = -1;
  FrameReassembler reassembler;
  FrameReassembler::FrameSink sink;  // bound once; captures {listener, slot}
  // Outbound actuation bytes: pending range is [out_head, out_size).
  std::vector<unsigned char> out;
  std::size_t out_head = 0;
  std::size_t out_size = 0;
};

SocketListener::SocketListener(const Options& options) : options_(options) {
  LIMONCELLO_CHECK_GT(options_.max_connections, 0);
  LIMONCELLO_CHECK_GT(options_.read_chunk_bytes, 0u);
  LIMONCELLO_CHECK_GE(options_.out_buffer_bytes, kActuationFrameBytes);
  slots_.resize(static_cast<std::size_t>(options_.max_connections));
}

SocketListener::~SocketListener() { Stop(); }

void SocketListener::BindPlane(ControlPlane* plane) {
  plane_ = plane;
  route_.assign(static_cast<std::size_t>(plane->num_endpoints()), -1);
}

bool SocketListener::Start() {
  LIMONCELLO_CHECK(plane_ != nullptr);
  listen_fd_ = CreateListenSocket(options_.address, options_.backlog);
  if (listen_fd_ < 0) return false;
  if (!SetNonBlocking(listen_fd_)) {
    Stop();
    return false;
  }
  if (options_.address.kind == SocketAddress::Kind::kTcp) {
    sockaddr_in sin{};
    socklen_t len = sizeof(sin);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&sin),
                      &len) == 0) {
      bound_port_ = ntohs(sin.sin_port);
    }
  }
  pollfds_.reserve(static_cast<std::size_t>(options_.max_connections) + 1);
  pollfd_slot_.reserve(static_cast<std::size_t>(options_.max_connections) +
                       1);
  return true;
}

void SocketListener::Stop() {
  for (int slot = 0; slot < static_cast<int>(slots_.size()); ++slot) {
    if (slots_[static_cast<std::size_t>(slot)] != nullptr &&
        slots_[static_cast<std::size_t>(slot)]->fd >= 0) {
      CloseConnection(slot);
    }
  }
  if (listen_fd_ >= 0) {
    (void)::close(listen_fd_);
    listen_fd_ = -1;
  }
}

int SocketListener::PollOnce(int timeout_ms, std::uint64_t now_ns) {
  if (listen_fd_ < 0) return -1;
  pollfds_.clear();
  pollfd_slot_.clear();
  pollfd listener_entry{};
  listener_entry.fd = listen_fd_;
  listener_entry.events = POLLIN;
  pollfds_.push_back(listener_entry);
  pollfd_slot_.push_back(-1);
  for (int slot = 0; slot < static_cast<int>(slots_.size()); ++slot) {
    Connection* conn = slots_[static_cast<std::size_t>(slot)].get();
    if (conn == nullptr || conn->fd < 0) continue;
    pollfd entry{};
    entry.fd = conn->fd;
    entry.events = POLLIN;
    if (conn->out_size > conn->out_head) entry.events |= POLLOUT;
    pollfds_.push_back(entry);
    pollfd_slot_.push_back(slot);
  }

  int ready;
  for (;;) {
    ready = ::poll(pollfds_.data(),
                   static_cast<nfds_t>(pollfds_.size()), timeout_ms);
    if (ready < 0 && errno == EINTR) {
      // A signal (SIGTERM on its way to the shutdown flag, SIGCHLD from
      // a test harness) interrupted the wait; report an empty cycle so
      // the owner re-checks its shutdown flag before we wait again.
      return 0;
    }
    break;
  }
  if (ready <= 0) return 0;

  for (std::size_t i = 0; i < pollfds_.size(); ++i) {
    const short revents = pollfds_[i].revents;
    if (revents == 0) continue;
    const int slot = pollfd_slot_[i];
    if (slot < 0) {
      if (revents & POLLIN) Accept();
      continue;
    }
    Connection* conn = slots_[static_cast<std::size_t>(slot)].get();
    if (conn == nullptr || conn->fd != pollfds_[i].fd) continue;
    if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
      // POLLHUP with unread data still delivers POLLIN first on Linux,
      // but a half-closed exporter has nothing more to say that its
      // final read() pass below won't surface.
      HandleReadable(slot, now_ns);
      if (slots_[static_cast<std::size_t>(slot)] != nullptr &&
          slots_[static_cast<std::size_t>(slot)]->fd >= 0) {
        CloseConnection(slot);
      }
      continue;
    }
    if (revents & POLLIN) HandleReadable(slot, now_ns);
    Connection* still = slots_[static_cast<std::size_t>(slot)].get();
    if ((revents & POLLOUT) && still != nullptr && still->fd >= 0) {
      HandleWritable(slot);
    }
  }
  return ready;
}

void SocketListener::Accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained; other errors: try again next cycle
    }
    int slot = -1;
    for (int s = 0; s < static_cast<int>(slots_.size()); ++s) {
      Connection* conn = slots_[static_cast<std::size_t>(s)].get();
      if (conn == nullptr || conn->fd < 0) {
        slot = s;
        break;
      }
    }
    if (slot < 0) {
      ++stats_.accept_overflows;
      (void)::close(fd);
      continue;
    }
    FrameReassembler::Options reassembly;
    reassembly.magic = kTelemetryBatchMagic;
    reassembly.max_payload_bytes = kTelemetryBatchFixedPayloadBytes +
                                   8 * TelemetryBatch::kMaxSamples;
    reassembly.read_chunk_bytes = options_.read_chunk_bytes;
    auto& entry = slots_[static_cast<std::size_t>(slot)];
    entry = std::make_unique<Connection>(reassembly,
                                         options_.out_buffer_bytes);
    entry->fd = fd;
    // The sink is bound once per connection so the per-read ingest loop
    // constructs nothing; the delivery timestamp rides in deliver_now_ns_.
    entry->sink = [this, slot](const unsigned char* frame,
                               std::size_t size) {
      DeliverFrame(slot, frame, size, deliver_now_ns_);
    };
    ++live_connections_;
    ++stats_.accepts;
  }
}

void SocketListener::HandleReadable(int slot, std::uint64_t now_ns) {
  Connection* conn = slots_[static_cast<std::size_t>(slot)].get();
  unsigned char chunk[8192];
  const std::size_t chunk_cap =
      options_.read_chunk_bytes < sizeof(chunk) ? options_.read_chunk_bytes
                                                : sizeof(chunk);
  deliver_now_ns_ = now_ns;
  for (;;) {
    const ssize_t n = ReadChunk(conn->fd, chunk, chunk_cap);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
      CloseConnection(slot);
      return;
    }
    if (n == 0) {
      // EOF. Bytes still buffered mean the peer died mid-frame — a
      // truncated final frame, counted and dropped, never delivered.
      if (conn->reassembler.buffered_bytes() > 0) {
        ++stats_.partial_frame_drops;
      }
      CloseConnection(slot);
      return;
    }
    stats_.bytes_received += static_cast<std::uint64_t>(n);
    (void)conn->reassembler.Ingest(chunk, static_cast<std::size_t>(n),
                                   conn->sink);
    // Frame delivery can close this connection from under us (actuation
    // flush hitting a reset peer); the object stays alive — slots are
    // recycled at accept, never freed mid-read — but the fd is gone.
    if (conn->fd < 0) return;
    if (static_cast<std::size_t>(n) < chunk_cap) return;  // likely drained
  }
}

void SocketListener::DeliverFrame(int slot, const unsigned char* frame,
                                  std::size_t size, std::uint64_t now_ns) {
  ++stats_.frames_ingested;
  (void)plane_->IngestFrame(frame, size, now_ns);
  // Routing peek: the payload opens with the endpoint id (the same
  // fixed-offset peek the plane's shard router uses). The frame is
  // CRC-valid here, so the id is trustworthy.
  if (size < kTelemetryBatchHeaderBytes + 4) return;
  const std::uint32_t endpoint_id =
      LoadU32(frame + kTelemetryBatchHeaderBytes);
  if (endpoint_id >= route_.size()) return;
  Connection* conn = slots_[static_cast<std::size_t>(slot)].get();
  if (conn->fd < 0) return;  // closed earlier in this same read pass
  const int previous = route_[endpoint_id];
  if (previous == slot) return;
  route_[endpoint_id] = slot;
  ++stats_.reroutes;
  // A new binding means a fresh exporter process (or one that failed
  // over): it boots on hardware defaults, so push the plane's current
  // decision at it rather than waiting for the FSM to toggle again.
  ActuationCommandFrame command;
  command.endpoint_id = endpoint_id;
  command.enable = plane_->EndpointIntentEnabled(endpoint_id);
  unsigned char encoded[kActuationFrameBytes];
  const std::size_t encoded_size = EncodeActuationCommand(command, encoded);
  if (QueueFrameBytes(*conn, encoded, encoded_size)) {
    ++stats_.intent_reasserts;
    FlushConnection(slot);
  }
}

bool SocketListener::QueueFrameBytes(Connection& conn,
                                     const unsigned char* frame,
                                     std::size_t size) {
  // Compact the consumed prefix before judging capacity.
  if (conn.out_head > 0) {
    std::memmove(conn.out.data(), conn.out.data() + conn.out_head,
                 conn.out_size - conn.out_head);
    conn.out_size -= conn.out_head;
    conn.out_head = 0;
  }
  if (conn.out.size() - conn.out_size < size) return false;
  std::memcpy(conn.out.data() + conn.out_size, frame, size);
  conn.out_size += size;
  return true;
}

void SocketListener::FlushConnection(int slot) {
  Connection* conn = slots_[static_cast<std::size_t>(slot)].get();
  while (conn->out_head < conn->out_size) {
    const ssize_t n = SendSome(conn->fd, conn->out.data() + conn->out_head,
                               conn->out_size - conn->out_head);
    if (n < 0) {
      // EPIPE/ECONNRESET: the peer is gone; its route dies with it and
      // the plane's staleness/retry machinery takes over.
      CloseConnection(slot);
      return;
    }
    if (n == 0) {
      // Socket buffer full: keep the remainder; POLLOUT resumes it.
      ++stats_.actuation_partial_flushes;
      return;
    }
    conn->out_head += static_cast<std::size_t>(n);
  }
  conn->out_head = 0;
  conn->out_size = 0;
}

void SocketListener::HandleWritable(int slot) { FlushConnection(slot); }

bool SocketListener::SendActuation(std::uint32_t endpoint_id, bool enable) {
  if (endpoint_id >= route_.size()) return false;
  const int slot = route_[endpoint_id];
  if (slot < 0) {
    ++stats_.actuation_no_route;
    return false;
  }
  Connection* conn = slots_[static_cast<std::size_t>(slot)].get();
  if (conn == nullptr || conn->fd < 0) {
    ++stats_.actuation_no_route;
    return false;
  }
  ActuationCommandFrame command;
  command.endpoint_id = endpoint_id;
  command.enable = enable;
  unsigned char encoded[kActuationFrameBytes];
  const std::size_t encoded_size = EncodeActuationCommand(command, encoded);
  if (!QueueFrameBytes(*conn, encoded, encoded_size)) {
    // Slow consumer: the exporter is alive but not draining its socket.
    // Failing the actuation (instead of blocking or buffering without
    // bound) hands the decision to the plane's capped-exponential
    // retry, which also covers the peer dying outright.
    ++stats_.actuation_slow_consumer;
    return false;
  }
  ++stats_.actuations_queued;
  FlushConnection(slot);
  // A flush failure above closed the connection and dropped the bytes;
  // the queueing still succeeded from the plane's point of view, and
  // the reconnect path re-asserts intent anyway.
  return true;
}

void SocketListener::CloseConnection(int slot) {
  Connection* conn = slots_[static_cast<std::size_t>(slot)].get();
  if (conn == nullptr || conn->fd < 0) return;
  (void)::close(conn->fd);
  conn->fd = -1;
  --live_connections_;
  ++stats_.disconnects;
  // Fold this stream's reassembly counters into the listener totals.
  const FrameReassembler::Stats& rs = conn->reassembler.stats();
  stats_.resync_bytes += rs.resync_bytes;
  stats_.corrupt_frames += rs.corrupt_frames;
  stats_.oversize_rejects += rs.oversize_rejects;
  for (std::size_t id = 0; id < route_.size(); ++id) {
    if (route_[id] == slot) route_[id] = -1;
  }
  // The Connection object is deliberately NOT freed here: a close can
  // fire from inside this connection's own frame delivery (actuation
  // flush against a reset peer), while FrameReassembler::Ingest is
  // still walking its buffer. Dead slots are recycled at accept time.
}

SocketListener::Stats SocketListener::SnapshotStats() const {
  Stats merged = stats_;
  for (const auto& conn : slots_) {
    if (conn == nullptr || conn->fd < 0) continue;
    const FrameReassembler::Stats& rs = conn->reassembler.stats();
    merged.resync_bytes += rs.resync_bytes;
    merged.corrupt_frames += rs.corrupt_frames;
    merged.oversize_rejects += rs.oversize_rejects;
  }
  return merged;
}

}  // namespace limoncello
