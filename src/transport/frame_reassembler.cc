#include "transport/frame_reassembler.h"

#include <cstring>

#include "util/check.h"
#include "util/crc32.h"
#include "util/wire.h"

namespace limoncello {

FrameReassembler::FrameReassembler(const Options& options)
    : options_(options) {
  LIMONCELLO_CHECK_GT(options_.max_payload_bytes, 0u);
  LIMONCELLO_CHECK_GT(options_.read_chunk_bytes, 0u);
  // Worst case held bytes after a scan: one incomplete frame (less than
  // a full frame) plus one whole fresh chunk appended before the next
  // scan runs. Allocated once; Ingest never grows it.
  buffer_.resize(FrameBytesFor(options_.max_payload_bytes) +
                 options_.read_chunk_bytes);
}

// limolint:hot-path — every received byte passes through here; pure
// scans and memmoves over the preallocated buffer.
std::size_t FrameReassembler::Ingest(const unsigned char* data,
                                     std::size_t size,
                                     const FrameSink& sink) {
  LIMONCELLO_CHECK(size <= options_.read_chunk_bytes);
  LIMONCELLO_CHECK(buffered_ + size <= buffer_.size());
  std::memcpy(buffer_.data() + buffered_, data, size);
  buffered_ += size;

  std::size_t frames = 0;
  std::size_t pos = 0;
  while (buffered_ - pos >= kHeaderBytes) {
    const unsigned char* head = buffer_.data() + pos;
    if (LoadU32(head) != options_.magic) {
      // Not frame-aligned: hunt for the next magic one byte at a time.
      // A torn frame costs its own bytes and nothing more.
      ++pos;
      ++stats_.resync_bytes;
      continue;
    }
    const std::size_t payload_bytes = LoadU32(head + 8);
    if (payload_bytes > options_.max_payload_bytes) {
      // Rejected from the header alone: the claimed body is never
      // buffered, so a hostile length cannot make anyone allocate.
      ++stats_.oversize_rejects;
      ++pos;
      ++stats_.resync_bytes;
      continue;
    }
    const std::size_t frame_bytes = FrameBytesFor(payload_bytes);
    if (buffered_ - pos < frame_bytes) break;  // wait for the rest
    const std::uint32_t crc = Crc32(head + 4, 8 + payload_bytes);
    if (crc != LoadU32(head + kHeaderBytes + payload_bytes)) {
      // Framed but corrupt (or a magic found inside torn garbage):
      // resync rather than trust the length field's claim of where the
      // next frame starts.
      ++stats_.corrupt_frames;
      ++pos;
      ++stats_.resync_bytes;
      continue;
    }
    sink(head, frame_bytes);
    ++stats_.frames_extracted;
    ++frames;
    pos += frame_bytes;
  }

  if (pos > 0) {
    buffered_ -= pos;
    std::memmove(buffer_.data(), buffer_.data() + pos, buffered_);
  }
  return frames;
}

}  // namespace limoncello
