#include "transport/socket_addr.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace limoncello {

namespace {

// A UNIX path must fit sockaddr_un::sun_path with its terminator.
constexpr std::size_t kMaxUnixPath = sizeof(sockaddr_un{}.sun_path) - 1;

bool ParsePort(const std::string& text, std::uint16_t* port) {
  if (text.empty() || text.size() > 5) return false;
  std::uint32_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value == 0 || value > 65535) return false;
  *port = static_cast<std::uint16_t>(value);
  return true;
}

// Fills `out` from the parsed host. Numeric IPv4 only, plus the one
// name every test rig uses.
bool ResolveHost(const std::string& host, in_addr* out) {
  if (host == "localhost") {
    out->s_addr = htonl(INADDR_LOOPBACK);
    return true;
  }
  return ::inet_pton(AF_INET, host.c_str(), out) == 1;
}

int NewSocket(int domain) {
  return ::socket(domain, SOCK_STREAM | SOCK_CLOEXEC, 0);
}

}  // namespace

SocketAddress ParseSocketAddress(const std::string& text) {
  SocketAddress address;
  if (text.empty()) return address;
  if (text.find('/') != std::string::npos) {
    if (text.size() > kMaxUnixPath) return address;
    address.kind = SocketAddress::Kind::kUnix;
    address.path = text;
    return address;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return address;
  std::uint16_t port = 0;
  if (!ParsePort(text.substr(colon + 1), &port)) return address;
  const std::string host = text.substr(0, colon);
  in_addr probe{};
  if (!ResolveHost(host, &probe)) return address;
  address.kind = SocketAddress::Kind::kTcp;
  address.host = host;
  address.port = port;
  return address;
}

int CreateListenSocket(const SocketAddress& address, int backlog) {
  if (address.kind == SocketAddress::Kind::kUnix) {
    const int fd = NewSocket(AF_UNIX);
    if (fd < 0) return -1;
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, address.path.c_str(), address.path.size());
    // A previous incarnation killed with -9 leaves its socket file
    // behind; bind would fail with EADDRINUSE forever. Unlinking is
    // safe: the path names this daemon's rendezvous point by contract.
    (void)::unlink(address.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&sun),
               sizeof(sun)) != 0 ||
        ::listen(fd, backlog) != 0) {
      const int saved = errno;
      (void)::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }
  if (address.kind == SocketAddress::Kind::kTcp) {
    const int fd = NewSocket(AF_INET);
    if (fd < 0) return -1;
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(address.port);
    if (!ResolveHost(address.host, &sin.sin_addr) ||
        ::bind(fd, reinterpret_cast<const sockaddr*>(&sin),
               sizeof(sin)) != 0 ||
        ::listen(fd, backlog) != 0) {
      const int saved = errno;
      (void)::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }
  errno = EINVAL;
  return -1;
}

int ConnectSocket(const SocketAddress& address) {
  if (address.kind == SocketAddress::Kind::kUnix) {
    const int fd = NewSocket(AF_UNIX);
    if (fd < 0) return -1;
    sockaddr_un sun{};
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, address.path.c_str(), address.path.size());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sun),
                  sizeof(sun)) != 0) {
      const int saved = errno;
      (void)::close(fd);
      errno = saved;
      return -1;
    }
    return fd;
  }
  if (address.kind == SocketAddress::Kind::kTcp) {
    const int fd = NewSocket(AF_INET);
    if (fd < 0) return -1;
    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(address.port);
    if (!ResolveHost(address.host, &sin.sin_addr) ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&sin),
                  sizeof(sin)) != 0) {
      const int saved = errno;
      (void)::close(fd);
      errno = saved;
      return -1;
    }
    // Telemetry frames are small and latency-sensitive; Nagle would
    // batch them behind the previous frame's ack.
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
  errno = EINVAL;
  return -1;
}

}  // namespace limoncello
