// Stream-to-frame reassembly for the control plane's socket transport.
//
// TCP and UNIX stream sockets deliver bytes, not frames: one send can
// arrive split across many reads, many sends can coalesce into one
// read, and a torn upstream (the flaky proxy truncates frames on
// purpose) leaves the stream positioned mid-garbage. The reassembler
// turns that byte soup back into whole CRC-valid frames:
//
//   * A fixed buffer, allocated once at construction, accumulates
//     bytes until a complete frame is present. Steady state performs
//     zero heap allocations.
//   * A frame is surfaced only after its magic, version-independent
//     length bounds, and CRC32 all check out — the sink never sees a
//     torn or corrupt frame.
//   * Any violation (wrong magic, implausible length, CRC mismatch)
//     advances the scan by ONE byte and rescans: byte-scan resync, the
//     same discipline the journal replay uses. A truncated frame costs
//     at most its own bytes; the next intact frame's magic re-anchors
//     the stream.
//   * A length field beyond max_payload_bytes is rejected from the
//     4-byte header alone — before the reassembler ever buffers (or
//     anyone allocates) the claimed body. A hostile 4 GiB length costs
//     nothing.
//
// The reassembler is format-agnostic above the framing discipline:
// it is parameterized on the magic and payload bound, so the same code
// reassembles LTB1 telemetry (exporter → plane) and LAC1 actuation
// (plane → exporter) streams.
#ifndef LIMONCELLO_TRANSPORT_FRAME_REASSEMBLER_H_
#define LIMONCELLO_TRANSPORT_FRAME_REASSEMBLER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "stats/saturating.h"

namespace limoncello {

class FrameReassembler {
 public:
  struct Options {
    std::uint32_t magic = 0;
    // Largest payload the format allows; the size field is validated
    // against this before the frame body is accepted into the buffer.
    std::size_t max_payload_bytes = 0;
    // Largest single Ingest() input the caller will offer (the read
    // chunk size of the owning socket loop). Sizes the buffer.
    std::size_t read_chunk_bytes = 4096;
  };

  struct Stats {
    SatCounter frames_extracted;   // CRC-valid frames handed to the sink
    SatCounter resync_bytes;       // bytes skipped hunting for a magic
    SatCounter corrupt_frames;     // framed but CRC-failed candidates
    SatCounter oversize_rejects;   // length field beyond the bound

    bool operator==(const Stats&) const = default;
  };

  // The sink receives each complete validated frame (header + payload +
  // CRC). The pointer is into the reassembler's buffer and is valid
  // only for the duration of the call.
  using FrameSink =
      std::function<void(const unsigned char* frame, std::size_t size)>;

  explicit FrameReassembler(const Options& options);

  // Feeds `size` freshly-read bytes (size <= read_chunk_bytes) and
  // surfaces every frame they complete. Returns the number of frames
  // handed to `sink`. Never allocates.
  std::size_t Ingest(const unsigned char* data, std::size_t size,
                     const FrameSink& sink);

  // Bytes held back waiting for the rest of a frame. Nonzero at EOF
  // means the peer died mid-frame (a truncated final frame) — the
  // bytes are counted and dropped by the owner, never delivered.
  std::size_t buffered_bytes() const { return buffered_; }

  // Drops any partial frame (connection teardown).
  void Reset() { buffered_ = 0; }

  const Stats& stats() const { return stats_; }

 private:
  static constexpr std::size_t kHeaderBytes = 12;

  std::size_t FrameBytesFor(std::size_t payload_bytes) const {
    return kHeaderBytes + payload_bytes + 4 /* CRC */;
  }

  Options options_;
  std::vector<unsigned char> buffer_;
  std::size_t buffered_ = 0;
  Stats stats_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_TRANSPORT_FRAME_REASSEMBLER_H_
