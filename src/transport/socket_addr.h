// Address parsing and socket setup for the control-plane transport.
//
// One address grammar serves the daemon (--listen), the exporter
// (--connect) and the flaky proxy (both sides):
//
//   /path/to/socket   UNIX-domain stream socket (any string with a '/')
//   host:port         TCP, host either a numeric IPv4 address or
//                     "localhost"
//
// Name resolution is deliberately absent: the transport exists so the
// control plane can cross process and machine boundaries in tests and
// canary fleets, where addresses are numeric and a DNS dependency is
// pure failure surface.
//
// All returned descriptors are CLOEXEC; listeners and accepted
// connections are the caller's to make nonblocking (SetNonBlocking in
// util/posix_io.h).
#ifndef LIMONCELLO_TRANSPORT_SOCKET_ADDR_H_
#define LIMONCELLO_TRANSPORT_SOCKET_ADDR_H_

#include <cstdint>
#include <string>

namespace limoncello {

struct SocketAddress {
  enum class Kind { kInvalid, kUnix, kTcp };

  Kind kind = Kind::kInvalid;
  std::string path;  // kUnix: filesystem path (fits sockaddr_un)
  std::string host;  // kTcp: numeric IPv4 or "localhost"
  std::uint16_t port = 0;

  bool valid() const { return kind != Kind::kInvalid; }
};

// Parses the grammar above. Returns an address with kind == kInvalid on
// any malformed input (empty string, over-long UNIX path, bad port,
// unresolvable host).
SocketAddress ParseSocketAddress(const std::string& text);

// Binds + listens on `address` (backlog `backlog`). For UNIX addresses
// a stale socket file from a dead process is unlinked first — the plane
// must be restartable after kill -9 without operator cleanup. Returns
// the listening fd, or -1 with errno set.
int CreateListenSocket(const SocketAddress& address, int backlog);

// Blocking connect to `address`. Returns the connected fd, or -1 with
// errno set (ECONNREFUSED / ENOENT while the peer is down — callers
// own the backoff policy).
int ConnectSocket(const SocketAddress& address);

}  // namespace limoncello

#endif  // LIMONCELLO_TRANSPORT_SOCKET_ADDR_H_
