#include "transport/exporter_client.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>

#include "control/actuation_frame.h"
#include "util/posix_io.h"

namespace limoncello {

namespace {

FrameReassembler::Options ActuationReassembly() {
  FrameReassembler::Options options;
  options.magic = kActuationFrameMagic;
  options.max_payload_bytes = kActuationFramePayloadBytes;
  options.read_chunk_bytes = 4096;
  return options;
}

// Interruptible-enough sleep: poll with no descriptors. A signal cuts
// it short (EINTR), which is exactly what a stopping exporter wants.
void SleepMs(int ms) {
  if (ms <= 0) return;
  (void)::poll(nullptr, 0, ms);
}

}  // namespace

ExporterClient::ExporterClient(const Options& options)
    : options_(options),
      endpoint_(options.endpoint, Rng(options.seed)),
      rng_(Rng(options.seed).Fork(0x45585054 /* "EXPT" */)),
      reassembler_(ActuationReassembly()) {}

ExporterClient::~ExporterClient() { Disconnect(); }

bool ExporterClient::EnsureConnected() {
  if (fd_ >= 0) return true;
  fd_ = ConnectSocket(options_.address);
  if (fd_ < 0) {
    ++stats_.connect_failures;
    ++consecutive_failures_;
    return false;
  }
  ++stats_.connects;
  conn_frames_sent_ = 0;
  reassembler_.Reset();
  return true;
}

void ExporterClient::Disconnect() {
  if (fd_ < 0) return;
  (void)::close(fd_);
  fd_ = -1;
  ++stats_.disconnects;
  // A connection that died before proving itself counts toward the
  // backoff streak. connect(2) succeeding is not proof of a live plane:
  // a proxy with a dead upstream accepts and then instantly closes, and
  // treating that as success would turn the backoff loop into a
  // busy-dial storm.
  if (conn_frames_sent_ < kHealthyConnFrames) ++consecutive_failures_;
}

int ExporterClient::NextBackoffMs() {
  // Capped exponential: initial * 2^(failures-1), saturated at the cap.
  std::int64_t delay = options_.initial_backoff_ms;
  for (int i = 1; i < consecutive_failures_ &&
                  delay < options_.max_backoff_ms;
       ++i) {
    delay *= 2;
  }
  if (delay > options_.max_backoff_ms) delay = options_.max_backoff_ms;
  if (delay < 1) delay = 1;
  // Jitter to [50%, 100%]: a plane restart must not see its whole
  // exporter fleet redial in the same millisecond.
  return static_cast<int>(
      delay - static_cast<std::int64_t>(
                  rng_.NextBounded(static_cast<std::uint64_t>(delay) / 2 +
                                   1)));
}

void ExporterClient::TickOnce() {
  unsigned char frame[kMaxTelemetryFrameBytes];
  const std::size_t size = endpoint_.Tick(frame);
  if (size == 0 || fd_ < 0) return;
  if (SendFully(fd_, frame, size)) {
    ++stats_.frames_sent;
    // The first send into a doomed socket can still succeed out of the
    // kernel buffer; only a connection that keeps accepting frames
    // clears the backoff streak.
    if (++conn_frames_sent_ == kHealthyConnFrames) {
      consecutive_failures_ = 0;
    }
  } else {
    // EPIPE/ECONNRESET: the plane is gone. The frame is lost — the
    // protocol is lossy by design; the plane's staleness fail-safe
    // covers extended gaps.
    ++stats_.send_failures;
    Disconnect();
  }
}

void ExporterClient::PumpActuation() {
  if (fd_ < 0) return;
  const FrameReassembler::FrameSink sink = [this](const unsigned char* frame,
                                                  std::size_t size) {
    ActuationCommandFrame command;
    if (DecodeActuationCommand(frame, size, &command) !=
        ActuationDecodeStatus::kOk) {
      return;  // reassembler CRC passed but semantic validation failed
    }
    if (command.endpoint_id != options_.endpoint.endpoint_id) {
      // A stale route on the listener can briefly aim another
      // endpoint's actuation at this stream; applying it would toggle
      // the wrong machine's prefetchers.
      ++stats_.actuations_ignored;
      return;
    }
    (void)endpoint_.Actuate(command.enable);
    ++stats_.actuations_applied;
  };
  for (;;) {
    pollfd entry{};
    entry.fd = fd_;
    entry.events = POLLIN;
    const int ready = ::poll(&entry, 1, 0);
    if (ready <= 0) return;  // nothing pending (or EINTR: next pass)
    if ((entry.revents & (POLLIN | POLLHUP | POLLERR)) == 0) return;
    unsigned char chunk[4096];
    const ssize_t n = ReadChunk(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      Disconnect();
      return;
    }
    if (n == 0) {
      Disconnect();  // plane closed (shutdown or kill): redial next loop
      return;
    }
    (void)reassembler_.Ingest(chunk, static_cast<std::size_t>(n), sink);
  }
}

bool ExporterClient::Step() {
  if (!EnsureConnected()) return false;
  TickOnce();
  PumpActuation();
  return connected();
}

void ExporterClient::Run(const volatile std::sig_atomic_t* stop,
                         std::uint64_t max_ticks) {
  std::uint64_t ticks_done = 0;
  while ((stop == nullptr || *stop == 0) &&
         (max_ticks == 0 || ticks_done < max_ticks)) {
    if (fd_ < 0) {
      // Back off before the redial, not just after a refused dial: an
      // accepted-then-reset connection (proxy up, plane down) must pace
      // exactly like a refused one.
      if (consecutive_failures_ > 0) SleepMs(NextBackoffMs());
      if (stop != nullptr && *stop != 0) break;
      if (!EnsureConnected()) continue;
    }
    TickOnce();
    ++ticks_done;
    if (fd_ < 0) continue;  // send failure: redial with backoff
    if (options_.tick_period_ms > 0) {
      // The pacing sleep doubles as the actuation wait: wake early if
      // the plane pushes a decision, then let the poll below drain it.
      pollfd entry{};
      entry.fd = fd_;
      entry.events = POLLIN;
      (void)::poll(&entry, 1, options_.tick_period_ms);
    }
    PumpActuation();
  }
}

}  // namespace limoncello
