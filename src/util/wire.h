// Fixed little-endian scalar (de)serialization, independent of host
// endianness. Shared by every framed format: journal records, telemetry
// batches, per-endpoint control records.
#ifndef LIMONCELLO_UTIL_WIRE_H_
#define LIMONCELLO_UTIL_WIRE_H_

#include <cstdint>

namespace limoncello {

inline void StoreU32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

inline void StoreU64(unsigned char* p, std::uint64_t v) {
  StoreU32(p, static_cast<std::uint32_t>(v));
  StoreU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t LoadU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

inline std::uint64_t LoadU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(LoadU32(p)) |
         static_cast<std::uint64_t>(LoadU32(p + 4)) << 32;
}

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_WIRE_H_
