#include "util/logging.h"

#include <cstdarg>
#include <cstdio>

namespace limoncello {

namespace {

LogLevel g_level = LogLevel::kInfo;
LogSink* g_sink = nullptr;  // function-local static pointer pattern

void DefaultSink(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), message.c_str());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetLogSink(LogSink sink) {
  static LogSink storage;
  if (sink) {
    storage = std::move(sink);
    g_sink = &storage;
  } else {
    g_sink = nullptr;
  }
}

void Logf(LogLevel level, const char* format, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  char buffer[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (g_sink != nullptr) {
    (*g_sink)(level, buffer);
  } else {
    DefaultSink(level, buffer);
  }
}

}  // namespace limoncello
