// IEEE CRC-32 (reflected, polynomial 0xEDB88320).
//
// One checksum for every on-wire / on-disk frame in the tree: state
// journal records, per-endpoint control-plane records, and telemetry
// batch frames. Hoisted out of src/recovery/ so the control plane's wire
// codec shares the exact implementation (and tests can corrupt either
// format with the same tooling).
#ifndef LIMONCELLO_UTIL_CRC32_H_
#define LIMONCELLO_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace limoncello {

std::uint32_t Crc32(const void* data, std::size_t size);

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_CRC32_H_
