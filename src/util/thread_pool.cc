#include "util/thread_pool.h"

#include <chrono>
#include <cstdlib>

#include "util/check.h"

namespace limoncello {

namespace {

std::atomic<int> g_default_thread_count{0};

// One iteration of a polite spin: a pause hint for SMT siblings early on,
// then yields so an oversubscribed (or single-core) host can run the lane
// we are waiting for instead of burning the timeslice.
inline void SpinPause(int spin) {
  if (spin < 64) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
  } else {
    std::this_thread::yield();
  }
}

// Default spin budget before falling back to a condition-variable sleep.
// Small on purpose: past this point the other side is not imminent and a
// futex sleep is cheaper than further yielding. Tunable via
// SetSpinBudgetUs / LIMONCELLO_SPIN_US (see thread_pool.h).
constexpr int kDefaultSpinBudgetUs = 50;

std::atomic<int> g_spin_budget_us{-1};

// Spins until pred() holds or the budget expires; returns pred()'s final
// value. The clock is only consulted every 32 iterations so the fast
// path (pred flips within a few pauses) never pays for a clock read.
template <typename Pred>
bool SpinUntil(const Pred& pred, int budget_us) {
  if (pred()) return true;
  if (budget_us <= 0) return false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(budget_us);
  int spin = 0;
  for (;;) {
    SpinPause(spin++);
    if (pred()) return true;
    if ((spin & 31) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      return pred();
    }
  }
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreadCount() {
  const char* env = std::getenv("LIMONCELLO_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return 0;
  return static_cast<int>(v);
}

int EnvSpinBudgetUs() {
  const char* env = std::getenv("LIMONCELLO_SPIN_US");
  if (env == nullptr || *env == '\0') return -1;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v < 0) return -1;
  return static_cast<int>(v);
}

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const int process_default = g_default_thread_count.load();
  if (process_default >= 1) return process_default;
  const int env = EnvThreadCount();
  if (env >= 1) return env;
  return HardwareThreads();
}

void SetDefaultThreadCount(int count) {
  g_default_thread_count.store(count < 0 ? 0 : count);
}

int ResolveSpinBudgetUs() {
  const int overridden = g_spin_budget_us.load(std::memory_order_relaxed);
  if (overridden >= 0) return overridden;
  const int env = EnvSpinBudgetUs();
  if (env >= 0) return env;
  return kDefaultSpinBudgetUs;
}

void SetSpinBudgetUs(int us) {
  g_spin_budget_us.store(us < 0 ? -1 : us, std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  LIMONCELLO_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  job_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainJob(const std::function<void(std::int64_t)>* fn,
                          std::int64_t end, std::int64_t grain) {
  for (;;) {
    const std::int64_t chunk = job_cursor_.fetch_add(grain);
    if (chunk >= end) return;
    const std::int64_t chunk_end =
        chunk + grain < end ? chunk + grain : end;
    for (std::int64_t i = chunk; i < chunk_end; ++i) (*fn)(i);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    // Spin-then-sleep pickup: back-to-back jobs (one per fleet epoch) are
    // caught here without a futex round trip. The spin is time-bounded
    // (ResolveSpinBudgetUs), so a shutdown during the spin still reaches
    // the condvar below.
    (void)SpinUntil(
        [&] {
          return job_generation_.load(std::memory_order_acquire) !=
                 seen_generation;
        },
        ResolveSpinBudgetUs());
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    {
      MutexLock lock(&mu_);
      job_cv_.Wait(&mu_, [&]() LIMONCELLO_REQUIRES(mu_) {
        return shutdown_ ||
               job_generation_.load(std::memory_order_relaxed) !=
                   seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_.load(std::memory_order_relaxed);
      fn = job_fn_;
      end = job_end_;
      grain = job_grain_;
      // Joining the job is published in the same critical section that
      // read its parameters, so the caller cannot observe a drained
      // cursor with this worker unaccounted for.
      active_workers_.fetch_add(1, std::memory_order_relaxed);
    }
    DrainJob(fn, end, grain);
    {
      // Leave under mu_ so the caller's slow-path predicate cannot miss
      // the transition between its check and its sleep.
      MutexLock lock(&mu_);
      active_workers_.fetch_sub(1, std::memory_order_release);
    }
    done_cv_.NotifyOne();
  }
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& fn,
                             std::int64_t grain) {
  if (begin >= end) return;
  LIMONCELLO_CHECK_GE(grain, 1);
  if (num_threads_ == 1 || end - begin <= grain) {
    // Exact serial path (single lane, or the whole job fits in one
    // grain): no cursor, no synchronization, no worker wakeup.
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(&mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_grain_ = grain;
    job_cursor_.store(begin, std::memory_order_relaxed);
    job_generation_.fetch_add(1, std::memory_order_release);
  }
  job_cv_.NotifyAll();
  DrainJob(&fn, end, grain);  // the caller is a lane too
  // The cursor is exhausted; wait for workers still finishing their last
  // chunk. Spin first — chunks are short — then sleep.
  const bool idle = SpinUntil(
      [&] {
        return active_workers_.load(std::memory_order_acquire) == 0;
      },
      ResolveSpinBudgetUs());
  MutexLock lock(&mu_);
  if (!idle) {
    done_cv_.Wait(&mu_, [&]() LIMONCELLO_REQUIRES(mu_) {
      return active_workers_.load(std::memory_order_acquire) == 0;
    });
  }
  job_fn_ = nullptr;
}

void ParallelInvoke(std::vector<std::function<void()>> thunks) {
  if (thunks.empty()) return;
  std::vector<std::thread> threads;  // limolint:allow(raw-thread)
  threads.reserve(thunks.size() - 1);
  for (std::size_t i = 1; i < thunks.size(); ++i) {
    threads.emplace_back(std::move(thunks[i]));
  }
  thunks[0]();
  for (std::thread& thread : threads) thread.join();
}

}  // namespace limoncello
