#include "util/thread_pool.h"

#include <cstdlib>

#include "util/check.h"

namespace limoncello {

namespace {

std::atomic<int> g_default_thread_count{0};

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int EnvThreadCount() {
  const char* env = std::getenv("LIMONCELLO_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return 0;
  return static_cast<int>(v);
}

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const int process_default = g_default_thread_count.load();
  if (process_default >= 1) return process_default;
  const int env = EnvThreadCount();
  if (env >= 1) return env;
  return HardwareThreads();
}

void SetDefaultThreadCount(int count) {
  g_default_thread_count.store(count < 0 ? 0 : count);
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  LIMONCELLO_CHECK_GE(num_threads, 1);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  job_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::DrainJob(const std::function<void(std::int64_t)>* fn,
                          std::int64_t end, std::int64_t grain) {
  for (;;) {
    const std::int64_t chunk = job_cursor_.fetch_add(grain);
    if (chunk >= end) return;
    const std::int64_t chunk_end =
        chunk + grain < end ? chunk + grain : end;
    for (std::int64_t i = chunk; i < chunk_end; ++i) (*fn)(i);
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::int64_t end = 0;
    std::int64_t grain = 1;
    {
      MutexLock lock(&mu_);
      job_cv_.Wait(&mu_, [&]() LIMONCELLO_REQUIRES(mu_) {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      fn = job_fn_;
      end = job_end_;
      grain = job_grain_;
      ++workers_in_job_;
    }
    DrainJob(fn, end, grain);
    {
      MutexLock lock(&mu_);
      --workers_in_job_;
    }
    done_cv_.NotifyOne();
  }
}

void ThreadPool::ParallelFor(std::int64_t begin, std::int64_t end,
                             const std::function<void(std::int64_t)>& fn,
                             std::int64_t grain) {
  if (begin >= end) return;
  LIMONCELLO_CHECK_GE(grain, 1);
  if (num_threads_ == 1) {
    // Exact serial path: no cursor, no synchronization.
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  {
    MutexLock lock(&mu_);
    job_fn_ = &fn;
    job_end_ = end;
    job_grain_ = grain;
    job_cursor_.store(begin);
    ++job_generation_;
  }
  job_cv_.NotifyAll();
  DrainJob(&fn, end, grain);  // the caller is a lane too
  MutexLock lock(&mu_);
  done_cv_.Wait(&mu_, [&]() LIMONCELLO_REQUIRES(mu_) {
    return workers_in_job_ == 0;
  });
  job_fn_ = nullptr;
}

void ParallelInvoke(std::vector<std::function<void()>> thunks) {
  if (thunks.empty()) return;
  std::vector<std::thread> threads;  // limolint:allow(raw-thread)
  threads.reserve(thunks.size() - 1);
  for (std::size_t i = 1; i < thunks.size(); ++i) {
    threads.emplace_back(std::move(thunks[i]));
  }
  thunks[0]();
  for (std::thread& thread : threads) thread.join();
}

}  // namespace limoncello
