#include "util/posix_io.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace limoncello {

bool WriteFully(int fd, const unsigned char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(  // limolint:allow(hot-path-blocking)
        fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool SendFully(int fd, const unsigned char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n =
        ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

ssize_t ReadChunk(int fd, unsigned char* buffer, std::size_t capacity) {
  for (;;) {
    const ssize_t n = ::read(fd, buffer, capacity);
    if (n < 0 && errno == EINTR) continue;
    return n;
  }
}

ssize_t SendSome(int fd, const unsigned char* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace limoncello
