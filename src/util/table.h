// Plain-text table and CSV emission for benchmark harnesses.
//
// Every bench binary reproduces a paper table/figure by printing rows; this
// helper keeps the output format uniform (aligned columns to stdout, and
// optional CSV for downstream plotting).
#ifndef LIMONCELLO_UTIL_TABLE_H_
#define LIMONCELLO_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace limoncello {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Appends a row; the cell count must match the header.
  void AddRow(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 2);
  static std::string Num(std::int64_t value);

  // Renders with aligned columns, ready for stdout.
  std::string ToAligned() const;

  // Renders as CSV (RFC-4180-ish; cells containing commas are quoted).
  std::string ToCsv() const;

  // Prints the aligned form to stdout with a title line.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_TABLE_H_
