// Small reusable worker pool for the fleet layer's parallel tick loop.
//
// The pool hands out contiguous index chunks from an atomic cursor, so a
// ParallelFor over N shards runs each shard exactly once on *some* thread.
// Determinism is the caller's contract: a shard's work must depend only on
// its index (never on which thread runs it or in what order shards are
// claimed), and shards must write to disjoint state. Under that contract
// results are identical at any thread count.
//
// A pool constructed with one thread spawns no workers at all: ParallelFor
// degenerates to a plain loop on the caller — the exact serial path.
//
// Synchronization goes through util/mutex.h so clang's -Wthread-safety can
// prove the lock discipline; the LIMONCELLO_GUARDED_BY annotations below are
// checked, not advisory.
#ifndef LIMONCELLO_UTIL_THREAD_POOL_H_
#define LIMONCELLO_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>  // limolint:allow(raw-thread)
#include <vector>

#include "util/mutex.h"

namespace limoncello {

// Resolves a requested thread count to an actual one:
//   requested >= 1          use it as-is,
//   requested == 0 (auto)   process default (SetDefaultThreadCount), else
//                           the LIMONCELLO_THREADS environment variable,
//                           else std::thread::hardware_concurrency().
// Always returns >= 1.
int ResolveThreadCount(int requested);

// Sets the process-wide default used by ResolveThreadCount(0); tools wire
// their --threads flag through this. 0 clears the default (back to the
// environment / hardware).
void SetDefaultThreadCount(int count);

// Spin budget (microseconds) a pool rendezvous burns before falling back
// to a condition-variable sleep. Bigger budgets absorb longer gaps
// between jobs without a futex round trip (lower barrier latency, more
// busy CPU); 0 sleeps immediately (kindest to oversubscribed hosts).
// Resolution order: SetSpinBudgetUs(>= 0) > LIMONCELLO_SPIN_US env >
// built-in default (50 us). See DESIGN.md §12 for the tradeoff.
int ResolveSpinBudgetUs();

// Process-wide override for ResolveSpinBudgetUs; tools wire their
// --spin-us flag through this. Negative clears the override (back to the
// environment / default).
void SetSpinBudgetUs(int us);

class ThreadPool {
 public:
  // num_threads must be >= 1 (pass through ResolveThreadCount first).
  // Spawns num_threads - 1 workers; the calling thread is the remaining
  // lane and participates in every ParallelFor.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Calls fn(i) exactly once for every i in [begin, end) and blocks until
  // all calls have returned. fn is invoked concurrently for distinct i and
  // must not throw. grain is the number of consecutive indices claimed per
  // atomic cursor step (load-balance knob only — it never changes which
  // calls are made). A job no larger than one grain runs inline on the
  // caller without waking the pool at all.
  void ParallelFor(std::int64_t begin, std::int64_t end,
                   const std::function<void(std::int64_t)>& fn,
                   std::int64_t grain = 1) LIMONCELLO_EXCLUDES(mu_);

 private:
  void WorkerLoop() LIMONCELLO_EXCLUDES(mu_);
  // Claims chunks of the current job until the cursor is exhausted. The job
  // parameters are read under mu_ by the caller and passed in by value, so
  // the drain itself touches only the atomic cursor.
  void DrainJob(const std::function<void(std::int64_t)>* fn,
                std::int64_t end, std::int64_t grain);

  const int num_threads_;
  std::vector<std::thread> workers_;  // limolint:allow(raw-thread)

  Mutex mu_;
  CondVar job_cv_;   // workers wait for a new job
  CondVar done_cv_;  // caller waits for job completion (slow path)
  bool shutdown_ LIMONCELLO_GUARDED_BY(mu_) = false;

  // Bumped under mu_ per job but also read lock-free: workers spin on it
  // briefly before sleeping on job_cv_, and the caller spins on
  // active_workers_ before sleeping on done_cv_. The fleet tick loop
  // issues one job per tick back-to-back, so in steady state both
  // rendezvous hit the spin fast path and the per-tick barrier costs no
  // futex sleep/wake round trips.
  std::atomic<std::uint64_t> job_generation_{0};
  // Workers currently inside DrainJob for the published job. Incremented
  // under mu_ (in the same critical section that reads the job
  // parameters), decremented under mu_ after the drain; the caller may
  // not return while this is nonzero.
  std::atomic<int> active_workers_{0};

  // Current job (valid while active_workers_ > 0 or cursor not drained).
  const std::function<void(std::int64_t)>* job_fn_
      LIMONCELLO_GUARDED_BY(mu_) = nullptr;
  std::int64_t job_end_ LIMONCELLO_GUARDED_BY(mu_) = 0;
  std::int64_t job_grain_ LIMONCELLO_GUARDED_BY(mu_) = 1;
  std::atomic<std::int64_t> job_cursor_{0};
};

// Runs the given thunks concurrently — thunks[0] on the calling thread,
// one spawned thread per remaining thunk — and returns when all complete.
// Used for independent experiment arms (A/B deployments, threshold
// candidates), which share no mutable state. Thunks must not throw.
void ParallelInvoke(std::vector<std::function<void()>> thunks);

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_THREAD_POOL_H_
