#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace limoncello {

FlagParser& FlagParser::Define(const std::string& name,
                               const std::string& help) {
  defined_[name] = help;
  return *this;
}

bool FlagParser::Parse(int argc, const char* const* argv) {
  values_.clear();
  positional_.clear();
  error_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_value = false;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_value = true;
    }
    if (defined_.find(name) == defined_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    if (!has_value) {
      // --name value form, unless the next token is another flag (then
      // treat as a bare boolean).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    values_[name] = value;
  }
  return true;
}

std::optional<std::string> FlagParser::GetString(
    const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> FlagParser::GetInt(
    const std::string& name) const {
  const auto s = GetString(name);
  if (!s.has_value()) return std::nullopt;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<double> FlagParser::GetDouble(const std::string& name) const {
  const auto s = GetString(name);
  if (!s.has_value()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<bool> FlagParser::GetBool(const std::string& name) const {
  const auto s = GetString(name);
  if (!s.has_value()) return std::nullopt;
  if (*s == "true" || *s == "1" || *s == "yes") return true;
  if (*s == "false" || *s == "0" || *s == "no") return false;
  return std::nullopt;
}

std::string FlagParser::Help(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [flags]\n";
  for (const auto& [name, help] : defined_) {
    out << "  --" << name << "\n      " << help << "\n";
  }
  return out.str();
}

}  // namespace limoncello
