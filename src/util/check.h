// Fatal assertion macros.
//
// LIMONCELLO_CHECK is active in all build modes: the invariants it guards
// (controller state-machine consistency, simulator accounting) are cheap
// relative to simulation work, and silent corruption of a simulation is far
// worse than an abort. LIMONCELLO_DCHECK compiles out in NDEBUG builds and
// is for hot-path checks.
#ifndef LIMONCELLO_UTIL_CHECK_H_
#define LIMONCELLO_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace limoncello::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace limoncello::internal

#define LIMONCELLO_CHECK(expr)                                        \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::limoncello::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                 \
  } while (false)

#define LIMONCELLO_CHECK_OP(op, a, b) LIMONCELLO_CHECK((a)op(b))
#define LIMONCELLO_CHECK_EQ(a, b) LIMONCELLO_CHECK_OP(==, a, b)
#define LIMONCELLO_CHECK_NE(a, b) LIMONCELLO_CHECK_OP(!=, a, b)
#define LIMONCELLO_CHECK_LT(a, b) LIMONCELLO_CHECK_OP(<, a, b)
#define LIMONCELLO_CHECK_LE(a, b) LIMONCELLO_CHECK_OP(<=, a, b)
#define LIMONCELLO_CHECK_GT(a, b) LIMONCELLO_CHECK_OP(>, a, b)
#define LIMONCELLO_CHECK_GE(a, b) LIMONCELLO_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define LIMONCELLO_DCHECK(expr) \
  do {                          \
  } while (false)
#else
#define LIMONCELLO_DCHECK(expr) LIMONCELLO_CHECK(expr)
#endif

#endif  // LIMONCELLO_UTIL_CHECK_H_
