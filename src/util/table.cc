#include "util/table.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace limoncello {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  LIMONCELLO_CHECK(!header_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  LIMONCELLO_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string Table::Num(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return buf;
}

std::string Table::ToAligned() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::ToCsv() const {
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), ToAligned().c_str());
  std::fflush(stdout);
}

}  // namespace limoncello
