// EINTR- and short-write-correct wrappers around the raw POSIX fd calls.
//
// Every byte-moving syscall in the tree funnels through these helpers:
// the crash-safe journals (src/recovery/) and the control-plane socket
// transport (src/transport/) both append to descriptors that can return
// short counts or EINTR at any time, and treating either as corruption
// is exactly the torn-journal bug the recovery subsystem exists to
// survive. Centralizing the retry loops keeps that discipline in one
// audited place instead of five hand-rolled copies.
//
// None of these helpers allocate; all are safe on the journal append
// hot path.
#ifndef LIMONCELLO_UTIL_POSIX_IO_H_
#define LIMONCELLO_UTIL_POSIX_IO_H_

#include <sys/types.h>

#include <cstddef>

namespace limoncello {

// write(2)s the whole buffer: short writes continue from where they
// stopped, EINTR retries. Returns false on any other error (errno is
// preserved for the caller's diagnostics). For regular files and pipes.
bool WriteFully(int fd, const unsigned char* data, std::size_t size);

// send(2)s the whole buffer with MSG_NOSIGNAL: a peer that vanished
// mid-write surfaces as EPIPE, never as a process-killing SIGPIPE.
// Short sends continue, EINTR retries. Returns false on any other error.
// For sockets (blocking mode — a nonblocking socket can return false
// with errno == EAGAIN; callers owning a poll loop handle that).
bool SendFully(int fd, const unsigned char* data, std::size_t size);

// One read(2), EINTR retried. Returns the byte count (0 at EOF), or -1
// on error with errno set — including EAGAIN/EWOULDBLOCK on nonblocking
// descriptors, which readiness-loop callers treat as "drained".
ssize_t ReadChunk(int fd, unsigned char* buffer, std::size_t capacity);

// One nonblocking send(2) with MSG_NOSIGNAL, EINTR retried. Returns the
// byte count actually queued (possibly short), 0 when the socket buffer
// is full (EAGAIN), or -1 on a connection error with errno set.
ssize_t SendSome(int fd, const unsigned char* data, std::size_t size);

// Marks the descriptor nonblocking (O_NONBLOCK). Returns false on error.
bool SetNonBlocking(int fd);

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_POSIX_IO_H_
