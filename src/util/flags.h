// Minimal command-line flag parsing for the tool binaries.
//
// Supports --name=value and --name value forms, plus bare --bool-flag.
// Unknown flags are errors (a daemon must not silently ignore a typo'd
// configuration knob). Positional arguments are collected in order.
#ifndef LIMONCELLO_UTIL_FLAGS_H_
#define LIMONCELLO_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace limoncello {

class FlagParser {
 public:
  // Registers a flag with a help string; returns *this for chaining.
  FlagParser& Define(const std::string& name, const std::string& help);

  // Parses argv. Returns false (and sets error()) on unknown flags or
  // malformed input.
  bool Parse(int argc, const char* const* argv);

  // Accessors return nullopt when the flag was not supplied.
  std::optional<std::string> GetString(const std::string& name) const;
  std::optional<std::int64_t> GetInt(const std::string& name) const;
  std::optional<double> GetDouble(const std::string& name) const;
  // A bare --flag (no value) reads as true; --flag=false/0/no as false.
  std::optional<bool> GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  // Formatted help text listing all defined flags.
  std::string Help(const std::string& program) const;

 private:
  std::map<std::string, std::string> defined_;  // name -> help
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_FLAGS_H_
