// Hugepage-backed allocation for large random-access tables.
//
// A multi-hundred-MB table probed at random addresses misses the DTLB on
// nearly every access with 4 KiB pages, and software prefetches whose
// address misses the TLB are dropped — the page walk (two-dimensional
// under virtualization), not the data fetch, becomes the serial
// bottleneck, and no (distance, degree) choice can fix it. Backing the
// table with 2 MiB pages cuts the page count 512x so the second-level TLB
// covers the whole table; the walk disappears and the inserted prefetches
// actually overlap misses.
//
// Allocation strategy for >= one-hugepage requests, best first:
//   1. mmap(MAP_HUGETLB): explicit hugetlb pool pages (reserve with
//      `echo N > /proc/sys/vm/nr_hugepages`); fails cleanly if the pool
//      is empty or the kernel lacks hugetlb.
//   2. anonymous mmap + madvise(MADV_HUGEPAGE): transparent hugepages
//      where THP is enabled; plain 4 KiB pages otherwise.
// Either way the caller gets working memory — hugepages are a perf
// opportunity, never a requirement.
#ifndef LIMONCELLO_UTIL_HUGE_PAGE_H_
#define LIMONCELLO_UTIL_HUGE_PAGE_H_

#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace limoncello {

inline constexpr std::size_t kHugePageBytes = 2u << 20;

// Requests 2 MiB pages for [p, p + len); best-effort, never fails.
inline void AdviseHugePages(void* p, std::size_t len) {
#if defined(__linux__) && defined(MADV_HUGEPAGE)
  madvise(p, len, MADV_HUGEPAGE);
#else
  (void)p;
  (void)len;
#endif
}

inline constexpr std::size_t RoundUpToHugePage(std::size_t bytes) {
  return (bytes + kHugePageBytes - 1) & ~(kHugePageBytes - 1);
}

// Maps `bytes` (rounded up to a hugepage multiple) via the strategy above.
// Returns nullptr only when every mmap path fails.
inline void* MapHugePages(std::size_t bytes) {
#if defined(__linux__)
  const std::size_t rounded = RoundUpToHugePage(bytes);
#if defined(MAP_HUGETLB)
  void* p = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_HUGETLB, -1, 0);
  if (p != MAP_FAILED) return p;
#endif
  void* fallback = mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                        MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (fallback == MAP_FAILED) return nullptr;
  AdviseHugePages(fallback, rounded);
  return fallback;
#else
  return std::malloc(RoundUpToHugePage(bytes));
#endif
}

inline void UnmapHugePages(void* p, std::size_t bytes) {
#if defined(__linux__)
  munmap(p, RoundUpToHugePage(bytes));
#else
  std::free(p);
#endif
}

// Minimal std::allocator replacement: hugepage-mapped for allocations of
// at least one huge page, plain operator new below that.
template <typename T>
struct HugePageAllocator {
  using value_type = T;

  HugePageAllocator() = default;
  template <typename U>
  explicit HugePageAllocator(const HugePageAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = n * sizeof(T);
    if (bytes >= kHugePageBytes) {
      if (void* p = MapHugePages(bytes)) return static_cast<T*>(p);
    }
    return static_cast<T*>(::operator new(bytes));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const std::size_t bytes = n * sizeof(T);
    if (bytes >= kHugePageBytes) {
      UnmapHugePages(p, bytes);
    } else {
      ::operator delete(p);
    }
  }

  template <typename U>
  bool operator==(const HugePageAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const HugePageAllocator<U>&) const noexcept {
    return false;
  }
};

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_HUGE_PAGE_H_
