// Leveled logging for the daemon and tools.
//
// Deliberately tiny: a global level, timestamped lines to stderr, and a
// pluggable sink for tests. The library itself stays silent below kWarn
// so embedding applications control their own output.
#ifndef LIMONCELLO_UTIL_LOGGING_H_
#define LIMONCELLO_UTIL_LOGGING_H_

#include <functional>
#include <string>

namespace limoncello {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

// Global minimum level (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Replaces the output sink (default: stderr). Pass nullptr to restore.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void SetLogSink(LogSink sink);

// printf-style logging; drops messages below the global level.
void Logf(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

#define LIMONCELLO_LOG_DEBUG(...) \
  ::limoncello::Logf(::limoncello::LogLevel::kDebug, __VA_ARGS__)
#define LIMONCELLO_LOG_INFO(...) \
  ::limoncello::Logf(::limoncello::LogLevel::kInfo, __VA_ARGS__)
#define LIMONCELLO_LOG_WARN(...) \
  ::limoncello::Logf(::limoncello::LogLevel::kWarn, __VA_ARGS__)
#define LIMONCELLO_LOG_ERROR(...) \
  ::limoncello::Logf(::limoncello::LogLevel::kError, __VA_ARGS__)

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_LOGGING_H_
