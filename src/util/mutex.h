// Annotated mutual-exclusion primitives for clang Thread Safety Analysis.
//
// Everything outside util/ must synchronize through these wrappers (or the
// ThreadPool built on them) — limolint enforces that raw std::mutex /
// std::condition_variable / std::thread never appear elsewhere. On clang the
// LIMONCELLO_* annotation macros expand to the thread-safety attributes, so
// a build with -Wthread-safety turns lock-discipline mistakes (touching a
// LIMONCELLO_GUARDED_BY member without the lock, unlocking a mutex you never
// acquired) into compile errors. On other compilers they expand to nothing
// and the wrappers cost exactly a std::mutex / std::condition_variable.
//
// Usage:
//   class Counter {
//    public:
//     void Add(int d) {
//       MutexLock lock(&mu_);
//       total_ += d;
//     }
//    private:
//     Mutex mu_;
//     int total_ LIMONCELLO_GUARDED_BY(mu_) = 0;
//   };
#ifndef LIMONCELLO_UTIL_MUTEX_H_
#define LIMONCELLO_UTIL_MUTEX_H_

#include <condition_variable>  // limolint:allow(raw-thread)
#include <mutex>               // limolint:allow(raw-thread)

// clang exposes the analysis attributes via __has_attribute; gcc and msvc
// define neither, so every macro below becomes a no-op there.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define LIMONCELLO_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LIMONCELLO_THREAD_ANNOTATION
#define LIMONCELLO_THREAD_ANNOTATION(x)
#endif

// Declares that the annotated field may only be read or written while the
// given mutex is held.
#define LIMONCELLO_GUARDED_BY(x) LIMONCELLO_THREAD_ANNOTATION(guarded_by(x))
// Same, for data reached through the annotated pointer.
#define LIMONCELLO_PT_GUARDED_BY(x) \
  LIMONCELLO_THREAD_ANNOTATION(pt_guarded_by(x))
// Declares that callers must hold the given mutex(es) when calling the
// annotated function.
#define LIMONCELLO_REQUIRES(...) \
  LIMONCELLO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Declares that callers must NOT hold the given mutex(es); catches
// self-deadlock on non-reentrant locks.
#define LIMONCELLO_EXCLUDES(...) \
  LIMONCELLO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// The annotated function acquires / releases the given mutex(es).
#define LIMONCELLO_ACQUIRE(...) \
  LIMONCELLO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LIMONCELLO_RELEASE(...) \
  LIMONCELLO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Class-level markers used by the wrappers themselves.
#define LIMONCELLO_CAPABILITY(x) LIMONCELLO_THREAD_ANNOTATION(capability(x))
#define LIMONCELLO_SCOPED_CAPABILITY \
  LIMONCELLO_THREAD_ANNOTATION(scoped_lockable)
// Opts a function out of the analysis (rare; justify at the call site).
#define LIMONCELLO_NO_THREAD_SAFETY_ANALYSIS \
  LIMONCELLO_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace limoncello {

// A std::mutex carrying the `capability` attribute so clang can track which
// code paths hold it. Non-reentrant, not copyable or movable.
class LIMONCELLO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LIMONCELLO_ACQUIRE() { mu_.lock(); }
  void Unlock() LIMONCELLO_RELEASE() { mu_.unlock(); }

  // Escape hatch for CondVar and std interop; holding the returned reference
  // does not register with the analysis.
  std::mutex& native_handle() { return mu_; }

 private:
  std::mutex mu_;  // limolint:allow(raw-thread)
};

// RAII lock for Mutex, visible to the analysis as a scoped capability:
// clang knows the mutex is held from construction to destruction.
class LIMONCELLO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LIMONCELLO_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() LIMONCELLO_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Condition variable paired with Mutex. Wait() takes the Mutex directly so
// call sites never touch the underlying std types; the annotation tells
// clang the mutex is held across the wait (released and reacquired inside,
// like std::condition_variable).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Blocks until pred() is true. The caller must hold *mu; pred runs with
  // *mu held.
  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) LIMONCELLO_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->native_handle(),  // limolint:allow(raw-thread)
                                      std::adopt_lock);
    cv_.wait(lock, pred);
    lock.release();  // the caller still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // limolint:allow(raw-thread)
};

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_MUTEX_H_
