#include "util/crc32.h"

#include <array>

namespace limoncello {

namespace {

constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrc32Table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace limoncello
