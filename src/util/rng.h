// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library draws from an explicitly seeded
// Rng so that simulations and benchmarks reproduce bit-for-bit. The core
// generator is xoshiro256**, seeded via SplitMix64 per Blackman & Vigna's
// recommendation.
#ifndef LIMONCELLO_UTIL_RNG_H_
#define LIMONCELLO_UTIL_RNG_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>

#include "util/check.h"

namespace limoncello {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** with convenience distributions. Copyable: forking an Rng by
// copy is an explicit, visible operation at the call site.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  // Uniform over all 64-bit values.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be nonzero. Uses rejection sampling
  // to avoid modulo bias.
  std::uint64_t NextBounded(std::uint64_t bound) {
    LIMONCELLO_DCHECK(bound != 0);
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    LIMONCELLO_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(NextBounded(
                    static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box-Muller (one value per call; the spare is kept).
  double NextGaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * std::numbers::pi * u2);
    have_spare_ = true;
    return mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  double NextGaussian(double mean, double stddev) {
    return mean + stddev * NextGaussian();
  }

  // Lognormal: exp(N(mu, sigma)). Used for memcpy call-size modeling
  // (paper Fig. 14: small body, heavy tail).
  double NextLognormal(double mu, double sigma) {
    return std::exp(NextGaussian(mu, sigma));
  }

  // Exponential with the given mean.
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  // Pareto (heavy tail) with scale xm and shape alpha.
  double NextPareto(double xm, double alpha) {
    double u = NextDouble();
    if (u < 1e-300) u = 1e-300;
    return xm / std::pow(u, 1.0 / alpha);
  }

  // Forks an independent stream: deterministic function of current state
  // and the label, without disturbing this generator's sequence.
  Rng Fork(std::uint64_t label) const {
    std::uint64_t s = state_[0] ^ Rotl(state_[3], 13) ^ label;
    return Rng(SplitMix64(s));
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_RNG_H_
