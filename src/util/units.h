// Common units and strong-ish typedefs used across the library.
#ifndef LIMONCELLO_UTIL_UNITS_H_
#define LIMONCELLO_UTIL_UNITS_H_

#include <cstdint>

namespace limoncello {

inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;

// All simulated caches and memory operate on 64-byte lines.
inline constexpr std::uint64_t kCacheLineBytes = 64;
inline constexpr int kCacheLineShift = 6;

// Simulated time is kept in nanoseconds.
using SimTimeNs = std::int64_t;
inline constexpr SimTimeNs kNsPerUs = 1000;
inline constexpr SimTimeNs kNsPerMs = 1000 * kNsPerUs;
inline constexpr SimTimeNs kNsPerSec = 1000 * kNsPerMs;

// Physical-ish addresses in the simulator.
using Addr = std::uint64_t;

inline constexpr Addr LineAddr(Addr byte_addr) {
  return byte_addr >> kCacheLineShift;
}
inline constexpr Addr LineBase(Addr byte_addr) {
  return byte_addr & ~(kCacheLineBytes - 1);
}

// Converts bytes transferred over a nanosecond interval to GB/s (decimal).
inline constexpr double BytesPerNsToGBps(double bytes, double ns) {
  return ns > 0 ? bytes / ns : 0.0;  // bytes/ns == GB/s
}

}  // namespace limoncello

#endif  // LIMONCELLO_UTIL_UNITS_H_
