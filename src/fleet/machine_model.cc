#include "fleet/machine_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace limoncello {

const char* DeploymentModeName(DeploymentMode mode) {
  switch (mode) {
    case DeploymentMode::kBaseline:
      return "baseline";
    case DeploymentMode::kAblationOff:
      return "ablation_off";
    case DeploymentMode::kHardLimoncello:
      return "hard_limoncello";
    case DeploymentMode::kFullLimoncello:
      return "full_limoncello";
  }
  return "unknown";
}

std::optional<double> MachineModel::TelemetryAdapter::SampleUtilization() {
  double u = machine_->state_->last_bw_utilization[machine_->slot_];
  if (machine_->telemetry_noise_stddev_ > 0.0) {
    u += machine_->rng().NextGaussian(0.0,
                                      machine_->telemetry_noise_stddev_);
  }
  return std::max(0.0, u);
}

MachineModel::MachineModel(const PlatformConfig& platform,
                           DeploymentMode mode,
                           const ControllerConfig& controller_config,
                           Rng rng, const FaultPlan* fault_plan,
                           int daemon_snapshot_period_ticks,
                           FleetState* fleet_state, std::size_t slot,
                           const LatencyLut* latency_lut)
    : platform_(platform),
      mode_(mode),
      own_state_(fleet_state != nullptr ? nullptr : new FleetState(1)),
      state_(fleet_state != nullptr ? fleet_state : own_state_.get()),
      slot_(fleet_state != nullptr ? slot : 0),
      own_lut_(latency_lut != nullptr ? nullptr
                                      : new LatencyLut(platform.latency)),
      lut_(latency_lut != nullptr ? latency_lut : own_lut_.get()),
      msr_(platform.cores),
      injector_(fault_plan != nullptr
                    ? std::make_unique<FaultInjector>(fault_plan)
                    : nullptr),
      faulty_msr_(injector_ != nullptr
                      ? std::make_unique<FaultyMsrDevice>(&msr_,
                                                          injector_.get())
                      : nullptr),
      prefetch_control_(faulty_msr_ != nullptr
                            ? static_cast<MsrDevice*>(faulty_msr_.get())
                            : &msr_,
                        platform.msr_layout, 0, platform.cores) {
  LIMONCELLO_CHECK_LT(slot_, state_->size());
  // Claim the hot-state slot: the machine's RNG stream and zeroed
  // telemetry scalars (a fleet-shared FleetState may be reused across
  // machine generations in principle, so never trust the slot's bits).
  this->rng() = rng;
  state_->last_bw_utilization[slot_] = 0.0;
  state_->last_cpu_utilization[slot_] = 0.0;
  state_->utilization_ewma[slot_] = 0.0;
  state_->last_offered_qps[slot_] = 0.0;
  state_->last_served_qps[slot_] = 0.0;
  state_->controller_state[slot_] = 0;
  // Wire register bits to the machine's prefetcher state: the machine is
  // "on" only when every engine on every core is enabled. (One observer
  // per machine; reads back through PrefetchControl.)
  msr_.AddWriteObserver([this](int, MsrRegister, std::uint64_t) {
    const std::optional<bool> all_on = prefetch_control_.AllEnabled();
    SetPrefetchersOn(all_on.value_or(true));
  });
  if (injector_ != nullptr) {
    // Reboot: the register file silently reverts to the BIOS default
    // (all prefetchers enabled). The reset acts on the *inner* device —
    // firmware does not route through the fault decorator — and the
    // power-on writes cannot fail there.
    injector_->SetRebootCallback([this] {
      msr_.ResetToPowerOn();
      const PrefetchMsrMap& map = prefetch_control_.msr_map();
      const std::uint64_t power_on =
          map.set_bit_disables ? 0 : map.engine_mask;
      for (int cpu = 0; cpu < platform_.cores; ++cpu) {
        LIMONCELLO_CHECK(msr_.Write(cpu, map.reg, power_on));
      }
    });
  }
  // Power-on state: prefetchers enabled. On enable-bit layouts this
  // requires setting the bits (the register file zero-initializes). This
  // happens before any injector tick, so the writes cannot fail.
  LIMONCELLO_CHECK_EQ(prefetch_control_.EnableAll(), platform.cores);
  SetPrefetchersOn(true);

  switch (mode_) {
    case DeploymentMode::kBaseline:
      SetPrefetchersOn(true);
      break;
    case DeploymentMode::kAblationOff:
      LIMONCELLO_CHECK_EQ(prefetch_control_.DisableAll(), platform.cores);
      break;
    case DeploymentMode::kFullLimoncello:
      soft_prefetch_on_ = true;
      [[fallthrough]];
    case DeploymentMode::kHardLimoncello: {
      telemetry_ = std::make_unique<TelemetryAdapter>(this);
      actuator_ = std::make_unique<MsrPrefetchActuator>(&prefetch_control_,
                                                        platform_.cores);
      UtilizationSource* source = telemetry_.get();
      if (injector_ != nullptr) {
        faulty_telemetry_ = std::make_unique<FaultyUtilizationSource>(
            telemetry_.get(), injector_.get());
        source = faulty_telemetry_.get();
      }
      daemon_ = std::make_unique<LimoncelloDaemon>(controller_config,
                                                   source, actuator_.get());
      // Fleet machines never read the daemon's per-tick traces, and at
      // 100k machines x 600 ticks the TimeSeries appends would dominate
      // both allocation and memory. Tools that want traces own their
      // daemons directly.
      daemon_->set_trace_recording(false);
      controller_config_ = controller_config;
      snapshot_period_ticks_ = daemon_snapshot_period_ticks;
      daemon_source_ = source;
      if (injector_ != nullptr) {
        // The restart itself runs from Tick (not from inside BeginTick):
        // the window may close while the machine is crashed, in which
        // case the supervisor's restart waits for the reboot.
        injector_->SetDaemonRestartCallback(
            [this] { daemon_restart_pending_ = true; });
      }
      break;
    }
  }
  MirrorControllerState();
}

void MachineModel::MirrorControllerState() {
  state_->controller_state[slot_] =
      daemon_ != nullptr
          ? static_cast<std::uint64_t>(daemon_->controller().state())
          : 0;
}

// limolint:cold-path — crash recovery: runs only when a fault window
// killed the daemon, a designed rarity that may allocate freely.
void MachineModel::RestartDaemon() {
  ++recovery_.daemon_restarts;
  // A new process: every bit of in-memory daemon state is gone. Only
  // the journal snapshot (if any) and the hardware registers survive.
  daemon_ = std::make_unique<LimoncelloDaemon>(controller_config_,
                                               daemon_source_,
                                               actuator_.get());
  daemon_->set_trace_recording(false);
  if (journal_snapshot_.has_value()) {
    // Rejected snapshots degrade to a cold start, same as limoncellod.
    (void)daemon_->RestoreState(*journal_snapshot_);
  }
  // Cold or warm, the fresh daemon asserts its intent against whatever
  // state the hardware froze at while it was dead.
  (void)daemon_->ReconcileHardwareState();
}

void MachineModel::AddTask(const Task& task) {
  LIMONCELLO_CHECK(task.spec != nullptr);
  LIMONCELLO_CHECK_GT(task.share, 0.0);
  tasks_.push_back(task);
}

void MachineModel::ClearTasks() { tasks_.clear(); }

void MachineModel::CategoryMissModel(int category, double base_misses,
                                     CategoryLoad* out) const {
  const PrefetchResponse& r = platform_.prefetch;
  const bool tax = category != kNonTaxCategoryIndex;
  double misses = base_misses;
  if (prefetchers_on()) {
    const double coverage =
        tax ? r.hw_coverage_tax : r.hw_coverage_nontax;
    const double covered = misses * coverage;
    misses -= covered;
    if (!tax) misses *= r.hw_pollution_nontax;
    out->hw_covered += covered;
  } else if (soft_prefetch_on_ && tax) {
    const double covered = misses * r.sw_coverage_tax;
    misses -= covered;
    out->sw_covered += covered;
  }
  out->misses += misses;
}

double MachineModel::EstimateCpuCost(const ServiceSpec& spec,
                                     double share) const {
  // Optimistic estimate at unloaded latency with prefetchers on.
  const double latency_ns = platform_.latency.unloaded_ns;
  const double mpki = spec.base_mpki * 0.7;  // rough coverage discount
  const double cpi = platform_.base_cpi +
                     mpki / 1000.0 * latency_ns * platform_.freq_ghz /
                         platform_.mlp;
  const double instr_per_sec =
      spec.nominal_qps * share * spec.instructions_per_request;
  const double cores_needed =
      instr_per_sec * cpi / (platform_.freq_ghz * 1e9);
  return cores_needed / static_cast<double>(platform_.cores);
}

// limolint:hot-path — per-machine per-tick entry point; the fleet engine
// calls this 100k times per simulated tick, and bench_fleet_gate pins its
// steady-state allocation rate below 0.05/machine-tick.
MachineModel::TickResult MachineModel::Tick(
    SimTimeNs now_ns, const std::vector<double>& load_factors) {
  // 0. Fault windows open/close before anything observes them; a crash
  // window (or its ending reboot) short-circuits the whole tick.
  if (injector_ != nullptr) {
    injector_->BeginTick();
    if (injector_->MachineDown()) {
      TickResult down_result;
      down_result.down = true;
      down_result.prefetchers_on = prefetchers_on();
      // Load is still routed here and all of it fails.
      for (const Task& task : tasks_) {
        const double factor =
            task.service_index < static_cast<int>(load_factors.size())
                ? load_factors[static_cast<std::size_t>(task.service_index)]
                : 1.0;
        down_result.offered_qps +=
            task.spec->nominal_qps * task.share * factor;
      }
      ++recovery_.down_ticks;
      state_->last_bw_utilization[slot_] = 0.0;
      state_->last_cpu_utilization[slot_] = 0.0;
      state_->last_offered_qps[slot_] = down_result.offered_qps;
      state_->last_served_qps[slot_] = 0.0;
      return down_result;
    }
  }

  // 1. Control plane: the daemon observes last tick's telemetry and may
  // toggle the prefetchers via MSR writes before this tick's work runs.
  if (daemon_ != nullptr && daemon_restart_pending_ &&
      (injector_ == nullptr || !injector_->DaemonDown())) {
    RestartDaemon();
    daemon_restart_pending_ = false;
  }
  if (daemon_ != nullptr && injector_ != nullptr &&
      injector_->DaemonDown()) {
    // The controller process is dead but the machine keeps serving on
    // the frozen prefetcher state. The telemetry exporter outlives the
    // daemon, so burn this tick's sample: the machine rng advances
    // exactly as it would with a live daemon, keeping the run
    // comparable sample-for-sample with a restart-free control arm.
    (void)daemon_source_->SampleUtilization();
    ++recovery_.daemon_down_ticks;
  } else if (daemon_ != nullptr) {
    const LimoncelloDaemon::TickRecord tick_record =
        daemon_->RunTick(now_ns);
    // Divergence accounting: ticks where the hardware state disagrees
    // with the FSM's intent (injected MSR failures, post-reboot BIOS
    // state) — the reconvergence metric the chaos tests assert on.
    const bool intent = daemon_->controller().PrefetchersShouldBeEnabled();
    if (prefetchers_on() != intent) {
      ++recovery_.diverged_ticks;
      ++divergence_run_;
    } else if (divergence_run_ > 0) {
      ++recovery_.reconverge_events;
      recovery_.reconverge_ticks_sum += divergence_run_;
      recovery_.max_reconverge_ticks = std::max<std::uint64_t>(
          recovery_.max_reconverge_ticks, divergence_run_);
      divergence_run_ = 0;
    }
    // In-memory journal: same cadence as RecoveryManager (every
    // actuation, plus every period ticks).
    if (snapshot_period_ticks_ > 0 &&
        (tick_record.action != ControllerAction::kNone ||
         daemon_->stats().ticks %
                 static_cast<std::uint64_t>(snapshot_period_ticks_) ==
             0)) {
      journal_snapshot_ = daemon_->ExportState();
    }
  }
  MirrorControllerState();

  TickResult result;
  result.prefetchers_on = prefetchers_on();

  // 2. Demand model: one pass over the tasks reduces the whole machine
  // to a handful of scalar coefficients. Per-task demand at an assumed
  // utilization u factors as
  //   required_cores(u) = cores_base + cores_miss * penalty(u)
  //   bytes(u)          = bytes_at_full * scale(u)
  // where penalty(u) = L(u) * freq / mlp is the only u-dependent term,
  // so the fixed-point bisection below runs on pure scalars instead of
  // re-walking the task list ~21 times (the old per-task scratch vector
  // — and its per-tick allocation — is gone entirely).
  const PrefetchResponse& pr = platform_.prefetch;
  double offered_total = 0.0;
  double cores_base = 0.0;   // Σ instr_rate * base_cpi / (freq_hz)
  double cores_miss = 0.0;   // Σ instr_rate * mpki_eff / 1000 / freq_hz
  double bytes_at_full = 0.0;
  // Per-category instruction and miss rates (for the cycle accounting).
  std::array<double, kNumCategories> cat_instr{};
  std::array<double, kNumCategories> cat_miss{};
  for (const Task& task : tasks_) {
    const double factor =
        task.service_index < static_cast<int>(load_factors.size())
            ? load_factors[static_cast<std::size_t>(task.service_index)]
            : 1.0;
    const double offered = task.spec->nominal_qps * task.share * factor;
    const double instr_rate =
        offered * task.spec->instructions_per_request;
    offered_total += offered;
    double mpki_eff = 0.0;
    double traffic_per_kinstr = 0.0;
    for (int c = 0; c < kNumCategories; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      const double mix = task.spec->category_mix[ci];
      CategoryLoad cat;
      cat.instructions = mix;  // per-instruction weight
      CategoryMissModel(c, task.spec->base_mpki * mix, &cat);
      const bool tax = c != kNonTaxCategoryIndex;
      mpki_eff += cat.misses;
      traffic_per_kinstr +=
          cat.misses +
          cat.hw_covered /
              (tax ? pr.hw_accuracy_tax : pr.hw_accuracy_nontax) +
          cat.sw_covered / pr.sw_accuracy;
      cat_instr[ci] += instr_rate * cat.instructions;
      cat_miss[ci] += instr_rate * cat.misses / 1000.0;
    }
    const double core_rate = instr_rate / (platform_.freq_ghz * 1e9);
    cores_base += core_rate * platform_.base_cpi;
    cores_miss += core_rate * mpki_eff / 1000.0;
    bytes_at_full += instr_rate * traffic_per_kinstr / 1000.0 *
                     static_cast<double>(kCacheLineBytes);
  }

  // 3. Fixed point: latency depends on utilization, utilization depends
  // on served work, served work depends on latency (via CPI). The map
  // u -> utilization(latency(u)) is monotone decreasing, so the
  // self-consistent operating point is found by bisection (damped
  // iteration oscillates on the steep part of the curve).
  const double cores = static_cast<double>(platform_.cores);
  const double saturation_bytes = platform_.saturation_gbps * 1e9;
  // Memory-bandwidth ceiling: the qualification threshold is a derated
  // operating point, not the physical channel limit — sockets can burst
  // well past it (at terrible latency) before throughput hard-caps. The
  // ceiling equals the latency LUT's domain bound by construction.
  const double max_ratio = LatencyLut::kMaxUtilization;

  double required_cores = 0.0;
  double scale = 1.0;
  double total_bytes = 0.0;
  // Evaluates served load and traffic at the given assumed utilization;
  // returns the utilization that load would actually generate.
  const auto evaluate = [&](double u_assumed) {
    const double penalty =
        lut_->At(u_assumed) * platform_.freq_ghz / platform_.mlp;
    required_cores = cores_base + cores_miss * penalty;
    scale = required_cores > cores ? cores / required_cores : 1.0;
    total_bytes = bytes_at_full * scale;
    if (total_bytes > saturation_bytes * max_ratio) {
      scale *= saturation_bytes * max_ratio / total_bytes;
      total_bytes = saturation_bytes * max_ratio;
    }
    return total_bytes / saturation_bytes;
  };

  double lo = 0.0;
  double hi = max_ratio;
  if (evaluate(lo) <= lo) {
    hi = lo;  // idle machine: fixed point at zero
  } else {
    for (int iter = 0; iter < 20; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (evaluate(mid) > mid) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  const double u_star = hi;
  (void)evaluate(u_star);  // leave scale/total_bytes at the solution
  const double latency_ns = lut_->At(u_star);
  result.latency_ns = latency_ns;
  const double miss_penalty_cycles =
      latency_ns * platform_.freq_ghz / platform_.mlp;

  // 4. Outputs.
  result.offered_qps = offered_total;
  result.served_qps = offered_total * scale;
  for (int c = 0; c < kNumCategories; ++c) {
    const std::size_t ci = static_cast<std::size_t>(c);
    // cycles = instructions * base_cpi + misses * penalty, at the served
    // (scaled) instruction rate.
    result.category_cycles[ci] =
        scale * (cat_instr[ci] * platform_.base_cpi +
                 cat_miss[ci] * miss_penalty_cycles);
  }
  const double busy_cores = std::min(required_cores * scale, cores);
  result.cpu_utilization = busy_cores / cores;
  result.bandwidth_gbps = total_bytes / 1e9;
  result.bandwidth_utilization = total_bytes / saturation_bytes;

  // 5. Close the loop for the next tick.
  state_->last_bw_utilization[slot_] = result.bandwidth_utilization;
  state_->last_cpu_utilization[slot_] = result.cpu_utilization;
  state_->last_offered_qps[slot_] = result.offered_qps;
  state_->last_served_qps[slot_] = result.served_qps;
  state_->utilization_ewma[slot_] +=
      0.35 * (result.bandwidth_utilization -
              state_->utilization_ewma[slot_]);
  return result;
}

}  // namespace limoncello
