// Fleet simulator and A/B experiment harness.
//
// Runs a population of analytic machines under a deployment mode over a
// span of 1-second telemetry ticks, with diurnal+bursty service load and
// scheduler rebalancing, and collects the machine-level and
// workload-level metrics the paper reports (§5 "Metrics"): memory
// bandwidth, memory latency, CPU utilization, and application throughput.
//
// Experiments compare arms run with identical seeds (identical load
// sequences and placements) that differ only in deployment mode — the
// paper's experiment/control methodology.
#ifndef LIMONCELLO_FLEET_FLEET_SIMULATOR_H_
#define LIMONCELLO_FLEET_FLEET_SIMULATOR_H_

#include <array>
#include <memory>
#include <vector>

#include "core/controller_config.h"
#include "faults/fault_plan.h"
#include "fleet/fleet_state.h"
#include "fleet/machine_model.h"
#include "fleet/platform.h"
#include "fleet/scheduler.h"
#include "fleet/service.h"
#include "sim/memory/latency_curve.h"
#include "stats/histogram.h"
#include "util/rng.h"

namespace limoncello {

class ThreadPool;

struct FleetOptions {
  int num_machines = 200;
  // Target average CPU fill used to size the task population.
  double fill = 0.55;
  SimTimeNs tick_ns = 1 * kNsPerSec;
  int ticks = 1800;
  int rebalance_period_ticks = 60;
  std::uint64_t seed = 42;
  // Scales every service's memory intensity (base MPKI); models the
  // year-on-year growth in workload data intensity behind paper Fig. 3.
  double memory_intensity_scale = 1.0;
  ClusterScheduler::Options scheduler;
  // Compresses the diurnal cycle so short runs still sweep load levels.
  SimTimeNs diurnal_period_ns = 1800LL * kNsPerSec;
  // Worker threads for the tick loop. 0 = auto (LIMONCELLO_THREADS env,
  // else hardware_concurrency); 1 = exact serial path (no workers).
  // Results are bit-identical at any thread count: machines tick in
  // static contiguous slices (FleetSlicePlan, a pure function of the
  // machine count) whose partial metrics are reduced in slice order,
  // independent of which thread ran which slice. See DESIGN.md §12.
  int num_threads = 0;
  // Chaos testing: when any rate is set, every machine gets its own
  // deterministic FaultPlan drawn from the fleet seed (label 0xFA000+m),
  // so fault load is bit-identical across runs and thread counts too.
  // Placement shadows stay fault-free (placement is an arm invariant).
  FaultSpec faults;
  // Journal cadence for the in-memory daemon state snapshots that back
  // daemon-restart recovery (see MachineModel). Only active on chaos
  // runs (faults.Any()); <= 0 disables snapshots, so restarted daemons
  // cold-start.
  int daemon_snapshot_period_ticks = 8;
};

// Per-machine aggregates over a run (for bucketed comparisons). Aligned
// to a cache line: adjacent machines may be written by different worker
// threads when a slice boundary falls between them.
struct alignas(64) MachineAggregate {
  double cpu_utilization_sum = 0.0;
  double bw_utilization_sum = 0.0;
  double latency_ns_sum = 0.0;
  double served_qps_sum = 0.0;
  double offered_qps_sum = 0.0;
  std::uint64_t ticks = 0;
  std::uint64_t prefetcher_off_ticks = 0;

  double AvgCpu() const {
    return ticks ? cpu_utilization_sum / static_cast<double>(ticks) : 0.0;
  }
  double AvgBwUtil() const {
    return ticks ? bw_utilization_sum / static_cast<double>(ticks) : 0.0;
  }
  double AvgLatencyNs() const {
    return ticks ? latency_ns_sum / static_cast<double>(ticks) : 0.0;
  }
};

struct FleetMetrics {
  Histogram bandwidth_gbps{0.5, 1.02};
  Histogram bandwidth_utilization{0.001, 1.02};
  Histogram latency_ns{1.0, 1.01};
  double served_qps_sum = 0.0;
  double offered_qps_sum = 0.0;
  std::array<double, kNumCategories> category_cycles{};
  std::uint64_t saturated_machine_ticks = 0;
  std::uint64_t machine_ticks = 0;
  std::uint64_t prefetcher_off_ticks = 0;
  std::uint64_t controller_toggles = 0;
  // Fault-load metrics (all zero on a fault-free run). Injected-fault
  // counters come from the per-machine injectors; the daemon counters
  // aggregate the hardening paths (see LimoncelloDaemon::Stats).
  std::uint64_t down_machine_ticks = 0;
  std::uint64_t diverged_machine_ticks = 0;
  std::uint64_t reconverge_events = 0;
  std::uint64_t reconverge_ticks_sum = 0;
  std::uint64_t max_reconverge_ticks = 0;
  std::uint64_t telemetry_faults_injected = 0;
  std::uint64_t msr_write_faults_injected = 0;
  std::uint64_t crashes_injected = 0;
  std::uint64_t reboots_completed = 0;
  std::uint64_t failsafe_resets = 0;
  std::uint64_t reboots_detected = 0;
  std::uint64_t state_reasserts = 0;
  // Daemon-lifecycle metrics (daemon-restart fault windows).
  std::uint64_t daemon_kills_injected = 0;
  std::uint64_t daemon_restarts_completed = 0;
  std::uint64_t daemon_down_machine_ticks = 0;
  std::uint64_t warm_restores = 0;
  std::uint64_t recovery_reconciles = 0;
  std::vector<MachineAggregate> machines;

  // Folds another partial into this one: histograms via Histogram::Merge,
  // scalars by summation. Per-machine aggregates (`machines`) are NOT
  // merged — shard partials carry fleet-wide totals only, while machine
  // aggregates are written in place (disjoint per machine).
  void Merge(const FleetMetrics& other);

  double SaturatedFraction() const {
    return machine_ticks ? static_cast<double>(saturated_machine_ticks) /
                               static_cast<double>(machine_ticks)
                         : 0.0;
  }
  double TotalCategoryCycles() const {
    double total = 0.0;
    for (double c : category_cycles) total += c;
    return total;
  }
  // Fraction of machine-ticks the fleet was up (1.0 without faults).
  double Availability() const {
    return machine_ticks ? 1.0 - static_cast<double>(down_machine_ticks) /
                                     static_cast<double>(machine_ticks)
                         : 1.0;
  }
  double MeanTicksToReconverge() const {
    return reconverge_events
               ? static_cast<double>(reconverge_ticks_sum) /
                     static_cast<double>(reconverge_events)
               : 0.0;
  }
};

class FleetSimulator {
 public:
  FleetSimulator(const PlatformConfig& platform, DeploymentMode mode,
                 const ControllerConfig& controller,
                 const FleetOptions& options);
  ~FleetSimulator();

  // Runs the configured span and returns the collected metrics. The run
  // is epoch-batched: ticks are grouped into epochs that end at scheduler
  // rebalance boundaries (capped at kMaxEpochTicks), the serial phases
  // (load-process update, rebalance) run once per epoch boundary, and a
  // single parallel region per epoch walks each machine slice through
  // the whole epoch machine-major — one barrier per epoch instead of one
  // per tick. See FleetOptions::num_threads for the determinism contract.
  FleetMetrics Run();

  // Ticks per parallel epoch when no rebalance boundary cuts earlier.
  static constexpr int kMaxEpochTicks = 64;

  const std::vector<std::unique_ptr<MachineModel>>& machines() const {
    return machines_;
  }

 private:
  void PlaceWorkloads();

  // The parallel epoch body: walks machines [first, last) through the
  // whole epoch machine-major, accumulating into this slice's partial
  // and the per-machine aggregates. Extracted from Run()'s slice lambda
  // so the hot loop is a named call-graph node (limolint:hot-path);
  // bit-identical to the original in-lambda form.
  void TickEpochSlice(std::size_t first, std::size_t last, int epoch_start,
                      int epoch_len,
                      const std::vector<std::vector<double>>& epoch_factors,
                      FleetMetrics& partial,
                      std::vector<MachineAggregate>& aggregates);

  PlatformConfig platform_;
  DeploymentMode mode_;
  ControllerConfig controller_;
  FleetOptions options_;
  Rng rng_;
  std::vector<ServiceSpec> services_;
  std::vector<std::unique_ptr<LoadProcess>> load_processes_;
  // Per-machine fault schedules; empty when options.faults has no rates.
  // Stable storage: machines hold pointers into this vector.
  std::vector<FaultPlan> fault_plans_;
  // Hot per-machine state (SoA) and the shared latency table; must be
  // declared before machines_ (machines hold pointers into both).
  std::unique_ptr<FleetState> state_;
  LatencyLut lut_;
  std::vector<std::unique_ptr<MachineModel>> machines_;
  ClusterScheduler scheduler_;
  std::unique_ptr<ThreadPool> pool_;
};

// Convenience: runs one arm with the given mode, all other parameters
// identical (used by every fleet bench).
FleetMetrics RunFleetArm(const PlatformConfig& platform,
                         DeploymentMode mode,
                         const ControllerConfig& controller,
                         const FleetOptions& options);

}  // namespace limoncello

#endif  // LIMONCELLO_FLEET_FLEET_SIMULATOR_H_
