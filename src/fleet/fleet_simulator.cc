#include "fleet/fleet_simulator.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "util/check.h"
#include "util/thread_pool.h"

namespace limoncello {

namespace {

// One slice's partial metrics, padded to its own cache line(s) so two
// workers accumulating adjacent slices never write the same line. (The
// histograms' bucket storage lives in separate per-partial heap blocks,
// so the scalar counters here are the only false-sharing hazard.)
struct alignas(64) SlicePartial {
  FleetMetrics metrics;
};

}  // namespace

void FleetMetrics::Merge(const FleetMetrics& other) {
  bandwidth_gbps.Merge(other.bandwidth_gbps);
  bandwidth_utilization.Merge(other.bandwidth_utilization);
  latency_ns.Merge(other.latency_ns);
  served_qps_sum += other.served_qps_sum;
  offered_qps_sum += other.offered_qps_sum;
  for (int c = 0; c < kNumCategories; ++c) {
    category_cycles[static_cast<size_t>(c)] +=
        other.category_cycles[static_cast<size_t>(c)];
  }
  saturated_machine_ticks += other.saturated_machine_ticks;
  machine_ticks += other.machine_ticks;
  prefetcher_off_ticks += other.prefetcher_off_ticks;
  controller_toggles += other.controller_toggles;
  down_machine_ticks += other.down_machine_ticks;
  diverged_machine_ticks += other.diverged_machine_ticks;
  reconverge_events += other.reconverge_events;
  reconverge_ticks_sum += other.reconverge_ticks_sum;
  max_reconverge_ticks =
      std::max(max_reconverge_ticks, other.max_reconverge_ticks);
  telemetry_faults_injected += other.telemetry_faults_injected;
  msr_write_faults_injected += other.msr_write_faults_injected;
  crashes_injected += other.crashes_injected;
  reboots_completed += other.reboots_completed;
  failsafe_resets += other.failsafe_resets;
  reboots_detected += other.reboots_detected;
  state_reasserts += other.state_reasserts;
  daemon_kills_injected += other.daemon_kills_injected;
  daemon_restarts_completed += other.daemon_restarts_completed;
  daemon_down_machine_ticks += other.daemon_down_machine_ticks;
  warm_restores += other.warm_restores;
  recovery_reconciles += other.recovery_reconciles;
}

FleetSimulator::FleetSimulator(const PlatformConfig& platform,
                               DeploymentMode mode,
                               const ControllerConfig& controller,
                               const FleetOptions& options)
    : platform_(platform),
      mode_(mode),
      controller_(controller),
      options_(options),
      rng_(options.seed),
      services_(ServiceSpec::FleetArchetypes()),
      state_(std::make_unique<FleetState>(
          static_cast<std::size_t>(std::max(1, options.num_machines)))),
      lut_(platform.latency),
      scheduler_(options.scheduler, rng_.Fork(0x5c)) {
  LIMONCELLO_CHECK_GT(options.num_machines, 0);
  LIMONCELLO_CHECK_GT(options.ticks, 0);
  LIMONCELLO_CHECK_GT(options.memory_intensity_scale, 0.0);
  for (ServiceSpec& spec : services_) {
    spec.base_mpki *= options.memory_intensity_scale;
  }

  // rng_ is never advanced (Fork is const), so it doubles as the base
  // generator: rng_.Fork(label) yields the same stream for a given seed
  // and label as a freshly seeded Rng would, without re-seeding one per
  // fork below.
  //
  // Load processes are seeded independently of everything else so that
  // two arms with the same fleet seed see identical load sequences.
  for (std::size_t s = 0; s < services_.size(); ++s) {
    LoadProcess::Options lp;
    lp.diurnal_period_ns = options.diurnal_period_ns;
    lp.phase = 2.0 * 3.14159265358979 * static_cast<double>(s) /
               static_cast<double>(services_.size());
    load_processes_.push_back(
        std::make_unique<LoadProcess>(lp, rng_.Fork(0x700 + s)));
  }

  // Fault plans are drawn fully before any machine is built (machines
  // hold pointers into the vector, so it must never reallocate after).
  if (options.faults.Any()) {
    fault_plans_.reserve(static_cast<std::size_t>(options.num_machines));
    for (int m = 0; m < options.num_machines; ++m) {
      fault_plans_.push_back(FaultPlan::Generate(
          options.faults, options.ticks,
          rng_.Fork(0xFA000 + static_cast<std::uint64_t>(m))));
    }
  }
  machines_.reserve(static_cast<std::size_t>(options.num_machines));
  for (int m = 0; m < options.num_machines; ++m) {
    machines_.push_back(std::make_unique<MachineModel>(
        platform, mode, controller,
        rng_.Fork(0x9000 + static_cast<std::uint64_t>(m)),
        fault_plans_.empty() ? nullptr
                             : &fault_plans_[static_cast<std::size_t>(m)],
        fault_plans_.empty() ? 0 : options.daemon_snapshot_period_ticks,
        state_.get(), static_cast<std::size_t>(m), &lut_));
  }
  pool_ = std::make_unique<ThreadPool>(
      ResolveThreadCount(options.num_threads));
  PlaceWorkloads();
}

FleetSimulator::~FleetSimulator() = default;

void FleetSimulator::PlaceWorkloads() {
  scheduler_.AssignCaps(machines_.size());
  std::vector<MachineModel*> raw;
  raw.reserve(machines_.size());
  for (auto& machine : machines_) raw.push_back(machine.get());

  // Size the task population to the target fill: compute the CPU cost of
  // one average-size shard of each service and replicate shards until the
  // target total is reached.
  double cost_one_round = 0.0;
  for (const ServiceSpec& spec : services_) {
    cost_one_round += raw[0]->EstimateCpuCost(spec, 1.0);
  }
  LIMONCELLO_CHECK_GT(cost_one_round, 0.0);
  const double target_total =
      options_.fill * static_cast<double>(options_.num_machines);
  const int rounds = std::max(
      1, static_cast<int>(std::round(target_total / cost_one_round)));

  // Placement happens in waves with warm-up ticks in between, so the
  // scheduler sees live bandwidth telemetry and stops feeding machines
  // that reach memory-bandwidth saturation (paper §2.1: this avoidance
  // is what caps CPU utilization on bandwidth-bound machines).
  //
  // The waves run against *shadow* baseline-mode machines so placement is
  // a pure function of the seed: every deployment arm starts from the
  // identical pre-rollout placement, and only runtime behaviour (and
  // later rebalancing) differs.
  FleetState shadow_state(machines_.size());
  std::vector<std::unique_ptr<MachineModel>> shadows;
  std::vector<MachineModel*> shadow_raw;
  shadows.reserve(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    shadows.push_back(std::make_unique<MachineModel>(
        platform_, DeploymentMode::kBaseline, controller_,
        rng_.Fork(0x9000 + m), nullptr, 0, &shadow_state, m, &lut_));
    shadow_raw.push_back(shadows.back().get());
  }

  constexpr int kWaves = 6;
  constexpr int kWarmTicks = 4;
  const std::vector<double> unit_load(services_.size(), 1.0);
  const FleetSlicePlan plan = FleetSlicePlan::For(shadows.size());
  int placed_rounds = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    const int wave_rounds =
        (rounds * (wave + 1)) / kWaves - placed_rounds;
    placed_rounds += wave_rounds;
    for (std::size_t s = 0; s < services_.size(); ++s) {
      scheduler_.PlaceService(static_cast<int>(s), services_[s],
                              wave_rounds, shadow_raw);
    }
    // Warm-up ticks on the shadows: telemetry catches up. Shadows are
    // independent, so the whole wave's warm-up is one parallel region
    // walked machine-major (no metrics are collected here — only
    // per-machine state advances, so the machine-major order is safe).
    pool_->ParallelFor(
        0, static_cast<std::int64_t>(plan.num_slices),
        [&](std::int64_t s) {
          const std::size_t first =
              plan.SliceBegin(static_cast<std::size_t>(s));
          const std::size_t last = plan.SliceEnd(
              static_cast<std::size_t>(s), shadows.size());
          for (std::size_t m = first; m < last; ++m) {
            for (int t = 0; t < kWarmTicks; ++t) {
              const SimTimeNs warm_now =
                  -kNsPerSec * (4LL * kWaves - 4 * wave - t);
              shadows[m]->Tick(warm_now, unit_load);
            }
          }
        },
        1);
  }
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    for (const MachineModel::Task& task : shadows[m]->tasks()) {
      raw[m]->AddTask(task);
    }
  }
}

// limolint:hot-path — the fleet engine's parallel inner loop: every
// machine-tick in a run flows through here, and bench_fleet_gate requires
// the steady state to stay allocation-free.
void FleetSimulator::TickEpochSlice(
    std::size_t first, std::size_t last, int epoch_start, int epoch_len,
    const std::vector<std::vector<double>>& epoch_factors,
    FleetMetrics& partial, std::vector<MachineAggregate>& aggregates) {
  // Machine-major: each machine runs the whole epoch before the
  // next machine starts, so its hot SoA state stays cache-resident
  // across the epoch's ticks. Machines are independent between
  // rebalance boundaries (and epochs never span one), so this
  // order change is invisible to the model.
  for (std::size_t m = first; m < last; ++m) {
    MachineModel& machine = *machines_[m];
    MachineAggregate& agg = aggregates[m];
    for (int t = 0; t < epoch_len; ++t) {
      const SimTimeNs now =
          static_cast<SimTimeNs>(epoch_start + t) * options_.tick_ns;
      const MachineModel::TickResult r = machine.Tick(
          now, epoch_factors[static_cast<std::size_t>(t)]);
      ++partial.machine_ticks;
      partial.offered_qps_sum += r.offered_qps;
      agg.offered_qps_sum += r.offered_qps;
      ++agg.ticks;
      if (r.down) {
        // Offered load counts (it was sent and lost); nothing
        // else is observable from a machine that is off. Down
        // ticks drag the machine's averages toward zero, which
        // is correct.
        ++partial.down_machine_ticks;
        continue;
      }
      partial.bandwidth_gbps.Add(r.bandwidth_gbps);
      partial.bandwidth_utilization.Add(r.bandwidth_utilization);
      partial.latency_ns.Add(r.latency_ns);
      partial.served_qps_sum += r.served_qps;
      for (int c = 0; c < kNumCategories; ++c) {
        partial.category_cycles[static_cast<size_t>(c)] +=
            r.category_cycles[static_cast<size_t>(c)];
      }
      if (r.bandwidth_utilization >= 0.95) {
        ++partial.saturated_machine_ticks;
      }
      if (!r.prefetchers_on) ++partial.prefetcher_off_ticks;

      agg.cpu_utilization_sum += r.cpu_utilization;
      agg.bw_utilization_sum += r.bandwidth_utilization;
      agg.latency_ns_sum += r.latency_ns;
      agg.served_qps_sum += r.served_qps;
      if (!r.prefetchers_on) ++agg.prefetcher_off_ticks;
    }
  }
}

FleetMetrics FleetSimulator::Run() {
  FleetMetrics metrics;
  metrics.machines.resize(machines_.size());
  std::vector<MachineModel*> raw;
  raw.reserve(machines_.size());
  for (auto& machine : machines_) raw.push_back(machine.get());

  // Per-slice partial metrics, accumulated across the whole run and
  // reduced in slice order at the end. A slice only ever touches its own
  // (cache-line-padded) partial and its own machines' aggregates, so the
  // arithmetic — and the result — is independent of thread scheduling.
  const FleetSlicePlan plan = FleetSlicePlan::For(machines_.size());
  std::vector<SlicePartial> partials(plan.num_slices);

  // Per-epoch load factors, precomputed serially ([tick - epoch_start]
  // -> per-service factor) so the parallel region reads immutable data.
  // Sized once; epochs never exceed kMaxEpochTicks.
  std::vector<std::vector<double>> epoch_factors(
      static_cast<std::size_t>(kMaxEpochTicks),
      std::vector<double>(services_.size(), 1.0));

  // The epoch body is hoisted out of the loop (it captures epoch_start /
  // epoch_len by reference) so the std::function is constructed — and
  // any capture storage allocated — once per run, not once per epoch.
  int epoch_start = 0;
  int epoch_len = 0;
  const std::function<void(std::int64_t)> run_slice =
      [&](std::int64_t s) {
        const std::size_t slice = static_cast<std::size_t>(s);
        TickEpochSlice(plan.SliceBegin(slice),
                       plan.SliceEnd(slice, machines_.size()), epoch_start,
                       epoch_len, epoch_factors, partials[slice].metrics,
                       metrics.machines);
      };

  int tick = 0;
  while (tick < options_.ticks) {
    // Serial phase at the epoch boundary: every machine has finished the
    // previous epoch, so the scheduler sees a consistent fleet.
    if (options_.rebalance_period_ticks > 0 && tick > 0 &&
        tick % options_.rebalance_period_ticks == 0) {
      scheduler_.Rebalance(raw);
    }
    // The epoch runs to the next rebalance boundary (task lists must not
    // change inside an epoch) or the cap, whichever is sooner.
    int epoch_end = std::min(options_.ticks, tick + kMaxEpochTicks);
    if (options_.rebalance_period_ticks > 0) {
      const int next_boundary =
          (tick / options_.rebalance_period_ticks + 1) *
          options_.rebalance_period_ticks;
      epoch_end = std::min(epoch_end, next_boundary);
    }
    epoch_start = tick;
    epoch_len = epoch_end - tick;
    // Load processes advance serially (they are a single stateful stream
    // per service); the factors become immutable epoch input.
    for (int t = 0; t < epoch_len; ++t) {
      const SimTimeNs now =
          static_cast<SimTimeNs>(tick + t) * options_.tick_ns;
      for (std::size_t s = 0; s < services_.size(); ++s) {
        epoch_factors[static_cast<std::size_t>(t)][s] =
            load_processes_[s]->Tick(now);
      }
    }
    // One parallel region — and one barrier — per epoch, not per tick.
    pool_->ParallelFor(0, static_cast<std::int64_t>(plan.num_slices),
                       run_slice, 1);
    tick = epoch_end;
  }
  // Slice-order reduction (serial): fixed order regardless of thread
  // count, so the merged metrics are bit-identical to the serial engine.
  for (const SlicePartial& partial : partials) {
    metrics.Merge(partial.metrics);
  }
  for (const auto& machine : machines_) {
    if (machine->daemon() != nullptr) {
      metrics.controller_toggles +=
          machine->daemon()->controller().toggle_count();
      // Daemon stats survive restarts: Stats rides in PersistentState,
      // so a warm restore carries the counters of every predecessor
      // process (a cold restart forfeits them — visible as a drop).
      const LimoncelloDaemon::Stats& ds = machine->daemon()->stats();
      metrics.failsafe_resets += ds.failsafe_resets;
      metrics.reboots_detected += ds.reboots_detected;
      metrics.state_reasserts += ds.state_reasserts;
      metrics.warm_restores += ds.warm_restores;
      metrics.recovery_reconciles += ds.recovery_reconciles;
    }
    if (machine->injector() != nullptr) {
      const FaultInjector::Stats& is = machine->injector()->stats();
      metrics.telemetry_faults_injected += is.telemetry_faults;
      metrics.msr_write_faults_injected += is.msr_write_faults;
      metrics.crashes_injected += is.crashes;
      metrics.reboots_completed += is.reboots;
      metrics.daemon_kills_injected += is.daemon_kills;
    }
    const MachineModel::FaultRecovery& rec = machine->fault_recovery();
    metrics.diverged_machine_ticks += rec.diverged_ticks;
    metrics.reconverge_events += rec.reconverge_events;
    metrics.reconverge_ticks_sum += rec.reconverge_ticks_sum;
    metrics.max_reconverge_ticks = std::max<std::uint64_t>(
        metrics.max_reconverge_ticks, rec.max_reconverge_ticks);
    metrics.daemon_restarts_completed += rec.daemon_restarts;
    metrics.daemon_down_machine_ticks += rec.daemon_down_ticks;
  }
  return metrics;
}

FleetMetrics RunFleetArm(const PlatformConfig& platform,
                         DeploymentMode mode,
                         const ControllerConfig& controller,
                         const FleetOptions& options) {
  FleetSimulator sim(platform, mode, controller, options);
  return sim.Run();
}

}  // namespace limoncello
