#include "fleet/fleet_simulator.h"

#include <cmath>

#include "util/check.h"

namespace limoncello {

FleetSimulator::FleetSimulator(const PlatformConfig& platform,
                               DeploymentMode mode,
                               const ControllerConfig& controller,
                               const FleetOptions& options)
    : platform_(platform),
      mode_(mode),
      controller_(controller),
      options_(options),
      rng_(options.seed),
      services_(ServiceSpec::FleetArchetypes()),
      scheduler_(options.scheduler, rng_.Fork(0x5c)) {
  LIMONCELLO_CHECK_GT(options.num_machines, 0);
  LIMONCELLO_CHECK_GT(options.ticks, 0);
  LIMONCELLO_CHECK_GT(options.memory_intensity_scale, 0.0);
  for (ServiceSpec& spec : services_) {
    spec.base_mpki *= options.memory_intensity_scale;
  }

  // Load processes are seeded independently of everything else so that
  // two arms with the same fleet seed see identical load sequences.
  for (std::size_t s = 0; s < services_.size(); ++s) {
    LoadProcess::Options lp;
    lp.diurnal_period_ns = options.diurnal_period_ns;
    lp.phase = 2.0 * 3.14159265358979 * static_cast<double>(s) /
               static_cast<double>(services_.size());
    load_processes_.push_back(std::make_unique<LoadProcess>(
        lp, Rng(options.seed).Fork(0x700 + s)));
  }

  machines_.reserve(static_cast<std::size_t>(options.num_machines));
  for (int m = 0; m < options.num_machines; ++m) {
    machines_.push_back(std::make_unique<MachineModel>(
        platform, mode, controller,
        Rng(options.seed).Fork(0x9000 + static_cast<std::uint64_t>(m))));
  }
  PlaceWorkloads();
}

void FleetSimulator::PlaceWorkloads() {
  scheduler_.AssignCaps(machines_.size());
  std::vector<MachineModel*> raw;
  raw.reserve(machines_.size());
  for (auto& machine : machines_) raw.push_back(machine.get());

  // Size the task population to the target fill: compute the CPU cost of
  // one average-size shard of each service and replicate shards until the
  // target total is reached.
  double cost_one_round = 0.0;
  for (const ServiceSpec& spec : services_) {
    cost_one_round += raw[0]->EstimateCpuCost(spec, 1.0);
  }
  LIMONCELLO_CHECK_GT(cost_one_round, 0.0);
  const double target_total =
      options_.fill * static_cast<double>(options_.num_machines);
  const int rounds = std::max(
      1, static_cast<int>(std::round(target_total / cost_one_round)));

  // Placement happens in waves with warm-up ticks in between, so the
  // scheduler sees live bandwidth telemetry and stops feeding machines
  // that reach memory-bandwidth saturation (paper §2.1: this avoidance
  // is what caps CPU utilization on bandwidth-bound machines).
  //
  // The waves run against *shadow* baseline-mode machines so placement is
  // a pure function of the seed: every deployment arm starts from the
  // identical pre-rollout placement, and only runtime behaviour (and
  // later rebalancing) differs.
  std::vector<std::unique_ptr<MachineModel>> shadows;
  std::vector<MachineModel*> shadow_raw;
  shadows.reserve(machines_.size());
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    shadows.push_back(std::make_unique<MachineModel>(
        platform_, DeploymentMode::kBaseline, controller_,
        Rng(options_.seed).Fork(0x9000 + m)));
    shadow_raw.push_back(shadows.back().get());
  }

  constexpr int kWaves = 6;
  const std::vector<double> unit_load(services_.size(), 1.0);
  int placed_rounds = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    const int wave_rounds =
        (rounds * (wave + 1)) / kWaves - placed_rounds;
    placed_rounds += wave_rounds;
    for (std::size_t s = 0; s < services_.size(); ++s) {
      scheduler_.PlaceService(static_cast<int>(s), services_[s],
                              wave_rounds, shadow_raw);
    }
    // Warm-up ticks on the shadows: telemetry catches up.
    for (int t = 0; t < 4; ++t) {
      for (auto& shadow : shadows) {
        shadow->Tick(-kNsPerSec * (4LL * kWaves - 4 * wave - t),
                     unit_load);
      }
    }
  }
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    for (const MachineModel::Task& task : shadows[m]->tasks()) {
      raw[m]->AddTask(task);
    }
  }
}

FleetMetrics FleetSimulator::Run() {
  FleetMetrics metrics;
  metrics.machines.resize(machines_.size());
  std::vector<MachineModel*> raw;
  raw.reserve(machines_.size());
  for (auto& machine : machines_) raw.push_back(machine.get());

  std::vector<double> load_factors(services_.size(), 1.0);
  for (int tick = 0; tick < options_.ticks; ++tick) {
    const SimTimeNs now =
        static_cast<SimTimeNs>(tick) * options_.tick_ns;
    for (std::size_t s = 0; s < services_.size(); ++s) {
      load_factors[s] = load_processes_[s]->Tick(now);
    }
    if (options_.rebalance_period_ticks > 0 && tick > 0 &&
        tick % options_.rebalance_period_ticks == 0) {
      scheduler_.Rebalance(raw);
    }
    for (std::size_t m = 0; m < machines_.size(); ++m) {
      const MachineModel::TickResult r =
          machines_[m]->Tick(now, load_factors);
      metrics.bandwidth_gbps.Add(r.bandwidth_gbps);
      metrics.bandwidth_utilization.Add(r.bandwidth_utilization);
      metrics.latency_ns.Add(r.latency_ns);
      metrics.served_qps_sum += r.served_qps;
      metrics.offered_qps_sum += r.offered_qps;
      for (int c = 0; c < kNumCategories; ++c) {
        metrics.category_cycles[static_cast<size_t>(c)] +=
            r.category_cycles[static_cast<size_t>(c)];
      }
      ++metrics.machine_ticks;
      if (r.bandwidth_utilization >= 0.95) {
        ++metrics.saturated_machine_ticks;
      }
      if (!r.prefetchers_on) ++metrics.prefetcher_off_ticks;

      MachineAggregate& agg = metrics.machines[m];
      agg.cpu_utilization_sum += r.cpu_utilization;
      agg.bw_utilization_sum += r.bandwidth_utilization;
      agg.latency_ns_sum += r.latency_ns;
      agg.served_qps_sum += r.served_qps;
      agg.offered_qps_sum += r.offered_qps;
      ++agg.ticks;
      if (!r.prefetchers_on) ++agg.prefetcher_off_ticks;
    }
  }
  for (const auto& machine : machines_) {
    if (machine->daemon() != nullptr) {
      metrics.controller_toggles +=
          machine->daemon()->controller().toggle_count();
    }
  }
  return metrics;
}

FleetMetrics RunFleetArm(const PlatformConfig& platform,
                         DeploymentMode mode,
                         const ControllerConfig& controller,
                         const FleetOptions& options) {
  FleetSimulator sim(platform, mode, controller, options);
  return sim.Run();
}

}  // namespace limoncello
