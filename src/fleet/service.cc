#include "fleet/service.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace limoncello {

std::vector<ServiceSpec> ServiceSpec::FleetArchetypes() {
  std::vector<ServiceSpec> services;
  auto add = [&](const char* name, double qps, double ipr, double mpki,
                 std::array<double, kNumCategories> mix) {
    ServiceSpec s;
    s.name = name;
    s.nominal_qps = qps;
    s.instructions_per_request = ipr;
    s.base_mpki = mpki;
    s.category_mix = mix;
    services.push_back(std::move(s));
  };
  // Mixes: {compression, transmission, hashing, movement, non-tax}.
  // Tax fractions follow the 30-40 %-of-cycles datacenter-tax finding.
  // base_mpki values sit in the 8-25 band typical of memory-bound
  // warehouse workloads (~40 % of cycles stalled on memory, §1), which is
  // what lets memory bandwidth saturate before CPU does (Fig. 4).
  add("websearch", 4000, 3.0e6, 22.0, {0.04, 0.10, 0.05, 0.10, 0.71});
  add("ml_server", 800, 8.0e6, 30.0, {0.02, 0.12, 0.02, 0.16, 0.68});
  add("database", 2500, 2.5e6, 14.0, {0.08, 0.09, 0.05, 0.09, 0.69});
  add("video_transcode", 300, 2.0e7, 34.0, {0.18, 0.04, 0.03, 0.14, 0.61});
  add("kv_cache", 6000, 8.0e5, 20.0, {0.03, 0.14, 0.07, 0.12, 0.64});
  add("batch_analytics", 500, 1.2e7, 28.0, {0.12, 0.06, 0.06, 0.10, 0.66});
  add("rpc_frontend", 5000, 1.0e6, 10.0, {0.03, 0.16, 0.04, 0.10, 0.67});
  add("storage_server", 1200, 4.0e6, 32.0, {0.14, 0.08, 0.08, 0.12, 0.58});
  return services;
}

LoadProcess::LoadProcess(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  LIMONCELLO_CHECK_GT(options.diurnal_period_ns, 0);
  LIMONCELLO_CHECK_GE(options.noise_rho, 0.0);
  LIMONCELLO_CHECK_LT(options.noise_rho, 1.0);
  LIMONCELLO_CHECK_LT(options.min_factor, options.max_factor);
}

double LoadProcess::Tick(SimTimeNs now_ns) {
  const double t = static_cast<double>(now_ns) /
                   static_cast<double>(options_.diurnal_period_ns);
  const double diurnal =
      1.0 + options_.diurnal_amplitude *
                std::sin(2.0 * std::numbers::pi * t + options_.phase);
  // AR(1): x' = rho x + sqrt(1-rho^2) eps — stationary stddev preserved.
  noise_state_ =
      options_.noise_rho * noise_state_ +
      std::sqrt(1.0 - options_.noise_rho * options_.noise_rho) *
          rng_.NextGaussian(0.0, options_.noise_stddev);
  double burst = 0.0;
  if (burst_remaining_ticks_ > 0) {
    burst = options_.burst_magnitude;
    burst_remaining_ticks_ -= 1;
  } else if (rng_.NextBernoulli(options_.burst_probability)) {
    burst_remaining_ticks_ = rng_.NextInRange(3, 20);
    burst = options_.burst_magnitude;
  }
  return std::clamp(diurnal + noise_state_ + burst, options_.min_factor,
                    options_.max_factor);
}

}  // namespace limoncello
