#include "fleet/platform.h"

namespace limoncello {

PlatformConfig PlatformConfig::Platform1() {
  PlatformConfig p;
  p.name = "platform1";
  p.cores = 64;
  p.freq_ghz = 2.6;
  p.base_cpi = 0.55;
  p.mlp = 6.0;
  // Qualification saturation threshold: set well below the ~3 GB/s
  // per-core achievable peak so machines are derated before the
  // latency cliff (the threshold Fig. 4 buckets against).
  p.saturation_gbps = 64 * 1.9;
  p.latency.unloaded_ns = 90.0;
  p.latency.queue_coeff_ns = 14.0;
  p.msr_layout = PlatformMsrLayout::kIntelStyle;
  // Newest generation: most aggressive prefetching — highest coverage,
  // lowest accuracy, biggest bandwidth reduction when disabled (paper
  // Table 1: -15.7 % average).
  p.prefetch.hw_coverage_tax = 0.78;
  p.prefetch.hw_coverage_nontax = 0.06;
  p.prefetch.hw_accuracy_tax = 0.62;
  p.prefetch.hw_accuracy_nontax = 0.30;
  p.prefetch.hw_pollution_nontax = 1.10;
  return p;
}

PlatformConfig PlatformConfig::Platform2() {
  PlatformConfig p;
  p.name = "platform2";
  p.cores = 48;
  p.freq_ghz = 2.4;
  p.base_cpi = 0.60;
  p.mlp = 5.0;
  p.saturation_gbps = 48 * 1.8;
  p.latency.unloaded_ns = 95.0;
  p.latency.queue_coeff_ns = 15.0;
  p.msr_layout = PlatformMsrLayout::kAltStyle;
  // Prior generation: less aggressive — smaller traffic reduction when
  // disabled (paper Table 1: -11.2 % average).
  p.prefetch.hw_coverage_tax = 0.72;
  p.prefetch.hw_coverage_nontax = 0.05;
  p.prefetch.hw_accuracy_tax = 0.72;
  p.prefetch.hw_accuracy_nontax = 0.38;
  p.prefetch.hw_pollution_nontax = 1.07;
  return p;
}

std::vector<ServerGeneration> HistoricalGenerations() {
  // Approximate public server-class datapoints: core counts kept growing
  // while socket bandwidth grew more slowly, flattening per-core
  // bandwidth (paper Fig. 2).
  return {
      {"gen2010", 2010, 8, 32.0, 1, 2},
      {"gen2012", 2012, 12, 51.2, 1, 2},
      {"gen2014", 2014, 18, 68.0, 2, 4},
      {"gen2016", 2016, 22, 77.0, 2, 4},
      {"gen2018", 2018, 28, 128.0, 2, 6},
      {"gen2020", 2020, 40, 165.0, 4, 8},
      {"gen2022", 2022, 64, 205.0, 6, 12},
  };
}

std::vector<ServerGeneration> RecentGenerations() {
  const std::vector<ServerGeneration> all = HistoricalGenerations();
  return {all[all.size() - 3], all[all.size() - 2], all[all.size() - 1]};
}

}  // namespace limoncello
