// Server platform catalog for the fleet simulator.
//
// PlatformConfig carries both the physical parameters (cores, bandwidth,
// latency curve) and the calibrated prefetcher response scalars used by
// the analytic machine model. The scalars (coverage, accuracy, pollution)
// summarize what the detailed socket simulator measures for the same
// engines; keeping them per-platform lets us express the vendor trend of
// rising prefetch aggressiveness (paper Fig. 5: +30 % traffic in older
// generations growing to +40 % in the newest).
#ifndef LIMONCELLO_FLEET_PLATFORM_H_
#define LIMONCELLO_FLEET_PLATFORM_H_

#include <string>
#include <vector>

#include "msr/prefetch_control.h"
#include "sim/memory/latency_curve.h"

namespace limoncello {

// How effectively hardware/software prefetching converts misses into
// covered fetches per function category, and at what traffic cost.
struct PrefetchResponse {
  // Fraction of a category's LLC misses the HW prefetchers cover.
  double hw_coverage_tax = 0.75;
  double hw_coverage_nontax = 0.05;
  // Useful-fetch fraction of HW prefetch traffic (lower = more waste).
  double hw_accuracy_tax = 0.70;
  double hw_accuracy_nontax = 0.35;
  // Multiplier on non-tax misses from prefetch-induced cache pollution.
  double hw_pollution_nontax = 1.08;
  // Soft Limoncello: coverage of tax misses when HW prefetchers are off,
  // and its (near-perfect) accuracy.
  double sw_coverage_tax = 0.65;
  double sw_accuracy = 0.95;
};

struct PlatformConfig {
  std::string name;
  int cores = 64;
  double freq_ghz = 2.5;
  double base_cpi = 0.55;
  double mlp = 4.0;
  // Machine-qualification memory bandwidth saturation threshold.
  double saturation_gbps = 192.0;  // cores * ~3 GB/s per core
  LatencyCurveConfig latency;
  PlatformMsrLayout msr_layout = PlatformMsrLayout::kIntelStyle;
  PrefetchResponse prefetch;

  // The two evaluation platforms (paper §5: "two different generations of
  // large x86 out-of-order multicores").
  static PlatformConfig Platform1();
  static PlatformConfig Platform2();
};

// Historical server-generation data points behind paper Fig. 2 (memory
// bandwidth growth vs. per-core plateau, 2010-2022) and the three
// generations whose prefetcher aggressiveness Fig. 5 compares.
struct ServerGeneration {
  std::string name;
  int year = 0;
  int cores = 0;
  double membw_gbps = 0.0;
  // Detailed-simulator stream-prefetcher aggressiveness for this
  // generation (degree/distance grow with generation).
  int stream_degree = 2;
  int stream_distance = 4;

  double MembwPerCore() const {
    return cores > 0 ? membw_gbps / cores : 0.0;
  }
};

// Seven generations, 2010-2022 (Fig. 2's x-axis).
std::vector<ServerGeneration> HistoricalGenerations();

// The last three generations (Fig. 5's x-axis).
std::vector<ServerGeneration> RecentGenerations();

}  // namespace limoncello

#endif  // LIMONCELLO_FLEET_PLATFORM_H_
