// Service (workload) models and the load process driving them.
//
// A service is described by its per-request cost, its memory intensity,
// and its instruction mix over the five function categories (four tax
// categories + non-tax). The load process combines a diurnal sinusoid
// with AR(1) burst noise — the volatility visible in paper Fig. 7.
#ifndef LIMONCELLO_FLEET_SERVICE_H_
#define LIMONCELLO_FLEET_SERVICE_H_

#include <array>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace limoncello {

inline constexpr int kNumCategories = 5;  // matches FunctionCategory
inline constexpr int kNonTaxCategoryIndex = 4;

struct ServiceSpec {
  std::string name;
  // Offered load at load factor 1.0.
  double nominal_qps = 1000.0;
  double instructions_per_request = 2.0e6;
  // LLC misses per kilo-instruction with hardware prefetchers *off* and
  // no software prefetching (the base memory intensity).
  double base_mpki = 3.0;
  // Instruction mix across {compression, transmission, hashing,
  // movement, non-tax}; sums to 1.
  std::array<double, kNumCategories> category_mix = {0.05, 0.08, 0.04,
                                                     0.08, 0.75};

  // Canonical service archetypes used in the evaluation.
  static std::vector<ServiceSpec> FleetArchetypes();
};

// Per-service multiplicative load factor over time: diurnal sinusoid,
// AR(1) noise, and occasional bursts.
class LoadProcess {
 public:
  struct Options {
    double diurnal_amplitude = 0.25;  // +/- swing around 1.0
    SimTimeNs diurnal_period_ns = 24LL * 3600 * kNsPerSec;
    double noise_stddev = 0.08;
    double noise_rho = 0.9;  // AR(1) persistence per tick
    double burst_probability = 0.01;
    double burst_magnitude = 0.6;
    double min_factor = 0.2;
    double max_factor = 2.5;
    // Phase offset so different services peak at different times.
    double phase = 0.0;
  };

  LoadProcess(const Options& options, Rng rng);

  // Advances one tick and returns the current load factor.
  double Tick(SimTimeNs now_ns);

 private:
  Options options_;
  Rng rng_;
  double noise_state_ = 0.0;
  double burst_remaining_ticks_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_FLEET_SERVICE_H_
