// Structure-of-arrays storage for the fleet tick loop's hot state.
//
// MachineModel keeps cold configuration (platform, tasks, control-plane
// objects) per machine, but every scalar the tick loop reads or writes
// each tick — utilizations, offered/served QPS, the prefetcher bit, the
// controller FSM mirror, the RNG stream — lives here, in contiguous
// cache-line-aligned arrays indexed by machine slot. Two things follow:
//
//  1. The serial loop walks memory linearly instead of pointer-chasing
//     through ~200 heap objects per machine.
//  2. Parallel slices never false-share: a slice's span of every array
//     starts and ends on a cache-line boundary (slice sizes are multiples
//     of 8 machines; every element type is 8 or 48 bytes, both of which
//     tile 64-byte lines at 8-machine granularity).
//
// The slice plan is a pure function of the machine count — never of the
// thread count — so the floating-point reduction grouping (per-slice
// partial metrics merged in slice order) is identical no matter how many
// workers execute the slices. That is the whole bit-identity argument;
// see DESIGN.md §12.
#ifndef LIMONCELLO_FLEET_FLEET_STATE_H_
#define LIMONCELLO_FLEET_FLEET_STATE_H_

#include <cstddef>
#include <cstdint>
#include <new>

#include "util/check.h"
#include "util/rng.h"

namespace limoncello {

inline constexpr std::size_t kFleetCacheLineBytes = 64;

// Fixed-size array whose storage starts on a cache-line boundary. The
// element count is padded up to a multiple of kFleetSlotRound internally
// so no other allocation can share the trailing line.
template <typename T>
class AlignedArray {
 public:
  AlignedArray(std::size_t size, const T& fill) : size_(size) {
    const std::size_t bytes = RoundUpToLine(size * sizeof(T));
    data_ = static_cast<T*>(::operator new(
        bytes, std::align_val_t(kFleetCacheLineBytes)));
    for (std::size_t i = 0; i < size_; ++i) new (data_ + i) T(fill);
  }
  ~AlignedArray() {
    for (std::size_t i = 0; i < size_; ++i) data_[i].~T();
    ::operator delete(data_, std::align_val_t(kFleetCacheLineBytes));
  }

  AlignedArray(const AlignedArray&) = delete;
  AlignedArray& operator=(const AlignedArray&) = delete;

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  static std::size_t RoundUpToLine(std::size_t bytes) {
    return (bytes + kFleetCacheLineBytes - 1) / kFleetCacheLineBytes *
           kFleetCacheLineBytes;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

// Static decomposition of the fleet into contiguous machine slices. Each
// slice accumulates into its own partial FleetMetrics; partials merge in
// slice order. machines_per_slice is always a multiple of 8 (cache-line
// tiling, see file comment) and is a pure function of num_machines:
// ~n/64 so a fleet splits into roughly 64 slices (plenty of load-balance
// granularity for any sane worker count), floored at 8 so tiny fleets
// keep several slices, capped at 2048 so huge fleets still spread.
struct FleetSlicePlan {
  std::size_t machines_per_slice = 0;
  std::size_t num_slices = 0;

  static FleetSlicePlan For(std::size_t num_machines);

  std::size_t SliceBegin(std::size_t slice) const {
    return slice * machines_per_slice;
  }
  std::size_t SliceEnd(std::size_t slice, std::size_t num_machines) const {
    const std::size_t end = (slice + 1) * machines_per_slice;
    return end < num_machines ? end : num_machines;
  }
};

// The hot per-machine state arrays. One instance per fleet; standalone
// MachineModels (tests, figure tools) own a private single-slot instance.
// limolint:hot-struct — per-tick state must stay in AlignedArrays; a
// std::vector member here would reintroduce the pointer chase and the
// false sharing this type exists to remove.
struct FleetState {
  explicit FleetState(std::size_t num_machines)
      : last_bw_utilization(num_machines, 0.0),
        last_cpu_utilization(num_machines, 0.0),
        utilization_ewma(num_machines, 0.0),
        last_offered_qps(num_machines, 0.0),
        last_served_qps(num_machines, 0.0),
        prefetchers_on(num_machines, 1),
        controller_state(num_machines, 0),
        rng(num_machines, Rng(0)) {
    LIMONCELLO_CHECK_GT(num_machines, 0u);
  }

  FleetState(const FleetState&) = delete;
  FleetState& operator=(const FleetState&) = delete;

  std::size_t size() const { return last_bw_utilization.size(); }

  AlignedArray<double> last_bw_utilization;
  AlignedArray<double> last_cpu_utilization;
  AlignedArray<double> utilization_ewma;
  AlignedArray<double> last_offered_qps;
  AlignedArray<double> last_served_qps;
  // 0/1 prefetcher-enable bit (uint64 so the stride stays line-tiled).
  AlignedArray<std::uint64_t> prefetchers_on;
  // Mirror of the daemon FSM state (ControllerState as an integer);
  // written after each daemon tick so readers never chase the daemon.
  AlignedArray<std::uint64_t> controller_state;
  AlignedArray<Rng> rng;
};

}  // namespace limoncello

#endif  // LIMONCELLO_FLEET_FLEET_STATE_H_
