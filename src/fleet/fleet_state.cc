#include "fleet/fleet_state.h"

namespace limoncello {

FleetSlicePlan FleetSlicePlan::For(std::size_t num_machines) {
  LIMONCELLO_CHECK_GT(num_machines, 0u);
  std::size_t per_slice = num_machines / 64;
  per_slice = (per_slice + 7) / 8 * 8;  // multiple of 8 (line tiling)
  if (per_slice < 8) per_slice = 8;
  if (per_slice > 2048) per_slice = 2048;
  FleetSlicePlan plan;
  plan.machines_per_slice = per_slice;
  plan.num_slices = (num_machines + per_slice - 1) / per_slice;
  return plan;
}

}  // namespace limoncello
