#include "fleet/threshold_tuner.h"

#include "util/check.h"

namespace limoncello {

ThresholdTuner::ThresholdTuner(const PlatformConfig& platform,
                               const FleetOptions& options)
    : platform_(platform), options_(options) {}

std::vector<ThresholdCandidate> ThresholdTuner::PaperGrid() {
  return {
      {0.60, 0.80, 5 * kNsPerSec},
      {0.50, 0.70, 5 * kNsPerSec},
      {0.70, 0.90, 5 * kNsPerSec},
  };
}

TunerResult ThresholdTuner::Tune(
    const std::vector<ThresholdCandidate>& candidates) {
  LIMONCELLO_CHECK(!candidates.empty());

  ControllerConfig baseline_config;  // unused by the baseline arm
  const FleetMetrics baseline =
      RunFleetArm(platform_, DeploymentMode::kBaseline, baseline_config,
                  options_);
  LIMONCELLO_CHECK_GT(baseline.served_qps_sum, 0.0);

  TunerResult result;
  const ThresholdEvaluation* best = nullptr;
  for (const ThresholdCandidate& candidate : candidates) {
    ControllerConfig config;
    config.lower_threshold = candidate.lower;
    config.upper_threshold = candidate.upper;
    config.sustain_duration_ns = candidate.sustain_ns;
    LIMONCELLO_CHECK(config.Valid());
    const FleetMetrics metrics = RunFleetArm(
        platform_, DeploymentMode::kFullLimoncello, config, options_);

    ThresholdEvaluation evaluation;
    evaluation.candidate = candidate;
    evaluation.throughput_gain_pct =
        100.0 * (metrics.served_qps_sum / baseline.served_qps_sum - 1.0);
    evaluation.toggles = metrics.controller_toggles;
    evaluation.prefetcher_off_fraction =
        metrics.machine_ticks
            ? static_cast<double>(metrics.prefetcher_off_ticks) /
                  static_cast<double>(metrics.machine_ticks)
            : 0.0;
    result.evaluations.push_back(evaluation);
  }

  for (const ThresholdEvaluation& evaluation : result.evaluations) {
    if (best == nullptr ||
        evaluation.throughput_gain_pct >
            best->throughput_gain_pct + 0.25 ||
        (evaluation.throughput_gain_pct >
             best->throughput_gain_pct - 0.25 &&
         evaluation.toggles < best->toggles)) {
      best = &evaluation;
    }
  }
  result.best.lower_threshold = best->candidate.lower;
  result.best.upper_threshold = best->candidate.upper;
  result.best.sustain_duration_ns = best->candidate.sustain_ns;
  return result;
}

}  // namespace limoncello
