#include "fleet/threshold_tuner.h"

#include <functional>

#include "util/check.h"
#include "util/thread_pool.h"

namespace limoncello {

ThresholdTuner::ThresholdTuner(const PlatformConfig& platform,
                               const FleetOptions& options)
    : platform_(platform), options_(options) {}

std::vector<ThresholdCandidate> ThresholdTuner::PaperGrid() {
  return {
      {0.60, 0.80, 5 * kNsPerSec},
      {0.50, 0.70, 5 * kNsPerSec},
      {0.70, 0.90, 5 * kNsPerSec},
  };
}

TunerResult ThresholdTuner::Tune(
    const std::vector<ThresholdCandidate>& candidates) {
  LIMONCELLO_CHECK(!candidates.empty());

  // The baseline arm and every candidate arm share no mutable state, so
  // they all run concurrently; results land in per-arm slots.
  FleetMetrics baseline;
  std::vector<FleetMetrics> candidate_metrics(candidates.size());
  std::vector<std::function<void()>> arms;
  arms.push_back([&] {
    ControllerConfig baseline_config;  // unused by the baseline arm
    baseline = RunFleetArm(platform_, DeploymentMode::kBaseline,
                           baseline_config, options_);
  });
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ControllerConfig config;
    config.lower_threshold = candidates[i].lower;
    config.upper_threshold = candidates[i].upper;
    config.sustain_duration_ns = candidates[i].sustain_ns;
    LIMONCELLO_CHECK(config.Valid());
    arms.push_back([this, i, config, &candidate_metrics] {
      candidate_metrics[i] = RunFleetArm(
          platform_, DeploymentMode::kFullLimoncello, config, options_);
    });
  }
  ParallelInvoke(std::move(arms));
  LIMONCELLO_CHECK_GT(baseline.served_qps_sum, 0.0);

  TunerResult result;
  const ThresholdEvaluation* best = nullptr;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const FleetMetrics& metrics = candidate_metrics[i];
    ThresholdEvaluation evaluation;
    evaluation.candidate = candidates[i];
    evaluation.throughput_gain_pct =
        100.0 * (metrics.served_qps_sum / baseline.served_qps_sum - 1.0);
    evaluation.toggles = metrics.controller_toggles;
    evaluation.prefetcher_off_fraction =
        metrics.machine_ticks
            ? static_cast<double>(metrics.prefetcher_off_ticks) /
                  static_cast<double>(metrics.machine_ticks)
            : 0.0;
    result.evaluations.push_back(evaluation);
  }

  for (const ThresholdEvaluation& evaluation : result.evaluations) {
    if (best == nullptr ||
        evaluation.throughput_gain_pct >
            best->throughput_gain_pct + 0.25 ||
        (evaluation.throughput_gain_pct >
             best->throughput_gain_pct - 0.25 &&
         evaluation.toggles < best->toggles)) {
      best = &evaluation;
    }
  }
  result.best.lower_threshold = best->candidate.lower;
  result.best.upper_threshold = best->candidate.upper;
  result.best.sustain_duration_ns = best->candidate.sustain_ns;
  return result;
}

}  // namespace limoncello
