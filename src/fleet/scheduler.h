// Cluster scheduler with memory-bandwidth-saturation avoidance.
//
// Mirrors the behaviour described in paper §2.1: "When a server starts
// reaching memory bandwidth saturation, the cluster scheduler avoids
// scheduling workloads on the machine to prevent workloads from
// encountering performance cliffs due to memory bandwidth contention."
#ifndef LIMONCELLO_FLEET_SCHEDULER_H_
#define LIMONCELLO_FLEET_SCHEDULER_H_

#include <vector>

#include "fleet/machine_model.h"
#include "fleet/service.h"
#include "util/rng.h"

namespace limoncello {

class ClusterScheduler {
 public:
  struct Options {
    // Machines whose bandwidth utilization exceeds this are not given new
    // work. Set below the qualification threshold so normal diurnal
    // swings, not steady placement, are what push a socket to saturation.
    double bw_avoid_threshold = 0.80;
    // Per-machine CPU allocation cap range: heterogeneous headroom across
    // the fleet (spreads machines over the CPU-utilization buckets).
    double min_allocation_cap = 0.30;
    double max_allocation_cap = 0.95;
  };

  ClusterScheduler(const Options& options, Rng rng);

  // Draws per-machine allocation caps; call once per fleet.
  void AssignCaps(std::size_t num_machines);
  double cap(std::size_t machine) const;

  // Places `shards` shards (each a share in [share_min, share_max] of the
  // service's nominal QPS) onto the machines greedily by projected CPU,
  // honouring caps and the bandwidth avoidance rule. Returns the number of
  // shards that could not be placed.
  int PlaceService(int service_index, const ServiceSpec& spec, int shards,
                   std::vector<MachineModel*>& machines);

  // One rebalancing pass: moves a task off each saturated machine
  // (bandwidth above the avoid threshold) to the least-loaded eligible
  // machine. Returns the number of migrations performed.
  int Rebalance(std::vector<MachineModel*>& machines);

 private:
  // Projected CPU after adding cost to the machine's current estimate.
  double ProjectedCpu(const MachineModel& machine, double add_cost) const;

  Options options_;
  Rng rng_;
  std::vector<double> caps_;
  std::vector<double> projected_cpu_;  // placement-time running estimate
};

}  // namespace limoncello

#endif  // LIMONCELLO_FLEET_SCHEDULER_H_
