// Automated threshold selection (paper §3 "Thresholds"): the deployed
// 60/80 configuration was "determined through fleetwide experimentation
// and analysis" — an A/B sweep over candidate (lower, upper, Δ) triples.
// ThresholdTuner runs that sweep on the fleet simulator: one baseline
// arm, then one Full-Limoncello arm per candidate (identical seeds), and
// picks the candidate with the best application throughput, breaking
// ties toward fewer prefetcher toggles (stability).
#ifndef LIMONCELLO_FLEET_THRESHOLD_TUNER_H_
#define LIMONCELLO_FLEET_THRESHOLD_TUNER_H_

#include <vector>

#include "core/controller_config.h"
#include "fleet/fleet_simulator.h"

namespace limoncello {

struct ThresholdCandidate {
  double lower = 0.6;
  double upper = 0.8;
  SimTimeNs sustain_ns = 5 * kNsPerSec;
};

struct ThresholdEvaluation {
  ThresholdCandidate candidate;
  double throughput_gain_pct = 0.0;  // vs. the baseline arm
  std::uint64_t toggles = 0;
  double prefetcher_off_fraction = 0.0;
};

struct TunerResult {
  ControllerConfig best;
  std::vector<ThresholdEvaluation> evaluations;
};

class ThresholdTuner {
 public:
  ThresholdTuner(const PlatformConfig& platform,
                 const FleetOptions& options);

  // Evaluates every candidate; candidates must be non-empty and valid.
  TunerResult Tune(const std::vector<ThresholdCandidate>& candidates);

  // The paper's Fig. 10 grid: 60/80, 50/70, 70/90 (all at 5 s sustain).
  static std::vector<ThresholdCandidate> PaperGrid();

 private:
  PlatformConfig platform_;
  FleetOptions options_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_FLEET_THRESHOLD_TUNER_H_
