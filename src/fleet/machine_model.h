// Analytic per-machine performance model for fleet-scale simulation.
//
// The detailed socket simulator (sim/) is too slow for thousands of
// machines over hours of simulated time, so the fleet uses this analytic
// twin. It shares the bandwidth→latency curve with the detailed model and
// summarizes prefetcher behaviour with the per-platform PrefetchResponse
// scalars (coverage/accuracy/pollution — the quantities the detailed
// model measures).
//
// Crucially the *control path is real*: each machine owns a simulated MSR
// device; Hard Limoncello's daemon writes the platform's prefetch-control
// register through PrefetchControl, and the machine derives its
// prefetchers-on/off state from those register bits — the same
// actuation chain as the detailed simulator and real hardware.
//
// Hot-state layout: the scalars the tick loop touches every tick live in
// a FleetState structure-of-arrays (fleet_state.h), indexed by this
// machine's slot. A machine constructed without a FleetState owns a
// private single-slot instance, so standalone use (tests, figure tools)
// is unchanged; fleets pass one shared FleetState so 100k machines' hot
// state packs into contiguous cache-line-aligned arrays.
#ifndef LIMONCELLO_FLEET_MACHINE_MODEL_H_
#define LIMONCELLO_FLEET_MACHINE_MODEL_H_

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "core/actuator.h"
#include "core/controller_config.h"
#include "core/daemon.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "fleet/fleet_state.h"
#include "fleet/platform.h"
#include "fleet/service.h"
#include "msr/simulated_msr_device.h"
#include "sim/memory/latency_curve.h"
#include "stats/saturating.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"
#include "util/units.h"

namespace limoncello {

enum class DeploymentMode {
  kBaseline,        // hardware prefetchers always on (pre-rollout fleet)
  kAblationOff,     // hardware prefetchers always off (ablation arm)
  kHardLimoncello,  // dynamic modulation only
  kFullLimoncello,  // dynamic modulation + software prefetching
};

const char* DeploymentModeName(DeploymentMode mode);

// limolint:hot-struct — MachineModel is ticked 60M times per default
// bench run; new per-tick state belongs in FleetState's SoA arrays, not
// in std::vector members here (see fleet_state.h).
class MachineModel {
 public:
  struct Task {
    int service_index = 0;
    const ServiceSpec* spec = nullptr;
    // Fraction of the service's nominal QPS placed on this machine.
    double share = 0.0;
  };

  struct TickResult {
    double cpu_utilization = 0.0;        // busy cores / cores
    double bandwidth_gbps = 0.0;         // total traffic
    double bandwidth_utilization = 0.0;  // vs saturation threshold
    double latency_ns = 0.0;             // load-to-use latency this tick
    double offered_qps = 0.0;
    double served_qps = 0.0;
    bool prefetchers_on = true;
    // True while a crash window keeps the machine off: offered load is
    // dropped on the floor and no daemon/demand modelling runs.
    bool down = false;
    // Cycles spent per function category this tick (for Fig. 20).
    std::array<double, kNumCategories> category_cycles{};
  };

  // Availability/reconvergence accounting under injected faults.
  // SatCounter throughout: these feed the chaos-soak summary banners,
  // where a wrapped count is a lie and a pinned one is visibly absurd.
  struct FaultRecovery {
    // Ticks (machine up, daemon present) where the hardware prefetcher
    // state disagreed with the FSM's intent.
    SatCounter diverged_ticks;
    // Completed divergence episodes (state came back in line).
    SatCounter reconverge_events;
    SatCounter reconverge_ticks_sum;
    SatCounter max_reconverge_ticks;
    SatCounter down_ticks;
    // Ticks the machine served with its controller daemon dead (daemon-
    // restart fault windows; distinct from machine down_ticks).
    SatCounter daemon_down_ticks;
    // Daemon restarts actually performed (a window whose end falls
    // inside machine downtime restarts once the machine is back).
    SatCounter daemon_restarts;
  };

  // `fault_plan`, when non-null, must outlive the machine; it inserts the
  // fault-injection decorators into the telemetry and MSR paths and
  // enables crash/reboot modelling. daemon_snapshot_period_ticks > 0
  // models the state journal in-memory: the daemon's state is
  // snapshotted after actuations and every period ticks, and a daemon
  // restarted by a fault window warm-restores from the snapshot and
  // reconciles against the hardware — the same lifecycle limoncellod
  // runs with a real journal file (src/recovery/), kept in-memory here
  // so fleet ticks stay deterministic and IO-free.
  //
  // `fleet_state` + `slot`, when given, place this machine's hot scalars
  // in the shared SoA arrays (fleet_state must outlive the machine);
  // null means the machine owns a single-slot FleetState. `latency_lut`,
  // when given, must be built from `platform.latency` and outlive the
  // machine; null means the machine builds its own table.
  MachineModel(const PlatformConfig& platform, DeploymentMode mode,
               const ControllerConfig& controller_config, Rng rng,
               const FaultPlan* fault_plan = nullptr,
               int daemon_snapshot_period_ticks = 0,
               FleetState* fleet_state = nullptr, std::size_t slot = 0,
               const LatencyLut* latency_lut = nullptr);

  // Non-copyable, non-movable: the MSR observer and telemetry adapter
  // hold back-pointers to this object.
  MachineModel(const MachineModel&) = delete;
  MachineModel& operator=(const MachineModel&) = delete;

  void AddTask(const Task& task);
  void ClearTasks();
  const std::vector<Task>& tasks() const { return tasks_; }

  // Advances one telemetry tick. load_factors is indexed by service_index.
  TickResult Tick(SimTimeNs now_ns,
                  const std::vector<double>& load_factors);

  bool prefetchers_on() const {
    return state_->prefetchers_on[slot_] != 0;
  }
  DeploymentMode mode() const { return mode_; }
  const PlatformConfig& platform() const { return platform_; }
  const LimoncelloDaemon* daemon() const { return daemon_.get(); }
  // Null unless a FaultPlan was supplied.
  const FaultInjector* injector() const { return injector_.get(); }
  const FaultRecovery& fault_recovery() const { return recovery_; }

  // Estimated additional CPU-utilization cost of adding `share` of the
  // given service (used by the scheduler for placement).
  double EstimateCpuCost(const ServiceSpec& spec, double share) const;
  double last_bandwidth_utilization() const {
    return state_->last_bw_utilization[slot_];
  }
  double last_cpu_utilization() const {
    return state_->last_cpu_utilization[slot_];
  }

 private:
  // Telemetry adapter: reports the last completed tick's utilization.
  class TelemetryAdapter : public UtilizationSource {
   public:
    explicit TelemetryAdapter(MachineModel* machine) : machine_(machine) {}
    std::optional<double> SampleUtilization() override;

   private:
    MachineModel* machine_;
  };

  struct CategoryLoad {
    double instructions = 0.0;
    double misses = 0.0;        // after coverage effects
    double hw_covered = 0.0;    // misses covered by HW prefetch
    double sw_covered = 0.0;    // misses covered by SW prefetch
  };

  // Effective per-category miss multiplier given the current prefetcher
  // state and deployment mode.
  void CategoryMissModel(int category, double base_misses,
                         CategoryLoad* out) const;

  // Rebuilds the daemon after a restart window closes: fresh process
  // state, warm restore from the in-memory snapshot when one exists,
  // then hardware reconciliation (cold or warm).
  void RestartDaemon();

  // SoA slot accessors (hot scalars live in *state_, not in members).
  Rng& rng() { return state_->rng[slot_]; }
  void SetPrefetchersOn(bool on) {
    state_->prefetchers_on[slot_] = on ? 1 : 0;
  }
  // Mirrors the daemon FSM state into the SoA array (no-op reader side
  // for machines without a daemon, which stay at kEnabledSteady = 0).
  void MirrorControllerState();

  PlatformConfig platform_;
  DeploymentMode mode_;
  // Owned single-slot state for standalone machines; null when the
  // machine lives in a fleet-shared FleetState.
  std::unique_ptr<FleetState> own_state_;
  FleetState* state_;
  std::size_t slot_;
  std::unique_ptr<LatencyLut> own_lut_;
  const LatencyLut* lut_;
  // Cold: mutated only at placement/rebalance, read-only inside Tick.
  std::vector<Task> tasks_;  // limolint:allow(hot-struct-vector)

  // Control plane (real Limoncello components). The fault decorators sit
  // between the daemon and the real device/telemetry when a plan is
  // given; declaration order matters (prefetch_control_ may point at the
  // decorator, which wraps msr_).
  SimulatedMsrDevice msr_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<FaultyMsrDevice> faulty_msr_;
  PrefetchControl prefetch_control_;
  std::unique_ptr<TelemetryAdapter> telemetry_;
  std::unique_ptr<FaultyUtilizationSource> faulty_telemetry_;
  std::unique_ptr<MsrPrefetchActuator> actuator_;
  std::unique_ptr<LimoncelloDaemon> daemon_;
  FaultRecovery recovery_;
  // Length of the currently open divergence episode, in ticks.
  std::uint64_t divergence_run_ = 0;

  // Daemon-restart modelling (active when a plan schedules restarts).
  ControllerConfig controller_config_;
  int snapshot_period_ticks_ = 0;
  // The telemetry source the daemon reads (post-decorator); kept so a
  // rebuilt daemon wires to the same chain and down ticks can burn one
  // sample to keep the rng stream aligned with a restart-free arm.
  UtilizationSource* daemon_source_ = nullptr;
  std::optional<LimoncelloDaemon::PersistentState> journal_snapshot_;
  bool daemon_restart_pending_ = false;

  bool soft_prefetch_on_ = false;
  double telemetry_noise_stddev_ = 0.01;
};

}  // namespace limoncello

#endif  // LIMONCELLO_FLEET_MACHINE_MODEL_H_
