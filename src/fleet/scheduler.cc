#include "fleet/scheduler.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace limoncello {

ClusterScheduler::ClusterScheduler(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  LIMONCELLO_CHECK_GT(options.bw_avoid_threshold, 0.0);
  LIMONCELLO_CHECK_LT(options.min_allocation_cap,
                      options.max_allocation_cap);
}

void ClusterScheduler::AssignCaps(std::size_t num_machines) {
  caps_.resize(num_machines);
  projected_cpu_.assign(num_machines, 0.0);
  for (double& cap : caps_) {
    cap = rng_.NextDouble(options_.min_allocation_cap,
                          options_.max_allocation_cap);
  }
}

double ClusterScheduler::cap(std::size_t machine) const {
  LIMONCELLO_CHECK_LT(machine, caps_.size());
  return caps_[machine];
}

double ClusterScheduler::ProjectedCpu(const MachineModel& machine,
                                      double add_cost) const {
  (void)machine;
  return add_cost;
}

int ClusterScheduler::PlaceService(int service_index,
                                   const ServiceSpec& spec, int shards,
                                   std::vector<MachineModel*>& machines) {
  LIMONCELLO_CHECK_EQ(caps_.size(), machines.size());
  int unplaced = 0;
  for (int s = 0; s < shards; ++s) {
    // Shards vary in size: mix of small and large replicas.
    const double share = rng_.NextDouble(0.4, 1.6);
    const double cost = machines.empty()
                            ? 0.0
                            : machines[0]->EstimateCpuCost(spec, share);
    // Pick the machine with the most headroom under its cap that is not
    // bandwidth-saturated.
    std::size_t best = machines.size();
    double best_headroom = -std::numeric_limits<double>::infinity();
    for (std::size_t m = 0; m < machines.size(); ++m) {
      if (machines[m]->last_bandwidth_utilization() >
          options_.bw_avoid_threshold) {
        continue;
      }
      const double headroom = caps_[m] - (projected_cpu_[m] + cost);
      if (headroom > best_headroom) {
        best_headroom = headroom;
        best = m;
      }
    }
    if (best == machines.size() || best_headroom < 0.0) {
      ++unplaced;
      continue;
    }
    MachineModel::Task task;
    task.service_index = service_index;
    task.spec = &spec;
    task.share = share;
    machines[best]->AddTask(task);
    projected_cpu_[best] += cost;
  }
  return unplaced;
}

int ClusterScheduler::Rebalance(std::vector<MachineModel*>& machines) {
  LIMONCELLO_CHECK_EQ(caps_.size(), machines.size());
  int migrations = 0;
  for (std::size_t m = 0; m < machines.size(); ++m) {
    MachineModel& source = *machines[m];
    if (source.last_bandwidth_utilization() <=
            options_.bw_avoid_threshold ||
        source.tasks().empty()) {
      continue;
    }
    // Move the smallest task to the machine with the lowest bandwidth
    // utilization that has CPU headroom.
    const auto& tasks = source.tasks();
    std::size_t smallest = 0;
    for (std::size_t t = 1; t < tasks.size(); ++t) {
      if (tasks[t].share < tasks[smallest].share) smallest = t;
    }
    std::size_t target = machines.size();
    double best_bw = options_.bw_avoid_threshold;
    for (std::size_t n = 0; n < machines.size(); ++n) {
      if (n == m) continue;
      const MachineModel& candidate = *machines[n];
      if (candidate.last_cpu_utilization() >= caps_[n]) continue;
      if (candidate.last_bandwidth_utilization() < best_bw) {
        best_bw = candidate.last_bandwidth_utilization();
        target = n;
      }
    }
    if (target == machines.size()) continue;
    const MachineModel::Task moved = tasks[smallest];
    // Rebuild the source task list without the moved task.
    std::vector<MachineModel::Task> remaining(tasks.begin(), tasks.end());
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(smallest));
    source.ClearTasks();
    for (const auto& task : remaining) source.AddTask(task);
    machines[target]->AddTask(moved);
    ++migrations;
  }
  return migrations;
}

}  // namespace limoncello
