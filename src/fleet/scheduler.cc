#include "fleet/scheduler.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "util/check.h"

namespace limoncello {

namespace {

// Max-heap entry for placement: machine ordered by headroom, ties broken
// toward the lower index (matching the strict-> linear scan the heap
// replaces, where the first machine at the best headroom won).
struct HeapEntry {
  double headroom = 0.0;
  std::size_t machine = 0;
};

struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    if (a.headroom != b.headroom) return a.headroom < b.headroom;
    return a.machine > b.machine;
  }
};

}  // namespace

ClusterScheduler::ClusterScheduler(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  LIMONCELLO_CHECK_GT(options.bw_avoid_threshold, 0.0);
  LIMONCELLO_CHECK_LT(options.min_allocation_cap,
                      options.max_allocation_cap);
}

void ClusterScheduler::AssignCaps(std::size_t num_machines) {
  caps_.resize(num_machines);
  projected_cpu_.assign(num_machines, 0.0);
  for (double& cap : caps_) {
    cap = rng_.NextDouble(options_.min_allocation_cap,
                          options_.max_allocation_cap);
  }
}

double ClusterScheduler::cap(std::size_t machine) const {
  LIMONCELLO_CHECK_LT(machine, caps_.size());
  return caps_[machine];
}

double ClusterScheduler::ProjectedCpu(const MachineModel& machine,
                                      double add_cost) const {
  (void)machine;
  return add_cost;
}

int ClusterScheduler::PlaceService(int service_index,
                                   const ServiceSpec& spec, int shards,
                                   std::vector<MachineModel*>& machines) {
  LIMONCELLO_CHECK_EQ(caps_.size(), machines.size());
  // Greedy argmax-headroom placement. Eligibility (the bandwidth
  // avoidance rule) depends only on last-tick telemetry, which is frozen
  // for the duration of this call, so the eligible set is computed once
  // and kept in a max-heap keyed by caps - projected. The per-shard cost
  // is a constant shift within one pick, so argmax(cap - projected) is
  // argmax(cap - projected - cost): the heap top is exactly the machine
  // the old O(machines) linear scan chose, at O(log machines) per shard
  // — the difference between minutes and milliseconds at 100k machines.
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (std::size_t m = 0; m < machines.size(); ++m) {
    if (machines[m]->last_bandwidth_utilization() >
        options_.bw_avoid_threshold) {
      continue;
    }
    heap.push(HeapEntry{caps_[m] - projected_cpu_[m], m});
  }
  int unplaced = 0;
  for (int s = 0; s < shards; ++s) {
    // Shards vary in size: mix of small and large replicas. The draw
    // happens for every shard, placed or not, so the rng stream is
    // independent of placement outcomes.
    const double share = rng_.NextDouble(0.4, 1.6);
    const double cost = machines.empty()
                            ? 0.0
                            : machines[0]->EstimateCpuCost(spec, share);
    if (heap.empty() || heap.top().headroom - cost < 0.0) {
      // Even the best machine lacks headroom for this shard; smaller
      // shards later in the stream may still fit, so keep going.
      ++unplaced;
      continue;
    }
    const std::size_t best = heap.top().machine;
    heap.pop();
    MachineModel::Task task;
    task.service_index = service_index;
    task.spec = &spec;
    task.share = share;
    machines[best]->AddTask(task);
    projected_cpu_[best] += cost;
    heap.push(HeapEntry{caps_[best] - projected_cpu_[best], best});
  }
  return unplaced;
}

int ClusterScheduler::Rebalance(std::vector<MachineModel*>& machines) {
  LIMONCELLO_CHECK_EQ(caps_.size(), machines.size());
  // Within one pass every key is static: eligibility and ranking read
  // last-tick telemetry, which no migration changes. So the best and
  // second-best targets (lowest bandwidth among machines with CPU
  // headroom, ties toward the lower index, and strictly below the avoid
  // threshold) are computed once; each saturated source takes the best
  // target unless the best *is* the source, in which case it takes the
  // runner-up — exactly what the old per-source O(machines) rescan
  // produced, at O(machines) for the whole pass.
  const double inf = std::numeric_limits<double>::infinity();
  std::size_t best = machines.size();
  double best_bw = inf;
  std::size_t second = machines.size();
  double second_bw = inf;
  for (std::size_t n = 0; n < machines.size(); ++n) {
    const MachineModel& candidate = *machines[n];
    if (candidate.last_cpu_utilization() >= caps_[n]) continue;
    const double bw = candidate.last_bandwidth_utilization();
    if (bw >= options_.bw_avoid_threshold) continue;
    if (bw < best_bw) {
      second = best;
      second_bw = best_bw;
      best = n;
      best_bw = bw;
    } else if (bw < second_bw) {
      second = n;
      second_bw = bw;
    }
  }

  int migrations = 0;
  for (std::size_t m = 0; m < machines.size(); ++m) {
    MachineModel& source = *machines[m];
    if (source.last_bandwidth_utilization() <=
            options_.bw_avoid_threshold ||
        source.tasks().empty()) {
      continue;
    }
    const std::size_t target = best != m ? best : second;
    if (target == machines.size()) continue;
    // Move the smallest task off the saturated source.
    const auto& tasks = source.tasks();
    std::size_t smallest = 0;
    for (std::size_t t = 1; t < tasks.size(); ++t) {
      if (tasks[t].share < tasks[smallest].share) smallest = t;
    }
    const MachineModel::Task moved = tasks[smallest];
    // Rebuild the source task list without the moved task.
    std::vector<MachineModel::Task> remaining(tasks.begin(), tasks.end());
    remaining.erase(remaining.begin() +
                    static_cast<std::ptrdiff_t>(smallest));
    source.ClearTasks();
    for (const auto& task : remaining) source.AddTask(task);
    machines[target]->AddTask(moved);
    ++migrations;
  }
  return migrations;
}

}  // namespace limoncello
