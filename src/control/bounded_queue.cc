#include "control/bounded_queue.h"

#include <cstring>

#include "util/check.h"

namespace limoncello {

BoundedControlQueue::BoundedControlQueue(const Options& options)
    : capacity_(options.capacity),
      watermark_slots_(static_cast<int>(
          static_cast<double>(options.capacity) *
          options.backpressure_watermark)) {
  LIMONCELLO_CHECK_GE(options.capacity, 2);
  LIMONCELLO_CHECK_GT(options.backpressure_watermark, 0.0);
  LIMONCELLO_CHECK_LE(options.backpressure_watermark, 1.0);
  // Both rings are sized to the full budget: either class may, at an
  // extreme, hold every slot. All allocation happens here, once.
  telemetry_ring_.resize(static_cast<std::size_t>(capacity_));
  command_ring_.resize(static_cast<std::size_t>(capacity_));
}

void BoundedControlQueue::DropOldestTelemetry() {
  LIMONCELLO_DCHECK(telemetry_count_ > 0);
  telemetry_head_ = (telemetry_head_ + 1) % capacity_;
  --telemetry_count_;
  ++counters_.telemetry_shed;
}

PushResult BoundedControlQueue::AdmissionResult() {
  if (telemetry_count_ + command_count_ >= watermark_slots_) {
    ++counters_.backpressure_signals;
    return PushResult::kOkBackpressure;
  }
  return PushResult::kOk;
}

// limolint:hot-path — producer side of the ingest path: one bounded
// critical section copying a frame into a preallocated ring slot. The
// lock is the queue's designed synchronization point: O(1) work held,
// no allocation, no IO, no nested locks.
PushResult BoundedControlQueue::PushTelemetry(
    const unsigned char* data, std::size_t size,
    std::uint64_t enqueue_time_ns) {
  if (data == nullptr || size == 0 || size > kMaxTelemetryFrameBytes) {
    MutexLock lock(&mu_);  // limolint:allow(hot-path-blocking)
    ++counters_.telemetry_rejected;
    return PushResult::kRejected;
  }
  MutexLock lock(&mu_);  // limolint:allow(hot-path-blocking)
  bool shed = false;
  if (TotalFull()) {
    if (telemetry_count_ == 0) {
      // Every slot holds a command; a measurement never evicts one.
      ++counters_.telemetry_rejected;
      return PushResult::kRejected;
    }
    DropOldestTelemetry();
    shed = true;
  }
  const int tail = (telemetry_head_ + telemetry_count_) % capacity_;
  ControlMessage& slot = telemetry_ring_[static_cast<std::size_t>(tail)];
  slot.kind = ControlMessage::Kind::kTelemetryFrame;
  slot.frame_bytes = static_cast<std::uint32_t>(size);
  slot.enqueue_time_ns = enqueue_time_ns;
  std::memcpy(slot.frame.data(), data, size);
  ++telemetry_count_;
  ++counters_.telemetry_pushed;
  if (shed) return PushResult::kShedOldest;
  return AdmissionResult();
}

PushResult BoundedControlQueue::PushCommand(
    const ControlCommand& command, std::uint64_t enqueue_time_ns) {
  MutexLock lock(&mu_);
  bool shed = false;
  if (TotalFull()) {
    if (telemetry_count_ == 0) {
      // Commands already own the whole budget: the consumer is gone.
      ++counters_.command_overflows;
      return PushResult::kRejected;
    }
    // The policy's core clause: oldest telemetry dies before any
    // command is refused.
    DropOldestTelemetry();
    shed = true;
  }
  const int tail = (command_head_ + command_count_) % capacity_;
  ControlMessage& slot = command_ring_[static_cast<std::size_t>(tail)];
  slot.kind = ControlMessage::Kind::kCommand;
  slot.frame_bytes = 0;
  slot.enqueue_time_ns = enqueue_time_ns;
  slot.command = command;
  ++command_count_;
  ++counters_.commands_pushed;
  if (shed) return PushResult::kShedOldest;
  return AdmissionResult();
}

// limolint:hot-path — consumer side: one slot copy out under the same
// bounded critical section as the pushes.
bool BoundedControlQueue::Pop(ControlMessage* out) {
  MutexLock lock(&mu_);  // limolint:allow(hot-path-blocking)
  if (command_count_ > 0) {
    *out = command_ring_[static_cast<std::size_t>(command_head_)];
    command_head_ = (command_head_ + 1) % capacity_;
    --command_count_;
    ++counters_.commands_popped;
    return true;
  }
  if (telemetry_count_ > 0) {
    *out = telemetry_ring_[static_cast<std::size_t>(telemetry_head_)];
    telemetry_head_ = (telemetry_head_ + 1) % capacity_;
    --telemetry_count_;
    ++counters_.telemetry_popped;
    return true;
  }
  return false;
}

int BoundedControlQueue::Depth() {
  MutexLock lock(&mu_);
  return telemetry_count_ + command_count_;
}

bool BoundedControlQueue::UnderBackpressure() {
  MutexLock lock(&mu_);
  return telemetry_count_ + command_count_ >= watermark_slots_;
}

BoundedControlQueue::Counters BoundedControlQueue::SnapshotCounters() {
  MutexLock lock(&mu_);
  return counters_;
}

}  // namespace limoncello
