// Simulated telemetry endpoints for control-plane experiments.
//
// A SimulatedEndpoint is the machine-side half of the control plane: it
// produces one utilization sample per tick (diurnal swell + Poisson
// bursts + jitter, all from a forked deterministic Rng), accumulates
// samples into TelemetryBatch frames, and plays the actuation target —
// the plane's ActuateFn lands on set_prefetchers_enabled(), optionally
// failing to exercise the retry path.
//
// Determinism: an endpoint's sample stream is a pure function of its
// Options and the Rng it was constructed with, so chaos experiments
// replay bit-for-bit.
#ifndef LIMONCELLO_CONTROL_ENDPOINT_SIM_H_
#define LIMONCELLO_CONTROL_ENDPOINT_SIM_H_

#include <cstddef>
#include <cstdint>

#include "control/telemetry_batch.h"
#include "util/rng.h"

namespace limoncello {

class SimulatedEndpoint {
 public:
  struct Options {
    std::uint32_t endpoint_id = 0;
    // Samples accumulated before a frame is exported. [1, kMaxSamples].
    int samples_per_batch = 8;
    // Utilization model (fractions of bandwidth saturation).
    double base_utilization = 0.45;
    double diurnal_amplitude = 0.25;
    int diurnal_period_ticks = 512;
    double burst_rate = 0.01;  // chance per tick that a burst starts
    int burst_ticks = 32;
    double burst_utilization = 0.95;
    double jitter = 0.02;  // uniform +/- noise (keeps samples non-stale)
    // Every actuation fails while this is set (chaos hook).
    bool actuation_faulty = false;
  };

  SimulatedEndpoint(const Options& options, Rng rng);

  // Advances one tick. When the tick completes a batch, encodes it into
  // `out` (capacity >= kMaxTelemetryFrameBytes) and returns the frame
  // size; otherwise returns 0.
  std::size_t Tick(unsigned char* out);

  // Actuation target: returns false (failure) while actuation_faulty.
  bool Actuate(bool enable);

  bool prefetchers_enabled() const { return prefetchers_enabled_; }
  void set_prefetchers_enabled(bool enabled) {
    prefetchers_enabled_ = enabled;
  }
  void set_actuation_faulty(bool faulty) {
    options_.actuation_faulty = faulty;
  }

  std::uint64_t ticks() const { return tick_; }
  std::uint64_t batches_exported() const { return batches_exported_; }
  std::uint64_t next_sequence() const { return sequence_; }

 private:
  double NextUtilization();

  Options options_;
  Rng rng_;
  std::uint64_t tick_ = 0;
  std::uint64_t sequence_ = 0;
  std::uint64_t batches_exported_ = 0;
  int burst_ticks_left_ = 0;
  bool prefetchers_enabled_ = true;
  TelemetryBatch pending_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_CONTROL_ENDPOINT_SIM_H_
