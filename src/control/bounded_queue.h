// Fixed-capacity MPSC ingest queue with backpressure and load-shedding.
//
// The control daemon's front door: transport threads (many producers)
// push raw telemetry frames and actuation/operator commands; one drain
// loop per shard (single consumer) pops them. Capacity is fixed at
// construction — the queue never allocates after its rings are built, so
// a telemetry storm translates into shed samples and a backpressure
// signal, never into unbounded memory.
//
// Shed policy (priority-aware, oldest-first):
//   * Telemetry and commands share one slot budget. When the budget is
//     exhausted, the OLDEST queued telemetry frame is dropped to make
//     room — for telemetry pushes because newer samples supersede older
//     ones, and for command pushes because a command (an actuation or
//     operator decision) must never lose to a measurement.
//   * A command is rejected only when the queue holds nothing but
//     commands — at that point the consumer is dead or the capacity is
//     misconfigured, and the overflow counter says so.
//   * Every shed and overflow is counted (saturating); nothing is
//     dropped silently.
//
// Backpressure: pushes that land the queue at or above the watermark
// return kOkBackpressure — accepted, but the producer should slow down.
// Producers poll under_backpressure() for the same signal.
//
// Synchronization is one Mutex with clang thread-safety annotations;
// critical sections are O(1) slot copies (no allocation, no IO, no
// nested locks), so the lock is a rendezvous, not a bottleneck: the
// bench sustains >1M samples/sec through it (BENCH_control.json).
#ifndef LIMONCELLO_CONTROL_BOUNDED_QUEUE_H_
#define LIMONCELLO_CONTROL_BOUNDED_QUEUE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "control/telemetry_batch.h"
#include "stats/saturating.h"
#include "util/mutex.h"

namespace limoncello {

// Operator / actuation commands routed through the same queue as
// telemetry (so the shed policy can rank them). kForce* pins an
// endpoint's prefetcher state regardless of its FSM; kClearForce returns
// the endpoint to closed-loop control.
enum class CommandKind : std::uint8_t {
  kForceEnable,
  kForceDisable,
  kClearForce,
};

struct ControlCommand {
  std::uint32_t endpoint_id = 0;
  CommandKind kind = CommandKind::kClearForce;
};

// One queue slot. Telemetry rides as raw wire bytes — the queue is
// transport, not parser; frames are validated by the consumer at decode
// time (after any shedding, so a storm of garbage frames costs pushes a
// memcpy, not a CRC walk under the lock).
struct ControlMessage {
  enum class Kind : std::uint8_t { kTelemetryFrame, kCommand };

  Kind kind = Kind::kTelemetryFrame;
  std::uint32_t frame_bytes = 0;
  // Producer-stamped enqueue time for end-to-end latency accounting
  // (bench clock; plumbed through untouched, never read by the queue).
  std::uint64_t enqueue_time_ns = 0;
  ControlCommand command;
  std::array<unsigned char, kMaxTelemetryFrameBytes> frame;
};

enum class PushResult {
  kOk,              // accepted, queue healthy
  kOkBackpressure,  // accepted, but depth is at/above the watermark
  kShedOldest,      // accepted by dropping the oldest queued telemetry
  kRejected,        // dropped: no telemetry left to shed (or bad input)
};

class BoundedControlQueue {
 public:
  struct Options {
    // Total slots shared by telemetry and commands. Must be >= 2.
    int capacity = 1024;
    // Depth fraction at which pushes start signaling backpressure.
    double backpressure_watermark = 0.75;
  };

  struct Counters {
    SatCounter telemetry_pushed;      // accepted telemetry frames
    SatCounter commands_pushed;       // accepted commands
    SatCounter telemetry_shed;        // oldest-telemetry drops
    SatCounter telemetry_rejected;    // telemetry pushes refused outright
    SatCounter command_overflows;     // commands refused (queue all-command)
    SatCounter backpressure_signals;  // pushes returning kOkBackpressure
    SatCounter telemetry_popped;
    SatCounter commands_popped;

    bool operator==(const Counters&) const = default;
  };

  explicit BoundedControlQueue(const Options& options);

  BoundedControlQueue(const BoundedControlQueue&) = delete;
  BoundedControlQueue& operator=(const BoundedControlQueue&) = delete;

  // Copies `size` wire bytes into a slot. Rejects frames larger than a
  // slot (kMaxTelemetryFrameBytes) or empty — counted, never silent.
  PushResult PushTelemetry(const unsigned char* data, std::size_t size,
                           std::uint64_t enqueue_time_ns)
      LIMONCELLO_EXCLUDES(mu_);

  PushResult PushCommand(const ControlCommand& command,
                         std::uint64_t enqueue_time_ns)
      LIMONCELLO_EXCLUDES(mu_);

  // Pops the next message into *out: all queued commands drain before
  // any telemetry (actuation outranks measurement at the consumer too);
  // within a class, FIFO. Returns false when the queue is empty.
  bool Pop(ControlMessage* out) LIMONCELLO_EXCLUDES(mu_);

  // Total queued messages (telemetry + commands).
  int Depth() LIMONCELLO_EXCLUDES(mu_);
  bool UnderBackpressure() LIMONCELLO_EXCLUDES(mu_);

  // Consumer-side counter snapshot. Racing pushes land in either the
  // snapshot or the next one — each event exactly once.
  Counters SnapshotCounters() LIMONCELLO_EXCLUDES(mu_);

  int capacity() const { return capacity_; }
  int watermark_slots() const { return watermark_slots_; }

 private:
  // Ring helpers; all require mu_.
  bool TotalFull() const LIMONCELLO_REQUIRES(mu_) {
    return telemetry_count_ + command_count_ == capacity_;
  }
  void DropOldestTelemetry() LIMONCELLO_REQUIRES(mu_);
  PushResult AdmissionResult() LIMONCELLO_REQUIRES(mu_);

  const int capacity_;
  const int watermark_slots_;

  Mutex mu_;
  // Two FIFO rings over fixed storage, sharing the capacity_ budget.
  // Separate rings make "drop oldest telemetry, keep every command"
  // an O(1) head bump instead of a compaction.
  std::vector<ControlMessage> telemetry_ring_ LIMONCELLO_GUARDED_BY(mu_);
  std::vector<ControlMessage> command_ring_ LIMONCELLO_GUARDED_BY(mu_);
  int telemetry_head_ LIMONCELLO_GUARDED_BY(mu_) = 0;
  int telemetry_count_ LIMONCELLO_GUARDED_BY(mu_) = 0;
  int command_head_ LIMONCELLO_GUARDED_BY(mu_) = 0;
  int command_count_ LIMONCELLO_GUARDED_BY(mu_) = 0;
  Counters counters_ LIMONCELLO_GUARDED_BY(mu_);
};

}  // namespace limoncello

#endif  // LIMONCELLO_CONTROL_BOUNDED_QUEUE_H_
