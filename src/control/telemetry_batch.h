// The control plane's wire format: CRC-framed telemetry batches.
//
// Endpoints ship utilization samples to the control daemon as versioned
// binary frames: magic "LTB1", version, payload size, payload, CRC32
// (same framing discipline as the state journal — the CRC covers version
// + size + payload, the magic is frame sync). The payload is one batch:
// endpoint id, a per-endpoint send sequence number, the exporter tick of
// the first sample, and up to kMaxSamples utilization doubles.
//
// Decode is the trust boundary. Frames arrive over a transport that the
// chaos layer (src/faults/transport_chaos.h) drops, truncates, reorders,
// duplicates and stales on purpose, so Decode validates everything
// before a byte reaches controller state: framing (magic/version/length/
// CRC), sample count bounds, and per-sample value bounds (finite, in
// [0, kMaxPlausibleUtilization]). A frame that fails any check is
// rejected with a status naming the first violation; Decode never
// crashes on any input and never allocates (the batch struct is inline).
// Sequence/staleness validation needs per-endpoint history and happens
// one layer up, in ControlPlane.
#ifndef LIMONCELLO_CONTROL_TELEMETRY_BATCH_H_
#define LIMONCELLO_CONTROL_TELEMETRY_BATCH_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace limoncello {

// One decoded batch. Fixed-size by construction so queue slots and decode
// scratch never touch the heap.
struct TelemetryBatch {
  static constexpr std::uint32_t kMaxSamples = 64;

  std::uint32_t endpoint_id = 0;
  // Per-endpoint send sequence, starting at 1. The control plane rejects
  // regressions (duplicate / reordered-behind frames).
  std::uint64_t sequence = 0;
  // Exporter tick of utilization[0]; sample i covers base_tick + i.
  std::uint32_t base_tick = 0;
  std::uint32_t num_samples = 0;
  std::array<double, kMaxSamples> utilization{};
};

// Framing constants, shared by encode/decode/tests and the queue's slot
// sizing.
inline constexpr std::uint32_t kTelemetryBatchMagic = 0x4C544231;  // "LTB1"
inline constexpr std::uint32_t kTelemetryBatchVersion = 1;
inline constexpr std::size_t kTelemetryBatchHeaderBytes = 12;
inline constexpr std::size_t kTelemetryBatchFixedPayloadBytes = 20;
inline constexpr std::size_t kMaxTelemetryFrameBytes =
    kTelemetryBatchHeaderBytes + kTelemetryBatchFixedPayloadBytes +
    8 * TelemetryBatch::kMaxSamples + 4 /* CRC */;

// Utilization beyond this is telemetry garbage regardless of transport
// integrity (matches LimoncelloDaemon's sample validation bound).
inline constexpr double kMaxPlausibleBatchUtilization = 10.0;

enum class BatchDecodeStatus {
  kOk,
  kTruncated,      // fewer bytes than the frame claims (torn / cut)
  kBadMagic,       // first word is not LTB1
  kBadVersion,     // intact frame from a foreign binary version
  kBadLength,      // size field disagrees with the sample count
  kBadCrc,         // checksum mismatch (bit rot / mid-frame corruption)
  kBadSampleCount, // zero or more than kMaxSamples samples
  kInvalidSample,  // non-finite or out-of-range utilization
};

const char* BatchDecodeStatusName(BatchDecodeStatus status);

// Encodes `batch` into `out` (at least kMaxTelemetryFrameBytes). Returns
// the frame size in bytes, or 0 when the batch itself is unencodable
// (num_samples outside [1, kMaxSamples]). Never allocates.
std::size_t EncodeTelemetryBatch(const TelemetryBatch& batch,
                                 unsigned char* out);

// Exact frame size a batch with `num_samples` samples encodes to.
constexpr std::size_t TelemetryFrameBytes(std::uint32_t num_samples) {
  return kTelemetryBatchHeaderBytes + kTelemetryBatchFixedPayloadBytes +
         8 * num_samples + 4;
}

// Decodes and validates one frame. On kOk, *out holds the batch; on any
// other status *out is unspecified. Tolerates every malformed input
// without crashing; never allocates.
BatchDecodeStatus DecodeTelemetryBatch(const unsigned char* data,
                                       std::size_t size,
                                       TelemetryBatch* out);

}  // namespace limoncello

#endif  // LIMONCELLO_CONTROL_TELEMETRY_BATCH_H_
