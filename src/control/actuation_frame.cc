#include "control/actuation_frame.h"

#include "util/crc32.h"
#include "util/wire.h"

namespace limoncello {

const char* ActuationDecodeStatusName(ActuationDecodeStatus status) {
  switch (status) {
    case ActuationDecodeStatus::kOk:
      return "ok";
    case ActuationDecodeStatus::kTruncated:
      return "truncated";
    case ActuationDecodeStatus::kBadMagic:
      return "bad_magic";
    case ActuationDecodeStatus::kBadVersion:
      return "bad_version";
    case ActuationDecodeStatus::kBadLength:
      return "bad_length";
    case ActuationDecodeStatus::kBadCrc:
      return "bad_crc";
    case ActuationDecodeStatus::kBadValue:
      return "bad_value";
  }
  return "invalid";
}

// limolint:hot-path — runs inside the plane's actuation hook with the
// shard lock held: pure byte stores into a caller-provided buffer.
std::size_t EncodeActuationCommand(const ActuationCommandFrame& command,
                                   unsigned char* out) {
  StoreU32(out, kActuationFrameMagic);
  StoreU32(out + 4, kActuationFrameVersion);
  StoreU32(out + 8, static_cast<std::uint32_t>(kActuationFramePayloadBytes));
  unsigned char* p = out + kActuationFrameHeaderBytes;
  StoreU32(p, command.endpoint_id);
  StoreU32(p + 4, command.enable ? 1u : 0u);
  // CRC covers version + size + payload; the magic is frame sync (same
  // convention as the telemetry frames and the state journal).
  const std::uint32_t crc =
      Crc32(out + 4, 8 + kActuationFramePayloadBytes);
  StoreU32(out + kActuationFrameHeaderBytes + kActuationFramePayloadBytes,
           crc);
  return kActuationFrameBytes;
}

ActuationDecodeStatus DecodeActuationCommand(const unsigned char* data,
                                             std::size_t size,
                                             ActuationCommandFrame* out) {
  if (size < kActuationFrameHeaderBytes) {
    return ActuationDecodeStatus::kTruncated;
  }
  if (LoadU32(data) != kActuationFrameMagic) {
    return ActuationDecodeStatus::kBadMagic;
  }
  if (LoadU32(data + 4) != kActuationFrameVersion) {
    return ActuationDecodeStatus::kBadVersion;
  }
  if (LoadU32(data + 8) != kActuationFramePayloadBytes) {
    return ActuationDecodeStatus::kBadLength;
  }
  if (size < kActuationFrameBytes) {
    return ActuationDecodeStatus::kTruncated;
  }
  const std::uint32_t crc = Crc32(data + 4, 8 + kActuationFramePayloadBytes);
  if (crc != LoadU32(data + kActuationFrameHeaderBytes +
                     kActuationFramePayloadBytes)) {
    return ActuationDecodeStatus::kBadCrc;
  }
  const unsigned char* p = data + kActuationFrameHeaderBytes;
  const std::uint32_t enable = LoadU32(p + 4);
  if (enable > 1) {
    return ActuationDecodeStatus::kBadValue;
  }
  out->endpoint_id = LoadU32(p);
  out->enable = enable == 1;
  return ActuationDecodeStatus::kOk;
}

}  // namespace limoncello
