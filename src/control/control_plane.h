// Sharded fleet control plane: one daemon, many endpoints.
//
// The single-socket LimoncelloDaemon (core/daemon.h) runs one hysteresis
// FSM against one telemetry source. The ControlPlane scales that design
// sideways: one process ingests telemetry batches from N endpoints over
// a CRC-framed wire format, runs an independent hysteresis FSM per
// endpoint, and actuates each endpoint's prefetchers through a caller-
// supplied hook.
//
// Architecture (DESIGN.md §15):
//
//   producers ──► shard 0 [BoundedControlQueue]─► drain ─► FSMs ─► actuate
//   (transport)   shard 1 [BoundedControlQueue]─► drain ─► FSMs ─► actuate
//       ...          ...
//
//   * Endpoints are statically partitioned across shards by a
//     deterministic hash. A frame's shard is computed from a fixed-
//     offset peek at the endpoint id — no decode, no lock.
//   * The ingest path touches exactly one shard's queue mutex; there
//     are no cross-shard locks anywhere on the hot path. Shards drain
//     independently, so drains parallelize across a ThreadPool with no
//     shared mutable state.
//   * Everything a shard needs is preallocated at construction: the
//     queue rings, the endpoint table, the latency histogram. The
//     steady-state ingest + drain path performs zero heap allocations
//     (bench_control_plane --gate audits this with an operator-new
//     probe).
//
// Trust boundary: frames arrive as untrusted bytes. DecodeTelemetryBatch
// enforces framing, CRC, version, bounds, and sample plausibility;
// the plane then enforces per-endpoint sequence monotonicity, so
// duplicated, stale, reordered, or replayed frames are rejected and
// counted rather than double-applied. The transport may lose frames
// (and the queue may shed them); the per-endpoint staleness timer turns
// prolonged silence into the paper's fail-safe — prefetchers forced
// back ON, FSM reset.
//
// Determinism: given the same frame sequence pushed per shard in the
// same order, drains produce bit-identical endpoint state and counters
// at any thread count — a shard's work depends only on its own queue.
// SnapshotStats merges per-shard counters in shard order.
#ifndef LIMONCELLO_CONTROL_CONTROL_PLANE_H_
#define LIMONCELLO_CONTROL_CONTROL_PLANE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "control/bounded_queue.h"
#include "control/telemetry_batch.h"
#include "core/controller_config.h"
#include "core/hysteresis_controller.h"
#include "stats/saturating.h"
#include "util/mutex.h"

namespace limoncello {

// Everything a warm restart must carry across a control-plane process
// death, per endpoint. Plain data; src/recovery/ serializes it
// (EndpointStateJournal). Restored values are validated field by field,
// never trusted.
struct EndpointPersistentState {
  std::uint32_t endpoint_id = 0;
  ControllerState controller_state = ControllerState::kEnabledSteady;
  SimTimeNs timer_ns = 0;
  std::uint64_t toggle_count = 0;
  bool intent_enabled = true;   // prefetcher intent (committed decision)
  bool force_active = false;    // operator force pin
  bool force_enabled = true;    // pinned value when force_active
  std::uint64_t last_sequence = 0;
  bool have_sequence = false;
  std::uint64_t last_update_tick = 0;  // plane tick of last good batch

  bool operator==(const EndpointPersistentState&) const = default;
};

// Fixed-size log2-bucketed latency histogram: 64 saturating buckets,
// bucket i counting values in [2^i, 2^(i+1)) ns. Preallocated, merge-
// able, quantile-queryable — everything the enqueue-to-actuation p99
// needs without touching the heap on the record path.
class IngestLatencyHistogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(std::uint64_t latency_ns);
  void Merge(const IngestLatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  // Upper edge of the bucket containing quantile q (0 when empty).
  std::uint64_t ApproxQuantileNs(double q) const;

 private:
  std::array<SatCounter, kBuckets> buckets_{};
  SatCounter count_;
};

struct ControlPlaneOptions {
  int num_endpoints = 1;
  int num_shards = 4;
  ControllerConfig config;
  BoundedControlQueue::Options queue;
};

class ControlPlane {
 public:
  // Applies a prefetcher state to one endpoint; returns false on
  // actuation failure (the plane arms a capped-exponential retry).
  // Called from drain/tick paths with the owning shard's lock held —
  // must not call back into the plane.
  using ActuateFn =
      std::function<bool(std::uint32_t endpoint_id, bool enable)>;

  // Cumulative counters, all saturating. Snapshot is a per-shard merge
  // in shard order, so it is bit-identical at any drain thread count.
  struct Stats {
    // Ingest (queue admission, summed over shards).
    SatCounter frames_ingested;       // telemetry frames accepted
    SatCounter frames_shed;           // oldest-telemetry drops
    SatCounter frames_rejected;       // refused at the queue
    SatCounter commands_ingested;
    SatCounter command_overflows;
    SatCounter backpressure_signals;
    // Decode / validation (the trust boundary).
    SatCounter frames_decoded;        // framed + CRC + bounds clean
    SatCounter decode_failures;       // truncated/corrupt/foreign bytes
    SatCounter sequence_rejects;      // duplicate or stale frame replays
    SatCounter unknown_endpoints;     // valid frame, id out of range
    SatCounter samples_accepted;
    // Control decisions.
    SatCounter disables;
    SatCounter enables;
    SatCounter actuation_failures;
    SatCounter retry_backoff_skips;   // ticks spent waiting to retry
    SatCounter stale_endpoint_failsafes;
    SatCounter commands_applied;
    SatCounter warm_restores;         // endpoints adopted from a journal

    bool operator==(const Stats&) const = default;
  };

  ControlPlane(const ControlPlaneOptions& options, ActuateFn actuate);

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // --- Hot ingest path (producer side, any thread) -----------------

  // Routes a raw wire frame to its shard's queue. The frame is not
  // decoded here — a fixed-offset peek extracts the endpoint id for
  // routing; validation happens at drain, after any shedding.
  PushResult IngestFrame(const unsigned char* data, std::size_t size,
                         std::uint64_t enqueue_time_ns);

  // Routes an operator/actuation command (never shed in favor of
  // telemetry; see BoundedControlQueue's policy).
  PushResult SubmitCommand(const ControlCommand& command,
                           std::uint64_t enqueue_time_ns);

  // --- Drain (consumer side, one caller per shard at a time) -------

  // Drains one shard's queue to empty: decodes frames, applies
  // commands, advances the per-endpoint FSMs, actuates toggles.
  // `now_ns` stamps the enqueue-to-actuation latency histogram.
  // Returns the number of messages consumed. Safe to call for
  // different shards concurrently.
  int DrainShard(int shard, std::uint64_t now_ns);

  // Serial convenience: drains every shard in shard order.
  int DrainAll(std::uint64_t now_ns);

  // Advances the plane's tick: per-endpoint staleness sweep (silence
  // past max_missed_samples ticks forces prefetchers ON and resets the
  // FSM — the paper's fail-safe) and actuation-retry backoff countdown.
  // Call once per tick period, after draining. Not concurrent with
  // drains: the control loop is drain phase → tick phase (drains may
  // parallelize across shards *within* the drain phase).
  void AdvanceTick();

  // --- Warm restart ------------------------------------------------

  // Snapshot of one endpoint / all endpoints (ascending id order).
  EndpointPersistentState ExportEndpoint(std::uint32_t endpoint_id);
  std::vector<EndpointPersistentState> ExportAllEndpoints();

  // Appends to `out` the records of endpoints whose committed state
  // changed since the last collection, in ascending id order, and
  // clears their dirty marks. The journaling cadence lives with the
  // caller (cold path) so file IO never rides the drain.
  void CollectDirtyEndpoints(std::vector<EndpointPersistentState>* out);

  // Adopts journal-recovered endpoint records. Each record is validated
  // (id in range, FSM invariants via HysteresisController::RestoreState,
  // force/intent consistency); invalid records are skipped — that
  // endpoint cold-starts. For every adopted record the restored intent
  // is re-asserted through the actuator: the journal holds decisions
  // distilled from telemetry history, so on disagreement the hardware
  // moves to match the journal, never vice versa (DESIGN.md §11).
  // Returns the number of records adopted.
  int RestoreEndpoints(const std::vector<EndpointPersistentState>& records);

  // --- Observation -------------------------------------------------

  Stats SnapshotStats();
  IngestLatencyHistogram SnapshotLatency();
  // Queue counters summed over shards (shard order).
  BoundedControlQueue::Counters SnapshotQueueCounters();

  bool EndpointIntentEnabled(std::uint32_t endpoint_id);
  ControllerState EndpointControllerState(std::uint32_t endpoint_id);
  bool EndpointInFailsafe(std::uint32_t endpoint_id);
  bool EndpointForced(std::uint32_t endpoint_id);

  int ShardOf(std::uint32_t endpoint_id) const;
  std::uint64_t tick() const { return tick_; }
  int num_endpoints() const { return options_.num_endpoints; }
  int num_shards() const { return options_.num_shards; }

 private:
  struct EndpointState {
    explicit EndpointState(const ControllerConfig& config)
        : controller(config) {}

    HysteresisController controller;
    std::uint32_t endpoint_id = 0;
    bool intent_enabled = true;    // what the plane wants
    bool hardware_enabled = true;  // what the last successful actuation set
    bool force_active = false;
    bool force_enabled = true;
    bool failsafe_active = false;
    std::uint64_t last_sequence = 0;
    bool have_sequence = false;
    std::uint64_t last_update_tick = 0;
    // Capped-exponential actuation retry (mirrors core/daemon.cc).
    bool retry_pending = false;
    bool retry_enable = true;
    int retry_delay_ticks = 1;
    int retry_wait_ticks = 0;
    bool journal_dirty = false;
  };

  // One shard: a queue plus the endpoint states it owns. Shard state
  // is guarded by its own mutex; no path takes two shard locks.
  struct Shard {
    BoundedControlQueue queue;
    Mutex mu;
    std::vector<EndpointState> endpoints LIMONCELLO_GUARDED_BY(mu);
    Stats stats LIMONCELLO_GUARDED_BY(mu);
    IngestLatencyHistogram latency LIMONCELLO_GUARDED_BY(mu);

    explicit Shard(const BoundedControlQueue::Options& queue_options)
        : queue(queue_options) {}
  };

  // Drain helpers; all require the shard's lock.
  void ApplyBatch(Shard& shard, const TelemetryBatch& batch,
                  std::uint64_t enqueue_time_ns, std::uint64_t now_ns)
      LIMONCELLO_REQUIRES(shard.mu);
  void ApplyCommand(Shard& shard, const ControlCommand& command)
      LIMONCELLO_REQUIRES(shard.mu);
  // Moves the hardware toward `endpoint.intent_enabled`; on actuation
  // failure arms/retains the backoff retry. Counts toggles.
  void ApplyIntent(Shard& shard, EndpointState& endpoint)
      LIMONCELLO_REQUIRES(shard.mu);

  // endpoint_id must be < num_endpoints (checked).
  EndpointState& StateFor(Shard& shard, std::uint32_t endpoint_id)
      LIMONCELLO_REQUIRES(shard.mu);

  ControlPlaneOptions options_;
  ActuateFn actuate_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // endpoint id -> index into its shard's endpoint vector.
  std::vector<std::uint32_t> slot_of_;
  std::uint64_t tick_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_CONTROL_CONTROL_PLANE_H_
