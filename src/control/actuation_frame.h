// The actuation leg of the control plane's wire protocol.
//
// Telemetry flows endpoint → plane as LTB1 frames (telemetry_batch.h);
// decisions flow back plane → endpoint as LAC1 frames carrying one
// command: set this endpoint's prefetchers to enable/disable. The
// framing discipline is identical — magic, version, payload size,
// payload, CRC32 over version + size + payload — so both directions
// share the FrameReassembler and the same resync story when the
// transport tears a stream mid-frame.
//
// Decode is a trust boundary exactly like the telemetry side: the
// exporter runs on the machine whose prefetchers get toggled, and a
// corrupt or replayed actuation must be dropped, not applied. Sequence
// numbering is deliberately absent: actuation is idempotent level
// assignment ("be enabled"), so applying a duplicate is harmless and
// the plane's journal — not the wire — is the source of truth.
#ifndef LIMONCELLO_CONTROL_ACTUATION_FRAME_H_
#define LIMONCELLO_CONTROL_ACTUATION_FRAME_H_

#include <cstddef>
#include <cstdint>

namespace limoncello {

struct ActuationCommandFrame {
  std::uint32_t endpoint_id = 0;
  bool enable = true;
};

inline constexpr std::uint32_t kActuationFrameMagic = 0x4C414331;  // "LAC1"
inline constexpr std::uint32_t kActuationFrameVersion = 1;
inline constexpr std::size_t kActuationFrameHeaderBytes = 12;
inline constexpr std::size_t kActuationFramePayloadBytes = 8;
inline constexpr std::size_t kActuationFrameBytes =
    kActuationFrameHeaderBytes + kActuationFramePayloadBytes + 4 /* CRC */;

enum class ActuationDecodeStatus {
  kOk,
  kTruncated,
  kBadMagic,
  kBadVersion,
  kBadLength,
  kBadCrc,
  kBadValue,  // enable field is neither 0 nor 1
};

const char* ActuationDecodeStatusName(ActuationDecodeStatus status);

// Encodes one command into `out` (at least kActuationFrameBytes).
// Returns kActuationFrameBytes. Never allocates.
std::size_t EncodeActuationCommand(const ActuationCommandFrame& command,
                                   unsigned char* out);

// Decodes and validates one frame. On kOk, *out holds the command; on
// any other status *out is unspecified. Never crashes on any input;
// never allocates.
ActuationDecodeStatus DecodeActuationCommand(const unsigned char* data,
                                             std::size_t size,
                                             ActuationCommandFrame* out);

}  // namespace limoncello

#endif  // LIMONCELLO_CONTROL_ACTUATION_FRAME_H_
