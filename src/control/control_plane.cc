#include "control/control_plane.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/check.h"
#include "util/wire.h"

namespace limoncello {

void IngestLatencyHistogram::Record(std::uint64_t latency_ns) {
  const int bucket =
      latency_ns == 0 ? 0 : 63 - std::countl_zero(latency_ns);
  ++buckets_[static_cast<std::size_t>(bucket)];
  ++count_;
}

void IngestLatencyHistogram::Merge(const IngestLatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)].value();
  }
  count_ += other.count_.value();
}

std::uint64_t IngestLatencyHistogram::ApproxQuantileNs(double q) const {
  if (count_.value() == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      clamped * static_cast<double>(count_.value() - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)].value();
    if (seen > rank) {
      return i >= 63 ? ~0ULL : (2ULL << i) - 1;  // bucket upper edge
    }
  }
  return ~0ULL;
}

namespace {

// Deterministic endpoint -> shard hash (Fibonacci mix). Any fixed
// function works; mixing avoids pinning consecutive ids to one shard.
std::uint32_t MixEndpointId(std::uint32_t endpoint_id) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(endpoint_id) * 0x9E3779B97F4A7C15ULL) >>
      33);
}

}  // namespace

ControlPlane::ControlPlane(const ControlPlaneOptions& options,
                           ActuateFn actuate)
    : options_(options), actuate_(std::move(actuate)) {
  LIMONCELLO_CHECK_GE(options_.num_endpoints, 1);
  LIMONCELLO_CHECK_GE(options_.num_shards, 1);
  LIMONCELLO_CHECK(options_.config.Valid());
  LIMONCELLO_CHECK(actuate_ != nullptr);
  shards_.reserve(static_cast<std::size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options_.queue));
  }
  // Partition endpoints across shards once; every per-endpoint slot is
  // allocated here so the ingest/drain paths never grow a vector.
  slot_of_.resize(static_cast<std::size_t>(options_.num_endpoints));
  for (std::uint32_t id = 0;
       id < static_cast<std::uint32_t>(options_.num_endpoints); ++id) {
    Shard& shard = *shards_[static_cast<std::size_t>(ShardOf(id))];
    MutexLock lock(&shard.mu);
    slot_of_[id] = static_cast<std::uint32_t>(shard.endpoints.size());
    shard.endpoints.emplace_back(options_.config);
    shard.endpoints.back().endpoint_id = id;
  }
}

int ControlPlane::ShardOf(std::uint32_t endpoint_id) const {
  return static_cast<int>(MixEndpointId(endpoint_id) %
                          static_cast<std::uint32_t>(options_.num_shards));
}

// limolint:hot-path — producer side: one endpoint-id peek plus one
// queue push; no decode, no shard-state lock, no allocation.
PushResult ControlPlane::IngestFrame(const unsigned char* data,
                                     std::size_t size,
                                     std::uint64_t enqueue_time_ns) {
  // Route by a fixed-offset peek at the payload's endpoint id. A frame
  // too short to peek goes to shard 0, where decode rejects and counts
  // it; a corrupt id mis-routes a frame that decode will reject anyway
  // (the CRC protects the id, so a *valid* frame never mis-routes).
  std::uint32_t endpoint_id = 0;
  if (data != nullptr && size >= kTelemetryBatchHeaderBytes + 4) {
    endpoint_id = LoadU32(data + kTelemetryBatchHeaderBytes);
  }
  Shard& shard = *shards_[static_cast<std::size_t>(ShardOf(endpoint_id))];
  return shard.queue.PushTelemetry(data, size, enqueue_time_ns);
}

PushResult ControlPlane::SubmitCommand(const ControlCommand& command,
                                       std::uint64_t enqueue_time_ns) {
  Shard& shard =
      *shards_[static_cast<std::size_t>(ShardOf(command.endpoint_id))];
  return shard.queue.PushCommand(command, enqueue_time_ns);
}

ControlPlane::EndpointState& ControlPlane::StateFor(
    Shard& shard, std::uint32_t endpoint_id) {
  LIMONCELLO_DCHECK(endpoint_id <
                    static_cast<std::uint32_t>(options_.num_endpoints));
  return shard.endpoints[slot_of_[endpoint_id]];
}

void ControlPlane::ApplyIntent(Shard& shard, EndpointState& endpoint) {
  if (endpoint.hardware_enabled == endpoint.intent_enabled) {
    endpoint.retry_pending = false;
    return;
  }
  const bool enable = endpoint.intent_enabled;
  if (actuate_(endpoint.endpoint_id, enable)) {
    endpoint.hardware_enabled = enable;
    endpoint.retry_pending = false;
    endpoint.retry_delay_ticks = 1;
    if (enable) {
      ++shard.stats.enables;
    } else {
      ++shard.stats.disables;
    }
    endpoint.journal_dirty = true;
    return;
  }
  ++shard.stats.actuation_failures;
  if (endpoint.retry_pending && endpoint.retry_enable == enable) {
    // A retry just failed: double the backoff up to the cap.
    endpoint.retry_delay_ticks =
        std::min(endpoint.retry_delay_ticks * 2,
                 options_.config.retry_backoff_cap_ticks);
  } else {
    endpoint.retry_delay_ticks = 1;
  }
  endpoint.retry_pending = true;
  endpoint.retry_enable = enable;
  endpoint.retry_wait_ticks = endpoint.retry_delay_ticks;
}

void ControlPlane::ApplyBatch(Shard& shard, const TelemetryBatch& batch,
                              std::uint64_t enqueue_time_ns,
                              std::uint64_t now_ns) {
  if (batch.endpoint_id >=
      static_cast<std::uint32_t>(options_.num_endpoints)) {
    ++shard.stats.unknown_endpoints;
    return;
  }
  EndpointState& endpoint = StateFor(shard, batch.endpoint_id);
  // At-most-once: a duplicate, stale, or reordered-behind frame carries
  // a sequence number the endpoint has already consumed. Rejecting it
  // here is what makes transport duplication/replay harmless.
  if (endpoint.have_sequence && batch.sequence <= endpoint.last_sequence) {
    ++shard.stats.sequence_rejects;
    return;
  }
  endpoint.last_sequence = batch.sequence;
  endpoint.have_sequence = true;
  endpoint.last_update_tick = tick_;
  endpoint.failsafe_active = false;
  for (std::uint32_t i = 0; i < batch.num_samples; ++i) {
    const ControllerAction action =
        endpoint.controller.Tick(batch.utilization[i]);
    ++shard.stats.samples_accepted;
    if (action == ControllerAction::kNone) continue;
    const bool enable = action == ControllerAction::kEnablePrefetchers;
    if (endpoint.force_active) {
      // The FSM keeps tracking utilization while forced, but the pin
      // owns the intent until kClearForce.
      continue;
    }
    endpoint.intent_enabled = enable;
    endpoint.journal_dirty = true;
    ApplyIntent(shard, endpoint);
  }
  if (now_ns > enqueue_time_ns) {
    shard.latency.Record(now_ns - enqueue_time_ns);
  }
}

void ControlPlane::ApplyCommand(Shard& shard,
                                const ControlCommand& command) {
  if (command.endpoint_id >=
      static_cast<std::uint32_t>(options_.num_endpoints)) {
    ++shard.stats.unknown_endpoints;
    return;
  }
  EndpointState& endpoint = StateFor(shard, command.endpoint_id);
  switch (command.kind) {
    case CommandKind::kForceEnable:
      endpoint.force_active = true;
      endpoint.force_enabled = true;
      endpoint.intent_enabled = true;
      break;
    case CommandKind::kForceDisable:
      endpoint.force_active = true;
      endpoint.force_enabled = false;
      endpoint.intent_enabled = false;
      break;
    case CommandKind::kClearForce:
      endpoint.force_active = false;
      // Hand intent back to the FSM's current opinion.
      endpoint.intent_enabled =
          endpoint.controller.PrefetchersShouldBeEnabled();
      break;
  }
  ++shard.stats.commands_applied;
  endpoint.journal_dirty = true;
  ApplyIntent(shard, endpoint);
}

// limolint:hot-path — consumer side: pop, decode, FSM tick, actuate.
// Bounded stack scratch; zero heap allocation (gated by
// bench_control_plane --gate).
int ControlPlane::DrainShard(int shard_index, std::uint64_t now_ns) {
  LIMONCELLO_DCHECK(shard_index >= 0 &&
                    shard_index < options_.num_shards);
  Shard& shard = *shards_[static_cast<std::size_t>(shard_index)];
  ControlMessage message;
  TelemetryBatch batch;
  int consumed = 0;
  MutexLock lock(&shard.mu);  // limolint:allow(hot-path-blocking)
  while (shard.queue.Pop(&message)) {
    ++consumed;
    if (message.kind == ControlMessage::Kind::kCommand) {
      ApplyCommand(shard, message.command);
      continue;
    }
    const BatchDecodeStatus status = DecodeTelemetryBatch(
        message.frame.data(), message.frame_bytes, &batch);
    if (status != BatchDecodeStatus::kOk) {
      ++shard.stats.decode_failures;
      continue;
    }
    ++shard.stats.frames_decoded;
    ApplyBatch(shard, batch, message.enqueue_time_ns, now_ns);
  }
  return consumed;
}

int ControlPlane::DrainAll(std::uint64_t now_ns) {
  int consumed = 0;
  for (int s = 0; s < options_.num_shards; ++s) {
    consumed += DrainShard(s, now_ns);
  }
  return consumed;
}

void ControlPlane::AdvanceTick() {
  ++tick_;
  const std::uint64_t stale_after =
      static_cast<std::uint64_t>(options_.config.max_missed_samples);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    for (EndpointState& endpoint : shard.endpoints) {
      // Retry countdown first: a due retry may fix the hardware before
      // the staleness check piles a fail-safe on top.
      if (endpoint.retry_pending) {
        if (endpoint.retry_wait_ticks > 0) {
          --endpoint.retry_wait_ticks;
          ++shard.stats.retry_backoff_skips;
        }
        if (endpoint.retry_wait_ticks == 0) {
          ApplyIntent(shard, endpoint);
        }
      }
      // Staleness fail-safe: an endpoint the plane has not heard from
      // for max_missed_samples ticks gets the hardware default back —
      // prefetchers ON — and a reset FSM, exactly like the single-
      // socket daemon's missing-telemetry path. Operator-forced
      // endpoints are exempt: a force pin is an explicit decision, not
      // a decision starved of data.
      if (!endpoint.force_active && !endpoint.failsafe_active &&
          tick_ - endpoint.last_update_tick > stale_after) {
        endpoint.failsafe_active = true;
        endpoint.controller.Reset();
        endpoint.intent_enabled = true;
        // Forget the sequence watermark along with the FSM: a silent
        // endpoint that comes back is usually a restarted exporter
        // whose sequence numbers begin again at 1, and holding the old
        // watermark would reject every frame it ever sends. Stale
        // replays of the *previous* incarnation are already absorbed —
        // the fail-safe has reset the FSM to the state a fresh stream
        // would rebuild anyway.
        endpoint.have_sequence = false;
        endpoint.last_sequence = 0;
        endpoint.journal_dirty = true;
        ++shard.stats.stale_endpoint_failsafes;
        ApplyIntent(shard, endpoint);
      }
    }
  }
}

EndpointPersistentState ControlPlane::ExportEndpoint(
    std::uint32_t endpoint_id) {
  LIMONCELLO_CHECK(endpoint_id <
                   static_cast<std::uint32_t>(options_.num_endpoints));
  Shard& shard = *shards_[static_cast<std::size_t>(ShardOf(endpoint_id))];
  MutexLock lock(&shard.mu);
  const EndpointState& endpoint = StateFor(shard, endpoint_id);
  EndpointPersistentState record;
  record.endpoint_id = endpoint_id;
  record.controller_state = endpoint.controller.state();
  record.timer_ns = endpoint.controller.timer_ns();
  record.toggle_count = endpoint.controller.toggle_count();
  record.intent_enabled = endpoint.intent_enabled;
  record.force_active = endpoint.force_active;
  record.force_enabled = endpoint.force_enabled;
  record.last_sequence = endpoint.last_sequence;
  record.have_sequence = endpoint.have_sequence;
  record.last_update_tick = endpoint.last_update_tick;
  return record;
}

std::vector<EndpointPersistentState> ControlPlane::ExportAllEndpoints() {
  std::vector<EndpointPersistentState> records;
  records.reserve(static_cast<std::size_t>(options_.num_endpoints));
  for (std::uint32_t id = 0;
       id < static_cast<std::uint32_t>(options_.num_endpoints); ++id) {
    records.push_back(ExportEndpoint(id));
  }
  return records;
}

void ControlPlane::CollectDirtyEndpoints(
    std::vector<EndpointPersistentState>* out) {
  for (std::uint32_t id = 0;
       id < static_cast<std::uint32_t>(options_.num_endpoints); ++id) {
    Shard& shard = *shards_[static_cast<std::size_t>(ShardOf(id))];
    bool dirty = false;
    {
      MutexLock lock(&shard.mu);
      EndpointState& endpoint = StateFor(shard, id);
      dirty = endpoint.journal_dirty;
      endpoint.journal_dirty = false;
    }
    if (dirty) out->push_back(ExportEndpoint(id));
  }
}

int ControlPlane::RestoreEndpoints(
    const std::vector<EndpointPersistentState>& records) {
  int adopted = 0;
  for (const EndpointPersistentState& record : records) {
    if (record.endpoint_id >=
        static_cast<std::uint32_t>(options_.num_endpoints)) {
      continue;
    }
    Shard& shard =
        *shards_[static_cast<std::size_t>(ShardOf(record.endpoint_id))];
    MutexLock lock(&shard.mu);
    EndpointState& endpoint = StateFor(shard, record.endpoint_id);
    // The FSM validates its own snapshot (enum range, timer inside the
    // sustain window); a violation leaves this endpoint cold-started.
    if (!endpoint.controller.RestoreState(record.controller_state,
                                          record.timer_ns,
                                          record.toggle_count)) {
      continue;
    }
    // A forced record must pin the same intent it claims.
    if (record.force_active &&
        record.force_enabled != record.intent_enabled) {
      endpoint.controller.Reset();
      continue;
    }
    endpoint.intent_enabled = record.intent_enabled;
    endpoint.force_active = record.force_active;
    endpoint.force_enabled = record.force_enabled;
    endpoint.last_sequence = record.last_sequence;
    endpoint.have_sequence = record.have_sequence;
    // Restart resets the staleness clock: the endpoint gets a full
    // window to be heard from before the fail-safe fires.
    endpoint.last_update_tick = tick_;
    endpoint.failsafe_active = false;
    ++shard.stats.warm_restores;
    ++adopted;
    // Journal intent wins over whatever the hardware drifted to while
    // the plane was down: re-assert unconditionally.
    endpoint.hardware_enabled = !endpoint.intent_enabled;
    ApplyIntent(shard, endpoint);
  }
  return adopted;
}

ControlPlane::Stats ControlPlane::SnapshotStats() {
  Stats total;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    const BoundedControlQueue::Counters queue =
        shard.queue.SnapshotCounters();
    MutexLock lock(&shard.mu);
    total.frames_ingested += queue.telemetry_pushed.value();
    total.frames_shed += queue.telemetry_shed.value();
    total.frames_rejected += queue.telemetry_rejected.value();
    total.commands_ingested += queue.commands_pushed.value();
    total.command_overflows += queue.command_overflows.value();
    total.backpressure_signals += queue.backpressure_signals.value();
    const Stats& s = shard.stats;
    total.frames_decoded += s.frames_decoded.value();
    total.decode_failures += s.decode_failures.value();
    total.sequence_rejects += s.sequence_rejects.value();
    total.unknown_endpoints += s.unknown_endpoints.value();
    total.samples_accepted += s.samples_accepted.value();
    total.disables += s.disables.value();
    total.enables += s.enables.value();
    total.actuation_failures += s.actuation_failures.value();
    total.retry_backoff_skips += s.retry_backoff_skips.value();
    total.stale_endpoint_failsafes += s.stale_endpoint_failsafes.value();
    total.commands_applied += s.commands_applied.value();
    total.warm_restores += s.warm_restores.value();
  }
  return total;
}

IngestLatencyHistogram ControlPlane::SnapshotLatency() {
  IngestLatencyHistogram total;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(&shard.mu);
    total.Merge(shard.latency);
  }
  return total;
}

BoundedControlQueue::Counters ControlPlane::SnapshotQueueCounters() {
  BoundedControlQueue::Counters total;
  for (auto& shard_ptr : shards_) {
    const BoundedControlQueue::Counters c =
        shard_ptr->queue.SnapshotCounters();
    total.telemetry_pushed += c.telemetry_pushed.value();
    total.commands_pushed += c.commands_pushed.value();
    total.telemetry_shed += c.telemetry_shed.value();
    total.telemetry_rejected += c.telemetry_rejected.value();
    total.command_overflows += c.command_overflows.value();
    total.backpressure_signals += c.backpressure_signals.value();
    total.telemetry_popped += c.telemetry_popped.value();
    total.commands_popped += c.commands_popped.value();
  }
  return total;
}

bool ControlPlane::EndpointIntentEnabled(std::uint32_t endpoint_id) {
  LIMONCELLO_CHECK(endpoint_id <
                   static_cast<std::uint32_t>(options_.num_endpoints));
  Shard& shard = *shards_[static_cast<std::size_t>(ShardOf(endpoint_id))];
  MutexLock lock(&shard.mu);
  return StateFor(shard, endpoint_id).intent_enabled;
}

ControllerState ControlPlane::EndpointControllerState(
    std::uint32_t endpoint_id) {
  LIMONCELLO_CHECK(endpoint_id <
                   static_cast<std::uint32_t>(options_.num_endpoints));
  Shard& shard = *shards_[static_cast<std::size_t>(ShardOf(endpoint_id))];
  MutexLock lock(&shard.mu);
  return StateFor(shard, endpoint_id).controller.state();
}

bool ControlPlane::EndpointInFailsafe(std::uint32_t endpoint_id) {
  LIMONCELLO_CHECK(endpoint_id <
                   static_cast<std::uint32_t>(options_.num_endpoints));
  Shard& shard = *shards_[static_cast<std::size_t>(ShardOf(endpoint_id))];
  MutexLock lock(&shard.mu);
  return StateFor(shard, endpoint_id).failsafe_active;
}

bool ControlPlane::EndpointForced(std::uint32_t endpoint_id) {
  LIMONCELLO_CHECK(endpoint_id <
                   static_cast<std::uint32_t>(options_.num_endpoints));
  Shard& shard = *shards_[static_cast<std::size_t>(ShardOf(endpoint_id))];
  MutexLock lock(&shard.mu);
  return StateFor(shard, endpoint_id).force_active;
}

}  // namespace limoncello
