#include "control/endpoint_sim.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.h"

namespace limoncello {

SimulatedEndpoint::SimulatedEndpoint(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  LIMONCELLO_CHECK_GE(options_.samples_per_batch, 1);
  LIMONCELLO_CHECK_LE(options_.samples_per_batch,
                      static_cast<int>(TelemetryBatch::kMaxSamples));
  LIMONCELLO_CHECK_GT(options_.diurnal_period_ticks, 0);
  pending_.endpoint_id = options_.endpoint_id;
  pending_.num_samples = 0;
}

double SimulatedEndpoint::NextUtilization() {
  if (burst_ticks_left_ == 0 && rng_.NextBernoulli(options_.burst_rate)) {
    burst_ticks_left_ = options_.burst_ticks;
  }
  double u;
  if (burst_ticks_left_ > 0) {
    --burst_ticks_left_;
    u = options_.burst_utilization;
  } else {
    const double phase =
        2.0 * std::numbers::pi *
        static_cast<double>(tick_ % static_cast<std::uint64_t>(
                                        options_.diurnal_period_ticks)) /
        static_cast<double>(options_.diurnal_period_ticks);
    u = options_.base_utilization +
        options_.diurnal_amplitude * std::sin(phase);
  }
  u += rng_.NextDouble(-options_.jitter, options_.jitter);
  return std::clamp(u, 0.0, kMaxPlausibleBatchUtilization);
}

std::size_t SimulatedEndpoint::Tick(unsigned char* out) {
  if (pending_.num_samples == 0) {
    pending_.base_tick = static_cast<std::uint32_t>(tick_);
  }
  pending_.utilization[pending_.num_samples] = NextUtilization();
  ++pending_.num_samples;
  ++tick_;
  if (pending_.num_samples <
      static_cast<std::uint32_t>(options_.samples_per_batch)) {
    return 0;
  }
  pending_.sequence = sequence_++;
  const std::size_t size = EncodeTelemetryBatch(pending_, out);
  LIMONCELLO_DCHECK(size > 0);
  pending_.num_samples = 0;
  ++batches_exported_;
  return size;
}

bool SimulatedEndpoint::Actuate(bool enable) {
  if (options_.actuation_faulty) return false;
  prefetchers_enabled_ = enable;
  return true;
}

}  // namespace limoncello
