#include "control/telemetry_batch.h"

#include <cmath>
#include <cstring>

#include "util/crc32.h"
#include "util/wire.h"

namespace limoncello {

const char* BatchDecodeStatusName(BatchDecodeStatus status) {
  switch (status) {
    case BatchDecodeStatus::kOk:
      return "ok";
    case BatchDecodeStatus::kTruncated:
      return "truncated";
    case BatchDecodeStatus::kBadMagic:
      return "bad_magic";
    case BatchDecodeStatus::kBadVersion:
      return "bad_version";
    case BatchDecodeStatus::kBadLength:
      return "bad_length";
    case BatchDecodeStatus::kBadCrc:
      return "bad_crc";
    case BatchDecodeStatus::kBadSampleCount:
      return "bad_sample_count";
    case BatchDecodeStatus::kInvalidSample:
      return "invalid_sample";
  }
  return "invalid";
}

// limolint:hot-path — exporter-side encode: pure byte stores into a
// caller-provided buffer, one frame per batch window.
std::size_t EncodeTelemetryBatch(const TelemetryBatch& batch,
                                 unsigned char* out) {
  if (batch.num_samples < 1 ||
      batch.num_samples > TelemetryBatch::kMaxSamples) {
    return 0;
  }
  const std::size_t payload_bytes =
      kTelemetryBatchFixedPayloadBytes + 8 * batch.num_samples;
  StoreU32(out, kTelemetryBatchMagic);
  StoreU32(out + 4, kTelemetryBatchVersion);
  StoreU32(out + 8, static_cast<std::uint32_t>(payload_bytes));
  unsigned char* p = out + kTelemetryBatchHeaderBytes;
  StoreU32(p, batch.endpoint_id);
  StoreU64(p + 4, batch.sequence);
  StoreU32(p + 12, batch.base_tick);
  StoreU32(p + 16, batch.num_samples);
  for (std::uint32_t i = 0; i < batch.num_samples; ++i) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(double));
    std::memcpy(&bits, &batch.utilization[i], sizeof(bits));
    StoreU64(p + kTelemetryBatchFixedPayloadBytes + 8 * i, bits);
  }
  // CRC covers version + size + payload; the magic is frame sync, not
  // data (same convention as the state journal).
  const std::uint32_t crc = Crc32(out + 4, 8 + payload_bytes);
  StoreU32(out + kTelemetryBatchHeaderBytes + payload_bytes, crc);
  return TelemetryFrameBytes(batch.num_samples);
}

// limolint:hot-path — the ingest trust boundary: every frame the
// transport delivers runs through here before any byte reaches
// controller state. Pure reads of the input buffer; never allocates.
BatchDecodeStatus DecodeTelemetryBatch(const unsigned char* data,
                                       std::size_t size,
                                       TelemetryBatch* out) {
  if (size < kTelemetryBatchHeaderBytes) {
    return BatchDecodeStatus::kTruncated;
  }
  if (LoadU32(data) != kTelemetryBatchMagic) {
    return BatchDecodeStatus::kBadMagic;
  }
  if (LoadU32(data + 4) != kTelemetryBatchVersion) {
    return BatchDecodeStatus::kBadVersion;
  }
  const std::uint32_t payload_bytes = LoadU32(data + 8);
  // Bound the size field before using it for anything: a corrupted
  // length must not index past the buffer or conjure a giant frame.
  if (payload_bytes < kTelemetryBatchFixedPayloadBytes + 8 ||
      payload_bytes > kTelemetryBatchFixedPayloadBytes +
                          8 * TelemetryBatch::kMaxSamples) {
    return BatchDecodeStatus::kBadLength;
  }
  if (size < kTelemetryBatchHeaderBytes + payload_bytes + 4) {
    return BatchDecodeStatus::kTruncated;
  }
  const std::uint32_t crc = Crc32(data + 4, 8 + payload_bytes);
  if (crc != LoadU32(data + kTelemetryBatchHeaderBytes + payload_bytes)) {
    return BatchDecodeStatus::kBadCrc;
  }
  const unsigned char* p = data + kTelemetryBatchHeaderBytes;
  const std::uint32_t num_samples = LoadU32(p + 16);
  if (num_samples < 1 || num_samples > TelemetryBatch::kMaxSamples) {
    return BatchDecodeStatus::kBadSampleCount;
  }
  // The CRC already vouched for the bytes; this ties the two redundant
  // length encodings (size field vs sample count) together.
  if (payload_bytes !=
      kTelemetryBatchFixedPayloadBytes + 8 * num_samples) {
    return BatchDecodeStatus::kBadLength;
  }
  out->endpoint_id = LoadU32(p);
  out->sequence = LoadU64(p + 4);
  out->base_tick = LoadU32(p + 12);
  out->num_samples = num_samples;
  for (std::uint32_t i = 0; i < num_samples; ++i) {
    const std::uint64_t bits =
        LoadU64(p + kTelemetryBatchFixedPayloadBytes + 8 * i);
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    // Value validation is part of the trust boundary: a CRC-clean frame
    // from a buggy exporter must not feed NaN into an FSM.
    if (!std::isfinite(value) || value < 0.0 ||
        value > kMaxPlausibleBatchUtilization) {
      return BatchDecodeStatus::kInvalidSample;
    }
    out->utilization[i] = value;
  }
  return BatchDecodeStatus::kOk;
}

}  // namespace limoncello
