#include "faults/fault_injector.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace limoncello {

FaultInjector::FaultInjector(const FaultPlan* plan) : plan_(plan) {
  LIMONCELLO_CHECK(plan != nullptr);
}

void FaultInjector::BeginTick() {
  ++tick_;

  if (down_ && tick_ >= down_end_) {
    down_ = false;
    ++stats_.reboots;
    if (reboot_callback_) reboot_callback_();
  }
  const std::vector<CrashFault>& crashes = plan_->crashes();
  if (!down_ && crash_next_ < crashes.size() &&
      crashes[crash_next_].tick <= tick_) {
    down_ = true;
    down_end_ = tick_ + std::max(1, crashes[crash_next_].down_ticks);
    ++crash_next_;
    ++stats_.crashes;
  }

  if (daemon_down_ && tick_ >= daemon_down_end_) {
    daemon_down_ = false;
    ++stats_.daemon_restarts;
    if (daemon_restart_callback_) daemon_restart_callback_();
  }
  const std::vector<DaemonRestartFault>& restarts =
      plan_->daemon_restarts();
  if (!daemon_down_ && daemon_restart_next_ < restarts.size() &&
      restarts[daemon_restart_next_].tick <= tick_) {
    daemon_down_ = true;
    daemon_down_end_ =
        tick_ + std::max(1, restarts[daemon_restart_next_].down_ticks);
    ++daemon_restart_next_;
    ++stats_.daemon_kills;
  }

  if (telemetry_active_ && tick_ >= telemetry_end_) {
    telemetry_active_ = false;
  }
  const std::vector<TelemetryFault>& telemetry = plan_->telemetry_faults();
  if (!telemetry_active_ && telemetry_next_ < telemetry.size() &&
      telemetry[telemetry_next_].tick <= tick_) {
    telemetry_fault_ = telemetry[telemetry_next_];
    telemetry_active_ = true;
    telemetry_end_ = tick_ + std::max(1, telemetry_fault_.duration_ticks);
    ++telemetry_next_;
  }

  if (msr_active_ && tick_ >= msr_end_) msr_active_ = false;
  const std::vector<MsrWriteFault>& msr = plan_->msr_faults();
  if (!msr_active_ && msr_next_ < msr.size() &&
      msr[msr_next_].tick <= tick_) {
    msr_fault_ = msr[msr_next_];
    msr_active_ = true;
    msr_end_ = tick_ + std::max(1, msr_fault_.duration_ticks);
    ++msr_next_;
  }
}

std::optional<double> FaultInjector::FilterSample(
    std::optional<double> sample) {
  if (!telemetry_active_) {
    if (sample.has_value()) last_good_sample_ = sample;
    return sample;
  }
  ++stats_.telemetry_faults;
  switch (telemetry_fault_.kind) {
    case TelemetryFaultKind::kDropout:
      return std::nullopt;
    case TelemetryFaultKind::kNan:
      return std::numeric_limits<double>::quiet_NaN();
    case TelemetryFaultKind::kInf:
      return std::numeric_limits<double>::infinity();
    case TelemetryFaultKind::kStale:
      // Bit-for-bit repeat of the last good sample — exactly what a
      // frozen exporter produces. nullopt if nothing good was ever seen.
      return last_good_sample_;
    case TelemetryFaultKind::kSpike:
      if (!sample.has_value()) return sample;
      return *sample * telemetry_fault_.magnitude;
  }
  LIMONCELLO_CHECK(false);
  return std::nullopt;
}

bool FaultInjector::MsrFaultHits(int cpu, int num_cpus,
                                 bool is_write) const {
  if (!msr_active_) return false;
  if (msr_fault_.cpu < 0) return is_write;  // transient: all writes fail
  LIMONCELLO_CHECK_GT(num_cpus, 0);
  return cpu == msr_fault_.cpu % num_cpus;
}

bool FaultInjector::WriteFaulted(int cpu, int num_cpus) {
  if (!MsrFaultHits(cpu, num_cpus, /*is_write=*/true)) return false;
  ++stats_.msr_write_faults;
  return true;
}

bool FaultInjector::ReadFaulted(int cpu, int num_cpus) {
  if (!MsrFaultHits(cpu, num_cpus, /*is_write=*/false)) return false;
  ++stats_.msr_read_faults;
  return true;
}

FaultyUtilizationSource::FaultyUtilizationSource(UtilizationSource* inner,
                                                 FaultInjector* injector)
    : inner_(inner), injector_(injector) {
  LIMONCELLO_CHECK(inner != nullptr);
  LIMONCELLO_CHECK(injector != nullptr);
}

std::optional<double> FaultyUtilizationSource::SampleUtilization() {
  return injector_->FilterSample(inner_->SampleUtilization());
}

FaultyMsrDevice::FaultyMsrDevice(MsrDevice* inner, FaultInjector* injector)
    : inner_(inner), injector_(injector) {
  LIMONCELLO_CHECK(inner != nullptr);
  LIMONCELLO_CHECK(injector != nullptr);
}

int FaultyMsrDevice::num_cpus() const { return inner_->num_cpus(); }

std::optional<std::uint64_t> FaultyMsrDevice::Read(int cpu,
                                                   MsrRegister reg) {
  if (injector_->MachineDown()) return std::nullopt;
  if (injector_->ReadFaulted(cpu, inner_->num_cpus())) return std::nullopt;
  return inner_->Read(cpu, reg);
}

bool FaultyMsrDevice::Write(int cpu, MsrRegister reg, std::uint64_t value) {
  if (injector_->MachineDown()) return false;
  if (injector_->WriteFaulted(cpu, inner_->num_cpus())) return false;
  return inner_->Write(cpu, reg, value);
}

}  // namespace limoncello
