// Replays a FaultPlan against one machine's telemetry and MSR paths.
//
// The injector is a tick-synchronous window machine: BeginTick() opens
// and closes the plan's fault windows, and two decorators consult it —
// FaultyUtilizationSource corrupts the daemon's utilization samples and
// FaultyMsrDevice fails reads/writes — so faults arrive through the same
// interfaces production failures would. Crash windows mark the machine
// down; when the downtime ends the injector fires a reboot callback (the
// machine model uses it to silently reset the MSRs to the BIOS default,
// the condition the daemon's readback path must detect).
//
// Everything is deterministic: the plan is fixed up front and the
// injector holds no randomness, so two runs of the same plan are
// bit-identical regardless of thread count.
#ifndef LIMONCELLO_FAULTS_FAULT_INJECTOR_H_
#define LIMONCELLO_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "faults/fault_plan.h"
#include "msr/msr_device.h"
#include "stats/saturating.h"
#include "telemetry/telemetry.h"

namespace limoncello {

class FaultInjector {
 public:
  struct Stats {
    SatCounter telemetry_faults;  // samples corrupted or dropped
    SatCounter msr_write_faults;  // writes failed by injection
    SatCounter msr_read_faults;   // reads failed by injection
    SatCounter crashes;
    SatCounter reboots;
    SatCounter daemon_kills;     // daemon-down windows opened
    SatCounter daemon_restarts;  // windows closed (restart due)

    bool Any() const {
      return telemetry_faults > 0 || msr_write_faults > 0 ||
             msr_read_faults > 0 || crashes > 0 || daemon_kills > 0;
    }
  };

  // `plan` must outlive the injector.
  explicit FaultInjector(const FaultPlan* plan);

  // Advances to the next tick (0, 1, ... — numbering matches the plan's
  // tick field): opens windows scheduled to start, closes expired ones,
  // and fires the reboot callback when a crash's downtime ends.
  void BeginTick();

  // True while a crash window is open: the machine is off, nothing runs.
  bool MachineDown() const { return down_; }

  // Invoked once per crash, on the tick the machine comes back up —
  // before that tick's work runs. Wire the BIOS reset here.
  void SetRebootCallback(std::function<void()> callback) {
    reboot_callback_ = std::move(callback);
  }

  // True while a daemon-restart window is open: the controller process
  // is dead but the machine (and its telemetry exporter) keeps serving
  // on the frozen hardware prefetcher state.
  bool DaemonDown() const { return daemon_down_; }

  // Invoked once per daemon-restart window, on the tick the supervisor
  // brings the daemon back — before that tick's work runs. Wire the
  // daemon rebuild + journal recovery here.
  void SetDaemonRestartCallback(std::function<void()> callback) {
    daemon_restart_callback_ = std::move(callback);
  }

  // Telemetry path: passes the sample through the active fault window
  // (if any) and tracks the last good sample for stale freezes.
  std::optional<double> FilterSample(std::optional<double> sample);

  // MSR path: whether an injected fault fails this access. `cpu` is the
  // caller's CPU index; per-core faults target (raw draw % num_cpus).
  bool WriteFaulted(int cpu, int num_cpus);
  bool ReadFaulted(int cpu, int num_cpus);

  const Stats& stats() const { return stats_; }
  int tick() const { return tick_; }

 private:
  bool MsrFaultHits(int cpu, int num_cpus, bool is_write) const;

  const FaultPlan* plan_;
  int tick_ = -1;

  // Open-window state, one slot per category.
  std::size_t telemetry_next_ = 0;
  bool telemetry_active_ = false;
  int telemetry_end_ = 0;
  TelemetryFault telemetry_fault_;

  std::size_t msr_next_ = 0;
  bool msr_active_ = false;
  int msr_end_ = 0;
  MsrWriteFault msr_fault_;

  std::size_t crash_next_ = 0;
  bool down_ = false;
  int down_end_ = 0;

  std::size_t daemon_restart_next_ = 0;
  bool daemon_down_ = false;
  int daemon_down_end_ = 0;

  std::optional<double> last_good_sample_;
  std::function<void()> reboot_callback_;
  std::function<void()> daemon_restart_callback_;
  Stats stats_;
};

// UtilizationSource decorator: samples the inner source every tick (so
// any randomness it consumes advances identically with or without an
// active fault) and passes the result through the injector.
class FaultyUtilizationSource : public UtilizationSource {
 public:
  // Both pointers must outlive this object.
  FaultyUtilizationSource(UtilizationSource* inner, FaultInjector* injector);

  std::optional<double> SampleUtilization() override;

 private:
  UtilizationSource* inner_;
  FaultInjector* injector_;
};

// MsrDevice decorator: fails accesses per the injector's open MSR fault
// window, and fails everything while the machine is down.
class FaultyMsrDevice : public MsrDevice {
 public:
  // Both pointers must outlive this object.
  FaultyMsrDevice(MsrDevice* inner, FaultInjector* injector);

  int num_cpus() const override;
  std::optional<std::uint64_t> Read(int cpu, MsrRegister reg) override;
  [[nodiscard]] bool Write(int cpu, MsrRegister reg,
                           std::uint64_t value) override;

 private:
  MsrDevice* inner_;
  FaultInjector* injector_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_FAULTS_FAULT_INJECTOR_H_
