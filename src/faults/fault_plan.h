// Deterministic fault schedules for chaos testing the control plane.
//
// A FaultPlan is a pre-drawn, immutable schedule of fault windows for one
// machine: telemetry corruption (dropout, NaN/Inf, stale freeze, spike),
// MSR write failures (transient all-CPU or per-core partial), and machine
// crashes (downtime followed by a reboot that silently resets the
// prefetchers to the BIOS default). Plans are generated up front from a
// seeded Rng, so a chaos run is a pure function of (spec, horizon, seed)
// — the fleet's bit-identical-at-any-thread-count contract extends to
// fault injection unchanged. The FaultInjector (fault_injector.h) replays
// a plan tick by tick.
#ifndef LIMONCELLO_FAULTS_FAULT_PLAN_H_
#define LIMONCELLO_FAULTS_FAULT_PLAN_H_

#include <vector>

#include "util/rng.h"

namespace limoncello {

// Per-tick Bernoulli probabilities of a new fault window *starting*, plus
// window shapes. All rates default to zero: a default FaultSpec injects
// nothing. Windows of the same category never overlap — while one is
// open, no new one of that category is drawn.
struct FaultSpec {
  // Telemetry: the daemon's utilization sample goes missing entirely.
  double telemetry_dropout_rate = 0.0;
  int telemetry_dropout_ticks = 3;
  // Telemetry: a single corrupted sample (NaN or Inf, 50/50).
  double telemetry_nan_rate = 0.0;
  // Telemetry: the exporter freezes — the last good sample is repeated
  // bit for bit for the whole window.
  double telemetry_stale_rate = 0.0;
  int telemetry_stale_ticks = 12;
  // Telemetry: a single sample multiplied far out of range.
  double telemetry_spike_rate = 0.0;
  double telemetry_spike_multiplier = 25.0;

  // Actuation: every CPU's MSR write fails for one tick (e.g. the msr
  // module briefly unloaded).
  double msr_transient_rate = 0.0;
  // Actuation: one CPU's MSR interface disappears (core offline) — reads
  // and writes to it fail for the window.
  double msr_core_fault_rate = 0.0;
  int msr_core_fault_ticks = 10;

  // Lifecycle: the machine crashes, stays down, then reboots with the
  // prefetchers silently back at the BIOS default.
  double crash_rate = 0.0;
  int crash_down_ticks = 5;

  // Lifecycle: the controller *daemon* dies (OOM kill, rollout restart)
  // and its supervisor brings it back a few ticks later. Distinct from a
  // crash: the machine and its workload keep running on the frozen
  // hardware prefetcher state, and the restarted daemon must recover
  // its FSM from the journal (or cold-start) and reconcile.
  double daemon_restart_rate = 0.0;
  int daemon_restart_down_ticks = 2;

  // Transport: per-frame faults on the control plane's wire (telemetry
  // batches from endpoint to daemon). Unlike the tick-windowed
  // categories above, these key on the *send index* — fault i hits the
  // i-th frame pushed through a ChaosTransport — so the schedule is
  // independent of wall timing. At most one transport fault per frame.
  double transport_drop_rate = 0.0;       // frame vanishes
  double transport_reorder_rate = 0.0;    // frame swaps with its successor
  double transport_duplicate_rate = 0.0;  // frame delivered twice
  double transport_truncate_rate = 0.0;   // frame cut mid-payload
  double transport_stale_rate = 0.0;      // previous frame re-delivered late

  // Last tick (inclusive) at which a new fault window may start; -1 means
  // no limit. A quiet tail lets chaos runs assert full reconvergence.
  int max_fault_tick = -1;

  bool AnyTransport() const {
    return transport_drop_rate > 0.0 || transport_reorder_rate > 0.0 ||
           transport_duplicate_rate > 0.0 ||
           transport_truncate_rate > 0.0 || transport_stale_rate > 0.0;
  }

  bool Any() const {
    return telemetry_dropout_rate > 0.0 || telemetry_nan_rate > 0.0 ||
           telemetry_stale_rate > 0.0 || telemetry_spike_rate > 0.0 ||
           msr_transient_rate > 0.0 || msr_core_fault_rate > 0.0 ||
           crash_rate > 0.0 || daemon_restart_rate > 0.0 ||
           AnyTransport();
  }
};

enum class TelemetryFaultKind { kDropout, kNan, kInf, kStale, kSpike };

const char* TelemetryFaultKindName(TelemetryFaultKind kind);

struct TelemetryFault {
  int tick = 0;
  int duration_ticks = 1;
  TelemetryFaultKind kind = TelemetryFaultKind::kDropout;
  double magnitude = 0.0;  // spike multiplier (kSpike only)
};

struct MsrWriteFault {
  int tick = 0;
  int duration_ticks = 1;
  // Raw CPU draw, reduced modulo the device's CPU count by the injector;
  // -1 means every CPU (writes only). A per-core fault (cpu >= 0) fails
  // reads too — the core's MSR interface is gone, not one write.
  int cpu = -1;
};

struct CrashFault {
  int tick = 0;
  int down_ticks = 1;
};

struct DaemonRestartFault {
  int tick = 0;
  int down_ticks = 1;
};

enum class TransportFaultKind {
  kDrop,
  kReorder,
  kDuplicate,
  kTruncate,
  kStale,
};

const char* TransportFaultKindName(TransportFaultKind kind);

struct TransportFault {
  // The send index this fault hits: the i-th frame pushed through the
  // transport (not a tick — frame cadence is the exporter's business).
  int frame_index = 0;
  TransportFaultKind kind = TransportFaultKind::kDrop;
};

class FaultPlan {
 public:
  FaultPlan() = default;

  // Draws a schedule from the per-tick rates: a pure function of (spec,
  // horizon_ticks, rng state). Per category, events are sorted by tick
  // and never overlap.
  static FaultPlan Generate(const FaultSpec& spec, int horizon_ticks,
                            Rng rng);

  // Scripted construction for tests. Within a category, events must be
  // appended in order and must not overlap (checked).
  void AddTelemetryFault(const TelemetryFault& fault);
  void AddMsrWriteFault(const MsrWriteFault& fault);
  void AddCrash(const CrashFault& fault);
  void AddDaemonRestart(const DaemonRestartFault& fault);
  void AddTransportFault(const TransportFault& fault);

  const std::vector<TelemetryFault>& telemetry_faults() const {
    return telemetry_faults_;
  }
  const std::vector<MsrWriteFault>& msr_faults() const {
    return msr_faults_;
  }
  const std::vector<CrashFault>& crashes() const { return crashes_; }
  const std::vector<DaemonRestartFault>& daemon_restarts() const {
    return daemon_restarts_;
  }
  const std::vector<TransportFault>& transport_faults() const {
    return transport_faults_;
  }

  bool Empty() const {
    return telemetry_faults_.empty() && msr_faults_.empty() &&
           crashes_.empty() && daemon_restarts_.empty() &&
           transport_faults_.empty();
  }

 private:
  std::vector<TelemetryFault> telemetry_faults_;
  std::vector<MsrWriteFault> msr_faults_;
  std::vector<CrashFault> crashes_;
  std::vector<DaemonRestartFault> daemon_restarts_;
  std::vector<TransportFault> transport_faults_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_FAULTS_FAULT_PLAN_H_
