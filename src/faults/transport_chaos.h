// Chaos decorator for the control plane's frame transport.
//
// Sits between an exporter (frame producer) and a delivery sink (the
// control daemon's ingest queue) and replays a FaultPlan's transport
// schedule against the byte stream: frames are dropped, swapped with
// their successor, delivered twice, cut mid-payload, or re-delivered
// late (stale). Faults key on the send index — the i-th Send() call —
// so a chaos run is a pure function of (plan, frame sequence),
// independent of wall timing and thread count.
//
// The decorator owns two fixed frame buffers (one reorder slot, one
// last-frame copy for stale re-delivery) and never allocates after
// construction. Call Flush() at end of stream to release a frame still
// parked in the reorder slot.
#ifndef LIMONCELLO_FAULTS_TRANSPORT_CHAOS_H_
#define LIMONCELLO_FAULTS_TRANSPORT_CHAOS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "faults/fault_plan.h"
#include "stats/saturating.h"

namespace limoncello {

class ChaosTransport {
 public:
  // Largest frame the decorator can park for reorder/stale re-delivery
  // (comfortably above kMaxTelemetryFrameBytes; checked at Send).
  static constexpr std::size_t kMaxFrameBytes = 1024;

  // Delivery sink: receives the (possibly faulted) frames in final wire
  // order. The sink sees exactly what a real receiver would.
  using DeliverFn =
      std::function<void(const unsigned char* data, std::size_t size)>;

  struct Stats {
    SatCounter sent;        // frames offered by the exporter
    SatCounter delivered;   // sink invocations (incl. dups/stales)
    SatCounter dropped;
    SatCounter reordered;   // swaps performed
    SatCounter duplicated;
    SatCounter truncated;
    SatCounter staled;      // late re-deliveries of the previous frame

    bool operator==(const Stats&) const = default;
  };

  // `plan` must outlive the transport; pass nullptr for a transparent
  // (fault-free) wire.
  ChaosTransport(const FaultPlan* plan, DeliverFn deliver);

  ChaosTransport(const ChaosTransport&) = delete;
  ChaosTransport& operator=(const ChaosTransport&) = delete;

  // Offers one frame to the wire. size must be <= kMaxFrameBytes.
  void Send(const unsigned char* data, std::size_t size);

  // Delivers a frame still held in the reorder slot (end of stream).
  void Flush();

  const Stats& stats() const { return stats_; }
  int frames_sent() const { return frame_index_; }

 private:
  // The fault scheduled for the current frame index, if any.
  const TransportFault* FaultForCurrentFrame();
  void Deliver(const unsigned char* data, std::size_t size);
  void RememberLast(const unsigned char* data, std::size_t size);

  const FaultPlan* plan_;
  DeliverFn deliver_;
  std::size_t next_fault_ = 0;  // cursor into plan_->transport_faults()
  int frame_index_ = 0;

  // Reorder slot: a frame parked to swap with its successor.
  bool held_valid_ = false;
  std::size_t held_size_ = 0;
  std::array<unsigned char, kMaxFrameBytes> held_{};

  // Last delivered frame, for stale re-delivery.
  bool last_valid_ = false;
  std::size_t last_size_ = 0;
  std::array<unsigned char, kMaxFrameBytes> last_{};

  Stats stats_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_FAULTS_TRANSPORT_CHAOS_H_
