#include "faults/transport_chaos.h"

#include <cstring>
#include <utility>

#include "util/check.h"

namespace limoncello {

ChaosTransport::ChaosTransport(const FaultPlan* plan, DeliverFn deliver)
    : plan_(plan), deliver_(std::move(deliver)) {
  LIMONCELLO_CHECK(deliver_ != nullptr);
}

const TransportFault* ChaosTransport::FaultForCurrentFrame() {
  if (plan_ == nullptr) return nullptr;
  const std::vector<TransportFault>& faults = plan_->transport_faults();
  while (next_fault_ < faults.size() &&
         faults[next_fault_].frame_index < frame_index_) {
    ++next_fault_;
  }
  if (next_fault_ < faults.size() &&
      faults[next_fault_].frame_index == frame_index_) {
    return &faults[next_fault_];
  }
  return nullptr;
}

void ChaosTransport::Deliver(const unsigned char* data, std::size_t size) {
  ++stats_.delivered;
  deliver_(data, size);
}

void ChaosTransport::RememberLast(const unsigned char* data,
                                  std::size_t size) {
  std::memcpy(last_.data(), data, size);
  last_size_ = size;
  last_valid_ = true;
}

void ChaosTransport::Send(const unsigned char* data, std::size_t size) {
  LIMONCELLO_CHECK(data != nullptr);
  LIMONCELLO_CHECK_GT(size, static_cast<std::size_t>(0));
  LIMONCELLO_CHECK_LE(size, kMaxFrameBytes);
  const TransportFault* fault = FaultForCurrentFrame();
  ++frame_index_;
  ++stats_.sent;

  // A frame parked for reorder is released right after its successor:
  // the pair arrives swapped. The successor's own fault (if any) was
  // already consumed above, so a reorder chain can't cascade.
  const bool release_held = held_valid_;

  if (fault == nullptr) {
    Deliver(data, size);
    RememberLast(data, size);
  } else {
    switch (fault->kind) {
      case TransportFaultKind::kDrop:
        ++stats_.dropped;
        break;
      case TransportFaultKind::kReorder:
        if (release_held) {
          // Slot already occupied — deliver in order rather than hold
          // two frames; counted as a reorder that degenerated.
          Deliver(data, size);
          RememberLast(data, size);
        } else {
          std::memcpy(held_.data(), data, size);
          held_size_ = size;
          held_valid_ = true;
          ++stats_.reordered;
        }
        break;
      case TransportFaultKind::kDuplicate:
        Deliver(data, size);
        Deliver(data, size);
        ++stats_.duplicated;
        RememberLast(data, size);
        break;
      case TransportFaultKind::kTruncate: {
        // Cut mid-payload: past the header if possible so the receiver
        // exercises its length check, not just the header-size check.
        const std::size_t cut = size > 16 ? size / 2 : size - 1;
        if (cut > 0) Deliver(data, cut);
        ++stats_.truncated;
        break;
      }
      case TransportFaultKind::kStale:
        Deliver(data, size);
        if (last_valid_) {
          // The *previous* frame shows up again, late — the receiver
          // must reject its regressed sequence number. Replayed before
          // RememberLast overwrites the stored copy.
          Deliver(last_.data(), last_size_);
          ++stats_.staled;
        }
        RememberLast(data, size);
        break;
    }
  }

  if (release_held) {
    held_valid_ = false;
    Deliver(held_.data(), held_size_);
    RememberLast(held_.data(), held_size_);
  }
}

void ChaosTransport::Flush() {
  if (held_valid_) {
    held_valid_ = false;
    Deliver(held_.data(), held_size_);
    RememberLast(held_.data(), held_size_);
  }
}

}  // namespace limoncello
