#include "faults/fault_plan.h"

#include <algorithm>

#include "util/check.h"

namespace limoncello {

const char* TransportFaultKindName(TransportFaultKind kind) {
  switch (kind) {
    case TransportFaultKind::kDrop:
      return "drop";
    case TransportFaultKind::kReorder:
      return "reorder";
    case TransportFaultKind::kDuplicate:
      return "duplicate";
    case TransportFaultKind::kTruncate:
      return "truncate";
    case TransportFaultKind::kStale:
      return "stale";
  }
  return "unknown";
}

const char* TelemetryFaultKindName(TelemetryFaultKind kind) {
  switch (kind) {
    case TelemetryFaultKind::kDropout:
      return "dropout";
    case TelemetryFaultKind::kNan:
      return "nan";
    case TelemetryFaultKind::kInf:
      return "inf";
    case TelemetryFaultKind::kStale:
      return "stale";
    case TelemetryFaultKind::kSpike:
      return "spike";
  }
  return "unknown";
}

namespace {

// Ticks until a category is free again after an event at `tick`.
int WindowEnd(int tick, int duration_ticks) {
  return tick + std::max(1, duration_ticks);
}

}  // namespace

FaultPlan FaultPlan::Generate(const FaultSpec& spec, int horizon_ticks,
                              Rng rng) {
  LIMONCELLO_CHECK_GT(horizon_ticks, 0);
  FaultPlan plan;
  const int last =
      spec.max_fault_tick >= 0
          ? std::min(spec.max_fault_tick, horizon_ticks - 1)
          : horizon_ticks - 1;
  int telemetry_free = 0;
  int msr_free = 0;
  int crash_free = 0;
  int restart_free = 0;
  for (int t = 0; t <= last; ++t) {
    if (t >= telemetry_free) {
      TelemetryFault fault;
      fault.tick = t;
      bool fired = true;
      if (rng.NextBernoulli(spec.telemetry_dropout_rate)) {
        fault.kind = TelemetryFaultKind::kDropout;
        fault.duration_ticks = spec.telemetry_dropout_ticks;
      } else if (rng.NextBernoulli(spec.telemetry_nan_rate)) {
        fault.kind = rng.NextBernoulli(0.5) ? TelemetryFaultKind::kNan
                                            : TelemetryFaultKind::kInf;
        fault.duration_ticks = 1;
      } else if (rng.NextBernoulli(spec.telemetry_stale_rate)) {
        fault.kind = TelemetryFaultKind::kStale;
        fault.duration_ticks = spec.telemetry_stale_ticks;
      } else if (rng.NextBernoulli(spec.telemetry_spike_rate)) {
        fault.kind = TelemetryFaultKind::kSpike;
        fault.duration_ticks = 1;
        fault.magnitude = spec.telemetry_spike_multiplier;
      } else {
        fired = false;
      }
      if (fired) {
        plan.AddTelemetryFault(fault);
        telemetry_free = WindowEnd(t, fault.duration_ticks);
      }
    }
    if (t >= msr_free) {
      MsrWriteFault fault;
      fault.tick = t;
      bool fired = true;
      if (rng.NextBernoulli(spec.msr_transient_rate)) {
        fault.cpu = -1;
        fault.duration_ticks = 1;
      } else if (rng.NextBernoulli(spec.msr_core_fault_rate)) {
        fault.cpu = static_cast<int>(rng.NextBounded(1 << 20));
        fault.duration_ticks = spec.msr_core_fault_ticks;
      } else {
        fired = false;
      }
      if (fired) {
        plan.AddMsrWriteFault(fault);
        msr_free = WindowEnd(t, fault.duration_ticks);
      }
    }
    if (t >= crash_free && rng.NextBernoulli(spec.crash_rate)) {
      CrashFault fault;
      fault.tick = t;
      fault.down_ticks = std::max(1, spec.crash_down_ticks);
      plan.AddCrash(fault);
      // +1: the reboot tick itself separates consecutive crashes.
      crash_free = WindowEnd(t, fault.down_ticks) + 1;
    }
    // The rate guard keeps the draw stream byte-identical to plans
    // generated before daemon restarts existed (NextBernoulli consumes
    // a draw even at rate 0).
    if (spec.daemon_restart_rate > 0.0 && t >= restart_free &&
        rng.NextBernoulli(spec.daemon_restart_rate)) {
      DaemonRestartFault fault;
      fault.tick = t;
      fault.down_ticks = std::max(1, spec.daemon_restart_down_ticks);
      plan.AddDaemonRestart(fault);
      // +1: the restart tick itself separates consecutive windows.
      restart_free = WindowEnd(t, fault.down_ticks) + 1;
    }
    // The AnyTransport guard keeps the draw stream byte-identical to
    // plans generated before transport faults existed (same discipline
    // as the daemon-restart guard above).
    if (spec.AnyTransport()) {
      TransportFault fault;
      fault.frame_index = t;
      bool fired = true;
      if (rng.NextBernoulli(spec.transport_drop_rate)) {
        fault.kind = TransportFaultKind::kDrop;
      } else if (rng.NextBernoulli(spec.transport_reorder_rate)) {
        fault.kind = TransportFaultKind::kReorder;
      } else if (rng.NextBernoulli(spec.transport_duplicate_rate)) {
        fault.kind = TransportFaultKind::kDuplicate;
      } else if (rng.NextBernoulli(spec.transport_truncate_rate)) {
        fault.kind = TransportFaultKind::kTruncate;
      } else if (rng.NextBernoulli(spec.transport_stale_rate)) {
        fault.kind = TransportFaultKind::kStale;
      } else {
        fired = false;
      }
      if (fired) plan.AddTransportFault(fault);
    }
  }
  return plan;
}

void FaultPlan::AddTelemetryFault(const TelemetryFault& fault) {
  LIMONCELLO_CHECK_GE(fault.tick, 0);
  LIMONCELLO_CHECK_GT(fault.duration_ticks, 0);
  if (!telemetry_faults_.empty()) {
    const TelemetryFault& prev = telemetry_faults_.back();
    LIMONCELLO_CHECK_GE(fault.tick,
                        WindowEnd(prev.tick, prev.duration_ticks));
  }
  telemetry_faults_.push_back(fault);
}

void FaultPlan::AddMsrWriteFault(const MsrWriteFault& fault) {
  LIMONCELLO_CHECK_GE(fault.tick, 0);
  LIMONCELLO_CHECK_GT(fault.duration_ticks, 0);
  if (!msr_faults_.empty()) {
    const MsrWriteFault& prev = msr_faults_.back();
    LIMONCELLO_CHECK_GE(fault.tick,
                        WindowEnd(prev.tick, prev.duration_ticks));
  }
  msr_faults_.push_back(fault);
}

void FaultPlan::AddCrash(const CrashFault& fault) {
  LIMONCELLO_CHECK_GE(fault.tick, 0);
  LIMONCELLO_CHECK_GT(fault.down_ticks, 0);
  if (!crashes_.empty()) {
    const CrashFault& prev = crashes_.back();
    LIMONCELLO_CHECK_GE(fault.tick, WindowEnd(prev.tick, prev.down_ticks));
  }
  crashes_.push_back(fault);
}

void FaultPlan::AddTransportFault(const TransportFault& fault) {
  LIMONCELLO_CHECK_GE(fault.frame_index, 0);
  if (!transport_faults_.empty()) {
    // Strictly increasing: at most one fault per frame.
    LIMONCELLO_CHECK_GT(fault.frame_index,
                        transport_faults_.back().frame_index);
  }
  transport_faults_.push_back(fault);
}

void FaultPlan::AddDaemonRestart(const DaemonRestartFault& fault) {
  LIMONCELLO_CHECK_GE(fault.tick, 0);
  LIMONCELLO_CHECK_GT(fault.down_ticks, 0);
  if (!daemon_restarts_.empty()) {
    const DaemonRestartFault& prev = daemon_restarts_.back();
    LIMONCELLO_CHECK_GE(fault.tick, WindowEnd(prev.tick, prev.down_ticks));
  }
  daemon_restarts_.push_back(fault);
}

}  // namespace limoncello
