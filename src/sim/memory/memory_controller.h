// Socket memory controller: bandwidth accounting and queuing latency.
//
// The controller operates in fixed epochs. Within an epoch, request latency
// is computed from a smoothed utilization estimate carried over from prior
// epochs (one-epoch feedback lag, EWMA-smoothed), which mimics how real
// queuing delay reflects recent arrival rates. Demand, hardware-prefetch,
// software-prefetch, and writeback traffic are accounted separately so
// that experiments can report the prefetcher share of bandwidth.
#ifndef LIMONCELLO_SIM_MEMORY_MEMORY_CONTROLLER_H_
#define LIMONCELLO_SIM_MEMORY_MEMORY_CONTROLLER_H_

#include <cstdint>

#include "sim/memory/latency_curve.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/units.h"

namespace limoncello {

enum class TrafficClass : int {
  kDemand = 0,
  kHwPrefetch = 1,
  kSwPrefetch = 2,
  kWriteback = 3,
};
inline constexpr int kNumTrafficClasses = 4;

struct MemoryControllerConfig {
  // Saturation bandwidth of the socket (the machine-qualification
  // "memory bandwidth saturation threshold" of paper §3).
  double peak_gbps = 24.0;  // e.g. 8 cores x 3 GB/s per core
  LatencyCurveConfig latency;
  // EWMA smoothing for the utilization estimate (per epoch). Kept low:
  // elastic workloads (whose issue rate responds to latency) limit-cycle
  // against the one-epoch feedback lag if smoothing is too light.
  double utilization_alpha = 0.15;
  // Deterministic per-request latency jitter (fraction of latency).
  double jitter_fraction = 0.06;
  // Hardware prefetchers issue in bursts (degree > 1), so at the same
  // average utilization a prefetch-heavy mix queues worse than smooth
  // demand traffic (M/G/1 batch-arrival effect). The latency curve is
  // evaluated at utilization * (1 + penalty * hw_prefetch_share); this
  // is what lifts the prefetchers-on curve in paper Fig. 1.
  double prefetch_burst_penalty = 0.06;
};

class MemoryController {
 public:
  struct EpochStats {
    double utilization = 0.0;     // raw utilization of the finished epoch
    double avg_latency_ns = 0.0;  // mean served latency in the epoch
    std::uint64_t bytes[kNumTrafficClasses] = {0, 0, 0, 0};
    std::uint64_t requests = 0;
    std::uint64_t TotalBytes() const {
      return bytes[0] + bytes[1] + bytes[2] + bytes[3];
    }
  };

  struct Totals {
    std::uint64_t bytes[kNumTrafficClasses] = {0, 0, 0, 0};
    std::uint64_t requests = 0;
    double latency_ns_sum = 0.0;
    std::uint64_t TotalBytes() const {
      return bytes[0] + bytes[1] + bytes[2] + bytes[3];
    }
    double AvgLatencyNs() const {
      return requests ? latency_ns_sum / static_cast<double>(requests) : 0.0;
    }
  };

  MemoryController(const MemoryControllerConfig& config, Rng rng);

  void BeginEpoch(SimTimeNs epoch_ns);

  // Issues one line-sized request; returns its load-to-use latency (ns).
  // Writebacks consume bandwidth but return 0 (not on the load path).
  double Access(TrafficClass traffic);

  // Closes the epoch: computes raw utilization, folds it into the EWMA,
  // and returns the finished epoch's stats.
  EpochStats EndEpoch();

  // Current smoothed utilization estimate (what latency is computed from).
  double SmoothedUtilization() const { return utilization_ewma_; }

  // Smoothed share of traffic that is hardware prefetch.
  double SmoothedPrefetchShare() const { return prefetch_share_ewma_; }

  // Latency the controller would charge right now, including the
  // burstiness penalty for prefetch-heavy mixes.
  double CurrentLatencyNs() const {
    const double effective =
        utilization_ewma_ *
        (1.0 + config_.prefetch_burst_penalty * prefetch_share_ewma_);
    return LatencyAtUtilization(config_.latency, effective);
  }

  const Totals& totals() const { return totals_; }
  const MemoryControllerConfig& config() const { return config_; }

  // Peak (saturation) bandwidth in bytes per nanosecond (== GB/s).
  double PeakBytesPerNs() const { return config_.peak_gbps; }

 private:
  MemoryControllerConfig config_;
  Rng rng_;
  double utilization_ewma_ = 0.0;
  double prefetch_share_ewma_ = 0.0;
  SimTimeNs epoch_ns_ = 0;
  bool in_epoch_ = false;
  EpochStats epoch_;
  Totals totals_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_MEMORY_MEMORY_CONTROLLER_H_
