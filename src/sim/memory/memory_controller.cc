#include "sim/memory/memory_controller.h"

namespace limoncello {

MemoryController::MemoryController(const MemoryControllerConfig& config,
                                   Rng rng)
    : config_(config), rng_(rng) {
  LIMONCELLO_CHECK_GT(config_.peak_gbps, 0.0);
  LIMONCELLO_CHECK_GE(config_.utilization_alpha, 0.0);
  LIMONCELLO_CHECK_LE(config_.utilization_alpha, 1.0);
}

void MemoryController::BeginEpoch(SimTimeNs epoch_ns) {
  LIMONCELLO_CHECK(!in_epoch_);
  LIMONCELLO_CHECK_GT(epoch_ns, 0);
  epoch_ns_ = epoch_ns;
  epoch_ = EpochStats{};
  in_epoch_ = true;
}

double MemoryController::Access(TrafficClass traffic) {
  LIMONCELLO_DCHECK(in_epoch_);
  const auto cls = static_cast<int>(traffic);
  epoch_.bytes[cls] += kCacheLineBytes;
  totals_.bytes[cls] += kCacheLineBytes;
  if (traffic == TrafficClass::kWriteback) return 0.0;

  double latency = CurrentLatencyNs();
  if (config_.jitter_fraction > 0.0) {
    latency *= 1.0 + config_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
  }
  ++epoch_.requests;
  ++totals_.requests;
  epoch_.avg_latency_ns += latency;  // running sum; divided in EndEpoch
  totals_.latency_ns_sum += latency;
  return latency;
}

MemoryController::EpochStats MemoryController::EndEpoch() {
  LIMONCELLO_CHECK(in_epoch_);
  in_epoch_ = false;
  const double epoch_bytes = static_cast<double>(epoch_.TotalBytes());
  const double capacity =
      PeakBytesPerNs() * static_cast<double>(epoch_ns_);
  epoch_.utilization = capacity > 0.0 ? epoch_bytes / capacity : 0.0;
  if (epoch_.requests > 0) {
    epoch_.avg_latency_ns /= static_cast<double>(epoch_.requests);
  }
  utilization_ewma_ += config_.utilization_alpha *
                       (epoch_.utilization - utilization_ewma_);
  const std::uint64_t total = epoch_.TotalBytes();
  const double share =
      total ? static_cast<double>(epoch_.bytes[static_cast<int>(
                  TrafficClass::kHwPrefetch)]) /
                  static_cast<double>(total)
            : 0.0;
  prefetch_share_ewma_ +=
      config_.utilization_alpha * (share - prefetch_share_ewma_);
  return epoch_;
}

}  // namespace limoncello
