// The bandwidth-utilization → load-to-use-latency curve.
//
// This is the paper's central physical phenomenon (Fig. 1): load-to-use
// latency of a DRAM request roughly doubles as bandwidth utilization
// approaches saturation, because requests queue in the memory controller.
// We model it as unloaded latency plus an M/M/1-flavoured queuing term:
//
//   L(u) = L0 + Lq * u^k / (1 - min(u, u_max))
//
// Utilization u counts *all* traffic — demand plus prefetch — which is why
// hardware prefetchers sit higher on the curve at the same demand level.
// The same curve is shared by the detailed socket simulator and the
// fleet-scale analytic machine model, so both substrates agree by
// construction.
#ifndef LIMONCELLO_SIM_MEMORY_LATENCY_CURVE_H_
#define LIMONCELLO_SIM_MEMORY_LATENCY_CURVE_H_

namespace limoncello {

struct LatencyCurveConfig {
  double unloaded_ns = 90.0;   // idle DRAM load-to-use latency
  double queue_coeff_ns = 14.0;
  double exponent = 2.2;
  double max_utilization = 0.96;  // queuing clamp (curve stays finite)
};

// Latency (ns) at the given utilization in [0, +inf); utilization above 1
// is clamped by max_utilization inside the queuing term.
double LatencyAtUtilization(const LatencyCurveConfig& config,
                            double utilization);

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_MEMORY_LATENCY_CURVE_H_
