// The bandwidth-utilization → load-to-use-latency curve.
//
// This is the paper's central physical phenomenon (Fig. 1): load-to-use
// latency of a DRAM request roughly doubles as bandwidth utilization
// approaches saturation, because requests queue in the memory controller.
// We model it as unloaded latency plus an M/M/1-flavoured queuing term:
//
//   L(u) = L0 + Lq * u^k / (1 - min(u, u_max))
//
// Utilization u counts *all* traffic — demand plus prefetch — which is why
// hardware prefetchers sit higher on the curve at the same demand level.
// The same curve is shared by the detailed socket simulator and the
// fleet-scale analytic machine model, so both substrates agree by
// construction.
#ifndef LIMONCELLO_SIM_MEMORY_LATENCY_CURVE_H_
#define LIMONCELLO_SIM_MEMORY_LATENCY_CURVE_H_

#include <array>

namespace limoncello {

struct LatencyCurveConfig {
  double unloaded_ns = 90.0;   // idle DRAM load-to-use latency
  double queue_coeff_ns = 14.0;
  double exponent = 2.2;
  double max_utilization = 0.96;  // queuing clamp (curve stays finite)
};

// Latency (ns) at the given utilization in [0, +inf); utilization above 1
// is clamped by max_utilization inside the queuing term.
double LatencyAtUtilization(const LatencyCurveConfig& config,
                            double utilization);

// Tabulated form of the curve for hot loops: the fleet model's bisection
// evaluates the curve ~21 times per machine-tick, and the exact form pays
// a std::pow each call. The table holds the exact curve at 2048 evenly
// spaced points over [0, kMaxUtilization] and interpolates linearly in
// between — a pure function of the config, shared per fleet, and fully
// deterministic (same table, same inputs, same bits at any thread count).
// The ~0.03 % interpolation error is far below the model's own fidelity;
// what matters for the repo's contracts is monotonicity (preserved: linear
// interpolation of a monotone sample set) and determinism.
class LatencyLut {
 public:
  // Table intervals and domain. The domain upper bound matches the fleet
  // model's over-saturation ceiling (MachineModel caps bandwidth at
  // 1.35x the qualification threshold); queries clamp to the domain.
  static constexpr int kPoints = 2048;
  static constexpr double kMaxUtilization = 1.35;

  explicit LatencyLut(const LatencyCurveConfig& config);

  double At(double utilization) const {
    double x = utilization * inv_step_;
    if (x <= 0.0) return values_[0];
    if (x >= static_cast<double>(kPoints)) {
      return values_[static_cast<std::size_t>(kPoints)];
    }
    const int i = static_cast<int>(x);
    const double frac = x - static_cast<double>(i);
    const double lo = values_[static_cast<std::size_t>(i)];
    const double hi = values_[static_cast<std::size_t>(i) + 1];
    return lo + frac * (hi - lo);
  }

 private:
  std::array<double, kPoints + 1> values_{};
  double inv_step_ = 0.0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_MEMORY_LATENCY_CURVE_H_
