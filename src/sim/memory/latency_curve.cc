#include "sim/memory/latency_curve.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace limoncello {

double LatencyAtUtilization(const LatencyCurveConfig& config,
                            double utilization) {
  LIMONCELLO_DCHECK(utilization >= 0.0);
  LIMONCELLO_DCHECK(config.max_utilization > 0.0 &&
                    config.max_utilization < 1.0);
  const double u = std::clamp(utilization, 0.0, config.max_utilization);
  const double queuing =
      config.queue_coeff_ns * std::pow(u, config.exponent) / (1.0 - u);
  double latency = config.unloaded_ns + queuing;
  if (utilization > config.max_utilization) {
    // Past the clamp the queue is effectively unstable; grow linearly
    // (bounded) instead of exploding, so over-saturated operating points
    // still order correctly.
    const double excess =
        std::min(utilization, 2.0) - config.max_utilization;
    latency *= 1.0 + excess;
  }
  return latency;
}

LatencyLut::LatencyLut(const LatencyCurveConfig& config) {
  const double step = kMaxUtilization / static_cast<double>(kPoints);
  inv_step_ = static_cast<double>(kPoints) / kMaxUtilization;
  for (int i = 0; i <= kPoints; ++i) {
    values_[static_cast<std::size_t>(i)] =
        LatencyAtUtilization(config, static_cast<double>(i) * step);
  }
}

}  // namespace limoncello
