// Feedback-directed prefetch throttling — the classic *hardware*
// alternative to Limoncello (Srinath et al., HPCA 2007; the paper's §7.1
// "hardware prefetcher throttling" class).
//
// FDP periodically measures prefetch accuracy (useful fills / issued
// prefetches) and memory-bandwidth pressure, and moves an aggressiveness
// level up or down: high accuracy + low pressure → more aggressive;
// low accuracy or high pressure → less aggressive (possibly off).
// Limoncello's §7.1 critique is that such throttling is reactive and
// coarse-grained — it cannot tell prefetch-friendly code from unfriendly
// code running interleaved. The baseline bench quantifies that.
#ifndef LIMONCELLO_SIM_PREFETCH_FDP_THROTTLE_H_
#define LIMONCELLO_SIM_PREFETCH_FDP_THROTTLE_H_

#include "sim/machine/socket.h"

namespace limoncello {

// Aggressiveness ladder applied to the socket's engines per level:
//   0: all engines off
//   1: IP-stride + L2 stream only (conservative)
//   2: + DCU streamer (default)
//   3: + adjacent line (aggressive)
struct FdpConfig {
  double high_accuracy = 0.60;  // above: consider ramping up
  double low_accuracy = 0.30;   // below: ramp down
  double high_pressure = 0.85;  // bandwidth utilization: forces down
  int initial_level = 2;
};

class FdpThrottle {
 public:
  // Reads the socket's prefetch accuracy and bandwidth each interval and
  // adjusts engine enables through the socket's MSR device (so it uses
  // the same actuation path as Limoncello).
  FdpThrottle(const FdpConfig& config, Socket* socket);

  // Call once per control interval (after socket.Step). Returns the
  // aggressiveness level now in effect.
  int Tick();

  int level() const { return level_; }
  std::uint64_t adjustments() const { return adjustments_; }

  // The engine mask (MSR 0x1A4 disable bits, Intel layout) for a level.
  static std::uint64_t DisableBitsForLevel(int level);

 private:
  // Accuracy of hardware prefetching over the last interval.
  double IntervalAccuracy();

  FdpConfig config_;
  Socket* socket_;
  int level_;
  std::uint64_t adjustments_ = 0;
  // Previous-interval snapshots for delta computation.
  std::uint64_t last_covered_ = 0;
  std::uint64_t last_fills_ = 0;
  PmuCounters last_counters_{};
  SimTimeNs last_time_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_PREFETCH_FDP_THROTTLE_H_
