#include "sim/prefetch/fdp_throttle.h"

#include <algorithm>

#include "util/check.h"

namespace limoncello {

FdpThrottle::FdpThrottle(const FdpConfig& config, Socket* socket)
    : config_(config), socket_(socket), level_(config.initial_level) {
  LIMONCELLO_CHECK(socket != nullptr);
  LIMONCELLO_CHECK_GE(config.initial_level, 0);
  LIMONCELLO_CHECK_LE(config.initial_level, 3);
  LIMONCELLO_CHECK_LT(config.low_accuracy, config.high_accuracy);
  last_counters_ = socket->counters();
  last_time_ = socket->now();
}

std::uint64_t FdpThrottle::DisableBitsForLevel(int level) {
  // Intel 0x1A4 polarity: a set bit disables the engine.
  const std::uint64_t stream = 1ULL
                               << static_cast<int>(PrefetchEngine::kL2Stream);
  const std::uint64_t adjacent =
      1ULL << static_cast<int>(PrefetchEngine::kL2AdjacentLine);
  const std::uint64_t dcu =
      1ULL << static_cast<int>(PrefetchEngine::kDcuStreamer);
  const std::uint64_t ip =
      1ULL << static_cast<int>(PrefetchEngine::kDcuIpStride);
  switch (level) {
    case 0:
      return stream | adjacent | dcu | ip;
    case 1:
      return adjacent | dcu;
    case 2:
      return adjacent;
    default:
      return 0;
  }
}

double FdpThrottle::IntervalAccuracy() {
  // Useful prefetches (first demand hit on a prefetched line, at any
  // level) per prefetch *sent to memory* — the quantities real FDP
  // hardware counts.
  const Cache::Stats l1 = socket_->AggregateL1Stats();
  const Cache::Stats l2 = socket_->AggregateL2Stats();
  const Cache::Stats& llc = socket_->LlcStats();
  const std::uint64_t covered = l1.prefetch_covered_hits +
                                l2.prefetch_covered_hits +
                                llc.prefetch_covered_hits;
  const std::uint64_t issued =
      socket_->counters().dram_bytes[static_cast<int>(
          TrafficClass::kHwPrefetch)] /
      kCacheLineBytes;
  const std::uint64_t d_covered = covered - last_covered_;
  const std::uint64_t d_issued = issued - last_fills_;
  last_covered_ = covered;
  last_fills_ = issued;
  if (d_issued == 0) return 1.0;  // nothing issued: don't punish
  return std::min(
      1.0, static_cast<double>(d_covered) / static_cast<double>(d_issued));
}

int FdpThrottle::Tick() {
  const PmuCounters& now = socket_->counters();
  const SimTimeNs interval_ns = socket_->now() - last_time_;
  const double bytes = static_cast<double>(now.DramTotalBytes() -
                                           last_counters_.DramTotalBytes());
  last_counters_ = now;
  last_time_ = socket_->now();
  const double utilization =
      interval_ns > 0
          ? bytes / static_cast<double>(interval_ns) /
                socket_->memory().config().peak_gbps
          : 0.0;
  const double accuracy = IntervalAccuracy();

  int desired = level_;
  if (utilization > config_.high_pressure ||
      accuracy < config_.low_accuracy) {
    desired = std::max(0, level_ - 1);
  } else if (accuracy > config_.high_accuracy &&
             utilization < config_.high_pressure) {
    desired = std::min(3, level_ + 1);
  }
  if (desired != level_) {
    level_ = desired;
    ++adjustments_;
    const std::uint64_t bits = DisableBitsForLevel(level_);
    for (int cpu = 0; cpu < socket_->config().num_cores; ++cpu) {
      // A core whose write fails keeps its previous throttle level; the
      // next adjustment interval writes the then-current level again.
      if (!socket_->msr_device().Write(cpu, 0x1a4, bits)) continue;
    }
  }
  return level_;
}

}  // namespace limoncello
