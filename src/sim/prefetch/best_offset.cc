#include "sim/prefetch/best_offset.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace limoncello {

BestOffsetPrefetcher::BestOffsetPrefetcher(const Options& options)
    : options_(options),
      rr_table_(static_cast<std::size_t>(options.rr_table_size), 0),
      rr_valid_(static_cast<std::size_t>(options.rr_table_size), false),
      scores_(options.candidates.size(), 0) {
  LIMONCELLO_CHECK(!options.candidates.empty());
  LIMONCELLO_CHECK_GT(options.rr_table_size, 0);
  LIMONCELLO_CHECK_GT(options.score_max, 0);
  LIMONCELLO_CHECK_GT(options.round_max, 0);
  for (int offset : options.candidates) {
    LIMONCELLO_CHECK_GT(offset, 0);
  }
}

void BestOffsetPrefetcher::InsertRecent(Addr line) {
  std::uint64_t h = line;
  h = SplitMix64(h);
  const std::size_t slot = h % rr_table_.size();
  rr_table_[slot] = line;
  rr_valid_[slot] = true;
}

bool BestOffsetPrefetcher::InRecent(Addr line) const {
  std::uint64_t h = line;
  h = SplitMix64(h);
  const std::size_t slot = h % rr_table_.size();
  return rr_valid_[slot] && rr_table_[slot] == line;
}

void BestOffsetPrefetcher::FinishRound() {
  int best_score = -1;
  int best_offset = 0;
  for (std::size_t i = 0; i < options_.candidates.size(); ++i) {
    if (scores_[i] > best_score) {
      best_score = scores_[i];
      best_offset = options_.candidates[i];
    }
  }
  // Throttle: a poorly scoring best offset means the access pattern is
  // not offset-predictable — stop prefetching rather than pollute.
  current_offset_ = best_score >= options_.bad_score ? best_offset : 0;
  std::fill(scores_.begin(), scores_.end(), 0);
  round_accesses_ = 0;
  ++rounds_completed_;
}

void BestOffsetPrefetcher::Observe(const PrefetchObservation& obs,
                                   std::vector<Addr>* out) {
  // Learn: score every candidate whose "would-have-issued-from" line was
  // recently demanded.
  bool round_done = false;
  for (std::size_t i = 0; i < options_.candidates.size(); ++i) {
    const auto offset = static_cast<Addr>(options_.candidates[i]);
    if (obs.line_addr >= offset && InRecent(obs.line_addr - offset)) {
      if (++scores_[i] >= options_.score_max) round_done = true;
    }
  }
  InsertRecent(obs.line_addr);
  if (round_done || ++round_accesses_ >= options_.round_max) {
    FinishRound();
  }

  // Prefetch with the offset selected by the previous round.
  if (current_offset_ > 0) {
    // The socket's reusable scratch vector keeps its capacity across
    // ticks, so steady-state pushes never reallocate.
    out->push_back(  // limolint:allow(hot-path-alloc)
        obs.line_addr + static_cast<Addr>(current_offset_));
    CountIssued(1);
  }
}

void BestOffsetPrefetcher::ResetState() {
  std::fill(rr_valid_.begin(), rr_valid_.end(), false);
  std::fill(scores_.begin(), scores_.end(), 0);
  round_accesses_ = 0;
  current_offset_ = 1;
}

}  // namespace limoncello
