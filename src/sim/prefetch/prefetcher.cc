#include "sim/prefetch/prefetcher.h"

#include "util/check.h"

namespace limoncello {

// ---------------------------------------------------------------------------
// DcuStreamerPrefetcher

void DcuStreamerPrefetcher::Observe(const PrefetchObservation& obs,
                                    std::vector<Addr>* out) {
  // The socket's reusable scratch vector keeps its capacity across ticks,
  // so steady-state pushes never reallocate.
  out->push_back(obs.line_addr + 1);  // limolint:allow(hot-path-alloc)
  CountIssued(1);
}

// ---------------------------------------------------------------------------
// IpStridePrefetcher

IpStridePrefetcher::IpStridePrefetcher(const Options& options)
    : options_(options),
      table_(static_cast<std::size_t>(options.table_size)) {
  LIMONCELLO_CHECK_GT(options.table_size, 0);
  LIMONCELLO_CHECK_GT(options.degree, 0);
}

void IpStridePrefetcher::Observe(const PrefetchObservation& obs,
                                 std::vector<Addr>* out) {
  if (obs.function == kInvalidFunctionId) return;
  Entry& entry = table_[obs.function % table_.size()];
  if (!entry.valid || entry.function != obs.function) {
    entry = Entry{};
    entry.function = obs.function;
    entry.last_line = obs.line_addr;
    entry.valid = true;
    return;
  }
  const std::int64_t stride = static_cast<std::int64_t>(obs.line_addr) -
                              static_cast<std::int64_t>(entry.last_line);
  if (stride != 0 && stride == entry.stride) {
    if (entry.confidence < 3) ++entry.confidence;
  } else {
    entry.stride = stride;
    entry.confidence = stride == 0 ? entry.confidence : 0;
  }
  entry.last_line = obs.line_addr;
  if (stride != 0 && entry.confidence >= options_.confidence_threshold) {
    for (int d = 1; d <= options_.degree; ++d) {
      const std::int64_t target =
          static_cast<std::int64_t>(obs.line_addr) + stride * d;
      // Reserved scratch (see DcuStreamer).
      if (target > 0) {
        out->push_back(  // limolint:allow(hot-path-alloc)
            static_cast<Addr>(target));
      }
    }
    CountIssued(static_cast<std::size_t>(options_.degree));
  }
}

void IpStridePrefetcher::ResetState() {
  for (Entry& entry : table_) entry = Entry{};
}

// ---------------------------------------------------------------------------
// AdjacentLinePrefetcher

void AdjacentLinePrefetcher::Observe(const PrefetchObservation& obs,
                                     std::vector<Addr>* out) {
  if (obs.was_hit) return;  // only triggered by L2 misses
  // Reserved scratch (see DcuStreamer).
  out->push_back(obs.line_addr ^ 1);  // limolint:allow(hot-path-alloc)
  CountIssued(1);
}

// ---------------------------------------------------------------------------
// StreamPrefetcher

namespace {
// 4 KiB pages hold 64 cache lines.
constexpr int kPageLineShift = 6;
}  // namespace

StreamPrefetcher::StreamPrefetcher(const Options& options)
    : options_(options),
      trackers_(static_cast<std::size_t>(options.tracker_size)) {
  LIMONCELLO_CHECK_GT(options.tracker_size, 0);
  LIMONCELLO_CHECK_GT(options.degree, 0);
  LIMONCELLO_CHECK_GE(options.distance, 0);
}

void StreamPrefetcher::Observe(const PrefetchObservation& obs,
                               std::vector<Addr>* out) {
  ++clock_;
  const Addr page = obs.line_addr >> kPageLineShift;
  Tracker* tracker = nullptr;
  Tracker* victim = &trackers_[0];
  for (Tracker& t : trackers_) {
    if (t.valid && t.page == page) {
      tracker = &t;
      break;
    }
    if (!t.valid || t.last_use < victim->last_use) victim = &t;
  }
  if (tracker == nullptr) {
    // Allocate a fresh tracker for this page.
    *victim = Tracker{};
    victim->page = page;
    victim->last_line = obs.line_addr;
    victim->valid = true;
    victim->last_use = clock_;
    return;
  }
  tracker->last_use = clock_;
  const std::int64_t delta = static_cast<std::int64_t>(obs.line_addr) -
                             static_cast<std::int64_t>(tracker->last_line);
  if (delta == 0) return;
  const int direction = delta > 0 ? 1 : -1;
  if (direction == tracker->direction) {
    ++tracker->train_count;
  } else {
    tracker->direction = direction;
    tracker->train_count = 1;
  }
  tracker->last_line = obs.line_addr;
  if (tracker->train_count >= options_.train_threshold) {
    for (int d = 1; d <= options_.degree; ++d) {
      const std::int64_t target =
          static_cast<std::int64_t>(obs.line_addr) +
          static_cast<std::int64_t>(direction) *
              (options_.distance + d);
      // Reserved scratch (see DcuStreamer).
      if (target > 0) {
        out->push_back(  // limolint:allow(hot-path-alloc)
            static_cast<Addr>(target));
      }
    }
    CountIssued(static_cast<std::size_t>(options_.degree));
  }
}

void StreamPrefetcher::ResetState() {
  for (Tracker& t : trackers_) t = Tracker{};
  clock_ = 0;
}

}  // namespace limoncello
