// Best-offset prefetcher (Michaud, HPCA 2016 — the paper's reference
// [4] for state-of-the-art hardware prefetching).
//
// Instead of assuming +1 streams, the engine *learns* the best prefetch
// offset: it keeps a recent-requests table (RR) of lines demanded in the
// near past and scores a list of candidate offsets — offset d earns a
// point when, for a current access to line X, line X - d is found in the
// RR table (meaning a prefetch at offset d issued back then would have
// been timely). At the end of a learning round the highest-scoring
// offset becomes the prefetch offset if it clears a threshold; otherwise
// prefetching is paused (built-in throttling — exactly the accuracy
// self-regulation §8.1 asks of future hardware).
#ifndef LIMONCELLO_SIM_PREFETCH_BEST_OFFSET_H_
#define LIMONCELLO_SIM_PREFETCH_BEST_OFFSET_H_

#include <vector>

#include "sim/prefetch/prefetcher.h"

namespace limoncello {

class BestOffsetPrefetcher : public HwPrefetchEngine {
 public:
  struct Options {
    // Candidate offsets scored each round (Michaud uses ~52 offsets with
    // small prime factors; we keep a compact subset).
    std::vector<int> candidates = {1,  2,  3,  4,  5,  6,  8,
                                   9,  10, 12, 15, 16, 20, 24,
                                   30, 32, 40, 48, 60, 64};
    int rr_table_size = 256;    // recent-requests entries
    int score_max = 31;         // round ends when a score reaches this
    int round_max = 100;        // ... or after this many accesses
    int bad_score = 10;         // below this, prefetching pauses
  };

  BestOffsetPrefetcher() : BestOffsetPrefetcher(Options()) {}
  explicit BestOffsetPrefetcher(const Options& options);

  // Reports as the L2 stream engine so the MSR bit that disables the
  // stream prefetcher controls this engine when it is swapped in.
  PrefetchEngine kind() const override { return PrefetchEngine::kL2Stream; }

  void Observe(const PrefetchObservation& obs,
               std::vector<Addr>* out) override;
  void ResetState() override;

  // Introspection for tests/benches.
  int current_offset() const { return current_offset_; }
  bool prefetching_paused() const { return current_offset_ == 0; }
  int rounds_completed() const { return rounds_completed_; }

 private:
  void InsertRecent(Addr line);
  bool InRecent(Addr line) const;
  void FinishRound();

  Options options_;
  std::vector<Addr> rr_table_;   // direct-mapped by line hash
  std::vector<bool> rr_valid_;
  std::vector<int> scores_;
  int round_accesses_ = 0;
  int current_offset_ = 1;  // 0 = paused
  int rounds_completed_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_PREFETCH_BEST_OFFSET_H_
