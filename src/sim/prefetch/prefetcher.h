// Hardware prefetch engine models.
//
// Four engines mirror Intel's MSR 0x1A4 controls (see msr/prefetch_control.h):
//   L1D:  DCU streamer (next-line), DCU IP-stride
//   L2:   stream detector, adjacent-line
// Each engine observes the demand access stream at its cache level and
// proposes candidate line addresses. Engines have no oracle: on scattered
// access they speculate wrongly, and those wrong guesses are exactly the
// bandwidth waste and cache pollution the paper measures.
#ifndef LIMONCELLO_SIM_PREFETCH_PREFETCHER_H_
#define LIMONCELLO_SIM_PREFETCH_PREFETCHER_H_

#include <cstdint>
#include <vector>

#include "msr/prefetch_control.h"
#include "util/units.h"
#include "workloads/access.h"

namespace limoncello {

// What an engine sees for one demand access at its cache level.
struct PrefetchObservation {
  Addr line_addr = 0;
  FunctionId function = kInvalidFunctionId;  // stands in for the load PC
  bool was_hit = false;
  bool is_store = false;
};

class HwPrefetchEngine {
 public:
  virtual ~HwPrefetchEngine() = default;

  virtual PrefetchEngine kind() const = 0;

  // Observes a demand access; appends proposed prefetch line addresses.
  // Only called while the engine is enabled.
  virtual void Observe(const PrefetchObservation& obs,
                       std::vector<Addr>* out) = 0;

  // Drops learned state (training tables). Called on re-enable: a real
  // engine must re-warm after having been disabled, which is the warm-up
  // cost Hard Limoncello pays on every re-enable.
  virtual void ResetState() = 0;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) {
    if (enabled && !enabled_) ResetState();
    enabled_ = enabled;
  }

  std::uint64_t issued() const { return issued_; }

 protected:
  void CountIssued(std::size_t n) { issued_ += n; }

 private:
  bool enabled_ = true;
  std::uint64_t issued_ = 0;
};

// L1D "DCU streamer": prefetches the next sequential line on every demand
// access. Cheap, high coverage on streams, very noisy on random access.
class DcuStreamerPrefetcher : public HwPrefetchEngine {
 public:
  PrefetchEngine kind() const override {
    return PrefetchEngine::kDcuStreamer;
  }
  void Observe(const PrefetchObservation& obs,
               std::vector<Addr>* out) override;
  void ResetState() override {}
};

// L1D IP-stride: per-PC (here: per-function) stride table with a 2-bit
// confidence counter; prefetches `degree` strides ahead once confident.
class IpStridePrefetcher : public HwPrefetchEngine {
 public:
  struct Options {
    int table_size = 64;
    int confidence_threshold = 2;
    int degree = 2;
  };

  IpStridePrefetcher() : IpStridePrefetcher(Options()) {}
  explicit IpStridePrefetcher(const Options& options);

  PrefetchEngine kind() const override {
    return PrefetchEngine::kDcuIpStride;
  }
  void Observe(const PrefetchObservation& obs,
               std::vector<Addr>* out) override;
  void ResetState() override;

 private:
  struct Entry {
    FunctionId function = kInvalidFunctionId;
    Addr last_line = 0;
    std::int64_t stride = 0;
    int confidence = 0;
    bool valid = false;
  };

  Options options_;
  std::vector<Entry> table_;
};

// L2 adjacent-line: on an L2 miss, fetches the buddy line of the 128-byte
// aligned pair.
class AdjacentLinePrefetcher : public HwPrefetchEngine {
 public:
  PrefetchEngine kind() const override {
    return PrefetchEngine::kL2AdjacentLine;
  }
  void Observe(const PrefetchObservation& obs,
               std::vector<Addr>* out) override;
  void ResetState() override {}
};

// L2 stream detector: tracks per-4KiB-page directional streams; after
// `train_threshold` sequential hits in one direction it issues `degree`
// lines `distance` ahead. `degree`/`distance` model vendor aggressiveness
// growth across server generations (paper Fig. 5: prefetch traffic rose
// from +30 % to +40 % in the newest generation).
class StreamPrefetcher : public HwPrefetchEngine {
 public:
  struct Options {
    int tracker_size = 32;
    int train_threshold = 2;
    int degree = 4;      // lines issued per trigger
    int distance = 8;    // lines ahead of the demand cursor
  };

  StreamPrefetcher() : StreamPrefetcher(Options()) {}
  explicit StreamPrefetcher(const Options& options);

  PrefetchEngine kind() const override { return PrefetchEngine::kL2Stream; }
  void Observe(const PrefetchObservation& obs,
               std::vector<Addr>* out) override;
  void ResetState() override;

  const Options& options() const { return options_; }

 private:
  struct Tracker {
    Addr page = 0;  // line_addr >> 6 (4 KiB pages of 64 lines)
    Addr last_line = 0;
    int direction = 0;  // +1 / -1
    int train_count = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  Options options_;
  std::vector<Tracker> trackers_;
  std::uint64_t clock_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_PREFETCH_PREFETCHER_H_
