#include "sim/cache/cache.h"

#include <bit>

#include "util/check.h"
#include "util/rng.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LIMONCELLO_CACHE_SIMD 1
#include <immintrin.h>
#endif

namespace limoncello {

namespace {

// Way-word layout, low to high:
//   bit  0      valid
//   bit  1      dirty
//   bit  2      prefetched
//   bits 3-4    rrpv (2-bit SRRIP counter)
//   bits 5-11   LRU rank (a permutation of 0..ways-1 within the set;
//               rank 0 = least recent, ways-1 = most recent; 7 bits
//               covers fully-associative configs up to 128 ways)
//   bits 12-63  tag (line_addr >> set_shift_; 52 bits, DCHECKed)
// Invalid ways hold the all-ones sentinel in the tag field (a real tag
// can never reach it), so both presence and free-way search are the same
// masked compare against the tag field, and ranks stay a full
// permutation even while ways are invalid (harmless: rank only
// arbitrates among full sets).
constexpr std::uint64_t kValidBit = 1ULL << 0;
constexpr std::uint64_t kDirtyBit = 1ULL << 1;
constexpr std::uint64_t kPrefetchedBit = 1ULL << 2;
constexpr int kRrpvShift = 3;
constexpr std::uint64_t kRrpvMask = 3ULL << kRrpvShift;
constexpr int kRankShift = 5;
constexpr std::uint64_t kRankMask = 127ULL << kRankShift;
constexpr int kTagShift = 12;
constexpr std::uint64_t kTagFieldMask = ~((1ULL << kTagShift) - 1);
constexpr Addr kTagSentinel = (~Addr{0}) >> kTagShift;

std::uint32_t WordRrpv(std::uint64_t word) {
  return static_cast<std::uint32_t>((word & kRrpvMask) >> kRrpvShift);
}
std::uint64_t WordRank(std::uint64_t word) {
  return (word & kRankMask) >> kRankShift;
}

// Finds the first index i in [0, n) with (words[i] & mask) == pattern,
// or -1. One shape serves all three probe questions: pattern = shifted
// tag for the hit scan, shifted sentinel for the free-way scan, and
// rank 0 (mask = kRankMask, pattern = 0) for the LRU victim.
int FindMaskedWordScalar(const std::uint64_t* words, int n,
                         std::uint64_t mask, std::uint64_t pattern) {
  for (int i = 0; i < n; ++i) {
    if ((words[i] & mask) == pattern) return i;
  }
  return -1;
}

// Close-the-gap LRU rank update fused with the touched way's rewrite:
// every way whose rank exceeds `way`'s old rank slides down one, and
// `way`'s word becomes `new_word` (caller has already folded in rank
// n - 1 and any flag changes). Fusing matters: doing the flag updates as
// scalar stores first would make the SIMD pass's wide load overlap
// narrow in-flight stores, a store-forward stall on every hit. All the
// words involved are the ones the tag scan just loaded.
void RankTouchScalar(std::uint64_t* words, int n, int way,
                     std::uint64_t new_word) {
  const std::uint64_t rank = words[static_cast<std::size_t>(way)] &
                             kRankMask;  // pre-shifted compare key
  for (int i = 0; i < n; ++i) {
    words[i] -= ((words[i] & kRankMask) > rank ? 1ULL : 0ULL) << kRankShift;
  }
  words[way] = new_word;
}

#ifdef LIMONCELLO_CACHE_SIMD

// 8 ways per compare; a masked load covers any tail without reading past
// the array. Branch-free until the single (well-predicted) mask test.
__attribute__((target("avx512f"))) int FindMaskedWordAvx512(
    const std::uint64_t* words, int n, std::uint64_t mask,
    std::uint64_t pattern) {
  const __m512i vmask = _mm512_set1_epi64(static_cast<long long>(mask));
  const __m512i vpat = _mm512_set1_epi64(static_cast<long long>(pattern));
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(words + i);
    const __mmask8 eq =
        _mm512_cmpeq_epi64_mask(_mm512_and_si512(v, vmask), vpat);
    if (eq != 0) return i + std::countr_zero(static_cast<unsigned>(eq));
  }
  if (i < n) {
    const __mmask8 lanes = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i v = _mm512_maskz_loadu_epi64(lanes, words + i);
    const __mmask8 eq = _mm512_mask_cmpeq_epi64_mask(
        lanes, _mm512_and_si512(v, vmask), vpat);
    if (eq != 0) return i + std::countr_zero(static_cast<unsigned>(eq));
  }
  return -1;
}

__attribute__((target("avx512f"))) void RankTouchAvx512(
    std::uint64_t* words, int n, int way, std::uint64_t new_word) {
  const std::uint64_t rank = words[static_cast<std::size_t>(way)] &
                             kRankMask;
  const __m512i vrank = _mm512_set1_epi64(static_cast<long long>(rank));
  const __m512i vmask =
      _mm512_set1_epi64(static_cast<long long>(kRankMask));
  const __m512i vdec = _mm512_set1_epi64(1LL << kRankShift);
  for (int i = 0; i < n; i += 8) {
    const __mmask8 lanes =
        n - i >= 8 ? static_cast<__mmask8>(0xff)
                   : static_cast<__mmask8>((1u << (n - i)) - 1u);
    __m512i v = _mm512_maskz_loadu_epi64(lanes, words + i);
    const __mmask8 gt = _mm512_mask_cmp_epu64_mask(
        lanes, _mm512_and_si512(v, vmask), vrank, _MM_CMPINT_GT);
    v = _mm512_mask_sub_epi64(v, gt, v, vdec);
    if (way >= i && way < i + 8) {
      // Patch the touched lane in-register: the whole line goes out in
      // one wide store, with no narrow stores for it to collide with.
      v = _mm512_mask_set1_epi64(v, static_cast<__mmask8>(1u << (way - i)),
                                 static_cast<long long>(new_word));
    }
    _mm512_mask_storeu_epi64(words + i, lanes, v);
  }
}

__attribute__((target("avx2"))) int FindMaskedWordAvx2(
    const std::uint64_t* words, int n, std::uint64_t mask,
    std::uint64_t pattern) {
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vpat = _mm256_set1_epi64x(static_cast<long long>(pattern));
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words + i));
    const __m256i eq = _mm256_cmpeq_epi64(_mm256_and_si256(v, vmask), vpat);
    const int bits = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    if (bits != 0) return i + std::countr_zero(static_cast<unsigned>(bits));
  }
  for (; i < n; ++i) {
    if ((words[i] & mask) == pattern) return i;
  }
  return -1;
}

// Signed compare is safe: masked ranks are < 2^10, far below the sign
// bit. The touched lane is patched in-register (blend against a
// broadcast of new_word) so the line leaves in one wide store — see the
// store-forwarding note on the scalar version.
__attribute__((target("avx2"))) void RankTouchAvx2(std::uint64_t* words,
                                                   int n, int way,
                                                   std::uint64_t new_word) {
  const std::uint64_t rank = words[static_cast<std::size_t>(way)] &
                             kRankMask;
  const __m256i vrank = _mm256_set1_epi64x(static_cast<long long>(rank));
  const __m256i vmask =
      _mm256_set1_epi64x(static_cast<long long>(kRankMask));
  const __m256i vdec = _mm256_set1_epi64x(1LL << kRankShift);
  const __m256i vnew =
      _mm256_set1_epi64x(static_cast<long long>(new_word));
  const __m256i vlane = _mm256_setr_epi64x(0, 1, 2, 3);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(words + i));
    const __m256i gt =
        _mm256_cmpgt_epi64(_mm256_and_si256(v, vmask), vrank);
    v = _mm256_sub_epi64(v, _mm256_and_si256(gt, vdec));
    if (way >= i && way < i + 4) {
      const __m256i is_way = _mm256_cmpeq_epi64(
          vlane, _mm256_set1_epi64x(static_cast<long long>(way - i)));
      v = _mm256_blendv_epi8(v, vnew, is_way);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(words + i), v);
  }
  for (; i < n; ++i) {
    words[i] -= ((words[i] & kRankMask) > rank ? 1ULL : 0ULL) << kRankShift;
    if (i == way) words[i] = new_word;
  }
}

#endif  // LIMONCELLO_CACHE_SIMD

using FindFn = int (*)(const std::uint64_t*, int, std::uint64_t,
                       std::uint64_t);
using TouchFn = void (*)(std::uint64_t*, int, int, std::uint64_t);

FindFn ResolveFindFn() {
#ifdef LIMONCELLO_CACHE_SIMD
  if (__builtin_cpu_supports("avx512f")) return FindMaskedWordAvx512;
  if (__builtin_cpu_supports("avx2")) return FindMaskedWordAvx2;
#endif
  return FindMaskedWordScalar;
}

TouchFn ResolveTouchFn() {
#ifdef LIMONCELLO_CACHE_SIMD
  if (__builtin_cpu_supports("avx512f")) return RankTouchAvx512;
  if (__builtin_cpu_supports("avx2")) return RankTouchAvx2;
#endif
  return RankTouchScalar;
}

// Resolved once at startup; every cache shares the widest kernels the
// host supports. The indirect calls are perfectly predicted on the hot
// path.
const FindFn g_find_word = ResolveFindFn();
const TouchFn g_rank_touch = ResolveTouchFn();

}  // namespace

Cache::Cache(const CacheConfig& config, std::string name)
    : name_(std::move(name)), policy_(config.policy), ways_(config.ways) {
  LIMONCELLO_CHECK_GT(config.ways, 0);
  LIMONCELLO_CHECK_LE(config.ways, 128);  // rank field is 7 bits
  LIMONCELLO_CHECK_GE(config.size_bytes, kCacheLineBytes);
  const std::uint64_t lines = config.size_bytes / kCacheLineBytes;
  num_sets_ = lines / static_cast<std::uint64_t>(config.ways);
  LIMONCELLO_CHECK_GT(num_sets_, 0u);
  // Power-of-two sets keep index extraction a mask.
  LIMONCELLO_CHECK(std::has_single_bit(num_sets_));
  set_shift_ = std::countr_zero(num_sets_);
  words_.resize(static_cast<std::size_t>(num_sets_) *
                static_cast<std::size_t>(ways_));
  Flush();
}

// limolint:hot-path — one probe per memory reference per level; the
// packed-word SIMD layout exists so this never touches the heap.
Cache::ProbeResult Cache::Probe(Addr line_addr) const {
  const std::uint64_t* set = &words_[SetBase(line_addr)];
  ProbeResult result;
  const int hit_way = g_find_word(set, ways_, kTagFieldMask,
                                  TagFor(line_addr) << kTagShift);
  if (hit_way >= 0) {
    result.way = hit_way;
    result.hit = true;
    return result;
  }
  // Miss: record the first free way (the one a fill will claim). Same
  // cache lines as the scan above, so this second pass is register/L1
  // work, and the dominant hit path skips it entirely.
  result.invalid_way =
      g_find_word(set, ways_, kTagFieldMask, kTagSentinel << kTagShift);
  return result;
}

void Cache::TouchLru(std::size_t base, int way, std::uint64_t new_word) {
  g_rank_touch(&words_[base], ways_, way,
               (new_word & ~kRankMask) |
                   (static_cast<std::uint64_t>(ways_ - 1) << kRankShift));
}

bool Cache::LookupDemand(Addr line_addr, bool is_store, bool* was_prefetched,
                         ProbeResult* probe_out) {
  if (was_prefetched != nullptr) *was_prefetched = false;
  const ProbeResult probe = Probe(line_addr);
  if (probe_out != nullptr) *probe_out = probe;
  if (!probe.hit) {
    ++stats_.demand_misses;
    return false;
  }
  const std::size_t base = SetBase(line_addr);
  const std::size_t idx = base + static_cast<std::size_t>(probe.way);
  const std::uint64_t word = words_[idx];
  ++stats_.demand_hits;
  if ((word & kPrefetchedBit) != 0) {
    ++stats_.prefetch_covered_hits;
    if (was_prefetched != nullptr) *was_prefetched = true;
  }
  // The updated word is built in a register and written exactly once
  // (inside the rank-touch for LRU) — no read-modify-write stores for
  // the SIMD pass to stall against.
  std::uint64_t updated = word & ~(kPrefetchedBit | kRrpvMask);
  if (is_store) updated |= kDirtyBit;
  ++use_clock_;
  if (policy_ == ReplacementPolicy::kLru) {
    TouchLru(base, probe.way, updated);
  } else {
    words_[idx] = updated;
  }
  return true;
}

Cache::Eviction Cache::FillAt(const ProbeResult& probe, Addr line_addr,
                              bool is_prefetch, bool dirty) {
  const std::size_t base = SetBase(line_addr);
  LIMONCELLO_DCHECK(TagFor(line_addr) < kTagSentinel);
  // If already present (fill race with another path), refresh in place:
  // merge the dirty bit and bump recency; SRRIP/prefetch state is
  // untouched.
  if (probe.hit) {
    const std::size_t idx = base + static_cast<std::size_t>(probe.way);
    LIMONCELLO_DCHECK((words_[idx] >> kTagShift) == TagFor(line_addr));
    const std::uint64_t updated =
        words_[idx] | (dirty ? kDirtyBit : 0ULL);
    ++use_clock_;
    if (policy_ == ReplacementPolicy::kLru) {
      TouchLru(base, probe.way, updated);
    } else {
      words_[idx] = updated;
    }
    return Eviction{};
  }
  if (is_prefetch) {
    ++stats_.prefetch_fills;
  } else {
    ++stats_.demand_fills;
  }
  // Invalid ways first under every policy (the probe recorded the first
  // one during its tag scan); policies only arbitrate among full sets.
  const int way =
      probe.invalid_way >= 0 ? probe.invalid_way : PickVictimWay(base);
  const std::size_t idx = base + static_cast<std::size_t>(way);
  const std::uint64_t word = words_[idx];
  Eviction evicted;
  if ((word & kValidBit) != 0) {
    evicted.valid = true;
    evicted.dirty = (word & kDirtyBit) != 0;
    evicted.unused_prefetch = (word & kPrefetchedBit) != 0;
    evicted.line_addr =
        ((word >> kTagShift) << set_shift_) | (line_addr & (num_sets_ - 1));
    if (evicted.unused_prefetch) ++stats_.prefetch_pollution_evictions;
    if (evicted.dirty) ++stats_.writebacks;
  }
  // SRRIP insertion: demand fills are "long" re-reference (2), prefetch
  // fills "distant" (3) — an unproven prefetch is the first to go. The
  // victim's rank is preserved (TouchLru re-ranks it in the same pass),
  // keeping the set's rank permutation intact.
  std::uint64_t flags = kValidBit;
  if (dirty) flags |= kDirtyBit;
  if (is_prefetch) flags |= kPrefetchedBit;
  flags |= (is_prefetch ? 3ULL : 2ULL) << kRrpvShift;
  const std::uint64_t installed =
      (TagFor(line_addr) << kTagShift) | (word & kRankMask) | flags;
  ++use_clock_;
  if (policy_ == ReplacementPolicy::kLru) {
    TouchLru(base, way, installed);
  } else {
    words_[idx] = installed;
  }
  return evicted;
}

int Cache::PickVictimWay(std::size_t base) {
  std::uint64_t* set = &words_[base];
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      // Rank 0 is the least recently touched way — the same victim the
      // timestamp formulation picks.
      const int way = g_find_word(set, ways_, kRankMask, 0);
      return way >= 0 ? way : 0;
    }
    case ReplacementPolicy::kRandom: {
      // Deterministic pseudo-random pick from the access clock.
      std::uint64_t h = ++use_clock_;
      h = SplitMix64(h);
      return static_cast<int>(h % static_cast<std::uint64_t>(ways_));
    }
    case ReplacementPolicy::kSrrip: {
      for (;;) {
        const int way = g_find_word(set, ways_, kRrpvMask, kRrpvMask);
        if (way >= 0) return way;
        for (int w = 0; w < ways_; ++w) {
          set[w] += 1ULL << kRrpvShift;  // rrpv max 2 here: no carry
        }
      }
    }
  }
  return 0;
}

void Cache::Flush() {
  // Reset: invalid (sentinel tag), rrpv = 3 (distant), rank = the way
  // index so each set starts with a valid rank permutation.
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const std::uint64_t way = i % static_cast<std::size_t>(ways_);
    words_[i] = (kTagSentinel << kTagShift) | (way << kRankShift) |
                (3ULL << kRrpvShift);
  }
}

}  // namespace limoncello
