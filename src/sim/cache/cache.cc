#include "sim/cache/cache.h"

#include <bit>

#include "util/check.h"
#include "util/rng.h"

namespace limoncello {

Cache::Cache(const CacheConfig& config, std::string name)
    : name_(std::move(name)), policy_(config.policy), ways_(config.ways) {
  LIMONCELLO_CHECK_GT(config.ways, 0);
  LIMONCELLO_CHECK_GE(config.size_bytes, kCacheLineBytes);
  const std::uint64_t lines = config.size_bytes / kCacheLineBytes;
  num_sets_ = lines / static_cast<std::uint64_t>(config.ways);
  LIMONCELLO_CHECK_GT(num_sets_, 0u);
  // Power-of-two sets keep index extraction a mask.
  LIMONCELLO_CHECK(std::has_single_bit(num_sets_));
  sets_.assign(num_sets_, std::vector<Line>(
                              static_cast<std::size_t>(config.ways)));
}

std::vector<Cache::Line>& Cache::SetFor(Addr line_addr, Addr* tag) {
  const std::uint64_t index = line_addr & (num_sets_ - 1);
  *tag = line_addr >> std::countr_zero(num_sets_);
  return sets_[index];
}

const std::vector<Cache::Line>* Cache::SetForConst(Addr line_addr,
                                                   Addr* tag) const {
  const std::uint64_t index = line_addr & (num_sets_ - 1);
  *tag = line_addr >> std::countr_zero(num_sets_);
  return &sets_[index];
}

bool Cache::LookupDemand(Addr line_addr, bool is_store,
                         bool* was_prefetched) {
  if (was_prefetched != nullptr) *was_prefetched = false;
  Addr tag = 0;
  auto& set = SetFor(line_addr, &tag);
  for (Line& line : set) {
    if (line.valid && line.tag == tag) {
      ++stats_.demand_hits;
      if (line.prefetched) {
        ++stats_.prefetch_covered_hits;
        line.prefetched = false;
        if (was_prefetched != nullptr) *was_prefetched = true;
      }
      if (is_store) line.dirty = true;
      line.last_use = ++use_clock_;
      line.rrpv = 0;  // SRRIP: proven re-referenced
      return true;
    }
  }
  ++stats_.demand_misses;
  return false;
}

bool Cache::Contains(Addr line_addr) const {
  Addr tag = 0;
  const auto* set = SetForConst(line_addr, &tag);
  for (const Line& line : *set) {
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

Cache::Eviction Cache::Fill(Addr line_addr, bool is_prefetch, bool dirty) {
  Addr tag = 0;
  auto& set = SetFor(line_addr, &tag);
  // If already present (fill race with another path), refresh in place.
  for (Line& line : set) {
    if (line.valid && line.tag == tag) {
      line.dirty = line.dirty || dirty;
      line.last_use = ++use_clock_;
      return Eviction{};
    }
  }
  if (is_prefetch) {
    ++stats_.prefetch_fills;
  } else {
    ++stats_.demand_fills;
  }
  Line* victim = PickVictim(set);
  Eviction evicted;
  if (victim->valid) {
    evicted.valid = true;
    evicted.dirty = victim->dirty;
    evicted.unused_prefetch = victim->prefetched;
    evicted.line_addr =
        (victim->tag << std::countr_zero(num_sets_)) |
        (line_addr & (num_sets_ - 1));
    if (victim->prefetched) ++stats_.prefetch_pollution_evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->tag = tag;
  victim->valid = true;
  victim->dirty = dirty;
  victim->prefetched = is_prefetch;
  victim->last_use = ++use_clock_;
  // SRRIP insertion: demand fills are "long" re-reference (2), prefetch
  // fills "distant" (3) — an unproven prefetch is the first to go.
  victim->rrpv = is_prefetch ? 3 : 2;
  return evicted;
}

Cache::Line* Cache::PickVictim(std::vector<Line>& set) {
  // Invalid ways first under every policy.
  for (Line& line : set) {
    if (!line.valid) return &line;
  }
  switch (policy_) {
    case ReplacementPolicy::kLru: {
      Line* victim = &set[0];
      for (Line& line : set) {
        if (line.last_use < victim->last_use) victim = &line;
      }
      return victim;
    }
    case ReplacementPolicy::kRandom: {
      // Deterministic pseudo-random pick from the access clock.
      std::uint64_t h = ++use_clock_;
      h = SplitMix64(h);
      return &set[h % set.size()];
    }
    case ReplacementPolicy::kSrrip: {
      for (;;) {
        for (Line& line : set) {
          if (line.rrpv >= 3) return &line;
        }
        for (Line& line : set) {
          ++line.rrpv;
        }
      }
    }
  }
  return &set[0];
}

void Cache::Flush() {
  for (auto& set : sets_) {
    for (Line& line : set) line = Line{};
  }
}

}  // namespace limoncello
