// Set-associative cache with LRU replacement and prefetch-fill tracking.
//
// Each line carries a `prefetched` bit so the simulator can account
// prefetch usefulness (prefetched line later demanded = covered miss) and
// pollution (prefetched line evicted untouched). These are the quantities
// behind the paper's coverage/accuracy discussion (§2.1, §7.1).
//
// Hot-path layout (DESIGN.md §9): one contiguous set-major array
// (`set * ways + way`) of single 64-bit words, each packing a way's tag,
// status bits, rrpv, and an exact LRU recency *rank* — instead of a
// vector-of-vectors of 24-byte line structs. An 8-way set is exactly one
// 64-byte host cache line (a 16-way set two), there is no pointer chase,
// and an access touches those words and nothing else: the rank (a
// permutation of 0..ways-1 inside the set) replaces the original global
// 64-bit timestamp, selecting the identical victim without a second
// recency array and its extra cache miss per access. Because presence is
// a single mask-and-compare per word, the tag scan is branchless SIMD
// (8 ways per AVX-512 compare, 4 per AVX-2, runtime-dispatched with a
// scalar fallback), which also removes the per-access branch mispredict
// a scalar early-exit scan pays when the hit way is unpredictable; the
// rank update after a hit is the same SIMD shape over words the scan
// just loaded. Invalid ways hold an all-ones sentinel in the tag field,
// so free-way search is the same masked compare. The probe-once API
// (`Probe` + `FillAt`, and the `probe_out` arm of `LookupDemand`) lets
// callers touch a set's tags exactly once per cache level per access;
// the legacy `Contains`/`Fill` pair remains as a thin wrapper for
// callers off the hot path.
#ifndef LIMONCELLO_SIM_CACHE_CACHE_H_
#define LIMONCELLO_SIM_CACHE_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace limoncello {

enum class ReplacementPolicy {
  kLru,     // true LRU (default)
  kRandom,  // pseudo-random victim (deterministic hash of an access clock)
  kSrrip,   // 2-bit SRRIP; prefetch fills insert at distant re-reference,
            // which bounds prefetch pollution (Jaleel et al., ISCA'10)
};

struct CacheConfig {
  std::uint64_t size_bytes = 32 * kKiB;
  int ways = 8;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
};

class Cache {
 public:
  struct Eviction {
    bool valid = false;       // an occupied line was evicted
    bool dirty = false;       // needs a writeback
    bool unused_prefetch = false;  // prefetched, never demanded (pollution)
    Addr line_addr = 0;
  };

  struct Stats {
    std::uint64_t demand_hits = 0;
    std::uint64_t demand_misses = 0;
    // Demand hits on lines brought in by a prefetch (covered misses).
    std::uint64_t prefetch_covered_hits = 0;
    std::uint64_t prefetch_fills = 0;
    std::uint64_t demand_fills = 0;
    // Prefetched lines evicted without ever being demanded.
    std::uint64_t prefetch_pollution_evictions = 0;
    std::uint64_t writebacks = 0;

    double DemandMissRate() const {
      const std::uint64_t total = demand_hits + demand_misses;
      return total ? static_cast<double>(demand_misses) /
                         static_cast<double>(total)
                   : 0.0;
    }
    // Fraction of prefetch fills that ended up demanded (accuracy proxy).
    double PrefetchAccuracy() const {
      return prefetch_fills ? static_cast<double>(prefetch_covered_hits) /
                                  static_cast<double>(prefetch_fills)
                            : 0.0;
    }
  };

  // One tag scan's worth of knowledge about a set, consumed by FillAt.
  // `way` is the matching way on a hit; `invalid_way` is the first
  // invalid way encountered (the way a miss fill will claim), or -1 if
  // the set was full when the probe completed. A probe result is only
  // valid until the next mutation of the same cache (LookupDemand, Fill,
  // FillAt, Flush) — the socket's access path guarantees this by probing
  // each level at most once per access.
  struct ProbeResult {
    std::int32_t way = -1;
    std::int32_t invalid_way = -1;
    bool hit = false;
  };

  Cache(const CacheConfig& config, std::string name);

  // Pure tag probe: no stats, no replacement-state updates. One scan of
  // the set's tags.
  ProbeResult Probe(Addr line_addr) const;

  // Demand lookup. Updates LRU and stats; clears the prefetched bit on hit
  // (the prefetch is now proven useful). If was_prefetched is non-null it
  // is set to true when the hit line was brought in by a prefetch and had
  // not been demanded before (used for timeliness modeling). If probe_out
  // is non-null it receives the underlying probe so a miss can later be
  // filled via FillAt without re-scanning the tags.
  bool LookupDemand(Addr line_addr, bool is_store,
                    bool* was_prefetched = nullptr,
                    ProbeResult* probe_out = nullptr);

  // Probe without side effects (used to filter redundant prefetches).
  bool Contains(Addr line_addr) const { return Probe(line_addr).hit; }

  // Inserts a line (after a miss was serviced below), consuming a probe
  // of the same line_addr: a hit probe refreshes the line in place, a
  // miss probe claims invalid_way (or picks a policy victim when the set
  // is full). Returns the eviction it caused, if any.
  Eviction FillAt(const ProbeResult& probe, Addr line_addr,
                  bool is_prefetch, bool dirty);

  // Probe-then-fill convenience for callers off the hot path.
  Eviction Fill(Addr line_addr, bool is_prefetch, bool dirty) {
    return FillAt(Probe(line_addr), line_addr, is_prefetch, dirty);
  }

  // Invalidates every line (used between independent experiment runs).
  void Flush();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  const std::string& name() const { return name_; }
  std::uint64_t num_sets() const { return num_sets_; }
  int ways() const { return ways_; }

 private:
  std::size_t SetBase(Addr line_addr) const {
    return static_cast<std::size_t>(line_addr & (num_sets_ - 1)) *
           static_cast<std::size_t>(ways_);
  }
  Addr TagFor(Addr line_addr) const { return line_addr >> set_shift_; }

  // Moves `way` to most-recent rank (ways-1), closing the gap above its
  // old rank, and rewrites `way`'s word to `new_word` (with the rank
  // bits replaced) in the same pass. Exact LRU: ranks order the set by
  // last touch, so the rank-0 way is precisely the timestamp-LRU victim.
  // Only maintained under kLru — the other policies never read recency.
  void TouchLru(std::size_t base, int way, std::uint64_t new_word);

  // Policy victim among the (all-valid) ways of a full set.
  int PickVictimWay(std::size_t base);

  std::string name_;
  ReplacementPolicy policy_;
  std::uint64_t num_sets_;
  int ways_;
  int set_shift_ = 0;  // log2(num_sets_)
  // Set-major contiguous storage: words_[set * ways_ + way]. The word
  // layout (tag / rank / rrpv / status bits) lives in cache.cc.
  std::vector<std::uint64_t> words_;
  // Advanced exactly where the original struct-of-lines implementation
  // bumped its use clock (every hit, refresh, and install, plus the
  // kRandom victim pick), so kRandom's deterministic victim sequence is
  // unchanged. LRU no longer reads it — ranks carry the same order.
  std::uint64_t use_clock_ = 0;
  Stats stats_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_CACHE_CACHE_H_
