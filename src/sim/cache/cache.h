// Set-associative cache with LRU replacement and prefetch-fill tracking.
//
// Each line carries a `prefetched` bit so the simulator can account
// prefetch usefulness (prefetched line later demanded = covered miss) and
// pollution (prefetched line evicted untouched). These are the quantities
// behind the paper's coverage/accuracy discussion (§2.1, §7.1).
#ifndef LIMONCELLO_SIM_CACHE_CACHE_H_
#define LIMONCELLO_SIM_CACHE_CACHE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace limoncello {

enum class ReplacementPolicy {
  kLru,     // true LRU (default)
  kRandom,  // pseudo-random victim (deterministic hash of an access clock)
  kSrrip,   // 2-bit SRRIP; prefetch fills insert at distant re-reference,
            // which bounds prefetch pollution (Jaleel et al., ISCA'10)
};

struct CacheConfig {
  std::uint64_t size_bytes = 32 * kKiB;
  int ways = 8;
  ReplacementPolicy policy = ReplacementPolicy::kLru;
};

class Cache {
 public:
  struct Eviction {
    bool valid = false;       // an occupied line was evicted
    bool dirty = false;       // needs a writeback
    bool unused_prefetch = false;  // prefetched, never demanded (pollution)
    Addr line_addr = 0;
  };

  struct Stats {
    std::uint64_t demand_hits = 0;
    std::uint64_t demand_misses = 0;
    // Demand hits on lines brought in by a prefetch (covered misses).
    std::uint64_t prefetch_covered_hits = 0;
    std::uint64_t prefetch_fills = 0;
    std::uint64_t demand_fills = 0;
    // Prefetched lines evicted without ever being demanded.
    std::uint64_t prefetch_pollution_evictions = 0;
    std::uint64_t writebacks = 0;

    double DemandMissRate() const {
      const std::uint64_t total = demand_hits + demand_misses;
      return total ? static_cast<double>(demand_misses) /
                         static_cast<double>(total)
                   : 0.0;
    }
    // Fraction of prefetch fills that ended up demanded (accuracy proxy).
    double PrefetchAccuracy() const {
      return prefetch_fills ? static_cast<double>(prefetch_covered_hits) /
                                  static_cast<double>(prefetch_fills)
                            : 0.0;
    }
  };

  Cache(const CacheConfig& config, std::string name);

  // Demand lookup. Updates LRU and stats; clears the prefetched bit on hit
  // (the prefetch is now proven useful). If was_prefetched is non-null it
  // is set to true when the hit line was brought in by a prefetch and had
  // not been demanded before (used for timeliness modeling).
  bool LookupDemand(Addr line_addr, bool is_store,
                    bool* was_prefetched = nullptr);

  // Probe without side effects (used to filter redundant prefetches).
  bool Contains(Addr line_addr) const;

  // Inserts a line (after a miss was serviced below). Returns the eviction
  // it caused, if any.
  Eviction Fill(Addr line_addr, bool is_prefetch, bool dirty);

  // Invalidates every line (used between independent experiment runs).
  void Flush();

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }
  const std::string& name() const { return name_; }
  std::uint64_t num_sets() const { return num_sets_; }
  int ways() const { return ways_; }

 private:
  struct Line {
    Addr tag = 0;
    std::uint64_t last_use = 0;
    std::uint8_t rrpv = 3;  // SRRIP re-reference prediction value
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
  };

  std::vector<Line>& SetFor(Addr line_addr, Addr* tag);
  const std::vector<Line>* SetForConst(Addr line_addr, Addr* tag) const;
  Line* PickVictim(std::vector<Line>& set);

  std::string name_;
  ReplacementPolicy policy_;
  std::uint64_t num_sets_;
  int ways_;
  std::vector<std::vector<Line>> sets_;
  std::uint64_t use_clock_ = 0;
  Stats stats_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_CACHE_CACHE_H_
