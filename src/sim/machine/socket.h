// Detailed socket model: cores with private L1/L2, shared LLC, a memory
// controller, per-core hardware prefetch engines, a simulated MSR file,
// and PMU counters.
//
// The socket advances in fixed epochs. Within an epoch every core executes
// its access trace against the cache hierarchy; misses charge memory
// latency from the controller's bandwidth-dependent curve. Writing the
// platform's prefetch-control MSR (msr_device()) enables/disables the
// per-core prefetch engines — the exact actuation path Hard Limoncello
// exercises.
#ifndef LIMONCELLO_SIM_MACHINE_SOCKET_H_
#define LIMONCELLO_SIM_MACHINE_SOCKET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "msr/prefetch_control.h"
#include "msr/simulated_msr_device.h"
#include "sim/cache/cache.h"
#include "sim/memory/memory_controller.h"
#include "sim/prefetch/best_offset.h"
#include "sim/prefetch/prefetcher.h"
#include "util/rng.h"
#include "util/units.h"
#include "workloads/access.h"

namespace limoncello {

struct SocketConfig {
  int num_cores = 8;
  double freq_ghz = 2.5;
  // Cycles per instruction with all memory latency excluded.
  double base_cpi = 0.5;
  // Memory-level parallelism: concurrent demand misses a core overlaps.
  double mlp = 4.0;
  // Stores retire through the store buffer; only this fraction of a store
  // miss's latency lands on the critical path.
  double store_penalty_factor = 0.3;

  CacheConfig l1{32 * kKiB, 8};
  CacheConfig l2{1 * kMiB, 16};
  std::uint64_t llc_bytes_per_core = 2 * kMiB;
  int llc_ways = 16;
  double l2_hit_cycles = 12.0;
  double llc_hit_cycles = 42.0;

  MemoryControllerConfig memory;
  PlatformMsrLayout msr_layout = PlatformMsrLayout::kIntelStyle;
  StreamPrefetcher::Options stream;
  IpStridePrefetcher::Options ip_stride;
  // Swap the L2 stream detector for a best-offset engine (Michaud,
  // HPCA'16); it answers to the same MSR bit (kL2Stream).
  bool use_best_offset_l2 = false;
  BestOffsetPrefetcher::Options best_offset;

  // Retire cost of one software-prefetch instruction, as a fraction of
  // base_cpi (prefetches issue on spare slots; they are cheaper than an
  // arithmetic instruction but not free).
  double sw_prefetch_instruction_cost = 0.35;

  // Prefetch timeliness: below `late_start` utilization a covered hit is
  // free; the residual latency charged grows linearly to `late_full_frac`
  // of the full miss latency at 100 % utilization. Models prefetches
  // still being in flight (or queued) when the demand arrives — the
  // reason prefetching stops helping at saturation.
  double prefetch_late_start = 0.60;
  double prefetch_late_full_frac = 0.95;
};

// Cumulative socket performance counters (PMU model). Telemetry samples
// these and differences consecutive snapshots.
struct PmuCounters {
  std::uint64_t instructions = 0;
  std::uint64_t core_cycles = 0;  // active (non-idle) core cycles
  std::uint64_t idle_cycles = 0;
  // Cache lines touched by demand loads/stores (the application's own
  // bandwidth, regardless of which agent fetched the line) — what a
  // bandwidth tool like MLC reports.
  std::uint64_t lines_touched = 0;
  std::uint64_t llc_demand_hits = 0;
  std::uint64_t llc_demand_misses = 0;
  std::uint64_t dram_bytes[kNumTrafficClasses] = {0, 0, 0, 0};
  std::uint64_t dram_requests = 0;
  double dram_latency_ns_sum = 0.0;

  std::uint64_t DramTotalBytes() const {
    return dram_bytes[0] + dram_bytes[1] + dram_bytes[2] + dram_bytes[3];
  }
  double AvgDramLatencyNs() const {
    return dram_requests
               ? dram_latency_ns_sum / static_cast<double>(dram_requests)
               : 0.0;
  }
  double LlcMpki() const {
    return instructions ? 1000.0 * static_cast<double>(llc_demand_misses) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
};

// Per-function attribution used by the sampling profiler.
struct FunctionProfileEntry {
  double cycles = 0.0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
};

class Socket {
 public:
  // num_functions sizes the attribution table (FunctionIds must be below
  // it); accesses with kInvalidFunctionId go to an overflow slot.
  Socket(const SocketConfig& config, std::size_t num_functions, Rng rng);

  // Non-copyable (owns caches, engines, MSR file).
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  // Assigns (or replaces) the access trace driving a core. Pass nullptr to
  // idle the core.
  void SetWorkload(int core, std::unique_ptr<AccessGenerator> generator);

  // True once the core's generator returned end-of-trace.
  bool WorkloadExhausted(int core) const;

  // Advances simulated time by one epoch, running every core.
  void Step(SimTimeNs epoch_ns);

  // The finished epoch's memory stats (valid after the first Step).
  const MemoryController::EpochStats& last_epoch() const {
    return last_epoch_;
  }

  SimTimeNs now() const { return now_; }
  const PmuCounters& counters() const { return counters_; }
  const MemoryController& memory() const { return memory_; }
  SimulatedMsrDevice& msr_device() { return msr_; }
  const SocketConfig& config() const { return config_; }

  // Per-core cumulative active cycles / instructions (microbench timing).
  std::uint64_t core_active_cycles(int core) const;
  std::uint64_t core_instructions(int core) const;

  const std::vector<FunctionProfileEntry>& function_profile() const {
    return function_profile_;
  }
  void ResetFunctionProfile();

  // Convenience for experiments that bypass the MSR path in tests.
  void SetAllPrefetchersEnabled(bool enabled);

  // True iff every engine on every core is enabled.
  bool AllPrefetchersEnabled() const;

  // Aggregated cache stats (across cores for L1/L2).
  Cache::Stats AggregateL1Stats() const;
  Cache::Stats AggregateL2Stats() const;
  const Cache::Stats& LlcStats() const { return llc_.stats(); }

 private:
  struct CoreState {
    std::unique_ptr<Cache> l1;
    std::unique_ptr<Cache> l2;
    std::unique_ptr<DcuStreamerPrefetcher> dcu_streamer;
    std::unique_ptr<IpStridePrefetcher> ip_stride;
    // Either a StreamPrefetcher or a BestOffsetPrefetcher; both answer
    // to the kL2Stream MSR bit.
    std::unique_ptr<HwPrefetchEngine> l2_stream;
    std::unique_ptr<AdjacentLinePrefetcher> l2_adjacent;
    std::unique_ptr<AccessGenerator> workload;
    bool exhausted = false;
    std::uint64_t active_cycles = 0;
    std::uint64_t instructions = 0;
    // Scratch buffers reused across accesses so the steady-state access
    // loop never allocates (bench_socket --check-allocs enforces this).
    // L1 and L2 engine output need separate buffers: AccessBelowL1 runs
    // (and fills l2_prefetch_scratch) while ProcessAccess still holds
    // unissued prefetches in l1_prefetch_scratch.
    std::vector<Addr> l1_prefetch_scratch;
    std::vector<Addr> l2_prefetch_scratch;
  };

  // Runs one access on a core; returns the cycles it consumed.
  double ProcessAccess(CoreState& core, const MemRef& ref);

  // Demand path below L1: returns the latency penalty in cycles and
  // whether the access missed the LLC.
  struct BelowL1Result {
    double penalty_cycles = 0.0;
    bool llc_miss = false;
  };
  // l1_probe is the (missed) L1 probe from ProcessAccess, consumed by the
  // L1 fills here so the L1 tags are scanned once per access.
  BelowL1Result AccessBelowL1(CoreState& core, Addr line, bool is_store,
                              FunctionId function,
                              const Cache::ProbeResult& l1_probe);

  // Installs a prefetch at the given level (1 = into L1, 2 = into L2),
  // walking down the hierarchy and consuming memory bandwidth on LLC miss.
  void HandlePrefetchFill(CoreState& core, Addr line, int level,
                          TrafficClass traffic);

  // Handles an eviction from the LLC (dirty lines write back to memory).
  void OnLlcEviction(const Cache::Eviction& eviction);

  // Residual latency charged on prefetch-covered hits at high load.
  double LatePrefetchPenaltyCycles() const;

  void ApplyMsrWrite(int cpu, MsrRegister reg, std::uint64_t value);

  FunctionProfileEntry& ProfileSlot(FunctionId function);

  SocketConfig config_;
  MemoryController memory_;
  Cache llc_;
  SimulatedMsrDevice msr_;
  PrefetchMsrMap msr_map_;
  std::vector<CoreState> cores_;
  std::vector<FunctionProfileEntry> function_profile_;
  PmuCounters counters_;
  MemoryController::EpochStats last_epoch_;
  SimTimeNs now_ = 0;
  double cycles_per_ns_ = 0.0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_MACHINE_SOCKET_H_
