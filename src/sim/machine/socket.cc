#include "sim/machine/socket.h"

#include <algorithm>

#include "util/check.h"

namespace limoncello {

Socket::Socket(const SocketConfig& config, std::size_t num_functions,
               Rng rng)
    : config_(config),
      memory_(config.memory, rng.Fork(0x11)),
      llc_(CacheConfig{config.llc_bytes_per_core *
                           static_cast<std::uint64_t>(config.num_cores),
                       config.llc_ways},
           "llc"),
      msr_(config.num_cores),
      msr_map_(PrefetchMsrMap::For(config.msr_layout)),
      function_profile_(num_functions + 1),
      cycles_per_ns_(config.freq_ghz) {
  LIMONCELLO_CHECK_GT(config.num_cores, 0);
  LIMONCELLO_CHECK_GT(config.freq_ghz, 0.0);
  LIMONCELLO_CHECK_GE(config.mlp, 1.0);
  cores_.resize(static_cast<std::size_t>(config.num_cores));
  for (int c = 0; c < config.num_cores; ++c) {
    CoreState& core = cores_[static_cast<std::size_t>(c)];
    core.l1 = std::make_unique<Cache>(config.l1, "l1");
    core.l2 = std::make_unique<Cache>(config.l2, "l2");
    core.dcu_streamer = std::make_unique<DcuStreamerPrefetcher>();
    core.ip_stride = std::make_unique<IpStridePrefetcher>(config.ip_stride);
    if (config.use_best_offset_l2) {
      core.l2_stream =
          std::make_unique<BestOffsetPrefetcher>(config.best_offset);
    } else {
      core.l2_stream = std::make_unique<StreamPrefetcher>(config.stream);
    }
    core.l2_adjacent = std::make_unique<AdjacentLinePrefetcher>();
  }
  msr_.AddWriteObserver([this](int cpu, MsrRegister reg,
                               std::uint64_t value) {
    ApplyMsrWrite(cpu, reg, value);
  });
  // Power-on state: all engines enabled. On enable-bit layouts the MSR
  // bits must be set to match (the register file zero-initializes).
  if (!msr_map_.set_bit_disables) {
    for (int cpu = 0; cpu < config_.num_cores; ++cpu) {
      // The device was just constructed with no failed CPUs, so the
      // power-on writes cannot fail.
      LIMONCELLO_CHECK(msr_.Write(cpu, msr_map_.reg, msr_map_.engine_mask));
    }
  }
}

void Socket::ApplyMsrWrite(int cpu, MsrRegister reg, std::uint64_t value) {
  if (reg != msr_map_.reg) return;
  if (cpu < 0 || cpu >= config_.num_cores) return;
  CoreState& core = cores_[static_cast<std::size_t>(cpu)];
  auto engine_enabled = [&](PrefetchEngine engine) {
    const std::uint64_t bit = 1ULL << static_cast<int>(engine);
    const bool set = (value & bit) != 0;
    return msr_map_.set_bit_disables ? !set : set;
  };
  core.l2_stream->set_enabled(engine_enabled(PrefetchEngine::kL2Stream));
  core.l2_adjacent->set_enabled(
      engine_enabled(PrefetchEngine::kL2AdjacentLine));
  core.dcu_streamer->set_enabled(
      engine_enabled(PrefetchEngine::kDcuStreamer));
  core.ip_stride->set_enabled(engine_enabled(PrefetchEngine::kDcuIpStride));
}

void Socket::SetWorkload(int core,
                         std::unique_ptr<AccessGenerator> generator) {
  LIMONCELLO_CHECK(core >= 0 && core < config_.num_cores);
  CoreState& state = cores_[static_cast<std::size_t>(core)];
  state.workload = std::move(generator);
  state.exhausted = state.workload == nullptr;
}

bool Socket::WorkloadExhausted(int core) const {
  LIMONCELLO_CHECK(core >= 0 && core < config_.num_cores);
  const CoreState& state = cores_[static_cast<std::size_t>(core)];
  return state.workload == nullptr || state.exhausted;
}

std::uint64_t Socket::core_active_cycles(int core) const {
  LIMONCELLO_CHECK(core >= 0 && core < config_.num_cores);
  return cores_[static_cast<std::size_t>(core)].active_cycles;
}

std::uint64_t Socket::core_instructions(int core) const {
  LIMONCELLO_CHECK(core >= 0 && core < config_.num_cores);
  return cores_[static_cast<std::size_t>(core)].instructions;
}

void Socket::ResetFunctionProfile() {
  for (auto& entry : function_profile_) entry = FunctionProfileEntry{};
}

void Socket::SetAllPrefetchersEnabled(bool enabled) {
  for (CoreState& core : cores_) {
    core.l2_stream->set_enabled(enabled);
    core.l2_adjacent->set_enabled(enabled);
    core.dcu_streamer->set_enabled(enabled);
    core.ip_stride->set_enabled(enabled);
  }
}

bool Socket::AllPrefetchersEnabled() const {
  for (const CoreState& core : cores_) {
    if (!core.l2_stream->enabled() || !core.l2_adjacent->enabled() ||
        !core.dcu_streamer->enabled() || !core.ip_stride->enabled()) {
      return false;
    }
  }
  return true;
}

FunctionProfileEntry& Socket::ProfileSlot(FunctionId function) {
  const std::size_t overflow = function_profile_.size() - 1;
  const std::size_t index =
      function < overflow ? static_cast<std::size_t>(function) : overflow;
  return function_profile_[index];
}

void Socket::OnLlcEviction(const Cache::Eviction& eviction) {
  if (eviction.valid && eviction.dirty) {
    memory_.Access(TrafficClass::kWriteback);
  }
}

void Socket::HandlePrefetchFill(CoreState& core, Addr line, int level,
                                TrafficClass traffic) {
  // Redundant prefetches are filtered at the target level. Each level's
  // tags are probed at most once; the probe result feeds the fill.
  Cache::ProbeResult l1_probe;
  if (level == 1) {
    l1_probe = core.l1->Probe(line);
    if (l1_probe.hit) return;
  }
  const Cache::ProbeResult l2_probe = core.l2->Probe(line);
  if (level == 2 && l2_probe.hit) return;

  const bool in_l2 = level == 1 && l2_probe.hit;
  if (!in_l2) {
    const Cache::ProbeResult llc_probe = llc_.Probe(line);
    if (!llc_probe.hit) {
      // Goes to memory: this is prefetch bandwidth.
      memory_.Access(traffic);
      OnLlcEviction(llc_.FillAt(llc_probe, line, /*is_prefetch=*/true,
                                /*dirty=*/false));
    }
    core.l2->FillAt(l2_probe, line, /*is_prefetch=*/true, /*dirty=*/false);
  }
  if (level == 1) {
    core.l1->FillAt(l1_probe, line, /*is_prefetch=*/true, /*dirty=*/false);
  }
}

// Residual latency (cycles) charged when a demand hit lands on a line a
// prefetcher brought in: timely at low utilization, increasingly late as
// the memory system saturates.
double Socket::LatePrefetchPenaltyCycles() const {
  const double u = memory_.SmoothedUtilization();
  if (u <= config_.prefetch_late_start) return 0.0;
  const double lateness =
      std::min(1.0, (u - config_.prefetch_late_start) /
                        (1.0 - config_.prefetch_late_start)) *
      config_.prefetch_late_full_frac;
  return lateness * memory_.CurrentLatencyNs() * cycles_per_ns_;
}

Socket::BelowL1Result Socket::AccessBelowL1(
    CoreState& core, Addr line, bool is_store, FunctionId function,
    const Cache::ProbeResult& l1_probe) {
  BelowL1Result result;
  bool covered = false;
  Cache::ProbeResult l2_probe;
  const bool l2_hit =
      core.l2->LookupDemand(line, is_store, &covered, &l2_probe);

  // L2 engines observe the access stream reaching L2. The L2 scratch is
  // free here: the prefetch-fill loop below drains it before returning,
  // and HandlePrefetchFill never touches it.
  core.l2_prefetch_scratch.clear();
  if (core.l2_stream->enabled()) {
    core.l2_stream->Observe({line, function, l2_hit, is_store},
                            &core.l2_prefetch_scratch);
  }
  if (core.l2_adjacent->enabled()) {
    core.l2_adjacent->Observe({line, function, l2_hit, is_store},
                              &core.l2_prefetch_scratch);
  }

  if (l2_hit) {
    result.penalty_cycles = config_.l2_hit_cycles;
    if (covered) result.penalty_cycles += LatePrefetchPenaltyCycles();
    core.l1->FillAt(l1_probe, line, /*is_prefetch=*/false,
                    /*dirty=*/is_store);
  } else {
    Cache::ProbeResult llc_probe;
    const bool llc_hit =
        llc_.LookupDemand(line, is_store, &covered, &llc_probe);
    if (llc_hit) {
      ++counters_.llc_demand_hits;
      result.penalty_cycles = config_.llc_hit_cycles;
      if (covered) result.penalty_cycles += LatePrefetchPenaltyCycles();
    } else {
      ++counters_.llc_demand_misses;
      result.llc_miss = true;
      const double latency_ns = memory_.Access(TrafficClass::kDemand);
      result.penalty_cycles =
          config_.llc_hit_cycles + latency_ns * cycles_per_ns_;
      OnLlcEviction(llc_.FillAt(llc_probe, line, /*is_prefetch=*/false,
                                /*dirty=*/false));
    }
    core.l2->FillAt(l2_probe, line, /*is_prefetch=*/false,
                    /*dirty=*/is_store);
    core.l1->FillAt(l1_probe, line, /*is_prefetch=*/false,
                    /*dirty=*/is_store);
  }

  for (Addr target : core.l2_prefetch_scratch) {
    HandlePrefetchFill(core, target, /*level=*/2,
                       TrafficClass::kHwPrefetch);
  }
  return result;
}

// limolint:hot-path — per-memory-reference entry point of the cache sim;
// bench_socket gates its steady-state allocation count at exactly zero.
double Socket::ProcessAccess(CoreState& core, const MemRef& ref) {
  // Compute gap preceding the access.
  double cycles = static_cast<double>(ref.gap_instructions) *
                  config_.base_cpi;
  core.instructions += ref.gap_instructions;
  FunctionProfileEntry& profile = ProfileSlot(ref.function);
  profile.instructions += ref.gap_instructions;

  const Addr first_line = LineAddr(ref.addr);
  const Addr last_line = LineAddr(ref.addr + (ref.size ? ref.size - 1 : 0));

  for (Addr line = first_line; line <= last_line; ++line) {
    if (ref.op == MemOp::kSoftwarePrefetch) {
      // PREFETCHT0: one instruction, never blocks, fills all levels.
      core.instructions += 1;
      profile.instructions += 1;
      cycles += config_.base_cpi * config_.sw_prefetch_instruction_cost;
      HandlePrefetchFill(core, line, /*level=*/1,
                         TrafficClass::kSwPrefetch);
      continue;
    }
    const bool is_store = ref.op == MemOp::kStore;
    ++counters_.lines_touched;
    bool l1_covered = false;
    Cache::ProbeResult l1_probe;
    const bool l1_hit =
        core.l1->LookupDemand(line, is_store, &l1_covered, &l1_probe);

    // L1 engines observe every demand access. The scratch holds the
    // engines' output until the demand path settles; AccessBelowL1 only
    // uses the separate L2 scratch, so no copy is needed.
    core.l1_prefetch_scratch.clear();
    if (core.dcu_streamer->enabled()) {
      core.dcu_streamer->Observe({line, ref.function, l1_hit, is_store},
                                 &core.l1_prefetch_scratch);
    }
    if (core.ip_stride->enabled()) {
      core.ip_stride->Observe({line, ref.function, l1_hit, is_store},
                              &core.l1_prefetch_scratch);
    }

    if (l1_hit) {
      if (l1_covered) {
        double penalty = LatePrefetchPenaltyCycles() / config_.mlp;
        if (is_store) penalty *= config_.store_penalty_factor;
        cycles += penalty;
      }
    } else {
      BelowL1Result below =
          AccessBelowL1(core, line, is_store, ref.function, l1_probe);
      double penalty = below.penalty_cycles / config_.mlp;
      if (is_store) penalty *= config_.store_penalty_factor;
      cycles += penalty;
      if (below.llc_miss) ++profile.llc_misses;
    }

    for (Addr target : core.l1_prefetch_scratch) {
      HandlePrefetchFill(core, target, /*level=*/1,
                         TrafficClass::kHwPrefetch);
    }
  }

  profile.cycles += cycles;
  return cycles;
}

void Socket::Step(SimTimeNs epoch_ns) {
  LIMONCELLO_CHECK_GT(epoch_ns, 0);
  memory_.BeginEpoch(epoch_ns);
  const double budget =
      static_cast<double>(epoch_ns) * cycles_per_ns_;
  for (CoreState& core : cores_) {
    double used = 0.0;
    const std::uint64_t instructions_before = core.instructions;
    while (used < budget) {
      if (core.workload == nullptr || core.exhausted) break;
      MemRef ref;
      if (!core.workload->Next(&ref)) {
        core.exhausted = true;
        break;
      }
      used += ProcessAccess(core, ref);
    }
    const auto used_cycles = static_cast<std::uint64_t>(
        std::min(used, budget * 4.0));  // one access may overshoot
    core.active_cycles += used_cycles;
    counters_.core_cycles += used_cycles;
    if (used < budget) {
      counters_.idle_cycles +=
          static_cast<std::uint64_t>(budget - used);
    }
    counters_.instructions += core.instructions - instructions_before;
  }
  last_epoch_ = memory_.EndEpoch();
  // Mirror memory totals into the PMU view.
  const MemoryController::Totals& totals = memory_.totals();
  for (int c = 0; c < kNumTrafficClasses; ++c) {
    counters_.dram_bytes[c] = totals.bytes[c];
  }
  counters_.dram_requests = totals.requests;
  counters_.dram_latency_ns_sum = totals.latency_ns_sum;
  now_ += epoch_ns;
}

Cache::Stats Socket::AggregateL1Stats() const {
  Cache::Stats out;
  for (const CoreState& core : cores_) {
    const Cache::Stats& s = core.l1->stats();
    out.demand_hits += s.demand_hits;
    out.demand_misses += s.demand_misses;
    out.prefetch_covered_hits += s.prefetch_covered_hits;
    out.prefetch_fills += s.prefetch_fills;
    out.demand_fills += s.demand_fills;
    out.prefetch_pollution_evictions += s.prefetch_pollution_evictions;
    out.writebacks += s.writebacks;
  }
  return out;
}

Cache::Stats Socket::AggregateL2Stats() const {
  Cache::Stats out;
  for (const CoreState& core : cores_) {
    const Cache::Stats& s = core.l2->stats();
    out.demand_hits += s.demand_hits;
    out.demand_misses += s.demand_misses;
    out.prefetch_covered_hits += s.prefetch_covered_hits;
    out.prefetch_fills += s.prefetch_fills;
    out.demand_fills += s.demand_fills;
    out.prefetch_pollution_evictions += s.prefetch_pollution_evictions;
    out.writebacks += s.writebacks;
  }
  return out;
}

}  // namespace limoncello
