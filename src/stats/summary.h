// Streaming scalar summary: count / mean / variance / min / max (Welford).
#ifndef LIMONCELLO_STATS_SUMMARY_H_
#define LIMONCELLO_STATS_SUMMARY_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace limoncello {

class Summary {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  // Merges another summary (parallel Welford combination).
  void Merge(const Summary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace limoncello

#endif  // LIMONCELLO_STATS_SUMMARY_H_
