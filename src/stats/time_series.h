// A simple (time, value) series with aggregation helpers.
//
// Used for telemetry traces (socket bandwidth over time, controller state
// over time) and for rendering the time-series figures (Figs. 7 and 9).
#ifndef LIMONCELLO_STATS_TIME_SERIES_H_
#define LIMONCELLO_STATS_TIME_SERIES_H_

#include <cstdint>
#include <vector>

#include "stats/summary.h"
#include "util/units.h"

namespace limoncello {

class TimeSeries {
 public:
  struct Point {
    SimTimeNs time_ns;
    double value;
  };

  // Appends a point; time must be non-decreasing.
  void Add(SimTimeNs time_ns, double value);

  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  Summary Summarize() const;

  // Fraction of samples with value above the threshold.
  double FractionAbove(double threshold) const;

  // Downsamples by averaging over fixed windows of width window_ns; the
  // emitted point carries the window's start time.
  TimeSeries Resample(SimTimeNs window_ns) const;

 private:
  std::vector<Point> points_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_STATS_TIME_SERIES_H_
