// Log-bucketed streaming histogram with percentile queries.
//
// Buckets grow geometrically, giving a bounded relative error on percentile
// queries (HdrHistogram-flavoured). Used for fleet-scale distributions:
// socket bandwidth, memory latency, memcpy sizes.
#ifndef LIMONCELLO_STATS_HISTOGRAM_H_
#define LIMONCELLO_STATS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "stats/summary.h"

namespace limoncello {

class Histogram {
 public:
  // growth: per-bucket geometric growth factor (> 1). The default 1.02
  // bounds percentile error to ~2 %. min_value: values at or below this
  // land in bucket 0.
  explicit Histogram(double min_value = 1.0, double growth = 1.02);

  void Add(double value);
  void AddN(double value, std::uint64_t n);
  void Merge(const Histogram& other);

  // p in [0, 100]. Returns an upper-edge estimate of the p-th percentile.
  // Returns 0 for an empty histogram.
  double Percentile(double p) const;

  double Mean() const { return summary_.mean(); }
  double Min() const { return summary_.min(); }
  double Max() const { return summary_.max(); }
  double Stddev() const { return summary_.stddev(); }
  std::uint64_t Count() const { return summary_.count(); }
  const Summary& summary() const { return summary_; }

  // Probability mass falling in [lo, hi). Used to render PDFs (Fig. 14).
  double MassBetween(double lo, double hi) const;

 private:
  std::size_t BucketFor(double value) const;
  double BucketUpperEdge(std::size_t bucket) const;
  double BucketLowerEdge(std::size_t bucket) const;

  double min_value_;
  double log_growth_;
  std::vector<std::uint64_t> buckets_;
  Summary summary_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_STATS_HISTOGRAM_H_
