// Saturating event counter for Stats blocks.
//
// Every robustness counter in the tree (daemon, fault injector, journal,
// control plane) is a monotone event count that ends up in a summary
// banner or a BENCH json. A u64 that silently wraps turns "this daemon
// shed 2^64 + 5 samples" into "5" — exactly the kind of lie a fleet
// health dashboard must never tell. SatCounter pins the value at
// UINT64_MAX instead: a saturated counter is visibly absurd, a wrapped
// one is plausibly wrong.
//
// The counter converts implicitly to std::uint64_t so existing printf /
// arithmetic / comparison call sites keep working unchanged; only the
// mutation paths (++ and +=) saturate.
#ifndef LIMONCELLO_STATS_SATURATING_H_
#define LIMONCELLO_STATS_SATURATING_H_

#include <cstdint>
#include <limits>

namespace limoncello {

class SatCounter {
 public:
  constexpr SatCounter() = default;
  // Implicit by design: Stats blocks assign raw u64s decoded from
  // journals, and tests compare against integer literals.
  constexpr SatCounter(std::uint64_t value) : value_(value) {}

  constexpr SatCounter& operator++() {
    if (value_ != kMax) ++value_;
    return *this;
  }
  constexpr SatCounter operator++(int) {
    const SatCounter before = *this;
    ++*this;
    return before;
  }
  constexpr SatCounter& operator+=(std::uint64_t delta) {
    value_ = value_ > kMax - delta ? kMax : value_ + delta;
    return *this;
  }

  constexpr operator std::uint64_t() const { return value_; }
  constexpr std::uint64_t value() const { return value_; }
  constexpr bool saturated() const { return value_ == kMax; }

  constexpr bool operator==(const SatCounter&) const = default;
  // Heterogeneous compare: without this, `counter == 5u` is ambiguous
  // between the defaulted operator (via the implicit constructor) and
  // the built-in (via the conversion operator).
  constexpr bool operator==(std::uint64_t other) const {
    return value_ == other;
  }

 private:
  static constexpr std::uint64_t kMax =
      std::numeric_limits<std::uint64_t>::max();
  std::uint64_t value_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_STATS_SATURATING_H_
