#include "stats/histogram.h"

#include <cmath>

#include "util/check.h"

namespace limoncello {

Histogram::Histogram(double min_value, double growth)
    : min_value_(min_value), log_growth_(std::log(growth)) {
  LIMONCELLO_CHECK_GT(min_value, 0.0);
  LIMONCELLO_CHECK_GT(growth, 1.0);
}

std::size_t Histogram::BucketFor(double value) const {
  if (value <= min_value_) return 0;
  const double idx = std::log(value / min_value_) / log_growth_;
  return static_cast<std::size_t>(idx) + 1;
}

double Histogram::BucketUpperEdge(std::size_t bucket) const {
  if (bucket == 0) return min_value_;
  return min_value_ * std::exp(log_growth_ * static_cast<double>(bucket));
}

double Histogram::BucketLowerEdge(std::size_t bucket) const {
  if (bucket == 0) return 0.0;
  return min_value_ * std::exp(log_growth_ * static_cast<double>(bucket - 1));
}

void Histogram::Add(double value) { AddN(value, 1); }

void Histogram::AddN(double value, std::uint64_t n) {
  if (n == 0) return;
  LIMONCELLO_DCHECK(value >= 0.0);
  const std::size_t b = BucketFor(value);
  // Buckets grow lazily to the largest observed value; once the range is
  // seen, adds are in-place.
  if (b >= buckets_.size()) {
    buckets_.resize(b + 1, 0);  // limolint:allow(hot-path-alloc)
  }
  buckets_[b] += n;
  for (std::uint64_t i = 0; i < n; ++i) summary_.Add(value);
}

void Histogram::Merge(const Histogram& other) {
  LIMONCELLO_CHECK_EQ(min_value_, other.min_value_);
  LIMONCELLO_CHECK_EQ(log_growth_, other.log_growth_);
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  summary_.Merge(other.summary_);
}

double Histogram::Percentile(double p) const {
  LIMONCELLO_CHECK_GE(p, 0.0);
  LIMONCELLO_CHECK_LE(p, 100.0);
  const std::uint64_t total = summary_.count();
  if (total == 0) return 0.0;
  // Rank of the target sample, 1-based, ceil semantics.
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank && buckets_[b] > 0) {
      // Clamp to observed extremes so P0/P100 are exact.
      const double edge = BucketUpperEdge(b);
      if (edge < summary_.min()) return summary_.min();
      if (edge > summary_.max()) return summary_.max();
      return edge;
    }
  }
  return summary_.max();
}

double Histogram::MassBetween(double lo, double hi) const {
  const std::uint64_t total = summary_.count();
  if (total == 0 || hi <= lo) return 0.0;
  std::uint64_t in_range = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    // Count a bucket by the overlap fraction of its span with [lo, hi).
    const double b_lo = BucketLowerEdge(b);
    const double b_hi = BucketUpperEdge(b);
    const double overlap =
        std::max(0.0, std::min(hi, b_hi) - std::max(lo, b_lo));
    const double span = b_hi - b_lo;
    if (span <= 0.0) {
      if (b_lo >= lo && b_lo < hi) in_range += buckets_[b];
    } else {
      in_range += static_cast<std::uint64_t>(
          std::llround(static_cast<double>(buckets_[b]) * overlap / span));
    }
  }
  return static_cast<double>(in_range) / static_cast<double>(total);
}

}  // namespace limoncello
