#include "stats/time_series.h"

#include "util/check.h"

namespace limoncello {

// limolint:cold-path — trace buffers grow by design; fleet runs disable
// trace recording (Daemon::set_trace_recording) and standalone daemons
// record at daemon cadence, so the hot loop never lands here.
void TimeSeries::Add(SimTimeNs time_ns, double value) {
  if (!points_.empty()) {
    LIMONCELLO_CHECK_GE(time_ns, points_.back().time_ns);
  }
  points_.push_back({time_ns, value});
}

Summary TimeSeries::Summarize() const {
  Summary s;
  for (const Point& p : points_) s.Add(p.value);
  return s;
}

double TimeSeries::FractionAbove(double threshold) const {
  if (points_.empty()) return 0.0;
  std::size_t above = 0;
  for (const Point& p : points_) {
    if (p.value > threshold) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(points_.size());
}

TimeSeries TimeSeries::Resample(SimTimeNs window_ns) const {
  LIMONCELLO_CHECK_GT(window_ns, 0);
  TimeSeries out;
  if (points_.empty()) return out;
  SimTimeNs window_start = points_.front().time_ns;
  double sum = 0.0;
  std::size_t n = 0;
  for (const Point& p : points_) {
    while (p.time_ns >= window_start + window_ns) {
      if (n > 0) {
        out.Add(window_start, sum / static_cast<double>(n));
        sum = 0.0;
        n = 0;
      }
      window_start += window_ns;
    }
    sum += p.value;
    ++n;
  }
  if (n > 0) out.Add(window_start, sum / static_cast<double>(n));
  return out;
}

}  // namespace limoncello
