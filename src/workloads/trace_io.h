// Binary access-trace recording and replay.
//
// Lets users capture a generator's access stream once and replay it
// deterministically (for cross-machine reproducibility, or to feed the
// simulator with traces collected elsewhere). The format is a small
// fixed header plus fixed-width little-endian records; versioned so
// readers can reject incompatible files.
#ifndef LIMONCELLO_WORKLOADS_TRACE_IO_H_
#define LIMONCELLO_WORKLOADS_TRACE_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/access.h"

namespace limoncello {

inline constexpr std::uint32_t kTraceMagic = 0x4c4d4354;  // "TCML"
inline constexpr std::uint32_t kTraceVersion = 1;

// Serializes MemRefs to a buffer/file.
class TraceWriter {
 public:
  TraceWriter();

  void Append(const MemRef& ref);
  std::size_t size() const { return count_; }

  // The complete serialized trace (header + records).
  const std::string& buffer() const { return buffer_; }

  // Writes the buffer to a file. False on I/O error.
  bool WriteFile(const std::string& path) const;

  // Records everything `generator` produces (up to max_records).
  void RecordAll(AccessGenerator* generator, std::size_t max_records);

 private:
  std::string buffer_;
  std::size_t count_ = 0;
};

// Parses a serialized trace. Rejects wrong magic/version or truncated
// records.
class TraceReader {
 public:
  // False on malformed input; error() explains.
  bool Parse(const std::string& data);
  bool ReadFile(const std::string& path);

  const std::vector<MemRef>& refs() const { return refs_; }
  const std::string& error() const { return error_; }

 private:
  std::vector<MemRef> refs_;
  std::string error_;
};

// AccessGenerator replaying a parsed trace (optionally looped).
class TraceReplayGenerator : public AccessGenerator {
 public:
  explicit TraceReplayGenerator(std::vector<MemRef> refs,
                                bool loop = false);

  bool Next(MemRef* out) override;

 private:
  std::vector<MemRef> refs_;
  std::size_t cursor_ = 0;
  bool loop_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_WORKLOADS_TRACE_IO_H_
