// Synthetic memory-access trace generators.
//
// These model the access-pattern archetypes the paper's function-level
// profiling distinguishes: long sequential streams (data-center tax:
// memcpy, compression, hashing over blocks), short scattered streams,
// strided walks, and cache-unfriendly random/pointer-chasing access (the
// functions that *improve* when hardware prefetchers are disabled).
#ifndef LIMONCELLO_WORKLOADS_GENERATORS_H_
#define LIMONCELLO_WORKLOADS_GENERATORS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/rng.h"
#include "util/units.h"
#include "workloads/access.h"

namespace limoncello {

// Endless sequence of sequential streams: each burst picks a fresh base in
// the working set and walks `stream_bytes` forward line by line. With
// store_fraction > 0 a matching destination stream is interleaved
// (memcpy-shaped: load src line, store dst line).
class SequentialStreamGenerator : public AccessGenerator {
 public:
  struct Options {
    std::uint64_t working_set_bytes = 64 * kMiB;
    // Stream length is lognormal with this mean (bytes); clamped to
    // [min_stream_bytes, working_set/2].
    double mean_stream_bytes = 8 * 1024;
    double stream_sigma = 0.8;
    std::uint64_t min_stream_bytes = 128;
    double store_fraction = 0.0;  // 1.0 => every load paired with a store
    double gap_instructions_mean = 4.0;
    FunctionId function = kInvalidFunctionId;
  };

  SequentialStreamGenerator(const Options& options, Rng rng);
  bool Next(MemRef* out) override;

 private:
  void StartNewStream();

  Options options_;
  Rng rng_;
  Addr src_cursor_ = 0;
  Addr dst_cursor_ = 0;
  std::uint64_t remaining_lines_ = 0;
  bool emit_store_next_ = false;
};

// Fixed-stride walk (in lines) over a working set; detectable by the
// IP-stride engine but not by adjacent-line prefetching when stride > 1.
class StridedGenerator : public AccessGenerator {
 public:
  struct Options {
    std::uint64_t working_set_bytes = 64 * kMiB;
    int stride_lines = 4;
    double gap_instructions_mean = 6.0;
    FunctionId function = kInvalidFunctionId;
  };

  StridedGenerator(const Options& options, Rng rng);
  bool Next(MemRef* out) override;

 private:
  Options options_;
  Rng rng_;
  Addr cursor_ = 0;
};

// Uniform random lines over a working set — the prefetch-hostile pattern.
// Hardware prefetchers achieve near-zero accuracy here; their speculative
// traffic is pure bandwidth waste and cache pollution.
class RandomAccessGenerator : public AccessGenerator {
 public:
  struct Options {
    std::uint64_t working_set_bytes = 256 * kMiB;
    double store_fraction = 0.1;
    double gap_instructions_mean = 12.0;
    FunctionId function = kInvalidFunctionId;
  };

  RandomAccessGenerator(const Options& options, Rng rng);
  bool Next(MemRef* out) override;

 private:
  Options options_;
  Rng rng_;
};

// Finite memcpy trace: loads walk [src, src+bytes), stores walk
// [dst, dst+bytes), interleaved line by line. Optionally emits software
// prefetches `distance_bytes` ahead of the load cursor in chunks of
// `degree_bytes` (Soft Limoncello's insertion shape, paper Fig. 13).
class MemcpyTraceGenerator : public AccessGenerator {
 public:
  struct Options {
    Addr src = 0;
    Addr dst = 0;
    std::uint64_t bytes = 0;
    FunctionId function = kInvalidFunctionId;
    // Software prefetch configuration; distance 0 disables SW prefetch.
    std::uint32_t sw_prefetch_distance_bytes = 0;
    std::uint32_t sw_prefetch_degree_bytes = 0;
    std::uint64_t sw_prefetch_min_size_bytes = 0;
    // Also prefetch the destination stream (prefetch-for-write ahead of
    // the store cursor); memcpy knows both addresses (paper §4.3).
    bool sw_prefetch_dst = false;
  };

  explicit MemcpyTraceGenerator(const Options& options);
  bool Next(MemRef* out) override;

 private:
  Options options_;
  std::uint64_t line_index_ = 0;
  std::uint64_t total_lines_ = 0;
  Addr next_prefetch_addr_ = 0;
  Addr next_dst_prefetch_addr_ = 0;
  int phase_ = 0;  // 0 = maybe-prefetch, 1 = load, 2 = store
  bool sw_prefetch_active_ = false;
};

// Weighted round-robin over child generators in bursts, modelling a server
// that interleaves many functions. Weights are relative burst frequencies.
class MixGenerator : public AccessGenerator {
 public:
  struct Element {
    std::unique_ptr<AccessGenerator> generator;
    double weight = 1.0;
    // Accesses emitted per burst before re-drawing.
    std::uint32_t burst_length = 64;
  };

  MixGenerator(std::vector<Element> elements, Rng rng);
  bool Next(MemRef* out) override;

 private:
  void PickElement();

  std::vector<Element> elements_;
  double total_weight_ = 0.0;
  Rng rng_;
  std::size_t current_ = 0;
  std::uint32_t remaining_in_burst_ = 0;
};

// Samples memcpy call sizes with the fleet's shape (paper Fig. 14): a
// lognormal body of small copies plus a Pareto tail of large ones.
class MemcpySizeDistribution {
 public:
  struct Options {
    double body_log_mean = 3.8;   // exp(3.8) ~ 45 bytes median body
    double body_log_sigma = 1.4;
    double tail_probability = 0.04;
    double tail_scale_bytes = 4096;
    double tail_alpha = 0.9;
    std::uint64_t max_bytes = 64 * kMiB;
  };

  MemcpySizeDistribution() : options_() {}
  explicit MemcpySizeDistribution(const Options& options)
      : options_(options) {}

  std::uint64_t Sample(Rng& rng) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_WORKLOADS_GENERATORS_H_
