#include "workloads/trace_io.h"

#include <cstring>
#include <fstream>

#include "util/check.h"

namespace limoncello {

namespace {

// Record layout: addr(8) size(4) op(1) function(2) gap(2) = 17 bytes.
constexpr std::size_t kRecordBytes = 17;
constexpr std::size_t kHeaderBytes = 16;  // magic, version, count, pad

void PutU32(std::string* out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    (*out)[at + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint32_t GetU32(const std::string& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(in[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t GetU64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(in[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace

TraceWriter::TraceWriter() {
  buffer_.assign(kHeaderBytes, '\0');
  PutU32(&buffer_, 0, kTraceMagic);
  PutU32(&buffer_, 4, kTraceVersion);
  PutU32(&buffer_, 8, 0);  // count, patched in Append
}

void TraceWriter::Append(const MemRef& ref) {
  char record[kRecordBytes];
  for (int i = 0; i < 8; ++i) {
    record[i] = static_cast<char>((ref.addr >> (8 * i)) & 0xff);
  }
  for (int i = 0; i < 4; ++i) {
    record[8 + i] = static_cast<char>((ref.size >> (8 * i)) & 0xff);
  }
  record[12] = static_cast<char>(ref.op);
  record[13] = static_cast<char>(ref.function & 0xff);
  record[14] = static_cast<char>((ref.function >> 8) & 0xff);
  record[15] = static_cast<char>(ref.gap_instructions & 0xff);
  record[16] = static_cast<char>((ref.gap_instructions >> 8) & 0xff);
  buffer_.append(record, kRecordBytes);
  ++count_;
  PutU32(&buffer_, 8, static_cast<std::uint32_t>(count_));
}

bool TraceWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return false;
  out.write(buffer_.data(),
            static_cast<std::streamsize>(buffer_.size()));
  return out.good();
}

void TraceWriter::RecordAll(AccessGenerator* generator,
                            std::size_t max_records) {
  LIMONCELLO_CHECK(generator != nullptr);
  MemRef ref;
  for (std::size_t i = 0; i < max_records && generator->Next(&ref); ++i) {
    Append(ref);
  }
}

bool TraceReader::Parse(const std::string& data) {
  refs_.clear();
  error_.clear();
  if (data.size() < kHeaderBytes) {
    error_ = "truncated header";
    return false;
  }
  if (GetU32(data, 0) != kTraceMagic) {
    error_ = "bad magic";
    return false;
  }
  if (GetU32(data, 4) != kTraceVersion) {
    error_ = "unsupported version";
    return false;
  }
  const std::uint32_t count = GetU32(data, 8);
  const std::size_t expected =
      kHeaderBytes + static_cast<std::size_t>(count) * kRecordBytes;
  if (data.size() != expected) {
    error_ = "record count does not match file size";
    return false;
  }
  refs_.reserve(count);
  for (std::uint32_t r = 0; r < count; ++r) {
    const std::size_t at = kHeaderBytes + r * kRecordBytes;
    MemRef ref;
    ref.addr = GetU64(data, at);
    ref.size = GetU32(data, at + 8);
    const auto op = static_cast<std::uint8_t>(data[at + 12]);
    if (op > static_cast<std::uint8_t>(MemOp::kSoftwarePrefetch)) {
      error_ = "invalid op";
      refs_.clear();
      return false;
    }
    ref.op = static_cast<MemOp>(op);
    ref.function = static_cast<FunctionId>(
        static_cast<std::uint8_t>(data[at + 13]) |
        (static_cast<std::uint16_t>(
             static_cast<std::uint8_t>(data[at + 14]))
         << 8));
    ref.gap_instructions = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(data[at + 15]) |
        (static_cast<std::uint16_t>(
             static_cast<std::uint8_t>(data[at + 16]))
         << 8));
    refs_.push_back(ref);
  }
  return true;
}

bool TraceReader::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    error_ = "cannot open file";
    return false;
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return Parse(data);
}

TraceReplayGenerator::TraceReplayGenerator(std::vector<MemRef> refs,
                                           bool loop)
    : refs_(std::move(refs)), loop_(loop) {}

bool TraceReplayGenerator::Next(MemRef* out) {
  if (cursor_ >= refs_.size()) {
    if (!loop_ || refs_.empty()) return false;
    cursor_ = 0;
  }
  *out = refs_[cursor_++];
  return true;
}

}  // namespace limoncello
