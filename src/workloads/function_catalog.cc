#include "workloads/function_catalog.h"

#include "util/check.h"

namespace limoncello {

const char* FunctionCategoryName(FunctionCategory category) {
  switch (category) {
    case FunctionCategory::kCompression:
      return "compression";
    case FunctionCategory::kDataTransmission:
      return "data_transmission";
    case FunctionCategory::kHashing:
      return "hashing";
    case FunctionCategory::kDataMovement:
      return "data_movement";
    case FunctionCategory::kNonTax:
      return "non_dc_tax";
  }
  return "unknown";
}

bool IsTaxCategory(FunctionCategory category) {
  return category != FunctionCategory::kNonTax;
}

// limolint:cold-path — setup-time registration; catalogs are frozen
// before any tick runs.
FunctionId FunctionCatalog::Add(FunctionSpec spec) {
  LIMONCELLO_CHECK_LT(specs_.size(), kInvalidFunctionId);
  specs_.push_back(std::move(spec));
  return static_cast<FunctionId>(specs_.size() - 1);
}

const FunctionSpec& FunctionCatalog::spec(FunctionId id) const {
  LIMONCELLO_CHECK_LT(id, specs_.size());
  return specs_[id];
}

std::vector<FunctionId> FunctionCatalog::InCategory(
    FunctionCategory category) const {
  std::vector<FunctionId> ids;
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].category == category) {
      ids.push_back(static_cast<FunctionId>(i));
    }
  }
  return ids;
}

std::unique_ptr<AccessGenerator> FunctionCatalog::MakeGenerator(
    FunctionId id, Rng rng) const {
  const FunctionSpec& s = spec(id);
  switch (s.pattern) {
    case AccessPattern::kSequentialStream: {
      SequentialStreamGenerator::Options o;
      o.working_set_bytes = s.working_set_bytes;
      o.mean_stream_bytes = s.mean_stream_bytes;
      o.stream_sigma = s.stream_sigma;
      o.store_fraction = s.store_fraction;
      o.gap_instructions_mean = s.gap_instructions_mean;
      o.function = id;
      return std::make_unique<SequentialStreamGenerator>(o, rng);
    }
    case AccessPattern::kStrided: {
      StridedGenerator::Options o;
      o.working_set_bytes = s.working_set_bytes;
      o.stride_lines = s.stride_lines;
      o.gap_instructions_mean = s.gap_instructions_mean;
      o.function = id;
      return std::make_unique<StridedGenerator>(o, rng);
    }
    case AccessPattern::kRandom: {
      RandomAccessGenerator::Options o;
      o.working_set_bytes = s.working_set_bytes;
      o.store_fraction = s.store_fraction;
      o.gap_instructions_mean = s.gap_instructions_mean;
      o.function = id;
      return std::make_unique<RandomAccessGenerator>(o, rng);
    }
  }
  LIMONCELLO_CHECK(false);
  return nullptr;
}

std::unique_ptr<AccessGenerator> FunctionCatalog::MakeFleetMix(Rng rng) const {
  LIMONCELLO_CHECK(!specs_.empty());
  std::vector<MixGenerator::Element> elements;
  elements.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    MixGenerator::Element e;
    e.generator =
        MakeGenerator(static_cast<FunctionId>(i), rng.Fork(0x1000 + i));
    e.weight = specs_[i].fleet_cycle_weight;
    e.burst_length = 96;
    elements.push_back(std::move(e));
  }
  return std::make_unique<MixGenerator>(std::move(elements),
                                        rng.Fork(0xfeed));
}

FunctionCatalog FunctionCatalog::FleetDefault() {
  FunctionCatalog catalog;
  auto add = [&](const char* name, FunctionCategory cat, AccessPattern pat,
                 double stream_bytes, double store_frac, int stride,
                 std::uint64_t ws, double gap, double weight) {
    FunctionSpec s;
    s.name = name;
    s.category = cat;
    s.pattern = pat;
    s.mean_stream_bytes = stream_bytes;
    s.store_fraction = store_frac;
    s.stride_lines = stride;
    s.working_set_bytes = ws;
    s.gap_instructions_mean = gap;
    s.fleet_cycle_weight = weight;
    catalog.Add(std::move(s));
  };

  using FC = FunctionCategory;
  using AP = AccessPattern;

  // --- Data-center tax: long-ish sequential streams, memory-latency bound
  // (low compute gap), highly prefetch-friendly. Weights loosely follow the
  // paper's observation that tax ops are 30-40 % of fleet cycles.
  // Data movement.
  add("memcpy", FC::kDataMovement, AP::kSequentialStream, 12 * 1024, 1.0, 1,
      96 * kMiB, 2.0, 7.0);
  add("memmove", FC::kDataMovement, AP::kSequentialStream, 6 * 1024, 1.0, 1,
      64 * kMiB, 2.0, 2.5);
  add("memset", FC::kDataMovement, AP::kSequentialStream, 8 * 1024, 1.0, 1,
      64 * kMiB, 1.5, 2.0);
  // Compression (block codecs stream through input and output buffers).
  add("snappy_compress", FC::kCompression, AP::kSequentialStream, 16 * 1024,
      0.5, 1, 64 * kMiB, 3.0, 4.0);
  add("snappy_uncompress", FC::kCompression, AP::kSequentialStream, 24 * 1024,
      0.7, 1, 64 * kMiB, 2.5, 4.0);
  add("zlib_inflate", FC::kCompression, AP::kSequentialStream, 10 * 1024, 0.5,
      1, 48 * kMiB, 4.0, 2.0);
  // Dictionary codec (shared-dictionary LZ window; the match finder still
  // streams the input, the dictionary mostly stays resident).
  add("dict_compress", FC::kCompression, AP::kSequentialStream, 12 * 1024,
      0.4, 1, 48 * kMiB, 3.5, 1.5);
  add("dict_uncompress", FC::kCompression, AP::kSequentialStream, 18 * 1024,
      0.7, 1, 48 * kMiB, 3.0, 1.5);
  // Hashing (block-sequenced data processing).
  add("crc32c", FC::kHashing, AP::kSequentialStream, 8 * 1024, 0.0, 1,
      64 * kMiB, 2.0, 2.5);
  add("fingerprint2011", FC::kHashing, AP::kSequentialStream, 4 * 1024, 0.0,
      1, 48 * kMiB, 3.0, 2.0);
  // Data transmission (RPC serialize/deserialize: predictable copies).
  add("proto_serialize", FC::kDataTransmission, AP::kSequentialStream,
      3 * 1024, 0.8, 1, 48 * kMiB, 5.0, 4.5);
  add("proto_parse", FC::kDataTransmission, AP::kSequentialStream, 3 * 1024,
      0.4, 1, 48 * kMiB, 5.0, 4.5);
  // Varint stream codec (scalar-field packing; short dense streams).
  add("varint_encode", FC::kDataTransmission, AP::kSequentialStream,
      2 * 1024, 0.6, 1, 32 * kMiB, 4.0, 1.5);
  add("varint_decode", FC::kDataTransmission, AP::kSequentialStream,
      2 * 1024, 0.3, 1, 32 * kMiB, 4.0, 1.5);
  // hashjoin_build / hashjoin_probe are deliberately NOT catalog entries:
  // probing is random-access, so it gains (not regresses) when the
  // hardware prefetchers go off — it would break the tax-category
  // ablation invariants the fleet model asserts. The native tuner covers
  // it directly.

  // --- Non-tax: scattered access over large working sets; hardware
  // prefetchers guess poorly here and mostly add pollution + traffic.
  add("btree_lookup", FC::kNonTax, AP::kRandom, 0, 0.05, 1, 512 * kMiB, 10.0,
      12.0);
  add("hashtable_probe", FC::kNonTax, AP::kRandom, 0, 0.15, 1, 384 * kMiB,
      8.0, 10.0);
  add("tcmalloc_alloc", FC::kNonTax, AP::kRandom, 0, 0.5, 1, 128 * kMiB, 9.0,
      7.0);
  add("graph_walk", FC::kNonTax, AP::kRandom, 0, 0.02, 1, 768 * kMiB, 6.0,
      9.0);
  add("columnar_scan", FC::kNonTax, AP::kStrided, 0, 0.0, 7, 256 * kMiB, 5.0,
      6.0);
  add("leaf_compute", FC::kNonTax, AP::kRandom, 0, 0.1, 1, 8 * kMiB, 30.0,
      11.0);

  return catalog;
}

}  // namespace limoncello
