#include "workloads/generators.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace limoncello {

namespace {

// Draws a compute-gap instruction count around the configured mean.
std::uint16_t DrawGap(Rng& rng, double mean) {
  const double g = rng.NextExponential(std::max(0.5, mean));
  return static_cast<std::uint16_t>(std::clamp(g, 1.0, 255.0));
}

}  // namespace

// ---------------------------------------------------------------------------
// SequentialStreamGenerator

SequentialStreamGenerator::SequentialStreamGenerator(const Options& options,
                                                     Rng rng)
    : options_(options), rng_(rng) {
  LIMONCELLO_CHECK_GE(options_.working_set_bytes, 4 * kCacheLineBytes);
  LIMONCELLO_CHECK_GE(options_.store_fraction, 0.0);
  LIMONCELLO_CHECK_LE(options_.store_fraction, 1.0);
  StartNewStream();
}

void SequentialStreamGenerator::StartNewStream() {
  const double mu = std::log(options_.mean_stream_bytes) -
                    0.5 * options_.stream_sigma * options_.stream_sigma;
  double bytes = rng_.NextLognormal(mu, options_.stream_sigma);
  bytes = std::clamp(bytes, static_cast<double>(options_.min_stream_bytes),
                     static_cast<double>(options_.working_set_bytes / 2));
  remaining_lines_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(bytes) / kCacheLineBytes);
  const std::uint64_t ws_lines = options_.working_set_bytes / kCacheLineBytes;
  src_cursor_ = rng_.NextBounded(ws_lines) * kCacheLineBytes;
  dst_cursor_ = rng_.NextBounded(ws_lines) * kCacheLineBytes +
                options_.working_set_bytes;  // disjoint region
  emit_store_next_ = false;
}

bool SequentialStreamGenerator::Next(MemRef* out) {
  if (emit_store_next_) {
    emit_store_next_ = false;
    out->addr = dst_cursor_;
    out->size = kCacheLineBytes;
    out->op = MemOp::kStore;
    out->function = options_.function;
    out->gap_instructions = 1;
    dst_cursor_ += kCacheLineBytes;
    return true;
  }
  if (remaining_lines_ == 0) StartNewStream();
  out->addr = src_cursor_;
  out->size = kCacheLineBytes;
  out->op = MemOp::kLoad;
  out->function = options_.function;
  out->gap_instructions = DrawGap(rng_, options_.gap_instructions_mean);
  src_cursor_ += kCacheLineBytes;
  --remaining_lines_;
  if (options_.store_fraction > 0.0 &&
      rng_.NextBernoulli(options_.store_fraction)) {
    emit_store_next_ = true;
  }
  return true;
}

// ---------------------------------------------------------------------------
// StridedGenerator

StridedGenerator::StridedGenerator(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  LIMONCELLO_CHECK_GT(options_.stride_lines, 0);
  LIMONCELLO_CHECK_GE(options_.working_set_bytes,
                      static_cast<std::uint64_t>(options_.stride_lines) *
                          kCacheLineBytes * 4);
  cursor_ = rng_.NextBounded(options_.working_set_bytes / kCacheLineBytes) *
            kCacheLineBytes;
}

bool StridedGenerator::Next(MemRef* out) {
  out->addr = cursor_;
  out->size = kCacheLineBytes;
  out->op = MemOp::kLoad;
  out->function = options_.function;
  out->gap_instructions = DrawGap(rng_, options_.gap_instructions_mean);
  cursor_ += static_cast<Addr>(options_.stride_lines) * kCacheLineBytes;
  if (cursor_ >= options_.working_set_bytes) {
    cursor_ %= kCacheLineBytes * static_cast<Addr>(options_.stride_lines);
    cursor_ += kCacheLineBytes;  // rotate start to touch other lines
    cursor_ %= options_.working_set_bytes;
  }
  return true;
}

// ---------------------------------------------------------------------------
// RandomAccessGenerator

RandomAccessGenerator::RandomAccessGenerator(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  LIMONCELLO_CHECK_GE(options_.working_set_bytes, 4 * kCacheLineBytes);
}

bool RandomAccessGenerator::Next(MemRef* out) {
  const std::uint64_t ws_lines = options_.working_set_bytes / kCacheLineBytes;
  out->addr = rng_.NextBounded(ws_lines) * kCacheLineBytes;
  out->size = kCacheLineBytes;
  out->op = rng_.NextBernoulli(options_.store_fraction) ? MemOp::kStore
                                                        : MemOp::kLoad;
  out->function = options_.function;
  out->gap_instructions = DrawGap(rng_, options_.gap_instructions_mean);
  return true;
}

// ---------------------------------------------------------------------------
// MemcpyTraceGenerator

MemcpyTraceGenerator::MemcpyTraceGenerator(const Options& options)
    : options_(options) {
  total_lines_ = (options_.bytes + kCacheLineBytes - 1) / kCacheLineBytes;
  sw_prefetch_active_ = options_.sw_prefetch_distance_bytes > 0 &&
                        options_.sw_prefetch_degree_bytes > 0 &&
                        options_.bytes >= options_.sw_prefetch_min_size_bytes;
  next_prefetch_addr_ = LineBase(options_.src);
  next_dst_prefetch_addr_ = LineBase(options_.dst);
  phase_ = 0;
}

bool MemcpyTraceGenerator::Next(MemRef* out) {
  if (line_index_ >= total_lines_) return false;
  const Addr src_line = LineBase(options_.src) + line_index_ * kCacheLineBytes;
  const Addr dst_line = LineBase(options_.dst) + line_index_ * kCacheLineBytes;
  const Addr src_end = LineBase(options_.src) + total_lines_ * kCacheLineBytes;

  if (phase_ == 0) {
    phase_ = 1;
    if (sw_prefetch_active_) {
      // Keep the prefetch cursor `distance` ahead of the load cursor; each
      // emitted prefetch covers `degree` bytes rounded to one line here —
      // multi-line degrees emit on consecutive calls until caught up.
      const Addr target = src_line + options_.sw_prefetch_distance_bytes +
                          options_.sw_prefetch_degree_bytes;
      if (next_prefetch_addr_ < std::min(target, src_end)) {
        out->addr = next_prefetch_addr_;
        out->size = kCacheLineBytes;
        out->op = MemOp::kSoftwarePrefetch;
        out->function = options_.function;
        out->gap_instructions = 1;
        next_prefetch_addr_ += kCacheLineBytes;
        phase_ = 0;  // keep issuing prefetches until the window is full
        return true;
      }
      if (options_.sw_prefetch_dst) {
        const Addr dst_end =
            LineBase(options_.dst) + total_lines_ * kCacheLineBytes;
        const Addr dst_target = dst_line +
                                options_.sw_prefetch_distance_bytes +
                                options_.sw_prefetch_degree_bytes;
        if (next_dst_prefetch_addr_ < std::min(dst_target, dst_end)) {
          out->addr = next_dst_prefetch_addr_;
          out->size = kCacheLineBytes;
          out->op = MemOp::kSoftwarePrefetch;
          out->function = options_.function;
          out->gap_instructions = 1;
          next_dst_prefetch_addr_ += kCacheLineBytes;
          phase_ = 0;
          return true;
        }
      }
    }
  }
  if (phase_ == 1) {
    phase_ = 2;
    out->addr = src_line;
    out->size = kCacheLineBytes;
    out->op = MemOp::kLoad;
    out->function = options_.function;
    out->gap_instructions = 2;
    return true;
  }
  // phase_ == 2: store, then advance to the next line.
  phase_ = 0;
  out->addr = dst_line;
  out->size = kCacheLineBytes;
  out->op = MemOp::kStore;
  out->function = options_.function;
  out->gap_instructions = 2;
  ++line_index_;
  return true;
}

// ---------------------------------------------------------------------------
// MixGenerator

MixGenerator::MixGenerator(std::vector<Element> elements, Rng rng)
    : elements_(std::move(elements)), rng_(rng) {
  LIMONCELLO_CHECK(!elements_.empty());
  for (const Element& e : elements_) {
    LIMONCELLO_CHECK(e.generator != nullptr);
    LIMONCELLO_CHECK_GT(e.weight, 0.0);
    LIMONCELLO_CHECK_GT(e.burst_length, 0u);
    total_weight_ += e.weight;
  }
  PickElement();
}

void MixGenerator::PickElement() {
  double r = rng_.NextDouble() * total_weight_;
  current_ = elements_.size() - 1;
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    r -= elements_[i].weight;
    if (r <= 0.0) {
      current_ = i;
      break;
    }
  }
  remaining_in_burst_ = elements_[current_].burst_length;
}

bool MixGenerator::Next(MemRef* out) {
  for (std::size_t attempts = 0; attempts <= elements_.size(); ++attempts) {
    if (remaining_in_burst_ == 0) PickElement();
    if (elements_[current_].generator->Next(out)) {
      --remaining_in_burst_;
      return true;
    }
    // Child exhausted (finite trace): drop it from rotation.
    total_weight_ -= elements_[current_].weight;
    elements_.erase(elements_.begin() +
                    static_cast<std::ptrdiff_t>(current_));
    if (elements_.empty()) return false;
    remaining_in_burst_ = 0;
  }
  return false;
}

// ---------------------------------------------------------------------------
// MemcpySizeDistribution

std::uint64_t MemcpySizeDistribution::Sample(Rng& rng) const {
  double bytes;
  if (rng.NextBernoulli(options_.tail_probability)) {
    bytes = rng.NextPareto(options_.tail_scale_bytes, options_.tail_alpha);
  } else {
    bytes = rng.NextLognormal(options_.body_log_mean, options_.body_log_sigma);
  }
  bytes = std::clamp(bytes, 1.0, static_cast<double>(options_.max_bytes));
  return static_cast<std::uint64_t>(bytes);
}

}  // namespace limoncello
