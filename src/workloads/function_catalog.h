// Catalog of hot fleet functions and their access-pattern archetypes.
//
// Paper §4.1 identifies four data-center-tax categories (compression, data
// transmission, hashing, data movement) as prefetch-friendly, and finds
// that many non-tax functions *improve* when hardware prefetchers are
// disabled. The catalog encodes each hot function's access-pattern
// parameters; prefetch friendliness is an emergent property of the pattern
// (long sequential streams benefit from prefetching, scattered/random
// access suffers from the pollution and bandwidth waste).
#ifndef LIMONCELLO_WORKLOADS_FUNCTION_CATALOG_H_
#define LIMONCELLO_WORKLOADS_FUNCTION_CATALOG_H_

#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"
#include "workloads/access.h"
#include "workloads/generators.h"

namespace limoncello {

enum class FunctionCategory {
  kCompression,
  kDataTransmission,
  kHashing,
  kDataMovement,
  kNonTax,
};

const char* FunctionCategoryName(FunctionCategory category);
bool IsTaxCategory(FunctionCategory category);

enum class AccessPattern {
  kSequentialStream,  // long forward streams
  kStrided,           // fixed non-unit stride
  kRandom,            // uniform random over a working set
};

struct FunctionSpec {
  std::string name;
  FunctionCategory category = FunctionCategory::kNonTax;
  AccessPattern pattern = AccessPattern::kSequentialStream;

  // Pattern parameters (interpretation depends on `pattern`).
  double mean_stream_bytes = 8 * 1024;
  double stream_sigma = 0.8;
  double store_fraction = 0.0;
  int stride_lines = 1;
  std::uint64_t working_set_bytes = 64 * kMiB;
  double gap_instructions_mean = 4.0;

  // Fraction of fleet cycles attributed to this function (relative weight).
  double fleet_cycle_weight = 1.0;
};

class FunctionCatalog {
 public:
  // The default hot-function population used throughout the evaluation:
  // ten data-center-tax functions spanning the four categories plus six
  // non-tax functions with prefetch-hostile patterns.
  static FunctionCatalog FleetDefault();

  FunctionId Add(FunctionSpec spec);

  const FunctionSpec& spec(FunctionId id) const;
  std::size_t size() const { return specs_.size(); }

  // All function ids in a category.
  std::vector<FunctionId> InCategory(FunctionCategory category) const;

  // Builds the trace generator realizing a function's pattern.
  std::unique_ptr<AccessGenerator> MakeGenerator(FunctionId id,
                                                 Rng rng) const;

  // Builds a weighted mix over every catalog function (weights =
  // fleet_cycle_weight), modelling a machine running hundreds of services.
  std::unique_ptr<AccessGenerator> MakeFleetMix(Rng rng) const;

 private:
  std::vector<FunctionSpec> specs_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_WORKLOADS_FUNCTION_CATALOG_H_
