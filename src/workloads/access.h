// Memory-access records: the interface between workload generators and the
// machine simulator.
#ifndef LIMONCELLO_WORKLOADS_ACCESS_H_
#define LIMONCELLO_WORKLOADS_ACCESS_H_

#include <cstdint>

#include "util/units.h"

namespace limoncello {

enum class MemOp : std::uint8_t {
  kLoad,
  kStore,
  // An explicit software-prefetch instruction (PREFETCHT0-like): brings the
  // line toward the core but never blocks it.
  kSoftwarePrefetch,
};

// Identifies the function a memory access is attributed to; indexes the
// FunctionCatalog. Profilers aggregate cycles/misses by FunctionId.
using FunctionId = std::uint16_t;
inline constexpr FunctionId kInvalidFunctionId = 0xffff;

struct MemRef {
  Addr addr = 0;                // byte address
  std::uint32_t size = kCacheLineBytes;  // bytes touched (may span lines)
  MemOp op = MemOp::kLoad;
  FunctionId function = kInvalidFunctionId;
  // Instructions retired between the previous access and this one
  // (compute gap); drives the non-memory CPI component.
  std::uint16_t gap_instructions = 1;
};

// Pull-based access stream. Generators are deterministic given their seed.
class AccessGenerator {
 public:
  virtual ~AccessGenerator() = default;

  // Produces the next access. Returns false when the stream is exhausted
  // (finite traces); infinite generators always return true.
  virtual bool Next(MemRef* out) = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_WORKLOADS_ACCESS_H_
