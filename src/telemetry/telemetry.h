// Socket-level telemetry: the 1 Hz bandwidth signal Hard Limoncello
// consumes (paper §3, "Telemetry").
//
// In production this is `perf` reading uncore counters; here it is a PMU
// snapshot/delta over the simulated socket's counters. The controller only
// depends on the UtilizationSource interface, so tests can inject scripted
// or faulty signals.
#ifndef LIMONCELLO_TELEMETRY_TELEMETRY_H_
#define LIMONCELLO_TELEMETRY_TELEMETRY_H_

#include <optional>

#include "sim/machine/socket.h"
#include "util/units.h"

namespace limoncello {

// Produces the fraction-of-saturation memory bandwidth utilization for one
// socket, sampled once per controller tick. nullopt models telemetry
// failure (perf hiccup, counter wrap) — consumers must fail safe.
class UtilizationSource {
 public:
  virtual ~UtilizationSource() = default;
  virtual std::optional<double> SampleUtilization() = 0;
};

// Delta between two PMU snapshots over a wall-clock interval.
struct PmuDelta {
  SimTimeNs interval_ns = 0;
  std::uint64_t instructions = 0;
  std::uint64_t core_cycles = 0;
  std::uint64_t llc_demand_misses = 0;
  std::uint64_t dram_bytes = 0;
  std::uint64_t dram_demand_bytes = 0;
  std::uint64_t dram_prefetch_bytes = 0;  // hw + sw prefetch
  std::uint64_t dram_requests = 0;
  double dram_latency_ns_sum = 0.0;

  double BandwidthGBps() const {
    return interval_ns > 0 ? static_cast<double>(dram_bytes) /
                                 static_cast<double>(interval_ns)
                           : 0.0;
  }
  double AvgLatencyNs() const {
    return dram_requests
               ? dram_latency_ns_sum / static_cast<double>(dram_requests)
               : 0.0;
  }
  double Ipc() const {
    return core_cycles ? static_cast<double>(instructions) /
                             static_cast<double>(core_cycles)
                       : 0.0;
  }
  double LlcMpki() const {
    return instructions ? 1000.0 * static_cast<double>(llc_demand_misses) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
};

// Differencing sampler over a socket's cumulative PMU counters.
class PmuSampler {
 public:
  explicit PmuSampler(const Socket* socket);

  // Computes the delta since the previous Sample() (or construction).
  PmuDelta Sample();

 private:
  const Socket* socket_;
  PmuCounters last_{};
  SimTimeNs last_time_ = 0;
};

// UtilizationSource reading a simulated socket: bandwidth over the last
// sampling interval divided by the platform's saturation bandwidth.
class SocketUtilizationSource : public UtilizationSource {
 public:
  // saturation_gbps: the machine-qualification saturation threshold;
  // defaults to the socket's configured peak bandwidth.
  explicit SocketUtilizationSource(Socket* socket,
                                   double saturation_gbps = 0.0);

  std::optional<double> SampleUtilization() override;

  // Failure injection for daemon fail-safe tests.
  void set_failed(bool failed) { failed_ = failed; }

 private:
  Socket* socket_;
  double saturation_gbps_;
  PmuSampler sampler_;
  bool failed_ = false;
};

}  // namespace limoncello

#endif  // LIMONCELLO_TELEMETRY_TELEMETRY_H_
