#include "telemetry/telemetry.h"

#include "util/check.h"

namespace limoncello {

PmuSampler::PmuSampler(const Socket* socket) : socket_(socket) {
  LIMONCELLO_CHECK(socket != nullptr);
  last_ = socket->counters();
  last_time_ = socket->now();
}

PmuDelta PmuSampler::Sample() {
  const PmuCounters& now = socket_->counters();
  PmuDelta delta;
  delta.interval_ns = socket_->now() - last_time_;
  delta.instructions = now.instructions - last_.instructions;
  delta.core_cycles = now.core_cycles - last_.core_cycles;
  delta.llc_demand_misses =
      now.llc_demand_misses - last_.llc_demand_misses;
  delta.dram_bytes = now.DramTotalBytes() - last_.DramTotalBytes();
  delta.dram_demand_bytes =
      now.dram_bytes[static_cast<int>(TrafficClass::kDemand)] -
      last_.dram_bytes[static_cast<int>(TrafficClass::kDemand)];
  delta.dram_prefetch_bytes =
      (now.dram_bytes[static_cast<int>(TrafficClass::kHwPrefetch)] -
       last_.dram_bytes[static_cast<int>(TrafficClass::kHwPrefetch)]) +
      (now.dram_bytes[static_cast<int>(TrafficClass::kSwPrefetch)] -
       last_.dram_bytes[static_cast<int>(TrafficClass::kSwPrefetch)]);
  delta.dram_requests = now.dram_requests - last_.dram_requests;
  delta.dram_latency_ns_sum =
      now.dram_latency_ns_sum - last_.dram_latency_ns_sum;
  last_ = now;
  last_time_ = socket_->now();
  return delta;
}

SocketUtilizationSource::SocketUtilizationSource(Socket* socket,
                                                 double saturation_gbps)
    : socket_(socket),
      saturation_gbps_(saturation_gbps > 0.0
                           ? saturation_gbps
                           : socket->memory().config().peak_gbps),
      sampler_(socket) {
  LIMONCELLO_CHECK_GT(saturation_gbps_, 0.0);
}

std::optional<double> SocketUtilizationSource::SampleUtilization() {
  const PmuDelta delta = sampler_.Sample();
  if (failed_) return std::nullopt;
  if (delta.interval_ns <= 0) return std::nullopt;
  return delta.BandwidthGBps() / saturation_gbps_;
}

}  // namespace limoncello
