// Sampling layer modelling the fleetwide profiler (GWP-like).
//
// "The profiler samples a limited number of random machines at any given
// time and it is activated only for small time intervals ... the fleet is
// large enough such that aggregated samples can effectively capture the
// impact of code changes" (paper §4.1). We model that by (a) selecting
// each machine with a sampling probability and (b) thinning its counters
// with binomial noise, so an individual sample is noisy but the aggregate
// converges.
#ifndef LIMONCELLO_PROFILING_SAMPLING_PROFILER_H_
#define LIMONCELLO_PROFILING_SAMPLING_PROFILER_H_

#include <vector>

#include "profiling/profile.h"
#include "sim/machine/socket.h"
#include "util/rng.h"

namespace limoncello {

class SamplingProfiler {
 public:
  struct Options {
    // Probability a given machine is selected in a collection round.
    double machine_sample_probability = 0.1;
    // Fraction of events captured while profiling is active on a machine
    // (short activation window).
    double event_sample_fraction = 0.05;
  };

  SamplingProfiler(const Options& options, Rng rng);

  // Possibly samples one socket's profile into the aggregate; returns
  // true if the machine was selected this round.
  bool CollectFrom(const std::vector<FunctionProfileEntry>& socket_profile,
                   ProfileAggregate* aggregate);

  const Options& options() const { return options_; }

 private:
  // Thins a counter: binomial(count, fraction) via normal approximation
  // for large counts, exact Bernoulli summation for small ones.
  std::uint64_t Thin(std::uint64_t count);
  double ThinDouble(double value);

  Options options_;
  Rng rng_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_PROFILING_SAMPLING_PROFILER_H_
