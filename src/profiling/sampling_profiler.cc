#include "profiling/sampling_profiler.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace limoncello {

SamplingProfiler::SamplingProfiler(const Options& options, Rng rng)
    : options_(options), rng_(rng) {
  LIMONCELLO_CHECK_GT(options.machine_sample_probability, 0.0);
  LIMONCELLO_CHECK_LE(options.machine_sample_probability, 1.0);
  LIMONCELLO_CHECK_GT(options.event_sample_fraction, 0.0);
  LIMONCELLO_CHECK_LE(options.event_sample_fraction, 1.0);
}

std::uint64_t SamplingProfiler::Thin(std::uint64_t count) {
  const double p = options_.event_sample_fraction;
  if (count == 0 || p >= 1.0) return count;
  if (count < 64) {
    std::uint64_t kept = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
      if (rng_.NextBernoulli(p)) ++kept;
    }
    return kept;
  }
  const double n = static_cast<double>(count);
  const double mean = n * p;
  const double stddev = std::sqrt(n * p * (1.0 - p));
  const double sample = rng_.NextGaussian(mean, stddev);
  return static_cast<std::uint64_t>(
      std::clamp(sample, 0.0, n));
}

double SamplingProfiler::ThinDouble(double value) {
  const double p = options_.event_sample_fraction;
  if (value <= 0.0 || p >= 1.0) return std::max(0.0, value) * 1.0;
  const double mean = value * p;
  const double stddev = std::sqrt(std::max(0.0, value * p * (1.0 - p)));
  return std::clamp(rng_.NextGaussian(mean, stddev), 0.0, value);
}

bool SamplingProfiler::CollectFrom(
    const std::vector<FunctionProfileEntry>& socket_profile,
    ProfileAggregate* aggregate) {
  LIMONCELLO_CHECK(aggregate != nullptr);
  if (!rng_.NextBernoulli(options_.machine_sample_probability)) {
    return false;
  }
  std::vector<FunctionProfileEntry> thinned(socket_profile.size());
  for (std::size_t i = 0; i < socket_profile.size(); ++i) {
    thinned[i].cycles = ThinDouble(socket_profile[i].cycles);
    thinned[i].instructions = Thin(socket_profile[i].instructions);
    thinned[i].llc_misses = Thin(socket_profile[i].llc_misses);
  }
  aggregate->Accumulate(thinned);
  return true;
}

}  // namespace limoncello
