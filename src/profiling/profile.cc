#include "profiling/profile.h"

#include <algorithm>

#include "util/check.h"

namespace limoncello {

ProfileAggregate::ProfileAggregate(std::size_t num_functions)
    : entries_(num_functions) {}

void ProfileAggregate::Accumulate(
    const std::vector<FunctionProfileEntry>& socket_profile) {
  // The socket table has one overflow slot past the catalog; ignore it
  // when it is beyond our size.
  const std::size_t n = std::min(entries_.size(), socket_profile.size());
  for (std::size_t i = 0; i < n; ++i) {
    entries_[i].cycles += socket_profile[i].cycles;
    entries_[i].instructions += socket_profile[i].instructions;
    entries_[i].llc_misses += socket_profile[i].llc_misses;
  }
}

void ProfileAggregate::Merge(const ProfileAggregate& other) {
  LIMONCELLO_CHECK_EQ(entries_.size(), other.entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i].cycles += other.entries_[i].cycles;
    entries_[i].instructions += other.entries_[i].instructions;
    entries_[i].llc_misses += other.entries_[i].llc_misses;
  }
}

const FunctionProfileEntry& ProfileAggregate::entry(FunctionId id) const {
  LIMONCELLO_CHECK_LT(id, entries_.size());
  return entries_[id];
}

double ProfileAggregate::TotalCycles() const {
  double total = 0.0;
  for (const auto& e : entries_) total += e.cycles;
  return total;
}

double ProfileAggregate::CycleShare(FunctionId id) const {
  const double total = TotalCycles();
  return total > 0.0 ? entry(id).cycles / total : 0.0;
}

double ProfileAggregate::Cpi(FunctionId id) const {
  const FunctionProfileEntry& e = entry(id);
  return e.instructions ? e.cycles / static_cast<double>(e.instructions)
                        : 0.0;
}

double ProfileAggregate::Mpki(FunctionId id) const {
  const FunctionProfileEntry& e = entry(id);
  return e.instructions ? 1000.0 * static_cast<double>(e.llc_misses) /
                              static_cast<double>(e.instructions)
                        : 0.0;
}

std::vector<FunctionDelta> CompareAblation(const ProfileAggregate& control,
                                           const ProfileAggregate& experiment,
                                           const FunctionCatalog& catalog) {
  LIMONCELLO_CHECK_EQ(control.num_functions(), experiment.num_functions());
  LIMONCELLO_CHECK_LE(catalog.size(), control.num_functions());
  std::vector<FunctionDelta> deltas;
  deltas.reserve(catalog.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto id = static_cast<FunctionId>(i);
    FunctionDelta d;
    d.id = id;
    d.name = catalog.spec(id).name;
    d.category = catalog.spec(id).category;
    const double control_cpi = control.Cpi(id);
    const double experiment_cpi = experiment.Cpi(id);
    d.cycles_change_pct =
        control_cpi > 0.0
            ? 100.0 * (experiment_cpi - control_cpi) / control_cpi
            : 0.0;
    const double control_mpki = control.Mpki(id);
    const double experiment_mpki = experiment.Mpki(id);
    d.mpki_change_pct =
        control_mpki > 1e-9
            ? 100.0 * (experiment_mpki - control_mpki) / control_mpki
            : (experiment_mpki > 1e-9 ? 1000.0 : 0.0);
    d.control_cycle_share = control.CycleShare(id);
    deltas.push_back(std::move(d));
  }
  return deltas;
}

std::vector<CategoryDelta> AggregateByCategory(
    const std::vector<FunctionDelta>& deltas) {
  struct Accumulator {
    double weighted_cycles = 0.0;
    double weighted_mpki = 0.0;
    double share = 0.0;
  };
  // Indexed by the enum's underlying value.
  Accumulator accumulators[5];
  for (const FunctionDelta& d : deltas) {
    Accumulator& a = accumulators[static_cast<int>(d.category)];
    a.weighted_cycles += d.cycles_change_pct * d.control_cycle_share;
    a.weighted_mpki += d.mpki_change_pct * d.control_cycle_share;
    a.share += d.control_cycle_share;
  }
  std::vector<CategoryDelta> out;
  for (int c = 0; c < 5; ++c) {
    const Accumulator& a = accumulators[c];
    if (a.share <= 0.0) continue;
    CategoryDelta d;
    d.category = static_cast<FunctionCategory>(c);
    d.cycles_change_pct = a.weighted_cycles / a.share;
    d.mpki_change_pct = a.weighted_mpki / a.share;
    d.control_cycle_share = a.share;
    out.push_back(d);
  }
  return out;
}

std::vector<FunctionDelta> SelectPrefetchTargets(
    const std::vector<FunctionDelta>& deltas, double min_regression_pct,
    double min_cycle_share) {
  std::vector<FunctionDelta> targets;
  for (const FunctionDelta& d : deltas) {
    if (d.cycles_change_pct >= min_regression_pct &&
        d.control_cycle_share >= min_cycle_share) {
      targets.push_back(d);
    }
  }
  std::sort(targets.begin(), targets.end(),
            [](const FunctionDelta& a, const FunctionDelta& b) {
              return a.cycles_change_pct * a.control_cycle_share >
                     b.cycles_change_pct * b.control_cycle_share;
            });
  return targets;
}

}  // namespace limoncello
