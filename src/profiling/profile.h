// Fleet-wide function profiles and ablation-study comparison.
//
// The paper's methodology (§4.1): profile the experiment population
// (prefetchers disabled) and the control population (prefetchers enabled)
// simultaneously, aggregate per-function cycles and LLC misses, and diff
// the two to find functions that regress (prefetch-friendly — software
// prefetch targets) and functions that improve (prefetch-unfriendly).
#ifndef LIMONCELLO_PROFILING_PROFILE_H_
#define LIMONCELLO_PROFILING_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine/socket.h"
#include "workloads/function_catalog.h"

namespace limoncello {

// Aggregated per-function counters across many sampled machines.
class ProfileAggregate {
 public:
  explicit ProfileAggregate(std::size_t num_functions);

  // Folds one socket's attribution table into the aggregate.
  void Accumulate(const std::vector<FunctionProfileEntry>& socket_profile);
  void Merge(const ProfileAggregate& other);

  std::size_t num_functions() const { return entries_.size(); }
  const FunctionProfileEntry& entry(FunctionId id) const;

  double TotalCycles() const;
  // Fraction of all profiled cycles spent in this function.
  double CycleShare(FunctionId id) const;
  // Cycles per instruction within the function (performance proxy).
  double Cpi(FunctionId id) const;
  // LLC misses per kilo-instruction within the function.
  double Mpki(FunctionId id) const;

 private:
  std::vector<FunctionProfileEntry> entries_;
};

// Per-function ablation delta: experiment (PF off) relative to control
// (PF on). Positive cycles_change_pct = function regressed when hardware
// prefetchers were disabled = prefetch-friendly.
struct FunctionDelta {
  FunctionId id = kInvalidFunctionId;
  std::string name;
  FunctionCategory category = FunctionCategory::kNonTax;
  double cycles_change_pct = 0.0;  // ΔCPI as a percentage
  double mpki_change_pct = 0.0;    // ΔMPKI as a percentage
  double control_cycle_share = 0.0;
};

std::vector<FunctionDelta> CompareAblation(const ProfileAggregate& control,
                                           const ProfileAggregate& experiment,
                                           const FunctionCatalog& catalog);

// Category-level rollup (paper Fig. 12 / Fig. 20): cycle-share-weighted
// CPI change per category.
struct CategoryDelta {
  FunctionCategory category = FunctionCategory::kNonTax;
  double cycles_change_pct = 0.0;
  double mpki_change_pct = 0.0;
  double control_cycle_share = 0.0;
};

std::vector<CategoryDelta> AggregateByCategory(
    const std::vector<FunctionDelta>& deltas);

// Selects software-prefetch targets: functions whose CPI regressed by at
// least `min_regression_pct` and whose cycle share is at least
// `min_cycle_share` (hot enough to warrant standalone optimization, §4.1).
std::vector<FunctionDelta> SelectPrefetchTargets(
    const std::vector<FunctionDelta>& deltas, double min_regression_pct,
    double min_cycle_share);

}  // namespace limoncello

#endif  // LIMONCELLO_PROFILING_PROFILE_H_
