#include "recovery/recovery_manager.h"

#include "util/check.h"

namespace limoncello {

namespace {

StateJournal::Options JournalOptions(const RecoveryOptions& options) {
  StateJournal::Options jopts;
  jopts.path = options.state_file;
  jopts.compact_every_appends = options.compact_every_appends;
  jopts.fsync_each_append = options.fsync_each_append;
  return jopts;
}

}  // namespace

RecoveryManager::RecoveryManager(const RecoveryOptions& options,
                                 LimoncelloDaemon* daemon)
    : options_(options), daemon_(daemon), journal_(JournalOptions(options)) {
  LIMONCELLO_CHECK(daemon != nullptr);
  LIMONCELLO_CHECK_GE(options.snapshot_period_ticks, 1);
}

RecoveryResult RecoveryManager::RecoverAndReconcile() {
  RecoveryResult result;
  result.replay = StateJournal::Replay(options_.state_file);
  if (result.replay.state.has_value()) {
    result.warm = daemon_->RestoreState(*result.replay.state);
    result.rejected_state = !result.warm;
  }
  // Reconcile on cold starts too: a fresh daemon asserting its power-on
  // intent fixes hardware left disabled by a predecessor whose journal
  // was lost — exactly the silent divergence recovery exists to close.
  result.reconcile = daemon_->ReconcileHardwareState();
  last_recovery_ = result;
  return result;
}

void RecoveryManager::OnTickComplete(
    const LimoncelloDaemon::TickRecord& record) {
  const bool actuated = record.action != ControllerAction::kNone;
  const std::uint64_t period =
      static_cast<std::uint64_t>(options_.snapshot_period_ticks);
  if (!actuated && daemon_->stats().ticks % period != 0) return;
  (void)journal_.Append(daemon_->ExportState());
}

bool RecoveryManager::FlushSnapshot() {
  return journal_.WriteSnapshot(daemon_->ExportState());
}

EndpointRecoveryResult RecoverEndpointStates(const std::string& path,
                                             ControlPlane* plane) {
  LIMONCELLO_CHECK(plane != nullptr);
  EndpointRecoveryResult result;
  result.replay = EndpointStateJournal::Replay(path);
  if (!result.replay.states.empty()) {
    result.adopted = plane->RestoreEndpoints(result.replay.states);
    result.rejected =
        static_cast<int>(result.replay.states.size()) - result.adopted;
  }
  return result;
}

}  // namespace limoncello
