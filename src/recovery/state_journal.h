// Crash-safe persistence for the controller daemon's state.
//
// A StateJournal is an append-only file of CRC32-protected, versioned
// records, each one a full LimoncelloDaemon::PersistentState snapshot.
// Appends are cheap (one write(2) of a fixed-size record from a
// preallocated buffer — the steady-state path never allocates); the
// durability point is the atomic snapshot: serialize to a temp file,
// fsync, rename over the journal. rename(2) is atomic on POSIX, so a
// reader sees either the old journal or the new one, never a half-
// written file. Periodic compaction (every compact_every_appends
// appends) rewrites the journal down to its single newest record via
// the same snapshot path, bounding both file size and replay time.
//
// Replay walks the records front to back and keeps the last fully valid
// one. Anything wrong — a torn tail from a crash mid-append, a record
// whose CRC fails, a version from a different binary, a size field
// pointing past the file — is counted and the scan degrades safely:
// torn/corrupt data stops the scan (framing past it cannot be trusted),
// while a version mismatch with an intact CRC skips just that record.
// Replay never crashes on any input; the worst outcome is "no state",
// which callers treat as a cold start.
#ifndef LIMONCELLO_RECOVERY_STATE_JOURNAL_H_
#define LIMONCELLO_RECOVERY_STATE_JOURNAL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "control/control_plane.h"
#include "core/daemon.h"
#include "stats/saturating.h"
#include "util/crc32.h"

namespace limoncello {

// Outcome of replaying a journal file.
struct JournalReplay {
  // The newest record that framed, checksummed, and decoded cleanly.
  std::optional<LimoncelloDaemon::PersistentState> state;
  std::uint64_t valid_records = 0;
  std::uint64_t version_mismatches = 0;  // intact frame, foreign version
  std::uint64_t corrupt_records = 0;     // bad magic/size/CRC: scan stops
  std::uint64_t torn_records = 0;        // file ends mid-record
  bool file_found = false;

  bool Clean() const {
    return version_mismatches == 0 && corrupt_records == 0 &&
           torn_records == 0;
  }
};

class StateJournal {
 public:
  // On-disk framing constants (also used by tests to build fixtures).
  static constexpr std::uint32_t kMagic = 0x4C4D4A31;  // "LMJ1"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderBytes = 12;  // magic|version|size
  static constexpr std::size_t kPayloadBytes = 148;
  static constexpr std::size_t kRecordBytes =
      kHeaderBytes + kPayloadBytes + 4 /* CRC */;

  struct Options {
    std::string path;
    // Rewrite the journal down to one record every this many appends
    // (bounds file growth and replay time). Must be >= 1.
    int compact_every_appends = 64;
    // fsync(2) after every append. Off by default: the atomic-rename
    // snapshot is the durability point, and a torn append tail is
    // recovered by replay — per-append fsync buys little and costs a
    // device flush on the tick path.
    bool fsync_each_append = false;
  };

  struct Stats {
    SatCounter appends;
    SatCounter compactions;
    SatCounter io_errors;
  };

  explicit StateJournal(const Options& options);
  ~StateJournal();

  StateJournal(const StateJournal&) = delete;
  StateJournal& operator=(const StateJournal&) = delete;

  // Appends one record, compacting first when the period is due.
  // Zero-allocation: serializes into a fixed member buffer and writes to
  // the kept-open descriptor. Returns false on IO failure (counted in
  // stats; the journal keeps trying on later calls).
  bool Append(const LimoncelloDaemon::PersistentState& state);

  // Atomically replaces the journal with a single record of `state`:
  // write temp + fsync + rename. This is the graceful-shutdown flush and
  // the compaction mechanism.
  bool WriteSnapshot(const LimoncelloDaemon::PersistentState& state);

  // Replays the journal at `path`. Tolerates every malformed input
  // (missing, empty, torn, corrupt, truncated, foreign-versioned) —
  // failures are reported in the result, never thrown or crashed on.
  static JournalReplay Replay(const std::string& path);

  const Stats& stats() const { return stats_; }
  const std::string& path() const { return options_.path; }

  // Serialization of one full record into/out of a buffer of at least
  // kRecordBytes. Exposed for tests that hand-craft corrupt files.
  static void EncodeRecord(const LimoncelloDaemon::PersistentState& state,
                           unsigned char* out);
  static bool DecodePayload(const unsigned char* payload,
                            LimoncelloDaemon::PersistentState* out);

 private:
  bool EnsureOpenForAppend();
  void CloseAppendFd();

  Options options_;
  std::string tmp_path_;  // precomputed: options_.path + ".tmp"
  int fd_ = -1;           // append descriptor, opened lazily
  int appends_since_compaction_ = 0;
  Stats stats_;
  // Scratch for Append/WriteSnapshot so the hot path never allocates.
  std::array<unsigned char, kRecordBytes> scratch_{};
};

// Outcome of replaying a per-endpoint control-plane journal.
struct EndpointJournalReplay {
  // Newest fully valid record per endpoint, ascending endpoint id.
  std::vector<EndpointPersistentState> states;
  std::uint64_t valid_records = 0;
  std::uint64_t version_mismatches = 0;  // intact frame, foreign version
  std::uint64_t corrupt_records = 0;     // bad magic/size/CRC: scan stops
  std::uint64_t torn_records = 0;        // file ends mid-record
  bool file_found = false;

  bool Clean() const {
    return version_mismatches == 0 && corrupt_records == 0 &&
           torn_records == 0;
  }
};

// Crash-safe persistence for the sharded control plane: the same framing
// discipline as StateJournal (CRC-protected fixed records, torn-tail
// tolerant replay, atomic snapshot-by-rename), but the unit of record is
// one endpoint's committed state. A record is appended whenever an
// endpoint's decision state changes (ControlPlane::CollectDirtyEndpoints
// feeds this); replay keeps the newest valid record per endpoint, so a
// warm restart recovers every endpoint's last committed decision.
//
// Unlike StateJournal there is no automatic compaction: folding the
// journal down needs the whole fleet's state, which only the caller has.
// The control loop bounds growth by calling WriteSnapshot with
// ControlPlane::ExportAllEndpoints() on its snapshot cadence.
class EndpointStateJournal {
 public:
  static constexpr std::uint32_t kMagic = 0x4C454A31;  // "LEJ1"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderBytes = 12;  // magic|version|size
  static constexpr std::size_t kPayloadBytes = 44;
  static constexpr std::size_t kRecordBytes =
      kHeaderBytes + kPayloadBytes + 4 /* CRC */;

  struct Options {
    std::string path;
    bool fsync_each_append = false;
  };

  struct Stats {
    SatCounter appends;
    SatCounter snapshots;
    SatCounter io_errors;
  };

  explicit EndpointStateJournal(const Options& options);
  ~EndpointStateJournal();

  EndpointStateJournal(const EndpointStateJournal&) = delete;
  EndpointStateJournal& operator=(const EndpointStateJournal&) = delete;

  // Appends one endpoint record. Zero-allocation (fixed scratch buffer,
  // cached descriptor). Returns false on IO failure (counted).
  bool Append(const EndpointPersistentState& state);

  // Atomically replaces the journal with one record per entry of
  // `states`: write temp + fsync + rename. Shutdown flush and the
  // caller-driven compaction mechanism.
  bool WriteSnapshot(const std::vector<EndpointPersistentState>& states);

  // Replays the journal at `path`, tolerating every malformed input.
  // Later records supersede earlier ones for the same endpoint.
  static EndpointJournalReplay Replay(const std::string& path);

  const Stats& stats() const { return stats_; }
  const std::string& path() const { return options_.path; }

  // One-record (de)serialization, exposed for corruption fixtures.
  // DecodePayload validates flag bits; field-level validation against
  // FSM invariants happens in ControlPlane::RestoreEndpoints.
  static void EncodeRecord(const EndpointPersistentState& state,
                           unsigned char* out);
  static bool DecodePayload(const unsigned char* payload,
                            EndpointPersistentState* out);

 private:
  bool EnsureOpenForAppend();
  void CloseAppendFd();

  Options options_;
  std::string tmp_path_;
  int fd_ = -1;
  Stats stats_;
  std::array<unsigned char, kRecordBytes> scratch_{};
};

}  // namespace limoncello

#endif  // LIMONCELLO_RECOVERY_STATE_JOURNAL_H_
