// Crash-safe persistence for the controller daemon's state.
//
// A StateJournal is an append-only file of CRC32-protected, versioned
// records, each one a full LimoncelloDaemon::PersistentState snapshot.
// Appends are cheap (one write(2) of a fixed-size record from a
// preallocated buffer — the steady-state path never allocates); the
// durability point is the atomic snapshot: serialize to a temp file,
// fsync, rename over the journal. rename(2) is atomic on POSIX, so a
// reader sees either the old journal or the new one, never a half-
// written file. Periodic compaction (every compact_every_appends
// appends) rewrites the journal down to its single newest record via
// the same snapshot path, bounding both file size and replay time.
//
// Replay walks the records front to back and keeps the last fully valid
// one. Anything wrong — a torn tail from a crash mid-append, a record
// whose CRC fails, a version from a different binary, a size field
// pointing past the file — is counted and the scan degrades safely:
// torn/corrupt data stops the scan (framing past it cannot be trusted),
// while a version mismatch with an intact CRC skips just that record.
// Replay never crashes on any input; the worst outcome is "no state",
// which callers treat as a cold start.
#ifndef LIMONCELLO_RECOVERY_STATE_JOURNAL_H_
#define LIMONCELLO_RECOVERY_STATE_JOURNAL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "core/daemon.h"

namespace limoncello {

// IEEE CRC-32 (reflected, polynomial 0xEDB88320) — the checksum guarding
// every journal record. Exposed for tests and corruption fixtures.
std::uint32_t Crc32(const void* data, std::size_t size);

// Outcome of replaying a journal file.
struct JournalReplay {
  // The newest record that framed, checksummed, and decoded cleanly.
  std::optional<LimoncelloDaemon::PersistentState> state;
  std::uint64_t valid_records = 0;
  std::uint64_t version_mismatches = 0;  // intact frame, foreign version
  std::uint64_t corrupt_records = 0;     // bad magic/size/CRC: scan stops
  std::uint64_t torn_records = 0;        // file ends mid-record
  bool file_found = false;

  bool Clean() const {
    return version_mismatches == 0 && corrupt_records == 0 &&
           torn_records == 0;
  }
};

class StateJournal {
 public:
  // On-disk framing constants (also used by tests to build fixtures).
  static constexpr std::uint32_t kMagic = 0x4C4D4A31;  // "LMJ1"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kHeaderBytes = 12;  // magic|version|size
  static constexpr std::size_t kPayloadBytes = 148;
  static constexpr std::size_t kRecordBytes =
      kHeaderBytes + kPayloadBytes + 4 /* CRC */;

  struct Options {
    std::string path;
    // Rewrite the journal down to one record every this many appends
    // (bounds file growth and replay time). Must be >= 1.
    int compact_every_appends = 64;
    // fsync(2) after every append. Off by default: the atomic-rename
    // snapshot is the durability point, and a torn append tail is
    // recovered by replay — per-append fsync buys little and costs a
    // device flush on the tick path.
    bool fsync_each_append = false;
  };

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t compactions = 0;
    std::uint64_t io_errors = 0;
  };

  explicit StateJournal(const Options& options);
  ~StateJournal();

  StateJournal(const StateJournal&) = delete;
  StateJournal& operator=(const StateJournal&) = delete;

  // Appends one record, compacting first when the period is due.
  // Zero-allocation: serializes into a fixed member buffer and writes to
  // the kept-open descriptor. Returns false on IO failure (counted in
  // stats; the journal keeps trying on later calls).
  bool Append(const LimoncelloDaemon::PersistentState& state);

  // Atomically replaces the journal with a single record of `state`:
  // write temp + fsync + rename. This is the graceful-shutdown flush and
  // the compaction mechanism.
  bool WriteSnapshot(const LimoncelloDaemon::PersistentState& state);

  // Replays the journal at `path`. Tolerates every malformed input
  // (missing, empty, torn, corrupt, truncated, foreign-versioned) —
  // failures are reported in the result, never thrown or crashed on.
  static JournalReplay Replay(const std::string& path);

  const Stats& stats() const { return stats_; }
  const std::string& path() const { return options_.path; }

  // Serialization of one full record into/out of a buffer of at least
  // kRecordBytes. Exposed for tests that hand-craft corrupt files.
  static void EncodeRecord(const LimoncelloDaemon::PersistentState& state,
                           unsigned char* out);
  static bool DecodePayload(const unsigned char* payload,
                            LimoncelloDaemon::PersistentState* out);

 private:
  bool EnsureOpenForAppend();
  void CloseAppendFd();

  Options options_;
  std::string tmp_path_;  // precomputed: options_.path + ".tmp"
  int fd_ = -1;           // append descriptor, opened lazily
  int appends_since_compaction_ = 0;
  Stats stats_;
  // Scratch for Append/WriteSnapshot so the hot path never allocates.
  std::array<unsigned char, kRecordBytes> scratch_{};
};

}  // namespace limoncello

#endif  // LIMONCELLO_RECOVERY_STATE_JOURNAL_H_
