#include "recovery/state_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/posix_io.h"
#include "util/wire.h"

namespace limoncello {

namespace {

// Upper bound on the size field accepted during replay: a corrupted size
// must not make the scanner index past the buffer or misinterpret
// gigabytes of garbage as one record.
constexpr std::uint32_t kMaxPayloadBytes = 4096;

}  // namespace

void StateJournal::EncodeRecord(
    const LimoncelloDaemon::PersistentState& state, unsigned char* out) {
  StoreU32(out, kMagic);
  StoreU32(out + 4, kVersion);
  StoreU32(out + 8, static_cast<std::uint32_t>(kPayloadBytes));
  unsigned char* p = out + kHeaderBytes;
  p[0] = static_cast<unsigned char>(state.controller_state);
  p[1] = static_cast<unsigned char>(state.pending_retry);
  p[2] = state.have_last_sample ? 1 : 0;
  p[3] = 0;  // reserved
  StoreU64(p + 4, static_cast<std::uint64_t>(state.timer_ns));
  StoreU64(p + 12, state.toggle_count);
  StoreU64(p + 20, state.last_sample_bits);
  StoreU32(p + 28, static_cast<std::uint32_t>(state.retry_delay_ticks));
  StoreU32(p + 32, static_cast<std::uint32_t>(state.retry_wait_ticks));
  StoreU32(p + 36, static_cast<std::uint32_t>(state.consecutive_missed));
  StoreU32(p + 40, static_cast<std::uint32_t>(state.stale_run));
  const LimoncelloDaemon::Stats& s = state.stats;
  const std::uint64_t stats_fields[] = {
      s.ticks,           s.missed_samples,     s.invalid_samples,
      s.stale_samples,   s.failsafe_resets,    s.actuation_failures,
      s.retry_backoff_skips, s.reboots_detected, s.state_reasserts,
      s.disables,        s.enables,            s.warm_restores,
      s.recovery_reconciles};
  static_assert(sizeof(stats_fields) == 13 * sizeof(std::uint64_t));
  static_assert(kPayloadBytes == 44 + sizeof(stats_fields));
  for (std::size_t i = 0; i < 13; ++i) {
    StoreU64(p + 44 + 8 * i, stats_fields[i]);
  }
  // The CRC covers version + size + payload; the magic is the frame
  // sync, not data.
  const std::uint32_t crc = Crc32(out + 4, 8 + kPayloadBytes);
  StoreU32(out + kHeaderBytes + kPayloadBytes, crc);
}

bool StateJournal::DecodePayload(const unsigned char* p,
                                 LimoncelloDaemon::PersistentState* out) {
  if (p[3] != 0) return false;  // reserved byte must be zero in v1
  out->controller_state = static_cast<ControllerState>(p[0]);
  out->pending_retry = static_cast<ControllerAction>(p[1]);
  out->have_last_sample = p[2] != 0;
  out->timer_ns = static_cast<SimTimeNs>(LoadU64(p + 4));
  out->toggle_count = LoadU64(p + 12);
  out->last_sample_bits = LoadU64(p + 20);
  out->retry_delay_ticks = static_cast<int>(LoadU32(p + 28));
  out->retry_wait_ticks = static_cast<int>(LoadU32(p + 32));
  out->consecutive_missed = static_cast<int>(LoadU32(p + 36));
  out->stale_run = static_cast<int>(LoadU32(p + 40));
  LimoncelloDaemon::Stats& s = out->stats;
  SatCounter* stats_fields[] = {
      &s.ticks,           &s.missed_samples,     &s.invalid_samples,
      &s.stale_samples,   &s.failsafe_resets,    &s.actuation_failures,
      &s.retry_backoff_skips, &s.reboots_detected, &s.state_reasserts,
      &s.disables,        &s.enables,            &s.warm_restores,
      &s.recovery_reconciles};
  for (std::size_t i = 0; i < 13; ++i) {
    *stats_fields[i] = SatCounter(LoadU64(p + 44 + 8 * i));
  }
  return true;
}

StateJournal::StateJournal(const Options& options)
    : options_(options), tmp_path_(options.path + ".tmp") {
  LIMONCELLO_CHECK(!options.path.empty());
  LIMONCELLO_CHECK_GE(options.compact_every_appends, 1);
}

StateJournal::~StateJournal() { CloseAppendFd(); }

bool StateJournal::EnsureOpenForAppend() {
  if (fd_ >= 0) return true;
  // One open per journal lifetime (or per compaction); the descriptor
  // is cached across appends.
  fd_ = ::open(  // limolint:allow(hot-path-blocking)
      options_.path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
      0644);
  return fd_ >= 0;
}

void StateJournal::CloseAppendFd() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

// limolint:hot-path — the journaled persistence path runs on every daemon
// tick; it must stay allocation-free (the designed ::write/::fsync pair is
// the one blocking exception, annotated at the call sites).
bool StateJournal::Append(
    const LimoncelloDaemon::PersistentState& state) {
  if (appends_since_compaction_ >= options_.compact_every_appends) {
    // Compaction folds the newest state in: the snapshot IS the record.
    return WriteSnapshot(state);
  }
  if (!EnsureOpenForAppend()) {
    ++stats_.io_errors;
    return false;
  }
  EncodeRecord(state, scratch_.data());
  if (!WriteFully(fd_, scratch_.data(), kRecordBytes)) {
    ++stats_.io_errors;
    return false;
  }
  // The designed durability point: an append is not an append until it
  // is on stable storage.
  if (options_.fsync_each_append &&
      ::fsync(fd_) != 0) {  // limolint:allow(hot-path-blocking)
    ++stats_.io_errors;
    return false;
  }
  ++stats_.appends;
  ++appends_since_compaction_;
  return true;
}

// limolint:cold-path — compaction: one snapshot per compact_every_appends
// appends (or shutdown), a designed heavyweight rarity whose tmp+fsync+
// rename dance is the crash-safety mechanism itself.
bool StateJournal::WriteSnapshot(
    const LimoncelloDaemon::PersistentState& state) {
  // The rename below replaces the journal's inode; a kept-open append
  // descriptor would keep writing to the orphaned old file.
  CloseAppendFd();
  EncodeRecord(state, scratch_.data());
  const int fd = ::open(tmp_path_.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    ++stats_.io_errors;
    return false;
  }
  bool ok = WriteFully(fd, scratch_.data(), kRecordBytes);
  // fsync before rename: the atomicity argument needs the new contents
  // durable before the new name points at them.
  ok = ::fsync(fd) == 0 && ok;
  ok = ::close(fd) == 0 && ok;
  if (ok) {
    ok = std::rename(tmp_path_.c_str(), options_.path.c_str()) == 0;
  }
  if (!ok) {
    ++stats_.io_errors;
    return false;
  }
  ++stats_.compactions;
  appends_since_compaction_ = 0;
  return true;
}

JournalReplay StateJournal::Replay(const std::string& path) {
  JournalReplay replay;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return replay;  // no file: plain cold start
  replay.file_found = true;
  std::vector<unsigned char> data;
  unsigned char chunk[4096];
  for (;;) {
    const ssize_t n = ReadChunk(fd, chunk, sizeof(chunk));
    if (n < 0) {
      ++replay.corrupt_records;  // unreadable counts as corrupt
      (void)::close(fd);
      return replay;
    }
    if (n == 0) break;
    data.insert(data.end(), chunk, chunk + n);
  }
  (void)::close(fd);

  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t remaining = data.size() - off;
    if (remaining < kHeaderBytes) {
      ++replay.torn_records;
      break;
    }
    if (LoadU32(&data[off]) != kMagic) {
      ++replay.corrupt_records;
      break;
    }
    const std::uint32_t version = LoadU32(&data[off + 4]);
    const std::uint32_t payload_size = LoadU32(&data[off + 8]);
    if (payload_size > kMaxPayloadBytes) {
      ++replay.corrupt_records;
      break;
    }
    if (remaining < kHeaderBytes + payload_size + 4) {
      ++replay.torn_records;
      break;
    }
    const std::uint32_t crc = Crc32(&data[off + 4], 8 + payload_size);
    if (crc != LoadU32(&data[off + kHeaderBytes + payload_size])) {
      // Framing beyond a checksum failure cannot be trusted: stop and
      // keep whatever was valid before it.
      ++replay.corrupt_records;
      break;
    }
    if (version != kVersion || payload_size != kPayloadBytes) {
      // Intact record from another binary version: skip it, keep
      // scanning — framing is still sound.
      ++replay.version_mismatches;
      off += kHeaderBytes + payload_size + 4;
      continue;
    }
    LimoncelloDaemon::PersistentState state;
    if (!StateJournal::DecodePayload(&data[off + kHeaderBytes], &state)) {
      ++replay.corrupt_records;
      break;
    }
    replay.state = state;
    ++replay.valid_records;
    off += kRecordBytes;
  }
  return replay;
}

void EndpointStateJournal::EncodeRecord(
    const EndpointPersistentState& state, unsigned char* out) {
  StoreU32(out, kMagic);
  StoreU32(out + 4, kVersion);
  StoreU32(out + 8, static_cast<std::uint32_t>(kPayloadBytes));
  unsigned char* p = out + kHeaderBytes;
  StoreU32(p, state.endpoint_id);
  StoreU32(p + 4, static_cast<std::uint32_t>(state.controller_state));
  StoreU64(p + 8, static_cast<std::uint64_t>(state.timer_ns));
  StoreU64(p + 16, state.toggle_count);
  std::uint32_t flags = 0;
  if (state.intent_enabled) flags |= 1u;
  if (state.force_active) flags |= 2u;
  if (state.force_enabled) flags |= 4u;
  if (state.have_sequence) flags |= 8u;
  StoreU32(p + 24, flags);
  StoreU64(p + 28, state.last_sequence);
  StoreU64(p + 36, state.last_update_tick);
  const std::uint32_t crc = Crc32(out + 4, 8 + kPayloadBytes);
  StoreU32(out + kHeaderBytes + kPayloadBytes, crc);
}

bool EndpointStateJournal::DecodePayload(const unsigned char* p,
                                         EndpointPersistentState* out) {
  const std::uint32_t flags = LoadU32(p + 24);
  if ((flags & ~0xFu) != 0) return false;  // reserved bits must be zero
  out->endpoint_id = LoadU32(p);
  out->controller_state = static_cast<ControllerState>(LoadU32(p + 4));
  out->timer_ns = static_cast<SimTimeNs>(LoadU64(p + 8));
  out->toggle_count = LoadU64(p + 16);
  out->intent_enabled = (flags & 1u) != 0;
  out->force_active = (flags & 2u) != 0;
  out->force_enabled = (flags & 4u) != 0;
  out->have_sequence = (flags & 8u) != 0;
  out->last_sequence = LoadU64(p + 28);
  out->last_update_tick = LoadU64(p + 36);
  return true;
}

EndpointStateJournal::EndpointStateJournal(const Options& options)
    : options_(options), tmp_path_(options.path + ".tmp") {
  LIMONCELLO_CHECK(!options.path.empty());
}

EndpointStateJournal::~EndpointStateJournal() { CloseAppendFd(); }

bool EndpointStateJournal::EnsureOpenForAppend() {
  if (fd_ >= 0) return true;
  fd_ = ::open(  // limolint:allow(hot-path-blocking)
      options_.path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
      0644);
  return fd_ >= 0;
}

void EndpointStateJournal::CloseAppendFd() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

bool EndpointStateJournal::Append(const EndpointPersistentState& state) {
  if (!EnsureOpenForAppend()) {
    ++stats_.io_errors;
    return false;
  }
  EncodeRecord(state, scratch_.data());
  if (!WriteFully(fd_, scratch_.data(), kRecordBytes)) {
    ++stats_.io_errors;
    return false;
  }
  if (options_.fsync_each_append && ::fsync(fd_) != 0) {
    ++stats_.io_errors;
    return false;
  }
  ++stats_.appends;
  return true;
}

// limolint:cold-path — caller-driven compaction on the snapshot cadence;
// the tmp+fsync+rename dance is the crash-safety mechanism itself.
bool EndpointStateJournal::WriteSnapshot(
    const std::vector<EndpointPersistentState>& states) {
  // The rename replaces the journal's inode; a kept-open append
  // descriptor would keep writing to the orphaned old file.
  CloseAppendFd();
  const int fd = ::open(tmp_path_.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    ++stats_.io_errors;
    return false;
  }
  bool ok = true;
  for (const EndpointPersistentState& state : states) {
    EncodeRecord(state, scratch_.data());
    if (!WriteFully(fd, scratch_.data(), kRecordBytes)) {
      ok = false;
      break;
    }
  }
  // fsync before rename: the atomicity argument needs the new contents
  // durable before the new name points at them.
  ok = ::fsync(fd) == 0 && ok;
  ok = ::close(fd) == 0 && ok;
  if (ok) {
    ok = std::rename(tmp_path_.c_str(), options_.path.c_str()) == 0;
  }
  if (!ok) {
    ++stats_.io_errors;
    return false;
  }
  ++stats_.snapshots;
  return true;
}

EndpointJournalReplay EndpointStateJournal::Replay(
    const std::string& path) {
  EndpointJournalReplay replay;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return replay;  // no file: plain cold start
  replay.file_found = true;
  std::vector<unsigned char> data;
  unsigned char chunk[4096];
  for (;;) {
    const ssize_t n = ReadChunk(fd, chunk, sizeof(chunk));
    if (n < 0) {
      ++replay.corrupt_records;
      (void)::close(fd);
      return replay;
    }
    if (n == 0) break;
    data.insert(data.end(), chunk, chunk + n);
  }
  (void)::close(fd);

  // Newest valid record per endpoint: later records in the file
  // supersede earlier ones (appends land after the snapshot base).
  std::unordered_map<std::uint32_t, EndpointPersistentState> newest;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t remaining = data.size() - off;
    if (remaining < kHeaderBytes) {
      ++replay.torn_records;
      break;
    }
    if (LoadU32(&data[off]) != kMagic) {
      ++replay.corrupt_records;
      break;
    }
    const std::uint32_t version = LoadU32(&data[off + 4]);
    const std::uint32_t payload_size = LoadU32(&data[off + 8]);
    if (payload_size > kMaxPayloadBytes) {
      ++replay.corrupt_records;
      break;
    }
    if (remaining < kHeaderBytes + payload_size + 4) {
      ++replay.torn_records;
      break;
    }
    const std::uint32_t crc = Crc32(&data[off + 4], 8 + payload_size);
    if (crc != LoadU32(&data[off + kHeaderBytes + payload_size])) {
      ++replay.corrupt_records;
      break;
    }
    if (version != kVersion || payload_size != kPayloadBytes) {
      ++replay.version_mismatches;
      off += kHeaderBytes + payload_size + 4;
      continue;
    }
    EndpointPersistentState state;
    if (!DecodePayload(&data[off + kHeaderBytes], &state)) {
      ++replay.corrupt_records;
      break;
    }
    newest[state.endpoint_id] = state;
    ++replay.valid_records;
    off += kRecordBytes;
  }
  replay.states.reserve(newest.size());
  for (const auto& [id, state] : newest) replay.states.push_back(state);
  std::sort(replay.states.begin(), replay.states.end(),
            [](const EndpointPersistentState& a,
               const EndpointPersistentState& b) {
              return a.endpoint_id < b.endpoint_id;
            });
  return replay;
}

}  // namespace limoncello
