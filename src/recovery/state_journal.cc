#include "recovery/state_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <vector>

#include "util/check.h"

namespace limoncello {

namespace {

constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kCrc32Table = MakeCrc32Table();

// Fixed little-endian layout, independent of host endianness.
void StoreU32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void StoreU64(unsigned char* p, std::uint64_t v) {
  StoreU32(p, static_cast<std::uint32_t>(v));
  StoreU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t LoadU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t LoadU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(LoadU32(p)) |
         static_cast<std::uint64_t>(LoadU32(p + 4)) << 32;
}

bool WriteFully(int fd, const unsigned char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    // The journal's designed append syscall: short writes loop, EINTR
    // retries.
    const ssize_t n = ::write(  // limolint:allow(hot-path-blocking)
        fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// Upper bound on the size field accepted during replay: a corrupted size
// must not make the scanner index past the buffer or misinterpret
// gigabytes of garbage as one record.
constexpr std::uint32_t kMaxPayloadBytes = 4096;

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kCrc32Table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void StateJournal::EncodeRecord(
    const LimoncelloDaemon::PersistentState& state, unsigned char* out) {
  StoreU32(out, kMagic);
  StoreU32(out + 4, kVersion);
  StoreU32(out + 8, static_cast<std::uint32_t>(kPayloadBytes));
  unsigned char* p = out + kHeaderBytes;
  p[0] = static_cast<unsigned char>(state.controller_state);
  p[1] = static_cast<unsigned char>(state.pending_retry);
  p[2] = state.have_last_sample ? 1 : 0;
  p[3] = 0;  // reserved
  StoreU64(p + 4, static_cast<std::uint64_t>(state.timer_ns));
  StoreU64(p + 12, state.toggle_count);
  StoreU64(p + 20, state.last_sample_bits);
  StoreU32(p + 28, static_cast<std::uint32_t>(state.retry_delay_ticks));
  StoreU32(p + 32, static_cast<std::uint32_t>(state.retry_wait_ticks));
  StoreU32(p + 36, static_cast<std::uint32_t>(state.consecutive_missed));
  StoreU32(p + 40, static_cast<std::uint32_t>(state.stale_run));
  const LimoncelloDaemon::Stats& s = state.stats;
  const std::uint64_t stats_fields[] = {
      s.ticks,           s.missed_samples,     s.invalid_samples,
      s.stale_samples,   s.failsafe_resets,    s.actuation_failures,
      s.retry_backoff_skips, s.reboots_detected, s.state_reasserts,
      s.disables,        s.enables,            s.warm_restores,
      s.recovery_reconciles};
  static_assert(sizeof(stats_fields) == 13 * sizeof(std::uint64_t));
  static_assert(kPayloadBytes == 44 + sizeof(stats_fields));
  for (std::size_t i = 0; i < 13; ++i) {
    StoreU64(p + 44 + 8 * i, stats_fields[i]);
  }
  // The CRC covers version + size + payload; the magic is the frame
  // sync, not data.
  const std::uint32_t crc = Crc32(out + 4, 8 + kPayloadBytes);
  StoreU32(out + kHeaderBytes + kPayloadBytes, crc);
}

bool StateJournal::DecodePayload(const unsigned char* p,
                                 LimoncelloDaemon::PersistentState* out) {
  if (p[3] != 0) return false;  // reserved byte must be zero in v1
  out->controller_state = static_cast<ControllerState>(p[0]);
  out->pending_retry = static_cast<ControllerAction>(p[1]);
  out->have_last_sample = p[2] != 0;
  out->timer_ns = static_cast<SimTimeNs>(LoadU64(p + 4));
  out->toggle_count = LoadU64(p + 12);
  out->last_sample_bits = LoadU64(p + 20);
  out->retry_delay_ticks = static_cast<int>(LoadU32(p + 28));
  out->retry_wait_ticks = static_cast<int>(LoadU32(p + 32));
  out->consecutive_missed = static_cast<int>(LoadU32(p + 36));
  out->stale_run = static_cast<int>(LoadU32(p + 40));
  LimoncelloDaemon::Stats& s = out->stats;
  std::uint64_t* stats_fields[] = {
      &s.ticks,           &s.missed_samples,     &s.invalid_samples,
      &s.stale_samples,   &s.failsafe_resets,    &s.actuation_failures,
      &s.retry_backoff_skips, &s.reboots_detected, &s.state_reasserts,
      &s.disables,        &s.enables,            &s.warm_restores,
      &s.recovery_reconciles};
  for (std::size_t i = 0; i < 13; ++i) {
    *stats_fields[i] = LoadU64(p + 44 + 8 * i);
  }
  return true;
}

StateJournal::StateJournal(const Options& options)
    : options_(options), tmp_path_(options.path + ".tmp") {
  LIMONCELLO_CHECK(!options.path.empty());
  LIMONCELLO_CHECK_GE(options.compact_every_appends, 1);
}

StateJournal::~StateJournal() { CloseAppendFd(); }

bool StateJournal::EnsureOpenForAppend() {
  if (fd_ >= 0) return true;
  // One open per journal lifetime (or per compaction); the descriptor
  // is cached across appends.
  fd_ = ::open(  // limolint:allow(hot-path-blocking)
      options_.path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
      0644);
  return fd_ >= 0;
}

void StateJournal::CloseAppendFd() {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

// limolint:hot-path — the journaled persistence path runs on every daemon
// tick; it must stay allocation-free (the designed ::write/::fsync pair is
// the one blocking exception, annotated at the call sites).
bool StateJournal::Append(
    const LimoncelloDaemon::PersistentState& state) {
  if (appends_since_compaction_ >= options_.compact_every_appends) {
    // Compaction folds the newest state in: the snapshot IS the record.
    return WriteSnapshot(state);
  }
  if (!EnsureOpenForAppend()) {
    ++stats_.io_errors;
    return false;
  }
  EncodeRecord(state, scratch_.data());
  if (!WriteFully(fd_, scratch_.data(), kRecordBytes)) {
    ++stats_.io_errors;
    return false;
  }
  // The designed durability point: an append is not an append until it
  // is on stable storage.
  if (options_.fsync_each_append &&
      ::fsync(fd_) != 0) {  // limolint:allow(hot-path-blocking)
    ++stats_.io_errors;
    return false;
  }
  ++stats_.appends;
  ++appends_since_compaction_;
  return true;
}

// limolint:cold-path — compaction: one snapshot per compact_every_appends
// appends (or shutdown), a designed heavyweight rarity whose tmp+fsync+
// rename dance is the crash-safety mechanism itself.
bool StateJournal::WriteSnapshot(
    const LimoncelloDaemon::PersistentState& state) {
  // The rename below replaces the journal's inode; a kept-open append
  // descriptor would keep writing to the orphaned old file.
  CloseAppendFd();
  EncodeRecord(state, scratch_.data());
  const int fd = ::open(tmp_path_.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    ++stats_.io_errors;
    return false;
  }
  bool ok = WriteFully(fd, scratch_.data(), kRecordBytes);
  // fsync before rename: the atomicity argument needs the new contents
  // durable before the new name points at them.
  ok = ::fsync(fd) == 0 && ok;
  ok = ::close(fd) == 0 && ok;
  if (ok) {
    ok = std::rename(tmp_path_.c_str(), options_.path.c_str()) == 0;
  }
  if (!ok) {
    ++stats_.io_errors;
    return false;
  }
  ++stats_.compactions;
  appends_since_compaction_ = 0;
  return true;
}

JournalReplay StateJournal::Replay(const std::string& path) {
  JournalReplay replay;
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return replay;  // no file: plain cold start
  replay.file_found = true;
  std::vector<unsigned char> data;
  unsigned char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      ++replay.corrupt_records;  // unreadable counts as corrupt
      (void)::close(fd);
      return replay;
    }
    if (n == 0) break;
    data.insert(data.end(), chunk, chunk + n);
  }
  (void)::close(fd);

  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t remaining = data.size() - off;
    if (remaining < kHeaderBytes) {
      ++replay.torn_records;
      break;
    }
    if (LoadU32(&data[off]) != kMagic) {
      ++replay.corrupt_records;
      break;
    }
    const std::uint32_t version = LoadU32(&data[off + 4]);
    const std::uint32_t payload_size = LoadU32(&data[off + 8]);
    if (payload_size > kMaxPayloadBytes) {
      ++replay.corrupt_records;
      break;
    }
    if (remaining < kHeaderBytes + payload_size + 4) {
      ++replay.torn_records;
      break;
    }
    const std::uint32_t crc = Crc32(&data[off + 4], 8 + payload_size);
    if (crc != LoadU32(&data[off + kHeaderBytes + payload_size])) {
      // Framing beyond a checksum failure cannot be trusted: stop and
      // keep whatever was valid before it.
      ++replay.corrupt_records;
      break;
    }
    if (version != kVersion || payload_size != kPayloadBytes) {
      // Intact record from another binary version: skip it, keep
      // scanning — framing is still sound.
      ++replay.version_mismatches;
      off += kHeaderBytes + payload_size + 4;
      continue;
    }
    LimoncelloDaemon::PersistentState state;
    if (!StateJournal::DecodePayload(&data[off + kHeaderBytes], &state)) {
      ++replay.corrupt_records;
      break;
    }
    replay.state = state;
    ++replay.valid_records;
    off += kRecordBytes;
  }
  return replay;
}

}  // namespace limoncello
