// Warm-restart orchestration for the controller daemon.
//
// The RecoveryManager owns a StateJournal and a (non-owned) daemon and
// implements the daemon lifecycle around it:
//
//   startup   RecoverAndReconcile(): replay the journal, adopt the
//             newest valid snapshot (any corruption degrades to a cold
//             start, never a crash), then reconcile the recovered
//             *intent* against the actual hardware through the
//             actuator's readback — the journal records what the FSM
//             decided from telemetry history, so on mismatch the
//             hardware is moved to match the journal (DESIGN.md §11).
//   per tick  OnTickComplete(): journal the state after every actuation
//             and on every snapshot_period_ticks-th tick; every other
//             tick returns without touching the journal or the heap,
//             keeping persistence off the steady-state hot path
//             (bench_socket's recovery arm gates this).
//   shutdown  FlushSnapshot(): compact the journal to a single atomic
//             snapshot of the current state (the SIGTERM path).
#ifndef LIMONCELLO_RECOVERY_RECOVERY_MANAGER_H_
#define LIMONCELLO_RECOVERY_RECOVERY_MANAGER_H_

#include "control/control_plane.h"
#include "core/daemon.h"
#include "recovery/state_journal.h"

namespace limoncello {

struct RecoveryOptions {
  std::string state_file;
  // Quiet-tick journal cadence: bounds how stale a recovered snapshot
  // can be. Actuation ticks always journal regardless.
  int snapshot_period_ticks = 8;
  int compact_every_appends = 64;
  bool fsync_each_append = false;
};

struct RecoveryResult {
  // True when a journal snapshot was adopted (daemon warm-restarted).
  bool warm = false;
  // A record decoded but failed the daemon's field validation — corrupt
  // in a way the CRC cannot see. Cold start.
  bool rejected_state = false;
  ReconcileStatus reconcile = ReconcileStatus::kUnknown;
  JournalReplay replay;
};

class RecoveryManager {
 public:
  // `daemon` must outlive the manager.
  RecoveryManager(const RecoveryOptions& options, LimoncelloDaemon* daemon);

  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  // Startup recovery; call once, before the first RunTick.
  RecoveryResult RecoverAndReconcile();

  // Call after every LimoncelloDaemon::RunTick with its TickRecord.
  void OnTickComplete(const LimoncelloDaemon::TickRecord& record);

  // Graceful-shutdown flush. Returns false on IO failure.
  bool FlushSnapshot();

  const RecoveryResult& last_recovery() const { return last_recovery_; }
  const StateJournal& journal() const { return journal_; }

 private:
  RecoveryOptions options_;
  LimoncelloDaemon* daemon_;
  StateJournal journal_;
  RecoveryResult last_recovery_;
};

// Warm restart for the sharded control plane: replay the per-endpoint
// journal at `path` and hand every recovered record to
// ControlPlane::RestoreEndpoints, which validates each one against the
// FSM's invariants (invalid records cold-start that endpoint) and
// re-asserts the restored intent through the actuator — the same
// journal-wins-over-hardware rule as the single-socket daemon.
struct EndpointRecoveryResult {
  int adopted = 0;   // endpoints warm-restored
  int rejected = 0;  // decoded records that failed plane validation
  EndpointJournalReplay replay;

  bool Warm() const { return adopted > 0; }
};

EndpointRecoveryResult RecoverEndpointStates(const std::string& path,
                                             ControlPlane* plane);

}  // namespace limoncello

#endif  // LIMONCELLO_RECOVERY_RECOVERY_MANAGER_H_
