// High-level prefetcher enable/disable API over raw MSRs.
//
// "The controller in Limoncello enables and disables hardware prefetchers by
// writing to the model-specific registers (MSRs) for prefetchers. The
// register addresses and values vary for different vendors/platforms. For a
// given platform, we disable all prefetchers in the platform." (paper §3)
//
// Two platform register maps are provided:
//  * kIntelStyle — MSR 0x1A4 (MISC_FEATURE_CONTROL): one register, four
//    active-high *disable* bits (L2 stream, L2 adjacent line, DCU streamer,
//    DCU IP-stride).
//  * kAltStyle   — a second-vendor layout: one register, active-high
//    *enable* bits, exercising the polarity/addressing variance the paper
//    calls out.
#ifndef LIMONCELLO_MSR_PREFETCH_CONTROL_H_
#define LIMONCELLO_MSR_PREFETCH_CONTROL_H_

#include <cstdint>
#include <string>

#include "msr/msr_device.h"

namespace limoncello {

// The four per-core prefetch engines modeled throughout the library,
// matching Intel's MSR 0x1A4 bit assignment.
enum class PrefetchEngine : int {
  kL2Stream = 0,        // L2 hardware (stream) prefetcher
  kL2AdjacentLine = 1,  // L2 adjacent-cache-line prefetcher
  kDcuStreamer = 2,     // L1D next-line streamer
  kDcuIpStride = 3,     // L1D instruction-pointer-based stride prefetcher
};
inline constexpr int kNumPrefetchEngines = 4;

const char* PrefetchEngineName(PrefetchEngine engine);

enum class PlatformMsrLayout {
  kIntelStyle,  // MSR 0x1A4, set bit => engine disabled
  kAltStyle,    // MSR 0xC0010900, set bit => engine enabled
};

struct PrefetchMsrMap {
  MsrRegister reg;
  bool set_bit_disables;  // polarity of the per-engine bits
  std::uint64_t engine_mask;

  static PrefetchMsrMap For(PlatformMsrLayout layout);
};

// Per-socket prefetcher actuator. Writes are applied to every CPU in
// [first_cpu, first_cpu + num_cpus); partial failures are reported but do
// not stop the remaining writes (a core may be offline).
class PrefetchControl {
 public:
  PrefetchControl(MsrDevice* device, PlatformMsrLayout layout, int first_cpu,
                  int num_cpus);

  // Returns the number of CPUs successfully written. Callers must check
  // the count against the expected CPU total (limolint's
  // unchecked-msr-write rule flags silently dropped results).
  [[nodiscard]] int DisableAll();
  [[nodiscard]] int EnableAll();
  [[nodiscard]] int SetEngine(PrefetchEngine engine, bool enabled);

  // True iff every engine is enabled on every (readable) CPU. nullopt if no
  // CPU could be read.
  std::optional<bool> AllEnabled();
  std::optional<bool> AllDisabled();

  // Reads the engine state on one CPU.
  std::optional<bool> EngineEnabled(int cpu, PrefetchEngine engine);

  const PrefetchMsrMap& msr_map() const { return map_; }

 private:
  int ApplyToAllCpus(std::uint64_t clear_mask, std::uint64_t set_mask);

  MsrDevice* device_;
  PrefetchMsrMap map_;
  int first_cpu_;
  int num_cpus_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_MSR_PREFETCH_CONTROL_H_
