// Real-hardware MSR backend over /dev/cpu/N/msr (Linux `msr` module).
//
// This is the backend a production deployment would use. It degrades
// gracefully: if the device nodes are absent or unreadable (no msr module,
// no root, container sandbox), every operation reports failure and the
// daemon falls back to fail-safe behaviour. All CI runs in this repository
// use SimulatedMsrDevice; this backend is compiled to keep it honest.
#ifndef LIMONCELLO_MSR_LINUX_MSR_DEVICE_H_
#define LIMONCELLO_MSR_LINUX_MSR_DEVICE_H_

#include <optional>

#include "msr/msr_device.h"

namespace limoncello {

class LinuxMsrDevice : public MsrDevice {
 public:
  // Probes /dev/cpu to count CPUs; num_cpus() is 0 when unavailable.
  LinuxMsrDevice();

  int num_cpus() const override { return num_cpus_; }
  std::optional<std::uint64_t> Read(int cpu, MsrRegister reg) override;
  [[nodiscard]] bool Write(int cpu, MsrRegister reg,
                           std::uint64_t value) override;

  // True if at least one MSR device node could be opened for reading.
  bool available() const { return num_cpus_ > 0; }

 private:
  int num_cpus_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_MSR_LINUX_MSR_DEVICE_H_
