#include "msr/simulated_msr_device.h"

#include "util/check.h"

namespace limoncello {

SimulatedMsrDevice::SimulatedMsrDevice(int num_cpus)
    : regs_(static_cast<std::size_t>(num_cpus)),
      failed_(static_cast<std::size_t>(num_cpus), false) {
  LIMONCELLO_CHECK_GT(num_cpus, 0);
}

bool SimulatedMsrDevice::CpuOk(int cpu) const {
  return cpu >= 0 && cpu < num_cpus() &&
         !failed_[static_cast<std::size_t>(cpu)];
}

std::optional<std::uint64_t> SimulatedMsrDevice::Read(int cpu,
                                                      MsrRegister reg) {
  if (!CpuOk(cpu)) return std::nullopt;
  const auto& file = regs_[static_cast<std::size_t>(cpu)];
  const auto it = file.find(reg);
  // Unwritten registers read as zero, matching the "all prefetchers
  // enabled" power-on default of Intel's 0x1A4 (disable bits clear).
  return it == file.end() ? 0 : it->second;
}

bool SimulatedMsrDevice::Write(int cpu, MsrRegister reg,
                               std::uint64_t value) {
  if (!CpuOk(cpu)) return false;
  regs_[static_cast<std::size_t>(cpu)][reg] = value;
  ++write_count_;
  for (const auto& observer : observers_) observer(cpu, reg, value);
  return true;
}

void SimulatedMsrDevice::AddWriteObserver(WriteObserver observer) {
  observers_.push_back(std::move(observer));
}

void SimulatedMsrDevice::ResetToPowerOn() {
  for (auto& file : regs_) file.clear();
}

void SimulatedMsrDevice::FailCpu(int cpu) {
  LIMONCELLO_CHECK(cpu >= 0 && cpu < num_cpus());
  failed_[static_cast<std::size_t>(cpu)] = true;
}

void SimulatedMsrDevice::UnfailCpu(int cpu) {
  LIMONCELLO_CHECK(cpu >= 0 && cpu < num_cpus());
  failed_[static_cast<std::size_t>(cpu)] = false;
}

std::uint64_t SimulatedMsrDevice::PeekRaw(int cpu, MsrRegister reg) const {
  LIMONCELLO_CHECK(cpu >= 0 && cpu < num_cpus());
  const auto& file = regs_[static_cast<std::size_t>(cpu)];
  const auto it = file.find(reg);
  return it == file.end() ? 0 : it->second;
}

}  // namespace limoncello
