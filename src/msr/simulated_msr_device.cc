#include "msr/simulated_msr_device.h"

#include "util/check.h"

namespace limoncello {

SimulatedMsrDevice::SimulatedMsrDevice(int num_cpus)
    : num_cpus_(num_cpus),
      failed_(static_cast<std::size_t>(num_cpus), false) {
  LIMONCELLO_CHECK_GT(num_cpus, 0);
}

bool SimulatedMsrDevice::CpuOk(int cpu) const {
  return cpu >= 0 && cpu < num_cpus_ &&
         !failed_[static_cast<std::size_t>(cpu)];
}

const SimulatedMsrDevice::RegisterFile* SimulatedMsrDevice::FindFile(
    MsrRegister reg) const {
  for (const RegisterFile& file : files_) {
    if (file.reg == reg) return &file;
  }
  return nullptr;
}

SimulatedMsrDevice::RegisterFile* SimulatedMsrDevice::FindOrCreateFile(
    MsrRegister reg) {
  for (RegisterFile& file : files_) {
    if (file.reg == reg) return &file;
  }
  RegisterFile file;
  file.reg = reg;
  // First touch of a register allocates its flat per-CPU file once; every
  // later access hits the existing storage (bench_fleet_gate counts the
  // steady state).
  file.per_cpu.assign(  // limolint:allow(hot-path-alloc)
      static_cast<std::size_t>(num_cpus_), 0);
  files_.push_back(std::move(file));  // limolint:allow(hot-path-alloc)
  return &files_.back();
}

std::optional<std::uint64_t> SimulatedMsrDevice::Read(int cpu,
                                                      MsrRegister reg) {
  if (!CpuOk(cpu)) return std::nullopt;
  const RegisterFile* file = FindFile(reg);
  // Unwritten registers read as zero, matching the "all prefetchers
  // enabled" power-on default of Intel's 0x1A4 (disable bits clear).
  return file == nullptr ? 0
                         : file->per_cpu[static_cast<std::size_t>(cpu)];
}

bool SimulatedMsrDevice::Write(int cpu, MsrRegister reg,
                               std::uint64_t value) {
  if (!CpuOk(cpu)) return false;
  FindOrCreateFile(reg)->per_cpu[static_cast<std::size_t>(cpu)] = value;
  ++write_count_;
  for (const auto& observer : observers_) observer(cpu, reg, value);
  return true;
}

void SimulatedMsrDevice::AddWriteObserver(WriteObserver observer) {
  observers_.push_back(std::move(observer));
}

void SimulatedMsrDevice::ResetToPowerOn() {
  // Zeroing the value arrays is indistinguishable from forgetting the
  // registers entirely: both read back as the power-on default.
  for (RegisterFile& file : files_) {
    file.per_cpu.assign(file.per_cpu.size(), 0);
  }
}

void SimulatedMsrDevice::FailCpu(int cpu) {
  LIMONCELLO_CHECK(cpu >= 0 && cpu < num_cpus_);
  failed_[static_cast<std::size_t>(cpu)] = true;
}

void SimulatedMsrDevice::UnfailCpu(int cpu) {
  LIMONCELLO_CHECK(cpu >= 0 && cpu < num_cpus_);
  failed_[static_cast<std::size_t>(cpu)] = false;
}

std::uint64_t SimulatedMsrDevice::PeekRaw(int cpu, MsrRegister reg) const {
  LIMONCELLO_CHECK(cpu >= 0 && cpu < num_cpus_);
  const RegisterFile* file = FindFile(reg);
  return file == nullptr ? 0
                         : file->per_cpu[static_cast<std::size_t>(cpu)];
}

}  // namespace limoncello
