#include "msr/prefetch_control.h"

#include "util/check.h"

namespace limoncello {

namespace {

// Intel MISC_FEATURE_CONTROL: bits 0..3 disable the four engines.
constexpr MsrRegister kIntelMiscFeatureControl = 0x1a4;
// Fictional second-vendor prefetch configuration register with inverted
// polarity (set bit => engine enabled).
constexpr MsrRegister kAltPrefetchConfig = 0xc0010900;

constexpr std::uint64_t kFourEngineMask = 0xf;

std::uint64_t EngineBit(PrefetchEngine engine) {
  return 1ULL << static_cast<int>(engine);
}

}  // namespace

const char* PrefetchEngineName(PrefetchEngine engine) {
  switch (engine) {
    case PrefetchEngine::kL2Stream:
      return "l2_stream";
    case PrefetchEngine::kL2AdjacentLine:
      return "l2_adjacent_line";
    case PrefetchEngine::kDcuStreamer:
      return "dcu_streamer";
    case PrefetchEngine::kDcuIpStride:
      return "dcu_ip_stride";
  }
  return "unknown";
}

PrefetchMsrMap PrefetchMsrMap::For(PlatformMsrLayout layout) {
  switch (layout) {
    case PlatformMsrLayout::kIntelStyle:
      return {kIntelMiscFeatureControl, /*set_bit_disables=*/true,
              kFourEngineMask};
    case PlatformMsrLayout::kAltStyle:
      return {kAltPrefetchConfig, /*set_bit_disables=*/false,
              kFourEngineMask};
  }
  LIMONCELLO_CHECK(false);
  return {};
}

PrefetchControl::PrefetchControl(MsrDevice* device, PlatformMsrLayout layout,
                                 int first_cpu, int num_cpus)
    : device_(device),
      map_(PrefetchMsrMap::For(layout)),
      first_cpu_(first_cpu),
      num_cpus_(num_cpus) {
  LIMONCELLO_CHECK(device != nullptr);
  LIMONCELLO_CHECK_GE(first_cpu, 0);
  LIMONCELLO_CHECK_GT(num_cpus, 0);
  LIMONCELLO_CHECK_LE(first_cpu + num_cpus, device->num_cpus());
}

int PrefetchControl::ApplyToAllCpus(std::uint64_t clear_mask,
                                    std::uint64_t set_mask) {
  int ok = 0;
  for (int cpu = first_cpu_; cpu < first_cpu_ + num_cpus_; ++cpu) {
    const auto current = device_->Read(cpu, map_.reg);
    if (!current.has_value()) continue;
    const std::uint64_t next = (*current & ~clear_mask) | set_mask;
    if (next != *current && !device_->Write(cpu, map_.reg, next)) continue;
    if (next == *current || device_->Read(cpu, map_.reg) == next) ++ok;
  }
  return ok;
}

int PrefetchControl::DisableAll() {
  if (map_.set_bit_disables) {
    return ApplyToAllCpus(/*clear_mask=*/0, /*set_mask=*/map_.engine_mask);
  }
  return ApplyToAllCpus(/*clear_mask=*/map_.engine_mask, /*set_mask=*/0);
}

int PrefetchControl::EnableAll() {
  if (map_.set_bit_disables) {
    return ApplyToAllCpus(/*clear_mask=*/map_.engine_mask, /*set_mask=*/0);
  }
  return ApplyToAllCpus(/*clear_mask=*/0, /*set_mask=*/map_.engine_mask);
}

int PrefetchControl::SetEngine(PrefetchEngine engine, bool enabled) {
  const std::uint64_t bit = EngineBit(engine);
  const bool set = map_.set_bit_disables ? !enabled : enabled;
  if (set) return ApplyToAllCpus(/*clear_mask=*/0, /*set_mask=*/bit);
  return ApplyToAllCpus(/*clear_mask=*/bit, /*set_mask=*/0);
}

std::optional<bool> PrefetchControl::EngineEnabled(int cpu,
                                                   PrefetchEngine engine) {
  const auto value = device_->Read(cpu, map_.reg);
  if (!value.has_value()) return std::nullopt;
  const bool bit_set = (*value & EngineBit(engine)) != 0;
  return map_.set_bit_disables ? !bit_set : bit_set;
}

std::optional<bool> PrefetchControl::AllEnabled() {
  bool any_read = false;
  for (int cpu = first_cpu_; cpu < first_cpu_ + num_cpus_; ++cpu) {
    for (int e = 0; e < kNumPrefetchEngines; ++e) {
      const auto enabled =
          EngineEnabled(cpu, static_cast<PrefetchEngine>(e));
      if (!enabled.has_value()) continue;
      any_read = true;
      if (!*enabled) return false;
    }
  }
  if (!any_read) return std::nullopt;
  return true;
}

std::optional<bool> PrefetchControl::AllDisabled() {
  bool any_read = false;
  for (int cpu = first_cpu_; cpu < first_cpu_ + num_cpus_; ++cpu) {
    for (int e = 0; e < kNumPrefetchEngines; ++e) {
      const auto enabled =
          EngineEnabled(cpu, static_cast<PrefetchEngine>(e));
      if (!enabled.has_value()) continue;
      any_read = true;
      if (*enabled) return false;
    }
  }
  if (!any_read) return std::nullopt;
  return true;
}

}  // namespace limoncello
