// Model-specific-register access abstraction.
//
// Hard Limoncello actuates hardware prefetchers by read-modify-writing
// per-core MSRs. This interface hides whether the registers belong to a
// simulated machine, a real Linux host (/dev/cpu/N/msr), or a test double.
// All operations are fallible: production deployments must tolerate cores
// going offline and permission errors.
#ifndef LIMONCELLO_MSR_MSR_DEVICE_H_
#define LIMONCELLO_MSR_MSR_DEVICE_H_

#include <cstdint>
#include <optional>

namespace limoncello {

using MsrRegister = std::uint32_t;

class MsrDevice {
 public:
  virtual ~MsrDevice() = default;

  // Number of logical CPUs addressable through this device.
  virtual int num_cpus() const = 0;

  // Reads the register on the given CPU. nullopt on failure.
  virtual std::optional<std::uint64_t> Read(int cpu, MsrRegister reg) = 0;

  // Writes the register on the given CPU. false on failure. Callers must
  // check the result (enforced by limolint's unchecked-msr-write rule):
  // cores go offline and MSR writes fail in production.
  [[nodiscard]] virtual bool Write(int cpu, MsrRegister reg,
                                   std::uint64_t value) = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_MSR_MSR_DEVICE_H_
