// In-memory MSR register file with write observers and failure injection.
//
// The simulated machine registers an observer so that controller writes to
// the prefetch-control MSR take effect on the simulated prefetch engines —
// the same actuation path Limoncello uses on real hardware.
#ifndef LIMONCELLO_MSR_SIMULATED_MSR_DEVICE_H_
#define LIMONCELLO_MSR_SIMULATED_MSR_DEVICE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "msr/msr_device.h"

namespace limoncello {

class SimulatedMsrDevice : public MsrDevice {
 public:
  // Observer invoked after a successful write: (cpu, reg, new value).
  using WriteObserver =
      std::function<void(int cpu, MsrRegister reg, std::uint64_t value)>;

  explicit SimulatedMsrDevice(int num_cpus);

  int num_cpus() const override { return num_cpus_; }
  std::optional<std::uint64_t> Read(int cpu, MsrRegister reg) override;
  [[nodiscard]] bool Write(int cpu, MsrRegister reg,
                           std::uint64_t value) override;

  void AddWriteObserver(WriteObserver observer);

  // Failure injection: reads/writes to the given CPU fail until cleared.
  void FailCpu(int cpu);
  void UnfailCpu(int cpu);

  // Clears every register file back to the unwritten state, as a reboot
  // does (observers and failure flags are kept; no observers fire — the
  // reset is silent, which is exactly what makes reboots dangerous).
  void ResetToPowerOn();

  // Test introspection: value last written (0 if never), write count.
  std::uint64_t PeekRaw(int cpu, MsrRegister reg) const;
  std::uint64_t write_count() const { return write_count_; }

 private:
  // One written register across all CPUs. A daemon touches exactly one
  // register (prefetch control), so storage is flat: a short linearly
  // scanned list of registers, each with a dense per-CPU value array.
  // This replaces a std::map per CPU (dozens of node allocations per
  // machine, pointer-chased on every read) with two allocations total —
  // at 100k fleet machines that difference dominates construction time.
  // Unwritten registers still read as zero.
  struct RegisterFile {
    MsrRegister reg = 0;
    std::vector<std::uint64_t> per_cpu;
  };

  bool CpuOk(int cpu) const;
  const RegisterFile* FindFile(MsrRegister reg) const;
  RegisterFile* FindOrCreateFile(MsrRegister reg);

  int num_cpus_ = 0;
  std::vector<RegisterFile> files_;
  std::vector<bool> failed_;
  std::vector<WriteObserver> observers_;
  std::uint64_t write_count_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_MSR_SIMULATED_MSR_DEVICE_H_
