#include "msr/linux_msr_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace limoncello {

namespace {

int OpenMsrNode(int cpu, int flags) {
  char path[64];
  std::snprintf(path, sizeof(path), "/dev/cpu/%d/msr", cpu);
  return ::open(path, flags);
}

}  // namespace

LinuxMsrDevice::LinuxMsrDevice() {
  // Count contiguous CPUs with an openable msr node.
  for (int cpu = 0;; ++cpu) {
    const int fd = OpenMsrNode(cpu, O_RDONLY);
    if (fd < 0) break;
    ::close(fd);
    num_cpus_ = cpu + 1;
  }
}

// limolint:cold-path — real /dev/cpu/*/msr node I/O; runs at actuation
// cadence on hardware, never in the simulated fleet hot loop.
std::optional<std::uint64_t> LinuxMsrDevice::Read(int cpu, MsrRegister reg) {
  if (cpu < 0 || cpu >= num_cpus_) return std::nullopt;
  const int fd = OpenMsrNode(cpu, O_RDONLY);
  if (fd < 0) return std::nullopt;
  std::uint64_t value = 0;
  const ssize_t n = ::pread(fd, &value, sizeof(value), reg);
  ::close(fd);
  if (n != sizeof(value)) return std::nullopt;
  return value;
}

// limolint:cold-path — real /dev/cpu/*/msr node I/O; runs at actuation
// cadence on hardware, never in the simulated fleet hot loop.
bool LinuxMsrDevice::Write(int cpu, MsrRegister reg, std::uint64_t value) {
  if (cpu < 0 || cpu >= num_cpus_) return false;
  const int fd = OpenMsrNode(cpu, O_WRONLY);
  if (fd < 0) return false;
  const ssize_t n = ::pwrite(fd, &value, sizeof(value), reg);
  ::close(fd);
  return n == sizeof(value);
}

}  // namespace limoncello
