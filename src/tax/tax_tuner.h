// Soft-Limoncello autotuner: per kernel x size-class prefetch parameter
// search over the data-center-tax suite.
//
// The paper tunes one (distance, degree) compromise per category from the
// Fig. 15 sweeps. This tuner generalizes that methodology: for every tax
// kernel and call-size class it coordinate-descends over distance (at a
// pivot degree), then degree, then locality hint, measuring each candidate
// against the self-timer, and keeps the best — falling back to
// prefetch-disabled when nothing clears the hysteresis margin. Two regimes
// are measured:
//
//   kHwOn           warm, repeatedly-touched working set: the hardware
//                   prefetchers (which this host cannot actually disable)
//                   see a trained stream, approximating production with
//                   hardware prefetching active.
//   kHwOffEmulated  cold working sets scattered at page-randomized slots
//                   of an arena several times the LLC, visited in shuffled
//                   order: every op streams memory the hardware
//                   prefetchers have never seen, approximating the
//                   post-actuation regime Soft Limoncello targets
//                   (paper Fig. 20).
//
// "Untuned" throughout means software prefetching off (a stock library);
// "default" is the single deployed compromise from the site registry; the
// headline geomean compares tuned against untuned in the hw-off regime.
//
// Timing is noisy, so parameter-choice determinism is tested against
// ModelProbe, a seeded synthetic cost surface; MeasuredProbe does the real
// wall-clock measurement.
#ifndef LIMONCELLO_TAX_TAX_TUNER_H_
#define LIMONCELLO_TAX_TAX_TUNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "softpf/prefetch_site_registry.h"
#include "softpf/size_class.h"
#include "softpf/soft_prefetch_config.h"
#include "softpf/tax_kernel.h"
#include "tax/tuned_params.h"

namespace limoncello {

enum class TuneRegime : int { kHwOn, kHwOffEmulated };
const char* TuneRegimeName(TuneRegime regime);

// The (fixed, committed) sweep grid. Determinism of the chosen parameters
// for a given probe follows from the grid order: candidates are evaluated
// in listed order and ties keep the earlier candidate.
struct TunerGrid {
  std::vector<std::uint32_t> distances;
  std::vector<std::uint32_t> degrees;
  std::vector<std::uint8_t> localities;
  std::uint32_t pivot_degree = 256;  // degree held fixed in distance sweep
  std::uint8_t pivot_locality = 3;
  // The best candidate must beat the prefetch-disabled baseline by this
  // factor, or the cell ships disabled (hysteresis against noise).
  double min_gain = 1.02;

  static TunerGrid Default();
  // Coarse grid for the CI gate / smoke runs.
  static TunerGrid Reduced();
};

// Measurement interface: throughput (MB/s of kernel input processed) for
// one kernel x size-class x config x regime cell.
class ThroughputProbe {
 public:
  virtual ~ThroughputProbe() = default;
  virtual double Measure(TaxKernel kernel, int size_class,
                         const SoftPrefetchConfig& config,
                         TuneRegime regime) = 0;
};

// Deterministic synthetic cost surface: a pure function of
// (seed, kernel, size_class, config, regime). Each cell has a hidden
// preferred (distance, degree, locality); throughput rises smoothly as a
// candidate approaches it, with larger attainable gains in the emulated
// hw-off regime. Used by the determinism tests and available to exercise
// the sweep logic without a 3-minute measurement run.
class ModelProbe : public ThroughputProbe {
 public:
  explicit ModelProbe(std::uint64_t seed) : seed_(seed) {}
  double Measure(TaxKernel kernel, int size_class,
                 const SoftPrefetchConfig& config,
                 TuneRegime regime) override;

 private:
  std::uint64_t seed_;
};

struct MeasuredProbeOptions {
  std::uint64_t seed = 0x11770c0ffeeULL;  // workload generation seed
  int reps = 3;               // best-of-reps per measurement
  double budget_ms = 40.0;    // target timed-section length per rep
  // Backing store for the hw-off cold-slot emulation; must be several
  // times the LLC for slots to actually be cold when revisited.
  std::size_t arena_bytes = std::size_t{768} << 20;
  // Scales the hash-join build-side footprint (and with it how far the
  // probe chain walk misses); the default reaches DRAM on the large class.
  double join_footprint_scale = 1.0;
};

// Real wall-clock measurement over the native tax kernels. Workloads are
// generated deterministically from the seed and cached one cell at a time
// (the sweep visits cells sequentially), so peak memory stays near
// arena_bytes. Not thread-safe.
class MeasuredProbe : public ThroughputProbe {
 public:
  explicit MeasuredProbe(MeasuredProbeOptions options = {});
  ~MeasuredProbe() override;
  double Measure(TaxKernel kernel, int size_class,
                 const SoftPrefetchConfig& config,
                 TuneRegime regime) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// One tuned cell of the sweep.
struct TunedCell {
  TaxKernel kernel = TaxKernel::kMemcpy;
  int size_class = 0;
  TuneRegime regime = TuneRegime::kHwOn;
  SoftPrefetchConfig best;        // chosen config (may be Disabled())
  double untuned_mbps = 0.0;      // software prefetching off
  double default_mbps = 0.0;      // registry's deployed compromise
  double tuned_mbps = 0.0;        // the chosen config
  double speedup = 1.0;           // tuned_mbps / untuned_mbps
};

struct TunerReport {
  std::vector<TunedCell> cells;
  double geomean_speedup_hw_off = 1.0;  // headline: tuned vs untuned
  double geomean_speedup_hw_on = 1.0;
};

// Sweeps one cell: untuned + default baselines, then distance at the
// pivot degree, degree at the best distance, locality at the best
// distance/degree. `default_config` is the registry compromise for the
// cell (measured for reference and seeded into the candidate set).
TunedCell SweepCell(ThroughputProbe& probe, TaxKernel kernel, int size_class,
                    TuneRegime regime, const SoftPrefetchConfig& default_config,
                    const TunerGrid& grid);

// Full sweep: every kernel x swept size class x requested regime, with
// default configs taken from `registry`. Cells are ordered kernel-major,
// then size class, then regime (the order regimes appear in `regimes`).
// A non-empty `only` restricts the sweep to the listed kernels (dev /
// triage runs; the committed table always comes from a full sweep).
TunerReport RunTunerSweep(ThroughputProbe& probe, const TunerGrid& grid,
                          const std::vector<TuneRegime>& regimes,
                          const PrefetchSiteRegistry& registry,
                          const std::vector<TaxKernel>& only = {});

// Geometric mean of cell speedups for one regime; 1.0 when empty.
double GeomeanSpeedup(const std::vector<TunedCell>& cells,
                      TuneRegime regime);

// The shipping table: hw-off-emulated cells become TunedParams (that is
// the regime Soft Limoncello actually serves).
std::vector<TunedParam> SelectTunedParams(const TunerReport& report);

// Renders a complete tax/tuned_params.cc with the given table (the
// --emit-params output).
std::string EmitTunedParamsCc(const std::vector<TunedParam>& params);

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_TAX_TUNER_H_
