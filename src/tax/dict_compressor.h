// Dictionary/LZ-window compressor — the second "compression" tax kernel.
//
// An LZ77 codec with hash-chain match finding over a sliding window that
// extends backwards into a preset shared dictionary (the zstd/brotli
// "dictionary compression" shape used for small RPC payloads: both sides
// hold the dictionary out of band, match offsets may reach into it).
// Unlike the greedy single-probe BlockCompressor, the chain walk visits
// several candidate positions per cursor — scattered reads over the
// window that the configured prefetch policy covers, on top of the
// sequential input stream. Decompression's match copies likewise gather
// from random window/dictionary offsets and prefetch the match source.
//
// Wire format: varint(uncompressed_size), then tokens
//   0x00 varint(len) <len raw bytes>          literal run
//   0x01 varint(offset) varint(len)           match; offset counts back
//                                             from the write position and
//                                             may extend into the
//                                             dictionary (offset > pos).
//
// A DictCompressor instance owns the dictionary plus reusable match-finder
// scratch, so Compress is not const and an instance must not be shared
// across threads without external synchronization. Steady-state calls
// reuse the scratch without allocating.
#ifndef LIMONCELLO_TAX_DICT_COMPRESSOR_H_
#define LIMONCELLO_TAX_DICT_COMPRESSOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "softpf/soft_prefetch_config.h"

namespace limoncello {

class DictCompressor {
 public:
  // The dictionary may be empty (plain LZ-window compression). Longer
  // than kMaxDictionaryBytes is truncated to its trailing bytes (the most
  // recent context, as zstd does).
  explicit DictCompressor(std::string_view dictionary = {});

  static constexpr std::size_t kMaxDictionaryBytes = 1u << 20;

  // Compresses `input`, replacing *out.
  void Compress(std::string_view input, const SoftPrefetchConfig& config,
                std::string* out);
  void Compress(std::string_view input, std::string* out) {
    Compress(input, SoftPrefetchConfig::Disabled(), out);
  }

  // Decompresses, replacing *out; false on malformed input. Must be
  // called with the same dictionary the compressor used.
  bool Decompress(std::string_view compressed,
                  const SoftPrefetchConfig& config, std::string* out) const;
  bool Decompress(std::string_view compressed, std::string* out) const {
    return Decompress(compressed, SoftPrefetchConfig::Disabled(), out);
  }

  const std::string& dictionary() const { return dict_; }

 private:
  void InsertDictionary();

  std::string dict_;
  // Hash-chain match finder over virtual positions 0..dict+input: heads_
  // maps a 4-byte hash to the most recent position, chain_ links back to
  // older ones. dict_head_/dict_chain_ snapshot the dictionary-only state
  // so each Compress starts from it without rehashing the dictionary.
  std::vector<std::int32_t> heads_;
  std::vector<std::int32_t> chain_;
  std::vector<std::int32_t> dict_heads_;
  std::size_t dict_chain_prefix_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_DICT_COMPRESSOR_H_
