// 64-bit block hash with software prefetching — the "hashing" tax category.
//
// The algorithm is an xxHash64-flavoured 4-lane mixer (independent design,
// same structure: 32-byte stripes into four accumulators, merge, avalanche).
// Hashing walks the buffer sequentially, so Soft Limoncello prefetches the
// input at the configured distance.
#ifndef LIMONCELLO_TAX_BLOCK_HASH_H_
#define LIMONCELLO_TAX_BLOCK_HASH_H_

#include <cstddef>
#include <cstdint>

#include "softpf/soft_prefetch_config.h"

namespace limoncello {

// Hashes [data, data+n) with the given seed.
std::uint64_t BlockHash64(const void* data, std::size_t n,
                          std::uint64_t seed,
                          const SoftPrefetchConfig& config);

inline std::uint64_t BlockHash64(const void* data, std::size_t n,
                                 std::uint64_t seed = 0) {
  return BlockHash64(data, n, seed, SoftPrefetchConfig::Disabled());
}

// CRC32C-style rolling checksum (software table implementation) with the
// same prefetch treatment; used as a second hashing workload.
std::uint32_t Crc32c(const void* data, std::size_t n,
                     const SoftPrefetchConfig& config);

inline std::uint32_t Crc32c(const void* data, std::size_t n) {
  return Crc32c(data, n, SoftPrefetchConfig::Disabled());
}

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_BLOCK_HASH_H_
