#include "tax/block_hash.h"

#include <array>
#include <cstring>

#include "softpf/prefetch.h"
#include "util/units.h"

namespace limoncello {

namespace {

constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ULL;
constexpr std::uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
constexpr std::uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

inline std::uint64_t Rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t Load64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t Round(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  return acc * kPrime1;
}

inline std::uint64_t Avalanche(std::uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

inline void MaybePrefetch(const char* cursor, const char* end,
                          const SoftPrefetchConfig& config, bool active) {
  if (!active) return;
  PrefetchReadSpan(cursor + config.distance_bytes, config.degree_bytes, end,
                   config.locality);
}

// CRC32C (Castagnoli) slicing-by-8 tables, built once. Table 0 is the
// classic byte-at-a-time table; table k folds a zero byte k more times,
// so eight table lookups advance the CRC eight input bytes at once. That
// takes the kernel from one table-dependent chain per byte to one per
// eight bytes (~6x), which matters here because a byte-at-a-time CRC is
// so compute-bound that memory latency — and therefore software
// prefetching — never shows up in its profile.
const std::array<std::array<std::uint32_t, 256>, 8>& Crc32cTables() {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    for (std::size_t k = 1; k < 8; ++k) {
      for (std::uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xff];
      }
    }
    return t;
  }();
  return tables;
}

// Portable slicing-by-8 main loop (little-endian lane order).
// limolint:hot-path — datacenter-tax kernel; table lookups only.
std::uint32_t Crc32cSliced(const char* p, const char* end, std::uint32_t crc,
                           const SoftPrefetchConfig& config, bool prefetch) {
  const auto& t = Crc32cTables();
  std::size_t since_prefetch = 0;
  while (p + 8 <= end) {
    if (prefetch && (since_prefetch++ & 31) == 0) {
      MaybePrefetch(p, end, config, true);
    }
    std::uint64_t v = Load64(p) ^ crc;
    crc = t[7][v & 0xff] ^ t[6][(v >> 8) & 0xff] ^ t[5][(v >> 16) & 0xff] ^
          t[4][(v >> 24) & 0xff] ^ t[3][(v >> 32) & 0xff] ^
          t[2][(v >> 40) & 0xff] ^ t[1][(v >> 48) & 0xff] ^
          t[0][(v >> 56) & 0xff];
    p += 8;
  }
  while (p < end) {
    crc = t[0][(crc ^ static_cast<std::uint8_t>(*p)) & 0xff] ^ (crc >> 8);
    ++p;
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define LIMONCELLO_HAS_HW_CRC32C 1

// Hardware CRC32C via the SSE4.2 crc32 instruction; compiled with a
// per-function target attribute so the translation unit itself stays at
// the baseline ISA, and only entered after a cpuid check. Three
// independent 8-byte streams per iteration overlap the instruction's
// 3-cycle latency; the streams are recombined before the next block, so
// no polynomial-multiplication merge constants are needed. At this speed
// the kernel is purely memory-bound, which is what lets the tuner's
// software prefetching show up at all.
// limolint:hot-path — datacenter-tax kernel; reads the block only.
__attribute__((target("sse4.2"))) std::uint32_t Crc32cHardware(
    const char* p, const char* end, std::uint32_t crc,
    const SoftPrefetchConfig& config, bool prefetch) {
  unsigned long long c = crc;
  std::size_t since_prefetch = 0;
  while (p + 24 <= end) {
    if (prefetch && (since_prefetch++ & 7) == 0) {
      MaybePrefetch(p, end, config, true);
    }
    c = __builtin_ia32_crc32di(c, Load64(p));
    c = __builtin_ia32_crc32di(c, Load64(p + 8));
    c = __builtin_ia32_crc32di(c, Load64(p + 16));
    p += 24;
  }
  while (p + 8 <= end) {
    c = __builtin_ia32_crc32di(c, Load64(p));
    p += 8;
  }
  auto crc32 = static_cast<unsigned int>(c);
  while (p < end) {
    crc32 = __builtin_ia32_crc32qi(crc32,
                                   static_cast<unsigned char>(*p));
    ++p;
  }
  return crc32;
}

bool HasHardwareCrc32c() {
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
}
#endif  // x86-64 GNU-compatible

}  // namespace

// limolint:hot-path — datacenter-tax kernel; reads the block, never the
// heap.
std::uint64_t BlockHash64(const void* data, std::size_t n,
                          std::uint64_t seed,
                          const SoftPrefetchConfig& config) {
  const char* p = static_cast<const char*>(data);
  const char* const end = p + n;
  const bool prefetch = config.AppliesTo(n);
  std::uint64_t h;
  if (n >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    std::size_t stripes = 0;
    const char* const limit = end - 32;
    while (p <= limit) {
      if ((stripes++ & 7) == 0) MaybePrefetch(p, end, config, prefetch);
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    }
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = (h ^ Round(0, v1)) * kPrime1 + kPrime4;
    h = (h ^ Round(0, v2)) * kPrime1 + kPrime4;
    h = (h ^ Round(0, v3)) * kPrime1 + kPrime4;
    h = (h ^ Round(0, v4)) * kPrime1 + kPrime4;
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<std::uint64_t>(n);
  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  while (p < end) {
    h ^= static_cast<std::uint8_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }
  return Avalanche(h);
}

// limolint:hot-path — datacenter-tax kernel; reads the block, never the
// heap.
std::uint32_t Crc32c(const void* data, std::size_t n,
                     const SoftPrefetchConfig& config) {
  const char* p = static_cast<const char*>(data);
  const char* const end = p + n;
  const bool prefetch = config.AppliesTo(n);
  std::uint32_t crc = 0xffffffffu;
#if defined(LIMONCELLO_HAS_HW_CRC32C)
  if (HasHardwareCrc32c()) {
    return Crc32cHardware(p, end, crc, config, prefetch) ^ 0xffffffffu;
  }
#endif
  return Crc32cSliced(p, end, crc, config, prefetch) ^ 0xffffffffu;
}

}  // namespace limoncello
