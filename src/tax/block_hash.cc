#include "tax/block_hash.h"

#include <array>
#include <cstring>

#include "util/units.h"

namespace limoncello {

namespace {

constexpr std::uint64_t kPrime1 = 0x9e3779b185ebca87ULL;
constexpr std::uint64_t kPrime2 = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kPrime3 = 0x165667b19e3779f9ULL;
constexpr std::uint64_t kPrime4 = 0x85ebca77c2b2ae63ULL;
constexpr std::uint64_t kPrime5 = 0x27d4eb2f165667c5ULL;

inline std::uint64_t Rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t Load64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint64_t Round(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  return acc * kPrime1;
}

inline std::uint64_t Avalanche(std::uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

inline void MaybePrefetch(const char* cursor, const char* end,
                          const SoftPrefetchConfig& config, bool active) {
  if (!active) return;
  const char* target = cursor + config.distance_bytes;
  for (std::uint32_t off = 0; off < config.degree_bytes;
       off += kCacheLineBytes) {
    if (target + off >= end) return;
    __builtin_prefetch(target + off, 0, 3);
  }
}

// CRC32C (Castagnoli) lookup table, built once.
const std::array<std::uint32_t, 256>& Crc32cTable() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected 0x1EDC6F41
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

// limolint:hot-path — datacenter-tax kernel; reads the block, never the
// heap.
std::uint64_t BlockHash64(const void* data, std::size_t n,
                          std::uint64_t seed,
                          const SoftPrefetchConfig& config) {
  const char* p = static_cast<const char*>(data);
  const char* const end = p + n;
  const bool prefetch = config.AppliesTo(n);
  std::uint64_t h;
  if (n >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    std::size_t stripes = 0;
    const char* const limit = end - 32;
    while (p <= limit) {
      if ((stripes++ & 7) == 0) MaybePrefetch(p, end, config, prefetch);
      v1 = Round(v1, Load64(p));
      v2 = Round(v2, Load64(p + 8));
      v3 = Round(v3, Load64(p + 16));
      v4 = Round(v4, Load64(p + 24));
      p += 32;
    }
    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = (h ^ Round(0, v1)) * kPrime1 + kPrime4;
    h = (h ^ Round(0, v2)) * kPrime1 + kPrime4;
    h = (h ^ Round(0, v3)) * kPrime1 + kPrime4;
    h = (h ^ Round(0, v4)) * kPrime1 + kPrime4;
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<std::uint64_t>(n);
  while (p + 8 <= end) {
    h ^= Round(0, Load64(p));
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  while (p < end) {
    h ^= static_cast<std::uint8_t>(*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }
  return Avalanche(h);
}

std::uint32_t Crc32c(const void* data, std::size_t n,
                     const SoftPrefetchConfig& config) {
  const auto& table = Crc32cTable();
  const char* p = static_cast<const char*>(data);
  const char* const end = p + n;
  const bool prefetch = config.AppliesTo(n);
  std::uint32_t crc = 0xffffffffu;
  std::size_t i = 0;
  while (p < end) {
    if (prefetch && (i++ & 63) == 0) MaybePrefetch(p, end, config, true);
    crc = table[(crc ^ static_cast<std::uint8_t>(*p)) & 0xff] ^ (crc >> 8);
    ++p;
  }
  return crc ^ 0xffffffffu;
}

}  // namespace limoncello
