#include "tax/prefetching_memcpy.h"

#include <cstring>

#include "util/units.h"

namespace limoncello {

namespace {

// Issues prefetches covering [addr, addr + degree) line by line.
inline void PrefetchSpan(const char* addr, std::size_t degree,
                         const char* limit) {
  for (std::size_t off = 0; off < degree; off += kCacheLineBytes) {
    const char* p = addr + off;
    if (p >= limit) break;
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
  }
}

inline void PrefetchSpanWrite(char* addr, std::size_t degree, char* limit) {
  for (std::size_t off = 0; off < degree; off += kCacheLineBytes) {
    char* p = addr + off;
    if (p >= limit) break;
    __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
  }
}

// Forward copy in chunks with periodic source prefetch: every time the
// cursor crosses a degree boundary, the next `degree` bytes at `distance`
// ahead are requested.
// limolint:hot-path — datacenter-tax kernel; pure pointer arithmetic.
void CopyForwardPrefetched(char* dst, const char* src, std::size_t n,
                           std::size_t distance, std::size_t degree) {
  const char* const src_end = src + n;
  std::size_t offset = 0;
  std::size_t next_prefetch = 0;
  while (offset < n) {
    if (offset >= next_prefetch) {
      PrefetchSpan(src + offset + distance, degree, src_end);
      next_prefetch = offset + degree;
    }
    const std::size_t chunk = std::min<std::size_t>(degree, n - offset);
    std::memcpy(dst + offset, src + offset, chunk);
    offset += chunk;
  }
}

// limolint:hot-path — datacenter-tax kernel; pure pointer arithmetic.
void CopyBackwardPrefetched(char* dst, const char* src, std::size_t n,
                            std::size_t distance, std::size_t degree) {
  std::size_t remaining = n;
  std::size_t next_prefetch = n;
  while (remaining > 0) {
    if (remaining <= next_prefetch) {
      // Prefetch the span `distance` *behind* the (backward-moving) cursor.
      const std::size_t ahead =
          remaining > distance + degree ? remaining - distance - degree : 0;
      PrefetchSpan(src + ahead, degree, src + n);
      next_prefetch = remaining > degree ? remaining - degree : 0;
    }
    const std::size_t chunk = std::min<std::size_t>(degree, remaining);
    remaining -= chunk;
    std::memmove(dst + remaining, src + remaining, chunk);
  }
}

}  // namespace

void* PrefetchingMemcpy(void* dst, const void* src, std::size_t n,
                        const SoftPrefetchConfig& config) {
  if (!config.AppliesTo(n)) return std::memcpy(dst, src, n);
  CopyForwardPrefetched(static_cast<char*>(dst),
                        static_cast<const char*>(src), n,
                        config.distance_bytes, config.degree_bytes);
  return dst;
}

void* PrefetchingMemmove(void* dst, const void* src, std::size_t n,
                         const SoftPrefetchConfig& config) {
  if (!config.AppliesTo(n)) return std::memmove(dst, src, n);
  auto* d = static_cast<char*>(dst);
  const auto* s = static_cast<const char*>(src);
  if (d == s || n == 0) return dst;
  if (d < s || d >= s + n) {
    CopyForwardPrefetched(d, s, n, config.distance_bytes,
                          config.degree_bytes);
  } else {
    CopyBackwardPrefetched(d, s, n, config.distance_bytes,
                           config.degree_bytes);
  }
  return dst;
}

void* PrefetchingMemset(void* dst, int value, std::size_t n,
                        const SoftPrefetchConfig& config) {
  if (!config.AppliesTo(n)) return std::memset(dst, value, n);
  auto* d = static_cast<char*>(dst);
  char* const end = d + n;
  std::size_t offset = 0;
  std::size_t next_prefetch = 0;
  while (offset < n) {
    if (offset >= next_prefetch) {
      PrefetchSpanWrite(d + offset + config.distance_bytes,
                        config.degree_bytes, end);
      next_prefetch = offset + config.degree_bytes;
    }
    const std::size_t chunk =
        std::min<std::size_t>(config.degree_bytes, n - offset);
    std::memset(d + offset, value, chunk);
    offset += chunk;
  }
  return dst;
}

}  // namespace limoncello
