#include "tax/prefetching_memcpy.h"

#include <cstring>

#include "softpf/prefetch.h"
#include "util/units.h"

namespace limoncello {

namespace {

// Forward copy in chunks with periodic source prefetch: every time the
// cursor crosses a degree boundary, the next `degree` bytes at `distance`
// ahead are requested. Only the source is prefetched: the chunked
// std::memcpy writes whole destination lines through the fast-string
// path, which elides the read-for-ownership entirely, and a write
// prefetch would force those lines into cache and reinstate the RFO
// traffic it was meant to hide (measured as a net loss on this host).
// limolint:hot-path — datacenter-tax kernel; pure pointer arithmetic.
void CopyForwardPrefetched(char* dst, const char* src, std::size_t n,
                           std::size_t distance, std::size_t degree,
                           std::uint8_t locality) {
  const char* const src_end = src + n;
  std::size_t offset = 0;
  std::size_t next_prefetch = 0;
  while (offset < n) {
    if (offset >= next_prefetch) {
      PrefetchReadSpan(src + offset + distance,
                       static_cast<std::uint32_t>(degree), src_end,
                       locality);
      next_prefetch = offset + degree;
    }
    const std::size_t chunk = std::min<std::size_t>(degree, n - offset);
    std::memcpy(dst + offset, src + offset, chunk);
    offset += chunk;
  }
}

// limolint:hot-path — datacenter-tax kernel; pure pointer arithmetic.
void CopyBackwardPrefetched(char* dst, const char* src, std::size_t n,
                            std::size_t distance, std::size_t degree,
                            std::uint8_t locality) {
  std::size_t remaining = n;
  std::size_t next_prefetch = n;
  while (remaining > 0) {
    if (remaining <= next_prefetch) {
      // Prefetch the span `distance` *behind* the (backward-moving) cursor.
      const std::size_t ahead =
          remaining > distance + degree ? remaining - distance - degree : 0;
      PrefetchReadSpan(src + ahead, static_cast<std::uint32_t>(degree),
                       src + n, locality);
      next_prefetch = remaining > degree ? remaining - degree : 0;
    }
    const std::size_t chunk = std::min<std::size_t>(degree, remaining);
    remaining -= chunk;
    std::memmove(dst + remaining, src + remaining, chunk);
  }
}

}  // namespace

void* PrefetchingMemcpy(void* dst, const void* src, std::size_t n,
                        const SoftPrefetchConfig& config) {
  if (!config.AppliesTo(n)) return std::memcpy(dst, src, n);
  CopyForwardPrefetched(static_cast<char*>(dst),
                        static_cast<const char*>(src), n,
                        config.distance_bytes, config.degree_bytes,
                        config.locality);
  return dst;
}

void* PrefetchingMemmove(void* dst, const void* src, std::size_t n,
                         const SoftPrefetchConfig& config) {
  if (!config.AppliesTo(n)) return std::memmove(dst, src, n);
  auto* d = static_cast<char*>(dst);
  const auto* s = static_cast<const char*>(src);
  if (d == s || n == 0) return dst;
  if (d < s || d >= s + n) {
    CopyForwardPrefetched(d, s, n, config.distance_bytes,
                          config.degree_bytes, config.locality);
  } else {
    CopyBackwardPrefetched(d, s, n, config.distance_bytes,
                           config.degree_bytes, config.locality);
  }
  return dst;
}

void* PrefetchingMemset(void* dst, int value, std::size_t n,
                        const SoftPrefetchConfig& config) {
  if (!config.AppliesTo(n)) return std::memset(dst, value, n);
  auto* d = static_cast<char*>(dst);
  char* const end = d + n;
  std::size_t offset = 0;
  std::size_t next_prefetch = 0;
  while (offset < n) {
    if (offset >= next_prefetch) {
      PrefetchWriteSpan(d + offset + config.distance_bytes,
                        config.degree_bytes, end, config.locality);
      next_prefetch = offset + config.degree_bytes;
    }
    const std::size_t chunk =
        std::min<std::size_t>(config.degree_bytes, n - offset);
    std::memset(d + offset, value, chunk);
    offset += chunk;
  }
  return dst;
}

}  // namespace limoncello
