// Varint stream codec — protobuf-flavoured base-128 serialization, the
// second "data transmission" tax kernel.
//
// Encodes/decodes a stream of unsigned 64-bit values in little-endian
// base-128 (7 payload bits per byte, high bit = continuation), exactly the
// wire shape protobuf uses for scalar fields. Encoding streams the value
// array; decoding streams the byte buffer — both sequential shapes §4.1
// identifies as prefetch-friendly, and both prefetch their input at the
// configured distance/degree/locality.
#ifndef LIMONCELLO_TAX_VARINT_CODEC_H_
#define LIMONCELLO_TAX_VARINT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "softpf/soft_prefetch_config.h"

namespace limoncello {

// Exact encoded size of one value / of a value stream.
std::size_t VarintSizeOf(std::uint64_t value);
std::size_t VarintStreamSize(const std::uint64_t* values, std::size_t count);

// Encodes `count` values, replacing *out. Steady-state zero-alloc when
// *out is reused and already has capacity.
void VarintEncodeStream(const std::uint64_t* values, std::size_t count,
                        const SoftPrefetchConfig& config, std::string* out);

// Decodes an encoded stream, replacing *out. Returns false on truncated
// input (buffer ends mid-varint) or over-long encodings (more than 10
// bytes, or a 10th byte contributing bits beyond 2^64).
bool VarintDecodeStream(std::string_view in,
                        const SoftPrefetchConfig& config,
                        std::vector<std::uint64_t>* out);

inline void VarintEncodeStream(const std::uint64_t* values,
                               std::size_t count, std::string* out) {
  VarintEncodeStream(values, count, SoftPrefetchConfig::Disabled(), out);
}
inline bool VarintDecodeStream(std::string_view in,
                               std::vector<std::uint64_t>* out) {
  return VarintDecodeStream(in, SoftPrefetchConfig::Disabled(), out);
}

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_VARINT_CODEC_H_
